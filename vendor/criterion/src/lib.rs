//! Minimal bench harness with criterion's API shape, covering the
//! subset this workspace uses: `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `sample_size`, `throughput`,
//! `BenchmarkId::from_parameter`, `Bencher::iter`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros. Used because the build
//! environment cannot reach crates.io (see `[patch.crates-io]` in the
//! root `Cargo.toml`).
//!
//! No statistics: each benchmark is timed over a fixed number of
//! batches and the mean per-iteration wall time is printed. Good
//! enough to detect order-of-magnitude regressions offline; swap the
//! patch out for real criterion when network access is available.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-value hint preventing the optimiser from deleting work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation (recorded, printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier distinguishing parameterised benchmark cases.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a displayable parameter.
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        Self(p.to_string())
    }

    /// Builds an id from a function name and parameter.
    pub fn new<P: std::fmt::Display>(name: &str, p: P) -> Self {
        Self(format!("{name}/{p}"))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-benchmark timing driver passed to bench closures.
pub struct Bencher {
    samples: u32,
    mean: Duration,
    iters_done: u64,
}

impl Bencher {
    /// Times `routine`, recording the mean wall time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then timed batches.
        std_black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std_black_box(routine());
        }
        let total = start.elapsed();
        self.iters_done = self.samples as u64;
        self.mean = total / self.samples.max(1);
    }
}

/// Top-level harness handle.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Self { _private: () }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n# group: {name}");
        BenchmarkGroup { _parent: self, name: name.to_string(), samples: 20, throughput: None }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, 20, None, f);
        self
    }
}

/// Group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: u32,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u32;
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a named benchmark in this group.
    pub fn bench_function<F, D>(&mut self, id: D, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
        D: std::fmt::Display,
    {
        run_one(&format!("{}/{}", self.name, id), self.samples, self.throughput, f);
        self
    }

    /// Runs a named benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.samples, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (prints nothing extra in the stand-in).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: u32, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher { samples, mean: Duration::ZERO, iters_done: 0 };
    f(&mut b);
    let per_iter = b.mean;
    let rate = match tp {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            format!("  {:.3e} elem/s", n as f64 / per_iter.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            format!("  {:.3} MiB/s", n as f64 / per_iter.as_secs_f64() / (1 << 20) as f64)
        }
        _ => String::new(),
    };
    println!("{label:<48} {per_iter:>12.3?}/iter{rate}");
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
