//! std-backed drop-in for the subset of parking_lot this workspace
//! uses: `Mutex` (non-poisoning `lock()`), `Condvar` with `wait_while`,
//! and `RwLock`. Used because the build environment cannot reach
//! crates.io (see `[patch.crates-io]` in the root `Cargo.toml`).

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// Mutex with parking_lot's non-poisoning `lock()` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock (poison-transparent, like parking_lot).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + Default> Default for Mutex<T>
where
    T: Sized,
{
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken")
    }
}

/// Condition variable with parking_lot's `wait_while` signature
/// (borrows the guard instead of consuming it).
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Blocks while `condition` returns true.
    pub fn wait_while<'a, T, F>(&self, guard: &mut MutexGuard<'a, T>, condition: F)
    where
        F: FnMut(&mut T) -> bool,
    {
        let inner = guard.0.take().expect("guard taken");
        let inner = self
            .0
            .wait_while(inner, condition)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

/// Reader–writer lock with parking_lot's non-poisoning signatures.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}
