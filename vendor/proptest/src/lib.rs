//! Mini property-testing harness with proptest's API shape, covering
//! the subset this workspace uses: the `proptest!` macro, range and
//! `any::<T>()` strategies, `proptest::collection::vec`, `prop_map`,
//! and the `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//! Used because the build environment cannot reach crates.io (see
//! `[patch.crates-io]` in the root `Cargo.toml`).
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with the generated inputs in the message), and value generation is
//! a deterministic per-test stream seeded from the test's module path.

/// Deterministic RNG driving value generation.
pub mod test_runner {
    /// xorshift64* stream, seeded from the test name.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a deterministic RNG from an arbitrary seed string.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a of the test path, never zero.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h | 1 }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw in `[lo, hi)` for integer-ish ranges.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }

    /// Marker for a case rejected by `prop_assume!`.
    #[derive(Debug, Clone, Copy)]
    pub struct Rejected;

    /// Test-runner configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// Strategies: how to generate values of a type.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator (no shrinking in this stand-in).
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u8, u16, u32, u64);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// Strategy returned by [`crate::prelude::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! any_uint_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_uint_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (rng.unit_f64() * 2.0 - 1.0) as f32 * 1.0e3
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            (rng.unit_f64() * 2.0 - 1.0) * 1.0e3
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    /// Length specification for [`vec`]: a fixed size, a `Range`, or a
    /// `RangeInclusive` (mirrors proptest's `SizeRange` conversions).
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            Self { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty length range");
            Self { min: *r.start(), max_exclusive: *r.end() + 1 }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        let len = len.into();
        VecStrategy { element, min_len: len.min, max_len: len.max_exclusive }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_len - self.min_len) as u64;
            let n = self.min_len + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// `any::<T>()` strategy for primitive types.
    pub fn any<T>() -> crate::strategy::Any<T> {
        crate::strategy::Any(std::marker::PhantomData)
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            // Cap rejection loops (prop_assume!) at 16x the case budget.
            while __accepted < __cfg.cases && __attempts < __cfg.cases.saturating_mul(16) {
                __attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if __outcome.is_ok() {
                    __accepted += 1;
                }
            }
            assert!(
                __accepted > 0,
                "prop_assume! rejected every generated case in {}",
                stringify!($name)
            );
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..9, b in -5i32..5, x in 0.5f32..2.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.5..2.0).contains(&x));
        }

        #[test]
        fn assume_rejects_cases(n in 0usize..10) {
            prop_assume!(n >= 5);
            prop_assert!(n >= 5);
        }

        #[test]
        fn vec_and_map_strategies(v in crate::collection::vec(0u32..7, 1..20),
                                  half in (0i32..100).prop_map(|x| x / 2)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 7));
            prop_assert!((0..50).contains(&half));
        }
    }
}
