//! Sequential drop-in for the subset of rayon this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `rayon` to this crate (see `[patch.crates-io]` in
//! the root `Cargo.toml`). The `par_*` methods simply return the
//! ordinary sequential slice iterators; every adapter the workspace
//! chains on them (`enumerate`, `zip`, `map`, `sum`, `for_each`) is a
//! plain `Iterator` method, so call sites compile unchanged and produce
//! identical results — just without the parallel speedup.

pub mod prelude {
    /// `par_iter`/`par_chunks` over shared slices (sequential here).
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `rayon`'s parallel iterator.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `rayon`'s parallel chunk iterator.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `into_par_iter` over owned collections/ranges (sequential here).
    ///
    /// Real rayon exposes this for `Range<usize>` (used by the GEMM tile
    /// partitioning); the stand-in just returns the range itself, which
    /// is already a sequential iterator.
    pub trait IntoParallelIterator {
        /// Element type of the iterator.
        type Item;
        /// Sequential iterator standing in for the parallel one.
        type Iter: Iterator<Item = Self::Item>;
        /// Sequential stand-in for `rayon`'s `into_par_iter`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = std::ops::Range<usize>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    /// `par_iter_mut`/`par_chunks_mut` over mutable slices (sequential).
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `rayon`'s parallel iterator.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for `rayon`'s parallel chunk iterator.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

/// Sequential stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}
