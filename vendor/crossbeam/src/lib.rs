//! std-backed drop-in for the subset of crossbeam this workspace uses:
//! MPMC channels with disconnection semantics, `recv_timeout` and
//! `is_empty`. Used because the build environment cannot reach
//! crates.io (see `[patch.crates-io]` in the root `Cargo.toml`).
//!
//! Channels are unbounded internally; `bounded(n)` returns the same
//! structure (the workspace only uses `bounded(1)` for single-reply
//! mailboxes, where an unbounded queue is behaviourally identical).

/// MPMC channels with crossbeam's API shape.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        cv: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half of a channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// Receiving half of a channel.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam: Debug without a `T: Debug` bound.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    /// Creates a channel with the crossbeam `bounded` signature. The
    /// stand-in does not enforce the capacity (see module docs).
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers.
                self.0.cv.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.0.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver gone: discard queued messages, matching
                // real crossbeam. Their destructors run now, so e.g. a
                // reply `Sender` buried in an unserved request
                // disconnects its client instead of idling forever.
                self.0
                    .queue
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clear();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            q.push_back(value);
            drop(q);
            self.0.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.0.cv.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .0
                    .cv
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        }

        /// Pops a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = q.pop_front() {
                Ok(v)
            } else if self.0.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// True when no message is currently queued.
        pub fn is_empty(&self) -> bool {
            self.0
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
        }

        /// Number of currently queued messages.
        pub fn len(&self) -> usize {
            self.0.queue.lock().unwrap_or_else(PoisonError::into_inner).len()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7usize).unwrap();
            assert!(!rx.is_empty());
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn recv_fails_when_senders_gone() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_when_receivers_gone() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(3).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
        }

        #[test]
        fn dropping_last_receiver_discards_queued_messages() {
            let (tx, rx) = unbounded();
            let (inner_tx, inner_rx) = unbounded::<u8>();
            tx.send(inner_tx).unwrap();
            drop(rx);
            // The queued message (holding `inner_tx`) must have been
            // destroyed, so the inner channel reads as disconnected.
            assert_eq!(inner_rx.recv(), Err(RecvError));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
