//! Cross-crate integration of the serving subsystem: checkpoint →
//! registry → worker pool → client, plus the exactly-once property of
//! the dynamic batcher under randomized schedules (real threads *and*
//! the virtual-time simulator).

use proptest::prelude::*;
use scidl_core::checkpoint::Checkpoint;
use scidl_serve::queue::{BatchPolicy, BatchQueue};
use scidl_serve::sim::{simulate, ServiceModel, SimConfig};
use scidl_serve::{HepRequestSource, ModelRegistry, PoissonArrivals, Server, ServerConfig, ServingModel};
use scidl_tensor::TensorRng;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// End-to-end: train-side checkpoint, verified load, batched serving of
/// real HEP samples, answers bit-identical to direct inference.
#[test]
fn checkpoint_to_client_end_to_end() {
    let mut rng = TensorRng::new(61);
    let trained = scidl_nn::arch::hep_small(&mut rng);
    let mut path = std::env::temp_dir();
    path.push(format!("scidl_it_serving_{}.ckpt", std::process::id()));
    Checkpoint::capture(&trained, 500, 61).save(&path).unwrap();

    let mut arch_rng = TensorRng::new(0);
    let model = ServingModel::load(&path, scidl_nn::arch::hep_small(&mut arch_rng)).unwrap();
    std::fs::remove_file(&path).ok();
    let registry = Arc::new(ModelRegistry::new(model));

    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 2,
            queue_capacity: 32,
            policy: BatchPolicy::dynamic(4, Duration::from_millis(5)),
            ..Default::default()
        },
    );
    let client = server.client();

    let mut source = HepRequestSource::new(scidl_data::HepConfig::small(), 16, 9);
    let inputs: Vec<_> = (0..12).map(|_| source.next_request()).collect();
    let rxs: Vec<_> = inputs.iter().map(|x| client.submit(x.clone()).unwrap()).collect();
    for (x, rx) in inputs.iter().zip(rxs) {
        let got = rx.recv().unwrap().expect("healthy pool answers every request");
        let want = registry.current().network.infer(x);
        assert_eq!(got.logits, want.item(0), "served logits must be bit-identical");
        assert_eq!(got.model_iteration, 500);
    }
    let recorder = server.shutdown();
    assert_eq!(recorder.len(), 12);
    assert!(recorder.total_summary().unwrap().p99 >= recorder.total_summary().unwrap().p50);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite guarantee, real threads: across random arrival bursts,
    /// batch sizes, deadlines, capacities and worker counts — with
    /// queue-full backpressure in play — every *accepted* request is
    /// served exactly once (no drops, no duplicates) and every rejected
    /// request is handed back at submission.
    #[test]
    fn batch_queue_serves_accepted_requests_exactly_once(
        n in 1usize..60,
        capacity in 1usize..12,
        max_batch in 1usize..9,
        delay_us in 0u64..3000,
        consumers in 1usize..4,
        gap_us in 0u64..300,
    ) {
        let queue = Arc::new(BatchQueue::new(capacity));
        let policy = BatchPolicy::dynamic(max_batch, Duration::from_micros(delay_us));
        let handles: Vec<_> = (0..consumers)
            .map(|_| {
                let q = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    while let Some(batch) = q.pop_batch(&policy) {
                        assert!(batch.len() <= max_batch, "over-full batch");
                        seen.extend(batch.into_iter().map(|(id, _wait)| id));
                    }
                    seen
                })
            })
            .collect();

        let mut accepted = HashSet::new();
        let mut rejected = HashSet::new();
        for id in 0..n {
            match queue.submit(id) {
                Ok(()) => accepted.insert(id),
                Err(e) => {
                    prop_assert!(
                        matches!(e, scidl_serve::SubmitError::Full { .. }),
                        "pre-close rejections must be Full"
                    );
                    prop_assert_eq!(e.into_item(), id, "rejection must hand the request back");
                    rejected.insert(id)
                }
            };
            if gap_us > 0 && id % 7 == 0 {
                std::thread::sleep(Duration::from_micros(gap_us));
            }
        }
        queue.close();

        let mut served = Vec::new();
        for h in handles {
            served.extend(h.join().expect("consumer panicked"));
        }
        prop_assert_eq!(served.len(), accepted.len(), "no drops, no duplicates");
        let unique: HashSet<_> = served.iter().copied().collect();
        prop_assert_eq!(unique.len(), served.len(), "duplicate service");
        prop_assert_eq!(&unique, &accepted, "served set must equal accepted set");
        prop_assert_eq!(accepted.len() + rejected.len(), n);
    }

    /// Same guarantee on the virtual-time simulator across random
    /// Poisson schedules and policies: served + rejected ids partition
    /// the arrivals exactly.
    #[test]
    fn simulator_partitions_arrivals_exactly_once(
        seed in 0u64..1000,
        n in 1usize..300,
        rate in 20.0f64..3000.0,
        max_batch in 1usize..40,
        delay_ms in 0u64..40,
        capacity in 1usize..64,
        workers in 1usize..4,
    ) {
        let model = ServiceModel::hep();
        let arrivals: Vec<f64> = PoissonArrivals::new(seed, rate, n).collect();
        let cfg = SimConfig::new(
            workers,
            capacity,
            BatchPolicy::dynamic(max_batch, Duration::from_millis(delay_ms)),
        );
        let out = simulate(&model, &arrivals, &cfg);
        let mut all: Vec<usize> = out.served_ids.iter().chain(&out.rejected_ids).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        prop_assert_eq!(out.completed + out.rejected, n);
        prop_assert_eq!(out.recorder.len(), out.completed);
        prop_assert!(out.batch_sizes.iter().all(|&b| b >= 1 && b <= max_batch));
        prop_assert_eq!(out.batch_sizes.iter().sum::<usize>(), out.completed);
    }
}
