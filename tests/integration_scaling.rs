//! Cross-crate integration: the cluster simulator driven by workloads
//! built from the real networks must reproduce the paper's scaling
//! *shapes* (Figs. 6-7) and calibration anchors (Fig. 5 headline rates).

use scidl_cluster::KnlModel;
use scidl_core::experiments::{full_system, strong_scaling, weak_scaling};
use scidl_core::workloads::{climate_workload, hep_workload};

/// Fig. 6a shape: synchronous strong scaling saturates past 256 nodes
/// while hybrid-4 keeps scaling and wins at 1024.
#[test]
fn hep_strong_scaling_shape_matches_fig6a() {
    let rows = strong_scaling(&hep_workload(), &[256, 1024], &[1, 4], 2048, 12, 77);
    let get = |n: usize, g: usize| rows.iter().find(|r| r.nodes == n && r.groups == g).unwrap().speedup;

    let sync_256 = get(256, 1);
    let sync_1024 = get(1024, 1);
    let hybrid_1024 = get(1024, 4);

    // Sync saturates: 4x more nodes buys less than 2x (under 50% of the
    // ideal return; the paper shows essentially zero return past 256).
    assert!(
        sync_1024 < sync_256 * 2.0,
        "sync should saturate: {sync_256} -> {sync_1024}"
    );
    // Hybrid-4 wins clearly at 1024 (paper: ~580 vs ~220).
    assert!(
        hybrid_1024 > sync_1024 * 1.5,
        "hybrid-4 ({hybrid_1024}) must beat sync ({sync_1024}) at 1024 nodes"
    );
}

/// Fig. 7 shape: HEP weak scaling is sublinear with *sync above hybrid*
/// (PS exchange is jitter-exposed on short iterations); climate is
/// near-linear with hybrid at least on par.
#[test]
fn weak_scaling_shapes_match_fig7() {
    let hep = weak_scaling(&hep_workload(), &[2048], &[1, 8], 8, 15, 99);
    let h_sync = hep.iter().find(|r| r.groups == 1).unwrap().speedup;
    let h_hyb8 = hep.iter().find(|r| r.groups == 8).unwrap().speedup;
    assert!(h_sync < 1900.0, "HEP weak scaling must be sublinear: {h_sync}");
    assert!(h_sync > 1000.0, "HEP weak scaling too pessimistic: {h_sync}");
    assert!(
        h_hyb8 < h_sync,
        "paper: HEP hybrid weak scaling ({h_hyb8}) below sync ({h_sync})"
    );

    let cli = weak_scaling(&climate_workload(), &[2048], &[1, 8], 8, 8, 99);
    let c_sync = cli.iter().find(|r| r.groups == 1).unwrap().speedup;
    let c_hyb8 = cli.iter().find(|r| r.groups == 8).unwrap().speedup;
    assert!(c_sync > 1600.0, "climate weak scaling should be near-linear: {c_sync}");
    assert!(
        c_hyb8 > c_sync * 0.97,
        "paper: climate hybrid ({c_hyb8}) at least on par with sync ({c_sync})"
    );
}

/// Fig. 5 anchors: single-node rates at batch 8 within 15% of the paper.
#[test]
fn single_node_rates_are_calibrated() {
    let knl = KnlModel::default();
    let hep = hep_workload().single_node_rate(&knl, 8);
    assert!((hep / 1.90e12 - 1.0).abs() < 0.15, "HEP rate {hep:.3e}");
    let cli = climate_workload().single_node_rate(&knl, 8);
    assert!((cli / 2.09e12 - 1.0).abs() < 0.15, "climate rate {cli:.3e}");
}

/// Sec. VI-B3 shape: at the paper's full-system configurations the
/// climate workload out-runs HEP in absolute PFLOP/s, both show peak >=
/// sustained, and speedups over one node are in the thousands.
#[test]
fn full_system_shape_matches_vib3() {
    let hep = full_system(&hep_workload(), 9594, 9, 1066, 15, 0, 4);
    let cli = full_system(&climate_workload(), 9608, 8, 9608, 10, 10, 4);

    assert!(cli.peak_pflops > hep.peak_pflops, "climate must out-run HEP");
    assert!(hep.peak_pflops >= hep.sustained_pflops * 0.95);
    assert!(cli.peak_pflops >= cli.sustained_pflops);
    assert!(hep.speedup_vs_single > 500.0, "HEP speedup {}", hep.speedup_vs_single);
    assert!(cli.speedup_vs_single > 4000.0, "climate speedup {}", cli.speedup_vs_single);
    // Climate lands in the paper's PF regime.
    assert!(
        (8.0..25.0).contains(&cli.peak_pflops),
        "climate peak {} PF",
        cli.peak_pflops
    );
}

/// Checkpointing every 10 iterations (the climate configuration) costs
/// sustained throughput, as in the paper's sustained-vs-peak gap.
#[test]
fn checkpointing_costs_sustained_throughput() {
    let w = climate_workload();
    let with = full_system(&w, 512, 4, 512, 12, 2, 8);
    let without = full_system(&w, 512, 4, 512, 12, 0, 8);
    assert!(
        with.sustained_pflops < without.sustained_pflops,
        "checkpointing should cost: {} vs {}",
        with.sustained_pflops,
        without.sustained_pflops
    );
}
