//! Serving-tier resilience under chaos — the acceptance criterion of the
//! serving resilience work: one declarative `FaultPlan` (worker crash +
//! straggling worker + corrupt hot-swap) drives BOTH the threaded server
//! and the virtual-time simulator, and in both the run completes with no
//! deadlock, no lost reply channels (every request gets exactly one
//! terminal outcome), the corrupt checkpoint rejected while the previous
//! model keeps serving (breaker span emitted), and bounded p99.
//!
//! Plus the exactly-once property under chaos, proptested across random
//! plans, loads and policies in both backends.

use proptest::prelude::*;
use scidl_cluster::faults::FaultPlan;
use scidl_core::checkpoint::Checkpoint;
use scidl_core::faults::serving_chaos;
use scidl_serve::queue::BatchPolicy;
use scidl_serve::sim::{simulate, ServiceModel, SimConfig};
use scidl_serve::{
    ModelRegistry, PoissonArrivals, ServeError, Server, ServerConfig, ServingModel,
    SupervisorConfig, SwapError,
};
use scidl_tensor::{Shape4, Tensor, TensorRng};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Serialises tests that install the process-global trace sink.
fn trace_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn fresh_sink() -> Arc<scidl_trace::TraceSink> {
    scidl_trace::uninstall();
    let sink = Arc::new(scidl_trace::TraceSink::new());
    scidl_trace::install(Arc::clone(&sink));
    sink
}

fn probe(seed: u64) -> Tensor {
    let mut rng = TensorRng::new(seed);
    rng.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0)
}

/// The acceptance run: `scidl_core::faults::serving_chaos()` — crash
/// worker 0 mid-batch, 3× straggler window on worker 1, corrupt swap
/// attempt 0 — against real threads, then the virtual-time sim.
#[test]
fn one_fault_plan_drives_threaded_server_and_sim_through_chaos() {
    let _g = trace_lock();
    let plan = serving_chaos();

    // ---------------- threaded half ----------------
    let sink = fresh_sink();
    let mut rng = TensorRng::new(71);
    let trained = scidl_nn::arch::hep_small(&mut rng);
    let mut ckpt = std::env::temp_dir();
    ckpt.push(format!("scidl_it_chaos_{}.ckpt", std::process::id()));
    Checkpoint::capture(&trained, 900, 71).save(&ckpt).unwrap();

    let mut rng0 = TensorRng::new(72);
    let registry = Arc::new(
        ModelRegistry::new(ServingModel::new(scidl_nn::arch::hep_small(&mut rng0), 1, 0))
            .with_breaker_threshold(1)
            .with_faults(plan.clone()),
    );
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            policy: BatchPolicy::dynamic(4, Duration::from_millis(2)),
            faults: plan.clone(),
            ..Default::default()
        },
    );

    // Concurrent producers with deadlines, enough traffic for the
    // injected crash (worker 0, after 3 batches) to fire mid-run.
    let mut producers = Vec::new();
    for p in 0..4u64 {
        let client = server.client();
        producers.push(std::thread::spawn(move || {
            let mut outcomes = Vec::new();
            for i in 0..12u64 {
                outcomes.push(
                    client.infer_with_deadline(probe(100 + p * 64 + i), Some(Duration::from_millis(500))),
                );
            }
            outcomes
        }));
    }

    // Mid-run hot-swap: attempt 0 is corrupt per the plan — rejected,
    // previous model keeps serving; with threshold 1 the breaker opens.
    let mut arch_rng = TensorRng::new(73);
    let err = registry
        .load_and_swap_guarded(
            &ckpt,
            scidl_nn::arch::hep_small(&mut arch_rng),
            &probe(7),
            Some(&trained),
        )
        .unwrap_err();
    assert!(matches!(err, SwapError::Load(_)), "corrupt checkpoint must be rejected: {err}");
    assert_eq!(registry.current().iteration, 1, "previous model keeps serving");
    assert!(registry.breaker_open());

    // Operator resets; the (healthy) checkpoint then publishes.
    registry.reset_breaker();
    let mut arch_rng2 = TensorRng::new(74);
    registry
        .load_and_swap_guarded(
            &ckpt,
            scidl_nn::arch::hep_small(&mut arch_rng2),
            &probe(7),
            Some(&trained),
        )
        .expect("healthy checkpoint publishes after reset");
    std::fs::remove_file(&ckpt).ok();
    assert_eq!(registry.current().iteration, 900);

    // Every request resolved with exactly one terminal outcome — the
    // joins completing is the no-deadlock/no-lost-reply-channel proof.
    let mut ok = 0u64;
    let mut typed_sheds = 0u64;
    for h in producers {
        for outcome in h.join().expect("producer panicked") {
            match outcome {
                Ok(r) => {
                    assert!(r.logits.iter().all(|v| v.is_finite()), "corrupted response");
                    assert_eq!(r.logits.len(), scidl_nn::arch::HEP_CLASSES);
                    ok += 1;
                }
                Err(
                    ServeError::Shed { .. }
                    | ServeError::DeadlineExceeded
                    | ServeError::WorkerLost
                    | ServeError::Closed,
                ) => typed_sheds += 1,
                Err(e) => panic!("non-terminal outcome {e}"),
            }
        }
    }
    assert_eq!(ok + typed_sheds, 48);

    let (recorder, report) = server.shutdown_with_report();
    scidl_trace::uninstall();
    assert_eq!(report.served, ok, "every served request reached its client");
    assert_eq!(recorder.len() as u64, ok);
    assert!(report.panics >= 1, "the injected crash must fire: {report:?}");
    assert!(report.respawns >= 1, "the crashed slot must respawn: {report:?}");
    // Bounded p99: the 500 ms deadline caps queue wait, compute is a few
    // ms even under the 3× straggler.
    let p99 = recorder.total_summary().expect("some requests served").p99;
    assert!(p99 < 2.0, "p99 must stay bounded under chaos, got {p99}s");

    // Resilience spans all present: shed/respawn from the pool,
    // swap-reject + breaker transitions from the registry.
    let names: Vec<&str> = sink.events().iter().map(|e| e.kind.name()).collect();
    for want in ["worker_respawn", "swap_reject", "breaker"] {
        assert!(names.contains(&want), "missing {want} span; got {names:?}");
    }

    // ---------------- sim half, same plan ----------------
    let model = ServiceModel::hep();
    let arrivals: Vec<f64> = PoissonArrivals::new(9, 1.5 * model.saturated_rate(8), 400).collect();
    let mut cfg = SimConfig::new(2, 64, BatchPolicy::dynamic(8, Duration::from_millis(5)));
    cfg.faults = plan.clone();
    cfg.deadline_secs = Some(0.5);
    cfg.swap_schedule = vec![0.05, 0.1];
    cfg.breaker_threshold = 1;
    let out = simulate(&model, &arrivals, &cfg);
    assert_eq!(out.crashes, 1, "the same crash event fires in virtual time");
    assert_eq!(out.offered(), 400, "exactly-once accounting under chaos");
    assert_eq!(out.recorder.len(), out.completed);
    assert!(out.breaker_opened, "threshold 1 opens the sim breaker");
    // Attempt 0 is corrupt (rejected), and with no operator reset in
    // virtual time the open breaker fail-fasts the second scheduled swap
    // without consuming an ordinal: nothing publishes.
    assert_eq!(out.swap_rejects, 2);
    assert_eq!(out.swap_attempts, 1, "fail-fast must not consume a swap ordinal");
    assert_eq!(out.swap_published, 0);
    let p99 = out.recorder.total_summary().expect("sim served requests").p99;
    let bound = 0.5 + 3.0 * model.batch_secs(8) + 1e-9;
    assert!(p99 <= bound, "sim p99 {p99}s must stay under deadline+straggler bound {bound}s");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Exactly-once under chaos, real threads: concurrent producers,
    /// random crash/straggler plans, deadlines, watermark shedding and a
    /// racing shutdown — every submitted request gets exactly one
    /// terminal outcome (reply, typed shed, or worker-lost), and the
    /// test completing at all proves no reply channel was stranded.
    #[test]
    fn threaded_chaos_yields_one_terminal_outcome_per_request(
        producers in 1usize..4,
        per_producer in 1usize..10,
        crash_after in 0u64..4,
        max_batch in 1usize..5,
        deadline_ms in 5u64..80,
        watermark in 2usize..16,
        shutdown_early in any::<bool>(),
    ) {
        let plan = FaultPlan::none()
            .with_worker_crash(0, crash_after, 0.0)
            .with_slow_worker(1, 0, 2, 2.0);
        let mut rng = TensorRng::new(81);
        let registry = Arc::new(ModelRegistry::new(ServingModel::new(
            scidl_nn::arch::hep_small(&mut rng), 1, 0,
        )));
        let server = Server::start(registry, ServerConfig {
            workers: 2,
            queue_capacity: 32,
            shed_watermark: Some(watermark),
            policy: BatchPolicy::dynamic(max_batch, Duration::from_millis(1)),
            faults: plan,
            supervisor: SupervisorConfig { max_requeues: 1, ..Default::default() },
        });

        let total = producers * per_producer;
        let mut handles = Vec::new();
        for p in 0..producers as u64 {
            let client = server.client();
            let per = per_producer as u64;
            handles.push(std::thread::spawn(move || {
                let mut outcomes = Vec::new();
                for i in 0..per {
                    outcomes.push(client.infer_with_deadline(
                        probe(500 + p * 128 + i),
                        Some(Duration::from_millis(deadline_ms)),
                    ));
                }
                outcomes
            }));
        }
        if shutdown_early {
            // Race shutdown against live producers: close-side rejections
            // must be typed, never hangs.
            std::thread::sleep(Duration::from_millis(deadline_ms / 2));
        } else {
            // Let the traffic drain first.
            for _ in 0..50 {
                if server.queue_depth() == 0 { break; }
                std::thread::sleep(Duration::from_millis(2));
            }
        }

        let mut ok = 0u64;
        let mut shed = 0u64;
        for h in handles {
            for outcome in h.join().expect("producer panicked") {
                match outcome {
                    Ok(r) => {
                        prop_assert!(r.logits.iter().all(|v| v.is_finite()));
                        ok += 1;
                    }
                    Err(
                        ServeError::Shed { .. }
                        | ServeError::DeadlineExceeded
                        | ServeError::WorkerLost
                        | ServeError::Closed,
                    ) => shed += 1,
                    Err(e) => prop_assert!(false, "non-terminal outcome {}", e),
                }
            }
        }
        prop_assert_eq!(ok + shed, total as u64, "exactly one outcome per request");

        let (recorder, report) = server.shutdown_with_report();
        prop_assert_eq!(report.served, ok, "served counter == delivered replies");
        prop_assert_eq!(recorder.len() as u64, ok);
    }

    /// Exactly-once under chaos, virtual time: across random plans,
    /// loads, deadlines and watermarks, served + rejected + expired +
    /// lost ids partition the arrivals exactly, and the outcome is
    /// bit-reproducible.
    #[test]
    fn sim_chaos_partitions_arrivals_exactly_once(
        seed in 0u64..500,
        n in 1usize..250,
        rate in 50.0f64..3000.0,
        max_batch in 1usize..32,
        delay_ms in 0u64..20,
        capacity in 1usize..64,
        workers in 1usize..4,
        crash_slot in 0usize..4,
        crash_after in 0u64..6,
        respawn_ms in 0u64..100,
        slow_factor in 1.0f64..8.0,
        deadline_ms in 1u64..200,
        max_requeues in 0u32..3,
    ) {
        let model = ServiceModel::hep();
        let arrivals: Vec<f64> = PoissonArrivals::new(seed, rate, n).collect();
        let mut cfg = SimConfig::new(
            workers,
            capacity,
            BatchPolicy::dynamic(max_batch, Duration::from_millis(delay_ms)),
        );
        cfg.faults = FaultPlan::none()
            .with_worker_crash(crash_slot % workers, crash_after, respawn_ms as f64 * 1e-3)
            .with_slow_worker(crash_slot % workers, 1, 4, slow_factor);
        cfg.deadline_secs = Some(deadline_ms as f64 * 1e-3);
        cfg.shed_watermark = Some(capacity.div_ceil(2));
        cfg.max_requeues = max_requeues;
        let out = simulate(&model, &arrivals, &cfg);

        let mut all: Vec<usize> = out
            .served_ids.iter()
            .chain(&out.rejected_ids)
            .chain(&out.expired_ids)
            .chain(&out.lost_ids)
            .copied()
            .collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>(), "ids must partition the arrivals");
        prop_assert_eq!(out.offered(), n);
        prop_assert_eq!(out.recorder.len(), out.completed);
        prop_assert!(out.batch_sizes.iter().all(|&b| b >= 1 && b <= max_batch));
        prop_assert_eq!(out.batch_sizes.iter().sum::<usize>(), out.completed);

        let again = simulate(&model, &arrivals, &cfg);
        prop_assert_eq!(out.served_ids, again.served_ids, "chaos must be deterministic");
        prop_assert_eq!(out.lost_ids, again.lost_ids);
        prop_assert_eq!(out.makespan.to_bits(), again.makespan.to_bits());
    }
}
