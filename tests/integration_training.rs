//! Cross-crate integration: data generation → nn training → engine
//! correctness. These tests exercise the stack end-to-end the way the
//! examples do, with assertions.

use scidl_core::sim_engine::{SimEngine, SimEngineConfig, SolverKind};
use scidl_core::thread_engine::{ThreadEngine, ThreadEngineConfig};
use scidl_core::workloads::hep_workload;
use scidl_data::{HepConfig, HepDataset};
use scidl_nn::network::Model;
use scidl_tensor::TensorRng;
use std::sync::Arc;

/// The thread engine (real concurrency) and the sim engine (simulated
/// time) must produce identical parameters for the synchronous,
/// single-node, jitter-free configuration — both are then plain SGD.
#[test]
fn thread_and_sim_engines_agree_on_synchronous_sgd() {
    let seed = 0xA9;
    let events = 64;
    let batch = 8;
    let iterations = 6;
    let lr = 1e-3;
    let momentum = 0.9;

    let ds = HepDataset::generate(HepConfig::small(), events, seed);

    // Thread engine.
    let ds_arc = Arc::new(HepDataset::generate(HepConfig::small(), events, seed));
    let mut tcfg = ThreadEngineConfig::new(1, 1, batch);
    tcfg.iterations = iterations;
    tcfg.lr = lr;
    tcfg.momentum = momentum;
    tcfg.seed = seed;
    let trun = ThreadEngine::run(&tcfg, ds_arc);

    // Sim engine with the same sampling stream and solver.
    let mut scfg = SimEngineConfig::fig8(1, 1, batch, hep_workload());
    scfg.iterations = iterations;
    scfg.lr = lr;
    scfg.solver = SolverKind::Sgd { momentum };
    scfg.seed = seed;
    let mut rng = TensorRng::new(seed);
    let mut model = scidl_nn::arch::hep_small(&mut rng);
    let srun = SimEngine::run(&scfg, &mut model, &ds);

    assert_eq!(trun.final_params.len(), srun.final_params.len());
    let max_err = trun
        .final_params
        .iter()
        .zip(&srun.final_params)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(max_err < 1e-5, "engines disagree by {max_err}");
}

/// The tentpole differential check, end to end: a 4-rank overlapped run
/// (`overlap_comm`, gradients bucketed and ring-reduced on comm threads
/// while backward continues) must be **bit-identical** to a hand-rolled
/// sequential reference that uses the same bucket plan and the same
/// bucketed ring reduction — same per-rank sampling streams, same
/// per-block solvers. The `scidl-comm` proptests prove overlapped ==
/// sequential per bucket; this pins the whole training loop on top.
#[test]
fn overlapped_training_is_bit_identical_to_sequential_bucketed_reference() {
    use scidl_comm::{bucketed_allreduce_mean, BucketPlan, RingFabric, RingScratch};
    use scidl_core::task::hep_gradient;
    use scidl_data::BatchSampler;
    use scidl_nn::{Sgd, Solver};

    let (nodes, batch, iterations) = (4usize, 8usize, 6usize);
    let ds = Arc::new(HepDataset::generate(HepConfig::small(), 64, 23));
    let mut cfg = ThreadEngineConfig::new(1, nodes, batch);
    cfg.iterations = iterations;
    cfg.momentum = 0.9;
    cfg.overlap_comm = true;
    cfg.bucket_bytes = 1024; // force several buckets per step
    let run = ThreadEngine::run(&cfg, Arc::clone(&ds));

    // Sequential reference: same model init, same per-rank samplers,
    // same bucket plan, gradients reduced by the sequential bucketed
    // ring (the baseline the overlapped schedule is proven equal to).
    let mut rng = TensorRng::new(cfg.seed);
    let mut model = scidl_nn::arch::hep_small(&mut rng);
    let block_sizes: Vec<usize> = model.param_blocks().iter().map(|b| b.len()).collect();
    let plan = BucketPlan::new(&block_sizes, cfg.bucket_bytes);
    let per_node = batch / nodes;
    let mut samplers: Vec<BatchSampler> = (0..nodes)
        .map(|r| BatchSampler::for_node(ds.len(), per_node, cfg.seed, r, nodes))
        .collect();
    let mut solvers: Vec<Sgd> = block_sizes.iter().map(|_| Sgd::new(cfg.lr, cfg.momentum)).collect();
    let mut flat = model.flat_params();
    for _ in 0..iterations {
        let mut grads: Vec<Vec<f32>> = Vec::with_capacity(nodes);
        for sampler in samplers.iter_mut() {
            model.set_flat_params(&flat);
            let idx = sampler.next_batch();
            grads.push(hep_gradient(&mut model, &ds, &idx).1);
        }
        let endpoints = RingFabric::new(nodes).into_endpoints();
        let mut reduced: Vec<Vec<f32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = endpoints
                .into_iter()
                .enumerate()
                .zip(grads)
                .map(|((rank, (tx, rx)), mut data)| {
                    let plan = &plan;
                    scope.spawn(move || {
                        let mut scratch = RingScratch::new();
                        bucketed_allreduce_mean(plan, rank, nodes, &mut data, &mut scratch, &tx, &rx)
                            .unwrap();
                        data
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let rank0 = reduced.remove(0);
        for other in &reduced {
            assert_eq!(&rank0, other, "ranks must agree bit-for-bit");
        }
        let mut off = 0;
        for (i, &len) in block_sizes.iter().enumerate() {
            solvers[i].step_block(0, &mut flat[off..off + len], &rank0[off..off + len]);
            off += len;
        }
    }

    assert_eq!(run.final_params.len(), flat.len());
    assert_eq!(
        run.final_params, flat,
        "overlapped engine must be bit-identical to the sequential bucketed reference"
    );
}

/// Training through the full stack reduces the loss on a separable task.
#[test]
fn end_to_end_training_learns() {
    let ds = Arc::new(HepDataset::generate(HepConfig::small(), 256, 5));
    let mut cfg = ThreadEngineConfig::new(2, 2, 16);
    cfg.iterations = 20;
    cfg.lr = 2e-3;
    cfg.momentum = 0.7;
    let run = ThreadEngine::run(&cfg, Arc::clone(&ds));

    let pts = &run.curve.points;
    let first: f32 = pts[..5].iter().map(|p| p.1).sum::<f32>() / 5.0;
    let last: f32 = pts[pts.len() - 5..].iter().map(|p| p.1).sum::<f32>() / 5.0;
    assert!(last < first, "loss should fall: {first} -> {last}");
    assert!(run.mean_staleness > 0.0, "two groups must interleave");
}

/// A trained model transfers between engines via flat parameters and
/// evaluates correctly on fresh data.
#[test]
fn flat_params_transfer_between_training_and_evaluation() {
    let ds = Arc::new(HepDataset::generate(HepConfig::small(), 128, 9));
    let mut cfg = ThreadEngineConfig::new(1, 2, 16);
    cfg.iterations = 12;
    cfg.lr = 3e-3;
    let run = ThreadEngine::run(&cfg, Arc::clone(&ds));

    let mut rng = TensorRng::new(cfg.seed);
    let mut model = scidl_nn::arch::hep_small(&mut rng);
    model.set_flat_params(&run.final_params);

    let test = HepDataset::generate(HepConfig::small(), 128, 10);
    let idx: Vec<usize> = (0..test.len()).collect();
    let acc = scidl_core::task::hep_accuracy(&mut model, &test, &idx);
    assert!((0.0..=1.0).contains(&acc));
    // A trained model should beat coin-flip on this separable synthetic
    // task most of the time; we assert weakly to avoid flakes.
    assert!(acc > 0.35, "accuracy suspiciously low: {acc}");
}

/// Sec. IX claims the hybrid results extend to ResNets: the generic
/// engine trains a residual network end to end.
#[test]
fn hybrid_engine_trains_resnet() {
    use scidl_nn::residual::resnet_small;
    let ds = HepDataset::generate(HepConfig::small(), 96, 41);
    let mut cfg = SimEngineConfig::fig8(8, 2, 16, hep_workload());
    cfg.iterations = 10;
    cfg.lr = 2e-3;
    let mut rng = TensorRng::new(41);
    let mut model = resnet_small(3, 2, &mut rng);
    let run = SimEngine::run(&cfg, &mut model, &ds);
    assert_eq!(run.updates, 20);
    assert!(run.mean_staleness > 0.0);
    assert!(run.final_params.iter().all(|p| p.is_finite()));
    let pts = &run.curve.points;
    let head: f32 = pts[..4].iter().map(|p| p.1).sum::<f32>() / 4.0;
    let tail: f32 = pts[pts.len() - 4..].iter().map(|p| p.1).sum::<f32>() / 4.0;
    assert!(tail < head * 1.1, "resnet loss should not blow up: {head} -> {tail}");
}

/// Sec. IX claims the hybrid results extend to LSTMs: the generic engine
/// trains a recurrent model through `run_with`, with sequences derived
/// deterministically from sample indices.
#[test]
fn hybrid_engine_trains_lstm() {
    use scidl_nn::Lstm;
    use scidl_tensor::{Shape4, Tensor};

    let mut rng = TensorRng::new(51);
    let mut lstm = Lstm::new("l", 1, 6, &mut rng);
    let mut cfg = SimEngineConfig::fig8(4, 2, 8, hep_workload());
    cfg.iterations = 12;
    cfg.lr = 5e-3;
    cfg.solver = SolverKind::Sgd { momentum: 0.5 };

    let t_steps = 5;
    let run = SimEngine::run_with(&cfg, &mut lstm, 64, |lstm, indices| {
        // Deterministic toy sequences from indices: predict the sign of
        // the sequence sum on hidden unit 0.
        let n = indices.len();
        let mut xs: Vec<Tensor> = Vec::with_capacity(t_steps);
        let mut sums = vec![0.0f32; n];
        let mut cols: Vec<Vec<f32>> = vec![vec![0.0; n]; t_steps];
        for (bi, &idx) in indices.iter().enumerate() {
            let mut srng = TensorRng::new(idx as u64 + 1000);
            for col in cols.iter_mut().take(t_steps) {
                let v: f32 = if srng.bernoulli(0.5) { 1.0 } else { -1.0 };
                col[bi] = v;
                sums[bi] += v;
            }
        }
        for col in cols {
            xs.push(Tensor::from_vec(Shape4::new(n, 1, 1, 1), col));
        }
        lstm.zero_grads();
        let hs = lstm.forward(&xs);
        let last = &hs[t_steps - 1];
        let mut loss = 0.0f32;
        let mut dh = Tensor::zeros(last.shape());
        for (bi, &s) in sums.iter().enumerate().take(n) {
            let target = if s > 0.0 { 0.5 } else { -0.5 };
            let pred = last.data()[bi * 6];
            let d = pred - target;
            loss += d * d / n as f32;
            dh.data_mut()[bi * 6] = 2.0 * d / n as f32;
        }
        let mut dhs: Vec<Tensor> = hs.iter().map(|h| Tensor::zeros(h.shape())).collect();
        dhs[t_steps - 1] = dh;
        lstm.backward(&dhs);
        (loss, lstm.flat_grads())
    });

    assert_eq!(run.updates, 24);
    assert!(run.mean_staleness > 0.0, "groups must interleave");
    assert!(run.final_params.iter().all(|p| p.is_finite()));
}

/// Gradient staleness grows with group count in the simulated engine.
#[test]
fn staleness_scales_with_group_count() {
    let ds = HepDataset::generate(HepConfig::small(), 128, 13);
    let mut staleness = Vec::new();
    for groups in [1usize, 2, 4] {
        let mut cfg = SimEngineConfig::fig8(16, groups, 32, hep_workload());
        cfg.iterations = 10;
        let mut rng = TensorRng::new(13);
        let mut model = scidl_nn::arch::hep_small(&mut rng);
        let run = SimEngine::run(&cfg, &mut model, &ds);
        staleness.push(run.mean_staleness);
    }
    assert_eq!(staleness[0], 0.0);
    assert!(staleness[1] > 0.0);
    assert!(staleness[2] > staleness[1]);
}
