//! Fleet-tier acceptance: the same seed and `FaultPlan` (global worker
//! indices) drive BOTH the threaded `Router` and the virtual-time fleet
//! simulator, proving:
//!
//! * exactly-once terminal outcomes fleet-wide under replica-crash
//!   chaos — a replica that loses its pool is retired and its work
//!   rerouted to a sibling, never dropped or answered twice,
//! * a canary rollback on an injected SLO regression leaves the old
//!   model serving (and charges the registry's circuit breaker),
//! * the autoscaler converges the replica count within its configured
//!   band,
//! * a seeded fleet simulation replays bit-identically.

use scidl_cluster::faults::FaultPlan;
use scidl_serve::fleet::{
    simulate_fleet, AutoscalerConfig, CanaryConfig, CanaryDecision, DispatchPolicy, FleetConfig,
    FleetSimConfig, SimAutoscaler, SimCanary,
};
use scidl_serve::queue::BatchPolicy;
use scidl_serve::sim::{ServiceModel, SimConfig};
use scidl_serve::{
    ModelRegistry, PoissonArrivals, ServeError, ServerConfig, ServingModel, SupervisorConfig,
};
use scidl_tensor::{Shape4, Tensor, TensorRng};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 4242;

fn probe(seed: u64) -> Tensor {
    let mut rng = TensorRng::new(seed);
    rng.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0)
}

fn registry(seed: u64, iteration: u64) -> Arc<ModelRegistry> {
    let mut rng = TensorRng::new(seed);
    Arc::new(ModelRegistry::new(ServingModel::new(
        scidl_nn::arch::hep_small(&mut rng),
        iteration,
        seed,
    )))
}

/// The shared chaos plan: replica 0's only worker (global worker 0)
/// crashes after its first batch and effectively never respawns — a
/// replica loss.
fn replica_loss_plan() -> FaultPlan {
    FaultPlan::none().with_worker_crash(0, 1, 1e6)
}

/// Replica-crash chaos against real threads: one-worker replicas with a
/// zero-respawn supervisor turn the injected crash into a pool loss;
/// the router must retire the dead replica, reroute its in-flight work,
/// and still deliver exactly one terminal outcome per request.
#[test]
fn threaded_router_survives_replica_loss_with_exactly_once_outcomes() {
    let plan = replica_loss_plan();
    let reg = registry(31, 1);
    let template = ServerConfig {
        workers: 1,
        queue_capacity: 64,
        policy: BatchPolicy::dynamic(4, Duration::from_millis(2)),
        // No respawns: the crashed worker's death is the replica's death.
        supervisor: SupervisorConfig { max_respawns: 0, ..Default::default() },
        ..Default::default()
    };
    let mut cfg = FleetConfig::new(2, template, DispatchPolicy::RoundRobin);
    cfg.seed = SEED;
    cfg.reroute_budget = 2;
    cfg.faults = plan;
    let router = Arc::new(scidl_serve::Router::start(Arc::clone(&reg), cfg));

    let mut producers = Vec::new();
    for p in 0..4u64 {
        let router = Arc::clone(&router);
        producers.push(std::thread::spawn(move || {
            let mut outcomes = Vec::new();
            for i in 0..12u64 {
                outcomes.push(router.infer_with_priority(
                    probe(200 + p * 64 + i),
                    scidl_serve::Priority::Standard,
                    Some(Duration::from_millis(500)),
                ));
            }
            outcomes
        }));
    }

    let mut ok = 0u64;
    let mut typed = 0u64;
    for h in producers {
        for outcome in h.join().expect("producer panicked") {
            match outcome {
                Ok(r) => {
                    assert!(r.logits.iter().all(|v| v.is_finite()));
                    assert_eq!(r.model_iteration, 1);
                    ok += 1;
                }
                Err(
                    ServeError::Shed { .. }
                    | ServeError::DeadlineExceeded
                    | ServeError::WorkerLost
                    | ServeError::Closed,
                ) => typed += 1,
                Err(e) => panic!("non-terminal outcome {e}"),
            }
        }
    }
    // Exactly-once fleet-wide: the joins completing proves no reply
    // channel was stranded, and every request has one terminal outcome.
    assert_eq!(ok + typed, 48);

    let router = Arc::try_unwrap(router).ok().expect("producers joined");
    let (recorder, report) = router.shutdown_with_report();
    assert_eq!(report.routed, ok, "router routed-counter == delivered replies");
    assert_eq!(recorder.len() as u64, ok, "one latency sample per served request");
    assert!(
        report.servers.panics >= 1,
        "the injected crash must fire: {report:?}"
    );
    assert!(
        report.final_replicas <= 2,
        "the dead replica must not outlive its pool"
    );
    assert!(ok >= 1, "the surviving replica must keep serving");
}

/// The same plan in virtual time: the crash orphans replica 0's queue,
/// every orphan reroutes to replica 1 (same global-index plan, same
/// seed), the terminal categories partition the arrivals exactly, and
/// the whole run replays bit-identically.
#[test]
fn fleet_sim_same_plan_reroutes_and_replays_bit_identically() {
    let model = ServiceModel::hep();
    let mut base = SimConfig::new(1, 64, BatchPolicy::dynamic(4, Duration::from_millis(2)));
    base.faults = replica_loss_plan();
    base.max_requeues = 0;
    base.deadline_secs = Some(0.5);
    let mut cfg = FleetSimConfig::new(2, base, DispatchPolicy::RoundRobin);
    cfg.seed = SEED;
    cfg.reroute_budget = 2;
    let arrivals: Vec<f64> = PoissonArrivals::new(SEED, 400.0, 300).collect();

    let out = simulate_fleet(&model, &arrivals, &cfg);
    assert_eq!(out.crashes, 1, "the shared plan's crash fires in virtual time");
    assert!(out.rerouted >= 1, "orphans must cross to the surviving replica");
    assert_eq!(out.final_replicas, 2, "the sim replica keeps its (dead) slot");
    let mut all: Vec<usize> = out
        .served_ids
        .iter()
        .chain(&out.rejected_ids)
        .chain(&out.expired_ids)
        .chain(&out.lost_ids)
        .copied()
        .collect();
    all.sort_unstable();
    assert_eq!(
        all,
        (0..arrivals.len()).collect::<Vec<_>>(),
        "terminal outcomes must partition the arrivals exactly once"
    );
    assert_eq!(out.offered(), arrivals.len());

    let again = simulate_fleet(&model, &arrivals, &cfg);
    assert_eq!(out.served_ids, again.served_ids, "seeded replay must be bit-identical");
    assert_eq!(out.lost_ids, again.lost_ids);
    assert_eq!(out.batch_sizes, again.batch_sizes);
    assert_eq!(out.makespan.to_bits(), again.makespan.to_bits());
    assert_eq!(out.p99().to_bits(), again.p99().to_bits());
    assert_eq!(out.replica_seconds.to_bits(), again.replica_seconds.to_bits());
}

/// Threaded canary rollback: the candidate replica carries a 30×
/// straggler plan (the injected SLO regression); the decision must be a
/// rollback that leaves the old model serving and charges the breaker.
#[test]
fn threaded_canary_rolls_back_slo_regression_and_old_model_keeps_serving() {
    let reg = registry(32, 1);
    let template = ServerConfig {
        workers: 1,
        queue_capacity: 64,
        policy: BatchPolicy::dynamic(4, Duration::from_millis(1)),
        ..Default::default()
    };
    let mut cfg = FleetConfig::new(2, template, DispatchPolicy::LeastLoaded);
    cfg.seed = SEED;
    let router = scidl_serve::Router::start(Arc::clone(&reg), cfg);

    let mut rng = TensorRng::new(33);
    let candidate = ServingModel::new(scidl_nn::arch::hep_small(&mut rng), 777, 33);
    let ccfg = CanaryConfig { fraction: 0.5, regression_tol: 0.5, min_samples: 5 };
    let slow = FaultPlan::none().with_slow_worker(0, 0, u64::MAX, 30.0);
    router.begin_canary(candidate, ccfg, slow).expect("canary must start");

    let mut decision = CanaryDecision::Pending;
    for i in 0..300u64 {
        router.infer(probe(400 + i)).expect("infer must succeed");
        decision = router.resolve_canary();
        if decision != CanaryDecision::Pending {
            break;
        }
    }
    assert_eq!(decision, CanaryDecision::RolledBack, "the regression must roll back");
    assert_eq!(
        reg.current().iteration,
        1,
        "rollback must leave the old model serving"
    );
    assert_eq!(
        reg.consecutive_failures(),
        1,
        "the rollout failure must charge the breaker streak"
    );
    // The fleet keeps answering with the old model after the rollback.
    let r = router.infer(probe(900)).expect("fleet must keep serving");
    assert_eq!(r.model_iteration, 1);
    let (_, report) = router.shutdown_with_report();
    assert!(report.canary_rolled_back);
    assert!(!report.canary_promoted);
}

/// Threaded autoscaler: a burst forces scale-up ticks, a quiet spell
/// shrinks back; the live count stays within the configured band
/// throughout and converges to `min_replicas` when idle.
#[test]
fn threaded_autoscaler_converges_within_band() {
    let reg = registry(34, 1);
    let template = ServerConfig {
        workers: 1,
        queue_capacity: 64,
        policy: BatchPolicy::dynamic(8, Duration::from_millis(1)),
        ..Default::default()
    };
    let mut cfg = FleetConfig::new(1, template, DispatchPolicy::LeastLoaded);
    cfg.seed = SEED;
    cfg.autoscaler = AutoscalerConfig {
        min_replicas: 1,
        max_replicas: 3,
        target_util: 0.7,
        slo_p99_secs: 10.0,
        scale_down_backlog: 4,
        // Tiny sustainable rate: any real burst demands the max size.
        replica_rate: 1.0,
    };
    let router = scidl_serve::Router::start(reg, cfg);

    // Burst ticks: each sees a high observed rate and grows by one.
    for tick in 0..3 {
        for i in 0..20u64 {
            router.infer(probe(1000 + tick * 32 + i)).expect("infer must succeed");
        }
        let live = router.autoscale_tick();
        assert!(
            (1..=3).contains(&live),
            "live replicas {live} left the [1, 3] band during the burst"
        );
    }
    assert_eq!(router.live_replicas(), 3, "the burst must reach the band's ceiling");

    // Quiet ticks: zero observed rate shrinks one step at a time back
    // to the floor, never below it.
    for _ in 0..5 {
        let live = router.autoscale_tick();
        assert!((1..=3).contains(&live), "scale-down must stay within the band");
    }
    assert_eq!(router.live_replicas(), 1, "idle fleet must converge to min_replicas");

    let (_, report) = router.shutdown_with_report();
    assert!(report.scale_ups >= 2, "burst must scale up: {report:?}");
    assert!(report.scale_downs >= 2, "quiet spell must scale down: {report:?}");
    assert_eq!(report.final_replicas, 1);
}

/// Virtual-time mirror of the rollback + autoscaler semantics, with the
/// canary and autoscaler active in the same seeded run — and the whole
/// composite still replays bit-identically.
#[test]
fn fleet_sim_canary_rollback_and_autoscaler_band_replay_deterministically() {
    let model = ServiceModel::hep();
    let base = SimConfig::new(2, 128, BatchPolicy::dynamic(8, Duration::from_millis(5)));
    let per_rep = 2.0 * model.saturated_rate(8);
    let arrivals: Vec<f64> = PoissonArrivals::new(SEED, 2.5 * per_rep, 1200).collect();
    let end = *arrivals.last().unwrap();

    let mut cfg = FleetSimConfig::new(1, base, DispatchPolicy::PowerOfTwoChoices);
    cfg.seed = SEED;
    cfg.base.breaker_threshold = 1;
    cfg.autoscaler = Some(SimAutoscaler {
        min_replicas: 1,
        max_replicas: 4,
        tick_secs: 0.1,
        startup_secs: 0.02,
        ..SimAutoscaler::default()
    });
    cfg.canary = Some(SimCanary {
        start_secs: end * 0.2,
        decide_secs: end * 0.8,
        fraction: 0.25,
        service_factor: 8.0, // the injected SLO regression
        regression_tol: 0.25,
        candidate_iteration: 777,
    });

    let out = simulate_fleet(&model, &arrivals, &cfg);
    assert!(out.canary_rolled_back, "the 8x-slower candidate must roll back");
    assert!(!out.canary_promoted);
    assert_eq!(out.final_iteration, 0, "the old model must still be serving");
    assert!(out.breaker_opened, "threshold 1: the rollout failure opens the breaker");
    assert!(out.scale_ups >= 1, "the overload must grow the fleet");
    let a = cfg.autoscaler.unwrap();
    assert!(
        (a.min_replicas..=a.max_replicas).contains(&out.final_replicas),
        "final replica count {} outside the [{}, {}] band",
        out.final_replicas,
        a.min_replicas,
        a.max_replicas
    );

    let again = simulate_fleet(&model, &arrivals, &cfg);
    assert_eq!(out.served_ids, again.served_ids, "composite run must replay bit-identically");
    assert_eq!(out.makespan.to_bits(), again.makespan.to_bits());
    assert_eq!(out.p99().to_bits(), again.p99().to_bits());
    assert_eq!(out.canary_served, again.canary_served);
    assert_eq!(out.scale_ups, again.scale_ups);
    assert_eq!(out.scale_downs, again.scale_downs);
}
