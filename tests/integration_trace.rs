//! End-to-end tests of the structured-tracing subsystem: a hybrid
//! thread-engine run, a simulated-time run and a serving-simulator run
//! must each land spans and per-iteration rows in an installed
//! [`scidl_trace::TraceSink`]; a poisoned gradient must be caught by the
//! numeric-health sentinel and attributed to the offending layer.
//!
//! The sink is process-global, so every test takes `trace_lock()` before
//! installing one.

use scidl_core::sim_engine::{SimEngine, SimEngineConfig, SolverKind};
use scidl_core::thread_engine::{ThreadEngine, ThreadEngineConfig};
use scidl_core::workloads::hep_workload;
use scidl_data::{HepConfig, HepDataset};
use scidl_serve::queue::BatchPolicy;
use scidl_serve::sim::{simulate, ServiceModel, SimConfig};
use scidl_serve::PoissonArrivals;
use scidl_tensor::TensorRng;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Serialises tests that install the process-global trace sink.
fn trace_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn fresh_sink() -> Arc<scidl_trace::TraceSink> {
    scidl_trace::uninstall();
    let sink = Arc::new(scidl_trace::TraceSink::new());
    scidl_trace::install(Arc::clone(&sink));
    sink
}

#[test]
fn hybrid_thread_engine_run_emits_spans_and_rows() {
    let _g = trace_lock();
    let sink = fresh_sink();

    let ds = Arc::new(HepDataset::generate(HepConfig::small(), 64, 11));
    let mut cfg = ThreadEngineConfig::new(2, 2, 8);
    cfg.iterations = 5;
    cfg.seed = 0x71;
    let run = ThreadEngine::run(&cfg, ds);
    scidl_trace::uninstall();

    assert!(run.final_params.iter().all(|p| p.is_finite()));
    let events = sink.events();
    let names: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
    for want in ["iteration", "compute", "allreduce", "ps_exchange"] {
        assert!(names.contains(&want), "missing {want} span; got {names:?}");
    }

    // One row per group iteration, all on the training track.
    let rows = sink.rows();
    assert_eq!(rows.len(), cfg.groups * cfg.iterations);
    assert!(rows.iter().all(|r| r.kind == "train"));
    assert!(rows.iter().all(|r| r.compute_s >= 0.0 && r.comm_s >= 0.0));
    assert!(rows.iter().any(|r| r.loss.is_finite()));

    // Exports are loadable artifacts, not just in-memory state.
    let json = sink.chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ps_exchange\""));
    assert!(json.contains("\"staleness\""));
    let csv = sink.iteration_csv();
    assert!(csv.starts_with(scidl_trace::ITER_CSV_HEADER));
    assert_eq!(csv.lines().count(), 1 + rows.len());
}

#[test]
fn sim_engine_trace_is_deterministic_and_attributes_time() {
    let _g = trace_lock();
    let ds = HepDataset::generate(HepConfig::small(), 32, 1);
    let mut cfg = SimEngineConfig::fig8(4, 2, 8, hep_workload());
    cfg.iterations = 4;
    cfg.solver = SolverKind::Sgd { momentum: 0.7 };

    let mut artifacts = Vec::new();
    for _ in 0..2 {
        let sink = fresh_sink();
        let mut model = scidl_nn::arch::hep_small(&mut TensorRng::new(3));
        SimEngine::run(&cfg, &mut model, &ds);
        scidl_trace::uninstall();
        artifacts.push((sink.chrome_json(), sink.iteration_csv(), sink.rows()));
    }
    // Virtual timestamps: the whole trace is bit-identical run to run.
    assert_eq!(artifacts[0].0, artifacts[1].0);
    assert_eq!(artifacts[0].1, artifacts[1].1);

    let rows = &artifacts[0].2;
    assert_eq!(rows.len(), cfg.groups * cfg.iterations);
    // Hybrid (2 groups): every iteration pays compute, all-reduce AND a
    // PS exchange; some update must observe staleness from the other
    // group.
    assert!(rows.iter().all(|r| r.compute_s > 0.0 && r.comm_s > 0.0 && r.ps_s > 0.0));
    assert!(rows.iter().any(|r| r.staleness > 0));
    assert!(artifacts[0].0.contains("\"ps_exchange\""));
}

#[test]
fn serving_sim_emits_batch_dispatch_rows_with_queue_compute_split() {
    let _g = trace_lock();
    let model = ServiceModel::hep();
    // Offer ~2× the batch-8 saturated rate so batches queue up.
    let arrivals: Vec<f64> =
        PoissonArrivals::new(7, 2.0 * model.saturated_rate(8), 120).collect();
    let cfg = SimConfig::new(2, 256, BatchPolicy::dynamic(8, Duration::from_millis(2)));

    let mut jsons = Vec::new();
    let mut rows = Vec::new();
    for _ in 0..2 {
        let sink = fresh_sink();
        let out = simulate(&model, &arrivals, &cfg);
        scidl_trace::uninstall();
        assert_eq!(sink.rows().len(), out.batch_sizes.len());
        jsons.push(sink.chrome_json());
        rows = sink.rows();
    }
    assert_eq!(jsons[0], jsons[1], "seeded serving trace must be bit-identical");

    assert!(rows.iter().all(|r| r.kind == "serve" && r.compute_s > 0.0));
    assert!(
        rows.iter().any(|r| r.queue_s > 0.0),
        "overloaded pool must show queue wait"
    );
    assert!(rows.iter().any(|r| r.batch > 1), "load must form multi-request batches");
    assert!(jsons[0].contains("\"batch_dispatch\""));
}

#[test]
fn poisoned_gradient_is_caught_and_attributed_to_layer() {
    let _g = trace_lock();

    // Pick a block to poison and remember its name + flat offset.
    let probe = scidl_nn::arch::hep_small(&mut TensorRng::new(0x99));
    use scidl_nn::network::Model;
    let blocks = probe.param_blocks();
    assert!(blocks.len() >= 3, "need a few blocks to make attribution meaningful");
    let target = 2usize;
    let target_name = blocks[target].name.clone();
    let poison_at: usize =
        blocks[..target].iter().map(|b| b.len()).sum::<usize>() + blocks[target].len() / 2;

    let sink = fresh_sink();
    let ds = HepDataset::generate(HepConfig::small(), 32, 13);
    let ds_len = ds.len();
    let mut cfg = ThreadEngineConfig::new(1, 2, 4);
    cfg.iterations = 3;
    cfg.seed = 0x99;
    ThreadEngine::run_with(
        &cfg,
        ds_len,
        |seed| scidl_nn::arch::hep_small(&mut TensorRng::new(seed)),
        move |model: &mut scidl_nn::network::Network, indices: &[usize]| {
            let (loss, mut g) = scidl_core::task::hep_gradient(model, &ds, indices);
            g[poison_at] = f32::NAN;
            (loss, g)
        },
    );
    scidl_trace::uninstall();

    let alerts = sink.health_alerts();
    let grad_alert = alerts
        .iter()
        .find(|a| a.source == "gradient")
        .expect("poisoned gradient must raise a health alert");
    assert_eq!(
        grad_alert.layer.as_deref(),
        Some(target_name.as_str()),
        "alert must name the poisoned layer"
    );
    assert!(grad_alert.value.is_nan());
    assert!(grad_alert.iter.is_some());
    // The alert is also visible in the exported timeline.
    assert!(sink.chrome_json().contains("\"nonfinite\""));
}
