//! Cross-crate integration: the communication layer carrying real model
//! gradients — all-reduce equivalence between algorithms, and per-layer
//! parameter servers driving a real network.

use scidl_comm::ps::UpdateFn;
use scidl_comm::{ring_allreduce_mean, CommWorld, PsBank, RingFabric};
use scidl_data::{HepConfig, HepDataset};
use scidl_nn::network::Model;
use scidl_nn::{Sgd, Solver};
use scidl_tensor::TensorRng;
use std::sync::Arc;
use std::thread;

/// Ring and tree all-reduce agree on real gradient buffers.
#[test]
fn ring_and_tree_allreduce_agree_on_real_gradients() {
    let n = 4;
    let ds = Arc::new(HepDataset::generate(HepConfig::small(), 4 * n, 31));

    // Compute per-rank gradients.
    let grads: Vec<Vec<f32>> = (0..n)
        .map(|r| {
            let mut rng = TensorRng::new(7);
            let mut model = scidl_nn::arch::hep_small(&mut rng);
            let idx: Vec<usize> = (r * 4..(r + 1) * 4).collect();
            scidl_core::task::hep_gradient(&mut model, &ds, &idx).1
        })
        .collect();

    // Tree.
    let comms = CommWorld::new(n);
    let tree_handles: Vec<_> = comms
        .into_iter()
        .zip(grads.clone())
        .map(|(c, mut g)| {
            thread::spawn(move || {
                c.allreduce_mean(&mut g);
                g
            })
        })
        .collect();
    let tree: Vec<Vec<f32>> = tree_handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Ring.
    let endpoints = RingFabric::new(n).into_endpoints();
    let ring_handles: Vec<_> = endpoints
        .into_iter()
        .enumerate()
        .zip(grads)
        .map(|((rank, (tx, rx)), mut g)| {
            thread::spawn(move || {
                ring_allreduce_mean(rank, n, &mut g, &tx, &rx).unwrap();
                g
            })
        })
        .collect();
    let ring: Vec<Vec<f32>> = ring_handles.into_iter().map(|h| h.join().unwrap()).collect();

    for (t, r) in tree[0].iter().zip(&ring[0]) {
        assert!((t - r).abs() < 1e-5, "{t} vs {r}");
    }
    // All ranks hold identical results.
    for rank in 1..n {
        assert_eq!(tree[0], tree[rank]);
    }
}

/// A per-layer PS bank can drive a real network block-by-block and
/// produces the same update as a local solver step.
#[test]
fn ps_bank_matches_local_solver_on_real_model() {
    let mut rng = TensorRng::new(77);
    let mut model = scidl_nn::arch::hep_small(&mut rng);
    let ds = HepDataset::generate(HepConfig::small(), 8, 55);
    let idx: Vec<usize> = (0..8).collect();
    let (_, grads) = scidl_core::task::hep_gradient(&mut model, &ds, &idx);

    let lr = 0.01f32;
    let block_sizes: Vec<usize> = model.param_blocks().iter().map(|b| b.len()).collect();

    // Local update.
    let mut local = model.flat_params();
    {
        let mut solver = Sgd::new(lr, 0.0);
        let mut off = 0;
        for (i, &len) in block_sizes.iter().enumerate() {
            solver.step_block(i, &mut local[off..off + len], &grads[off..off + len]);
            off += len;
        }
    }

    // PS bank update.
    let bank = PsBank::spawn(
        model
            .param_blocks()
            .iter()
            .map(|b| {
                let mut solver = Sgd::new(lr, 0.0);
                let u: UpdateFn = Box::new(move |p: &mut [f32], g: &[f32]| solver.step_block(0, p, g));
                (b.value.data().to_vec(), u)
            })
            .collect(),
    );
    let mut blocks = Vec::new();
    let mut off = 0;
    for &len in &block_sizes {
        blocks.push(grads[off..off + len].to_vec());
        off += len;
    }
    let replies = bank.update_all(blocks).unwrap();
    let remote: Vec<f32> = replies.into_iter().flat_map(|r| r.params).collect();

    assert_eq!(local.len(), remote.len());
    for (a, b) in local.iter().zip(&remote) {
        assert!((a - b).abs() < 1e-7);
    }
}

/// Group splitting covers every rank exactly once with contiguous sizes —
/// the MLSL-extension behaviour of Sec. III-E(b).
#[test]
fn comm_world_split_partitions_ranks() {
    for (n, groups) in [(8usize, 2usize), (9, 3), (10, 4), (16, 16)] {
        let members = CommWorld::split(n, groups);
        assert_eq!(members.len(), n);
        let mut per_group = vec![0usize; groups];
        for (g, c) in &members {
            per_group[*g] += 1;
            assert!(c.size() >= 1);
        }
        assert_eq!(per_group.iter().sum::<usize>(), n);
        let max = per_group.iter().max().unwrap();
        let min = per_group.iter().min().unwrap();
        assert!(max - min <= 1, "groups should be balanced: {per_group:?}");
    }
}
