//! Cross-crate integration of the fault-injection subsystem: a
//! parameter-server thread is killed in the middle of real multi-group
//! training and the run must complete anyway — the supervisor fails the
//! shard over from its snapshot instead of aborting the process
//! (Sec. VIII-A taken one step past the paper).

use scidl_core::faults;
use scidl_core::thread_engine::{ThreadEngine, ThreadEngineConfig};
use scidl_data::{HepConfig, HepDataset};
use std::sync::Arc;

/// Killing a PS shard mid-run no longer takes the process down: every
/// group finishes its budget, the failover is visible in the summary,
/// and the loss curve has the same shape as a fault-free run.
#[test]
fn ps_kill_mid_run_completes_training() {
    let ds = Arc::new(HepDataset::generate(HepConfig::small(), 192, 91));
    let mut cfg = ThreadEngineConfig::new(3, 2, 12);
    cfg.iterations = 8;
    cfg.lr = 3e-3;
    cfg.momentum = 0.5;
    cfg.seed = 0xFA17;

    let clean = ThreadEngine::run(&cfg, Arc::clone(&ds));
    assert_eq!(clean.updates, 3 * 8);
    assert_eq!(clean.ps_respawns, 0);

    // Same run, but shard 1 dies after serving 7 requests.
    cfg.faults = faults::kill_ps_shard(1, 7, 0.0);
    let faulted = ThreadEngine::run(&cfg, ds);

    assert_eq!(
        faulted.updates, 3 * 8,
        "the PS crash must not cost any group any iteration"
    );
    assert!(
        faulted.ps_respawns >= 1,
        "the supervisor should have failed the shard over at least once"
    );
    assert_eq!(faulted.curve.len(), clean.curve.len());

    // Loss-curve shape is preserved: the failover neither spikes nor
    // stalls the curve relative to a fault-free run of the same config.
    let tail_mean = |c: &scidl_core::metrics::LossCurve| {
        let n = c.points.len();
        c.points[n - 6..].iter().map(|p| p.1).sum::<f32>() / 6.0
    };
    let (clean_tail, faulted_tail) = (tail_mean(&clean.curve), tail_mean(&faulted.curve));
    assert!(
        (clean_tail - faulted_tail).abs() < 0.1,
        "failover distorted the loss curve: clean tail {clean_tail}, faulted tail {faulted_tail}"
    );
    assert!(faulted.curve.points.iter().all(|p| p.1.is_finite()));
    for p in &faulted.final_params {
        assert!(p.is_finite());
    }
}

/// A group crash and a PS crash in the same run: recovery and failover
/// compose, and the run still beats the no-recovery update count.
#[test]
fn combined_group_and_ps_faults_compose() {
    let ds = Arc::new(HepDataset::generate(HepConfig::small(), 192, 92));
    let mut cfg = ThreadEngineConfig::new(3, 2, 12);
    cfg.iterations = 8;
    cfg.seed = 0xFA18;
    cfg.faults = faults::kill_and_recover_group(2, 3, 2, 0.0)
        .with_ps_crash(0, 9, 0.0);

    let run = ThreadEngine::run(&cfg, ds);
    assert_eq!(run.updates, 3 * 8, "recovery restores the full budget");
    assert_eq!(run.recovered_updates, 8 - 3);
    assert!(run.ps_respawns >= 1);
}
