//! Overlap-mode integration: the bucketed backward-overlapped all-reduce
//! (`overlap_comm`) wired through both engines.
//!
//! * Thread and sim engines must tell the same training story with the
//!   knob on or off — overlap changes *when* communication happens, never
//!   what is computed.
//! * The sim engine charges the overlap cost model: identical parameters,
//!   strictly less simulated wall-clock.
//! * A dead ring neighbour mid-run surfaces through the `FaultPlan` as a
//!   detected communication error that stops the group — not a panic and
//!   not a hang.

use scidl_core::faults;
use scidl_core::sim_engine::{SimEngine, SimEngineConfig, SolverKind};
use scidl_core::thread_engine::{ThreadEngine, ThreadEngineConfig};
use scidl_core::workloads::hep_workload;
use scidl_data::{HepConfig, HepDataset};
use scidl_tensor::TensorRng;
use std::sync::Arc;

/// Synchronous single-node training is plain SGD in both engines, so all
/// four seeded loss trajectories — thread/sim × overlap on/off — must
/// coincide: the engine pairs to float tolerance, the overlap pairs
/// exactly.
#[test]
fn thread_and_sim_loss_trajectories_agree_with_overlap_on_and_off() {
    let seed = 0xB7;
    let (batch, iterations, lr, momentum) = (8usize, 6usize, 1e-3f32, 0.9f32);
    let ds = Arc::new(HepDataset::generate(HepConfig::small(), 64, seed));

    let thread_losses = |overlap: bool| -> Vec<f32> {
        let mut cfg = ThreadEngineConfig::new(1, 1, batch);
        cfg.iterations = iterations;
        cfg.lr = lr;
        cfg.momentum = momentum;
        cfg.seed = seed;
        cfg.overlap_comm = overlap;
        cfg.bucket_bytes = 2048; // several buckets per step
        let run = ThreadEngine::run(&cfg, Arc::clone(&ds));
        run.curve.points.iter().map(|p| p.1).collect()
    };
    let sim_losses = |overlap: bool| -> Vec<f32> {
        let mut cfg = SimEngineConfig::fig8(1, 1, batch, hep_workload());
        cfg.iterations = iterations;
        cfg.lr = lr;
        cfg.solver = SolverKind::Sgd { momentum };
        cfg.seed = seed;
        cfg.overlap_comm = overlap;
        let mut rng = TensorRng::new(seed);
        let mut model = scidl_nn::arch::hep_small(&mut rng);
        let run = SimEngine::run(&cfg, &mut model, &ds);
        run.curve.points.iter().map(|p| p.1).collect()
    };

    let t_off = thread_losses(false);
    let t_on = thread_losses(true);
    let s_off = sim_losses(false);
    let s_on = sim_losses(true);
    assert_eq!(t_off, t_on, "thread overlap must not change the math");
    assert_eq!(s_off, s_on, "sim overlap must not change the math");
    assert_eq!(t_on.len(), s_on.len());
    for (i, (a, b)) in t_on.iter().zip(&s_on).enumerate() {
        assert!(
            (a - b).abs() < 1e-5,
            "iteration {i}: thread loss {a} vs sim loss {b}"
        );
    }
}

/// The sim engine's overlap knob is pure timing: a multi-node seeded run
/// keeps bit-identical parameters and loss points while the simulated
/// clock advances strictly less.
#[test]
fn sim_overlap_keeps_parameters_and_shrinks_simulated_time() {
    let ds = HepDataset::generate(HepConfig::small(), 96, 19);
    let run = |overlap: bool| {
        let mut cfg = SimEngineConfig::fig8(32, 1, 32, hep_workload());
        cfg.iterations = 10;
        cfg.overlap_comm = overlap;
        let mut rng = TensorRng::new(19);
        let mut model = scidl_nn::arch::hep_small(&mut rng);
        SimEngine::run(&cfg, &mut model, &ds)
    };
    let plain = run(false);
    let overlapped = run(true);
    assert_eq!(plain.final_params, overlapped.final_params);
    assert_eq!(plain.curve.points.len(), overlapped.curve.points.len());
    for ((_, a), (_, b)) in plain.curve.points.iter().zip(&overlapped.curve.points) {
        assert_eq!(a, b, "loss values must be untouched by overlap");
    }
    assert!(
        overlapped.total_time < plain.total_time,
        "overlap must hide communication: {} vs {}",
        overlapped.total_time,
        plain.total_time
    );
}

/// A single rank dying mid-run (`FaultPlan::with_node_crash`) leaves its
/// ring neighbours sending into dead channels in the middle of a bucket
/// schedule. The comm thread surfaces that as a detected error, the
/// group's survivors stop together before any tree collective could
/// deadlock, and the other group finishes the run — no panic, no hang.
#[test]
fn dead_ring_neighbour_mid_bucket_stops_the_group_via_comm_error() {
    let ds = Arc::new(HepDataset::generate(HepConfig::small(), 64, 31));
    let mut cfg = ThreadEngineConfig::new(2, 3, 6);
    cfg.iterations = 10;
    cfg.overlap_comm = true;
    cfg.bucket_bytes = 512; // many buckets: the death lands mid-schedule
    cfg.faults = faults::kill_node(1, 2, 3);
    let run = ThreadEngine::run(&cfg, Arc::clone(&ds));
    // Group 1 contributes only its 3 pre-crash updates; group 0 all 10.
    assert_eq!(run.updates, 10 + 3);
    assert!(run.final_params.iter().all(|p| p.is_finite()));
    // The healthy group's updates kept flowing after the crash.
    assert_eq!(run.curve.len(), 13);
}

/// Recovered-crash machinery and overlap compose: a whole-group crash
/// with recovery still works when gradients ride the bucketed ring.
#[test]
fn group_recovery_composes_with_overlap_mode() {
    let ds = Arc::new(HepDataset::generate(HepConfig::small(), 64, 37));
    let mut cfg = ThreadEngineConfig::new(2, 2, 4);
    cfg.iterations = 8;
    cfg.overlap_comm = true;
    cfg.bucket_bytes = 1024;
    cfg.faults = faults::kill_and_recover_group(0, 3, 1, 0.0);
    let run = ThreadEngine::run(&cfg, Arc::clone(&ds));
    assert_eq!(run.updates, 2 * 8, "the crashed group must rejoin and finish");
    assert_eq!(run.recovered_updates, 5);
    assert!(run.final_params.iter().all(|p| p.is_finite()));
}
