//! Cross-crate integration: the two science results (Sec. VII) at
//! reduced scale — CNN vs cuts for HEP, and the semi-supervised climate
//! detector end to end.

use scidl_core::experiments::science::{
    climate_science, hep_science, ClimateScienceScale, HepScienceScale,
};

/// Sec. VII-A shape: at a fixed FPR budget the CNN's TPR beats the tuned
/// cut-based benchmark, and both are non-trivial.
#[test]
fn cnn_beats_cut_benchmark_at_fixed_fpr() {
    let scale = HepScienceScale {
        train_events: 900,
        test_events: 900,
        iterations: 150,
        batch: 32,
        fpr_budget: 0.03,
    };
    let r = hep_science(&scale, 17);
    assert!(r.baseline_tpr > 0.05, "cuts should catch signal: {}", r.baseline_tpr);
    assert!(r.baseline_tpr < 0.95, "cuts should be imperfect: {}", r.baseline_tpr);
    assert!(
        r.cnn_tpr > r.baseline_tpr,
        "CNN ({}) must beat cuts ({}) — paper reports 1.7x",
        r.cnn_tpr,
        r.baseline_tpr
    );
    assert!(r.improvement > 1.0 && r.improvement < 20.0, "improvement {}", r.improvement);
}

/// Sec. VII-B shape: the semi-supervised detector learns to localise
/// events — nonzero recall with usable precision — and its unsupervised
/// reconstruction path converges.
#[test]
fn climate_detector_localises_events() {
    let scale = ClimateScienceScale {
        train_frames: 64,
        test_frames: 16,
        epochs: 22,
        batch: 8,
        labelled_fraction: 0.75,
        confidence: 0.7,
    };
    let r = climate_science(&scale, 23);
    assert!(r.ground_truth > 10, "need a populated test set");
    assert!(r.final_recon_loss.is_finite() && r.final_recon_loss < 0.5);
    assert!(r.detections > 0, "detector must fire at this scale");
    assert!(r.recall > 0.15, "recall {}", r.recall);
    assert!(r.precision > 0.3, "precision {}", r.precision);
    // The Fig. 9 rendering contains both ground truth and predictions.
    assert!(r.rendering.contains('#'));
    assert!(r.rendering.contains('+'));
}

/// Semi-supervision matters: with most labels hidden the autoencoder
/// path still trains the encoder (recon loss falls), which is the
/// mechanism the paper relies on for discovering unlabelled patterns.
#[test]
fn unsupervised_path_trains_without_labels() {
    let scale = ClimateScienceScale {
        train_frames: 32,
        test_frames: 8,
        epochs: 8,
        batch: 8,
        labelled_fraction: 0.05,
        confidence: 0.9,
    };
    let r = climate_science(&scale, 29);
    assert!(
        r.final_recon_loss.is_finite() && r.final_recon_loss < 0.6,
        "reconstruction should converge without labels: {}",
        r.final_recon_loss
    );
}
