//! Property-based tests for the dataset generators: determinism,
//! physical invariants and sampler coverage under arbitrary seeds.

use proptest::prelude::*;
use scidl_data::climate::{boxes_to_targets, ClimateConfig, ClimateDataset};
use scidl_data::{BatchSampler, HepConfig, HepDataset};
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// HEP generation is deterministic and physically sane for any seed:
    /// finite non-negative pixels, preselection honoured, at least one
    /// energy deposit per event.
    #[test]
    fn hep_generator_invariants(seed in any::<u64>()) {
        let a = HepDataset::generate(HepConfig::small(), 12, seed);
        let b = HepDataset::generate(HepConfig::small(), 12, seed);
        prop_assert_eq!(a.images.data(), b.images.data());
        prop_assert!(a.images.all_finite());
        prop_assert!(a.images.min() >= 0.0);
        for (i, f) in a.features.iter().enumerate() {
            prop_assert!(f.ht > 600.0 && f.ht < 2200.0);
            prop_assert!(f.njets >= 3);
            prop_assert!(f.leading_pt > 0.0);
            let energy: f32 = a.images.item(i).iter().sum();
            prop_assert!(energy > 0.0, "event {i} has no deposits");
        }
    }

    /// Climate frames carry normalised boxes and finite fields for any
    /// seed; labelled flags respect the configured fraction in bulk.
    #[test]
    fn climate_generator_invariants(seed in any::<u64>()) {
        let ds = ClimateDataset::generate(ClimateConfig::small(), 8, seed);
        for s in &ds.samples {
            prop_assert!(s.image.all_finite());
            for b in &s.boxes {
                prop_assert!((0.0..=1.0).contains(&b.cx));
                prop_assert!((0.0..=1.0).contains(&b.cy));
                prop_assert!(b.w > 0.0 && b.w <= 1.0);
                prop_assert!(b.h > 0.0 && b.h <= 1.0);
                prop_assert!(b.class < 3);
            }
        }
    }

    /// Grid-target conversion marks exactly one positive cell per box
    /// (boxes in distinct cells) with offsets in [0, 1].
    #[test]
    fn targets_are_consistent(seed in any::<u64>(), grid in 4usize..12) {
        let ds = ClimateDataset::generate(
            ClimateConfig { events_per_frame: 2.0, labelled_fraction: 1.0, ..ClimateConfig::small() },
            4,
            seed,
        );
        let boxes: Vec<_> = ds.samples.iter().map(|s| s.boxes.clone()).collect();
        let t = boxes_to_targets(&boxes, grid, 3);
        let distinct: usize = boxes
            .iter()
            .enumerate()
            .map(|(i, bs)| {
                bs.iter()
                    .map(|b| {
                        (
                            i,
                            ((b.cy * grid as f32) as usize).min(grid - 1),
                            ((b.cx * grid as f32) as usize).min(grid - 1),
                        )
                    })
                    .collect::<HashSet<_>>()
                    .len()
            })
            .sum();
        prop_assert_eq!(t.positives(), distinct);
        for v in &t.bbox {
            prop_assert!(v.is_finite());
        }
    }

    /// The sharded sampler covers its shard exactly once per epoch and
    /// shards partition the dataset for any (n, nodes) combination.
    #[test]
    fn sampler_partition_and_coverage(
        n in 4usize..60,
        nodes in 1usize..5,
        seed in any::<u64>(),
    ) {
        prop_assume!(n >= nodes);
        let mut union = HashSet::new();
        let mut total = 0usize;
        for node in 0..nodes {
            let mut s = BatchSampler::for_node(n, 1, seed, node, nodes);
            let shard = s.shard_len();
            total += shard;
            let mut seen = HashSet::new();
            for _ in 0..shard {
                for i in s.next_batch() {
                    seen.insert(i);
                    union.insert(i);
                }
            }
            prop_assert_eq!(seen.len(), shard, "epoch must cover the shard once");
        }
        prop_assert_eq!(total, n);
        prop_assert_eq!(union.len(), n);
    }
}
