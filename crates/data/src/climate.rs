//! Synthetic climate-simulation frames with embedded extreme-weather
//! events and ground-truth bounding boxes.
//!
//! Stands in for the paper's 15TB CAM5 archive (Sec. I-B). Each frame is
//! a multi-channel atmospheric state image: smooth large-scale background
//! fields (generated as sums of random low-frequency harmonics with a
//! latitudinal gradient) into which extreme-weather events are written:
//!
//! * **Tropical cyclone (TC)** — compact vortex: strong local maximum in
//!   integrated water vapour (TMQ), deep sea-level-pressure minimum,
//!   rotational wind signature, in the tropics band.
//! * **Extra-tropical cyclone (ETC)** — a broader, weaker, comma-shaped
//!   vortex at mid-latitudes.
//! * **Atmospheric river (AR)** — a long, narrow filament of high TMQ
//!   stretching from the tropics poleward.
//!
//! These are the three event classes of Sec. VII-B. Only a configurable
//! fraction of frames carries labels, matching the semi-supervised
//! setting.

use scidl_tensor::{Shape4, Tensor, TensorRng};

/// Channel indices with physical meaning; remaining channels are
/// generic correlated state variables (the real data has 16+ variables:
/// temperature, humidity and wind at multiple levels, etc.).
pub mod channel {
    /// Integrated water vapour (TMQ) — the variable plotted in Fig. 9.
    pub const TMQ: usize = 0;
    /// Sea-level pressure.
    pub const PSL: usize = 1;
    /// Zonal wind.
    pub const U: usize = 2;
    /// Meridional wind.
    pub const V: usize = 3;
}

/// Extreme-weather classes (Sec. VII-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventClass {
    /// Tropical cyclone.
    TropicalCyclone = 0,
    /// Extra-tropical cyclone.
    ExtraTropicalCyclone = 1,
    /// Atmospheric river.
    AtmosphericRiver = 2,
}

impl EventClass {
    /// Class index (0-based, matching the class head).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            EventClass::TropicalCyclone => "TC",
            EventClass::ExtraTropicalCyclone => "ETC",
            EventClass::AtmosphericRiver => "AR",
        }
    }
}

/// A ground-truth box in normalised image coordinates (centre format).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GtBox {
    /// Event class.
    pub class: usize,
    /// Centre x in `[0, 1]`.
    pub cx: f32,
    /// Centre y in `[0, 1]`.
    pub cy: f32,
    /// Width in `[0, 1]`.
    pub w: f32,
    /// Height in `[0, 1]`.
    pub h: f32,
}

/// One climate frame: the multi-channel image, its ground-truth boxes and
/// whether the labels are visible to training (semi-supervised setting).
#[derive(Debug)]
pub struct ClimateSample {
    /// The frame `(1, channels, s, s)`.
    pub image: Tensor,
    /// Ground-truth event boxes (always generated; hidden when
    /// `labelled == false`).
    pub boxes: Vec<GtBox>,
    /// Whether this frame's boxes are available for supervised training.
    pub labelled: bool,
}

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClimateConfig {
    /// Square image side (768 at paper scale).
    pub image_size: usize,
    /// Channel count (16 at paper scale).
    pub channels: usize,
    /// Mean number of events per frame.
    pub events_per_frame: f64,
    /// Fraction of frames that carry labels.
    pub labelled_fraction: f64,
}

impl ClimateConfig {
    /// Paper-scale configuration: 768x768x16.
    pub fn paper() -> Self {
        Self { image_size: 768, channels: 16, events_per_frame: 2.5, labelled_fraction: 0.5 }
    }

    /// Laptop-scale configuration: 64x64x4 for fast tests/training.
    pub fn small() -> Self {
        Self { image_size: 64, channels: 4, events_per_frame: 2.0, labelled_fraction: 0.5 }
    }
}

/// An in-memory climate dataset.
#[derive(Debug)]
pub struct ClimateDataset {
    /// Generator configuration used.
    pub config: ClimateConfig,
    /// The frames.
    pub samples: Vec<ClimateSample>,
}

impl ClimateDataset {
    /// Generates `n` frames deterministically from `seed`.
    pub fn generate(config: ClimateConfig, n: usize, seed: u64) -> Self {
        let mut rng = TensorRng::new(seed ^ 0x434C_494D);
        let samples = (0..n).map(|i| generate_frame(&config, &mut rng.fork(i as u64))).collect();
        Self { config, samples }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Stacks frames `indices` into one `(k, c, s, s)` batch tensor,
    /// returning the per-frame box lists alongside (empty for unlabelled
    /// frames).
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<Vec<GtBox>>) {
        assert!(!indices.is_empty());
        let s = self.samples[indices[0]].image.shape();
        let mut out = Tensor::zeros(Shape4::new(indices.len(), s.c, s.h, s.w));
        let mut boxes = Vec::with_capacity(indices.len());
        for (j, &i) in indices.iter().enumerate() {
            let sample = &self.samples[i];
            out.item_mut(j).copy_from_slice(sample.image.data());
            boxes.push(if sample.labelled { sample.boxes.clone() } else { Vec::new() });
        }
        (out, boxes)
    }
}

/// Generates one frame: background fields + embedded events.
fn generate_frame(config: &ClimateConfig, rng: &mut TensorRng) -> ClimateSample {
    let s = config.image_size;
    let c = config.channels;
    let mut image = Tensor::zeros(Shape4::new(1, c, s, s));

    render_background(&mut image, rng);

    let n_events = rng.poisson(config.events_per_frame).min(6);
    let mut boxes = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let class = match rng.below(3) {
            0 => EventClass::TropicalCyclone,
            1 => EventClass::ExtraTropicalCyclone,
            _ => EventClass::AtmosphericRiver,
        };
        boxes.push(render_event(&mut image, class, rng));
    }

    ClimateSample { image, boxes, labelled: rng.bernoulli(config.labelled_fraction) }
}

/// Smooth large-scale background: latitudinal gradient plus a few random
/// low-frequency harmonics per channel; channels beyond the named four are
/// correlated mixtures so the autoencoder has cross-channel structure to
/// learn.
fn render_background(image: &mut Tensor, rng: &mut TensorRng) {
    let shape = image.shape();
    let (c, s) = (shape.c, shape.h);
    let mut modes = Vec::new();
    for _ in 0..4 {
        modes.push((
            rng.uniform_range(0.5, 3.0), // kx
            rng.uniform_range(0.5, 3.0), // ky
            rng.uniform_range(0.0, std::f64::consts::TAU),
            rng.uniform_range(0.1, 0.3), // amplitude
        ));
    }
    for ch in 0..c {
        let phase_shift = ch as f64 * 0.7;
        let lat_strength = match ch {
            channel::TMQ => 0.5,  // moist tropics
            channel::PSL => -0.2, // weak gradient
            _ => 0.2,
        };
        let plane_off = ch * s * s;
        for y in 0..s {
            // "Latitude": y=0 north pole, y=s equator-ish band in middle.
            let lat = (y as f64 / s as f64 - 0.5).abs() * 2.0; // 0 at equator
            let lat_term = lat_strength * (1.0 - lat);
            for x in 0..s {
                let mut v = lat_term;
                for &(kx, ky, ph, amp) in &modes {
                    v += amp
                        * ((kx * x as f64 / s as f64 * std::f64::consts::TAU
                            + ky * y as f64 / s as f64 * std::f64::consts::TAU
                            + ph
                            + phase_shift)
                            .sin());
                }
                image.data_mut()[plane_off + y * s + x] = v as f32;
            }
        }
    }
    // Small measurement noise.
    for v in image.data_mut().iter_mut() {
        *v += rng.normal_ms(0.0, 0.02) as f32;
    }
}

/// Renders one event and returns its ground-truth box.
fn render_event(image: &mut Tensor, class: EventClass, rng: &mut TensorRng) -> GtBox {
    let shape = image.shape();
    let s = shape.h;
    match class {
        EventClass::TropicalCyclone => {
            // Compact vortex in the tropics band (middle third).
            let cx = rng.uniform_range(0.1, 0.9);
            let cy = rng.uniform_range(0.38, 0.62);
            let radius = rng.uniform_range(0.03, 0.06);
            render_vortex(image, cx, cy, radius, 1.6, rng);
            GtBox {
                class: class.index(),
                cx: cx as f32,
                cy: cy as f32,
                w: (radius * 2.4) as f32,
                h: (radius * 2.4) as f32,
            }
        }
        EventClass::ExtraTropicalCyclone => {
            // Broader, weaker vortex at mid-latitudes (top or bottom band).
            let cx = rng.uniform_range(0.1, 0.9);
            let cy = if rng.bernoulli(0.5) {
                rng.uniform_range(0.12, 0.3)
            } else {
                rng.uniform_range(0.7, 0.88)
            };
            let radius = rng.uniform_range(0.07, 0.12);
            render_vortex(image, cx, cy, radius, 0.8, rng);
            GtBox {
                class: class.index(),
                cx: cx as f32,
                cy: cy as f32,
                w: (radius * 2.4) as f32,
                h: (radius * 2.4) as f32,
            }
        }
        EventClass::AtmosphericRiver => {
            // Narrow TMQ filament from the tropics poleward.
            let x0 = rng.uniform_range(0.1, 0.7);
            let y0 = rng.uniform_range(0.45, 0.55);
            let len = rng.uniform_range(0.25, 0.45);
            let angle = rng.uniform_range(0.5, 1.2) * if rng.bernoulli(0.5) { 1.0 } else { -1.0 };
            let width = rng.uniform_range(0.015, 0.03);
            let x1 = (x0 + len * angle.cos()).clamp(0.02, 0.98);
            let y1 = (y0 - len * angle.sin()).clamp(0.02, 0.98);
            render_filament(image, x0, y0, x1, y1, width, rng);
            let _ = s;
            GtBox {
                class: class.index(),
                cx: ((x0 + x1) / 2.0) as f32,
                cy: ((y0 + y1) / 2.0) as f32,
                w: ((x1 - x0).abs() + 2.0 * width) as f32,
                h: ((y1 - y0).abs() + 2.0 * width) as f32,
            }
        }
    }
}

/// Vortex signature: TMQ ring, PSL depression, tangential winds; `power`
/// scales intensity (TCs are sharper and stronger than ETCs).
fn render_vortex(image: &mut Tensor, cx: f64, cy: f64, radius: f64, power: f64, rng: &mut TensorRng) {
    let shape = image.shape();
    let (c, s) = (shape.c, shape.h);
    let px_cx = cx * s as f64;
    let px_cy = cy * s as f64;
    let px_r = (radius * s as f64).max(1.5);
    let extent = (px_r * 2.5).ceil() as isize;
    let x0 = px_cx as isize;
    let y0 = px_cy as isize;
    let spin = if rng.bernoulli(0.5) { 1.0 } else { -1.0 };

    for dy in -extent..=extent {
        let y = y0 + dy;
        if y < 0 || y >= s as isize {
            continue;
        }
        for dx in -extent..=extent {
            let x = x0 + dx;
            if x < 0 || x >= s as isize {
                continue;
            }
            let fx = x as f64 + 0.5 - px_cx;
            let fy = y as f64 + 0.5 - px_cy;
            let r = (fx * fx + fy * fy).sqrt() / px_r;
            if r > 2.5 {
                continue;
            }
            let core = (-r * r).exp();
            let ring = (-(r - 1.0) * (r - 1.0) * 4.0).exp();
            let idx = |ch: usize| (ch * s + y as usize) * s + x as usize;
            let d = image.data_mut();
            // TMQ: moist ring + core.
            d[idx(channel::TMQ)] += (power * (0.7 * ring + 0.6 * core)) as f32;
            // PSL: deep low at the centre.
            d[idx(channel::PSL)] -= (power * core) as f32;
            // Tangential wind field (u, v) ∝ spin × (−fy, fx)/r.
            let denom = (fx * fx + fy * fy).sqrt().max(1e-6);
            let vmag = power * ring;
            if c > channel::U {
                d[idx(channel::U)] += (spin * vmag * (-fy / denom)) as f32;
            }
            if c > channel::V {
                d[idx(channel::V)] += (spin * vmag * (fx / denom)) as f32;
            }
            // Generic upper channels get a damped copy (correlated state).
            for ch in 4..c {
                d[idx(ch)] += (0.3 * power * core) as f32;
            }
        }
    }
}

/// Atmospheric-river filament: elevated TMQ along a line segment.
fn render_filament(image: &mut Tensor, x0: f64, y0: f64, x1: f64, y1: f64, width: f64, _rng: &mut TensorRng) {
    let shape = image.shape();
    let (c, s) = (shape.c, shape.h);
    let (px0, py0) = (x0 * s as f64, y0 * s as f64);
    let (px1, py1) = (x1 * s as f64, y1 * s as f64);
    let w_px = (width * s as f64).max(1.0);
    let (dx, dy) = (px1 - px0, py1 - py0);
    let len2 = (dx * dx + dy * dy).max(1e-9);

    let xmin = (px0.min(px1) - 3.0 * w_px).max(0.0) as usize;
    let xmax = ((px0.max(px1) + 3.0 * w_px) as usize).min(s - 1);
    let ymin = (py0.min(py1) - 3.0 * w_px).max(0.0) as usize;
    let ymax = ((py0.max(py1) + 3.0 * w_px) as usize).min(s - 1);

    for y in ymin..=ymax {
        for x in xmin..=xmax {
            let fx = x as f64 + 0.5;
            let fy = y as f64 + 0.5;
            // Distance from the segment.
            let t = (((fx - px0) * dx + (fy - py0) * dy) / len2).clamp(0.0, 1.0);
            let ex = px0 + t * dx - fx;
            let ey = py0 + t * dy - fy;
            let dist = (ex * ex + ey * ey).sqrt() / w_px;
            if dist > 3.0 {
                continue;
            }
            let a = (-dist * dist).exp();
            let d = image.data_mut();
            d[(channel::TMQ * s + y) * s + x] += (1.2 * a) as f32;
            // Moisture transport: wind along the filament.
            if c > channel::V {
                let norm = len2.sqrt();
                d[(channel::U * s + y) * s + x] += (0.5 * a * dx / norm) as f32;
                d[(channel::V * s + y) * s + x] += (0.5 * a * dy / norm) as f32;
            }
        }
    }
}

/// Converts per-frame boxes into the grid targets consumed by
/// `scidl_nn::DetectionTargets` — one positive cell per box (the cell
/// containing the box centre), YOLO-style.
pub fn boxes_to_targets(
    boxes_per_item: &[Vec<GtBox>],
    grid: usize,
    classes: usize,
) -> scidl_nn::DetectionTargets {
    let n = boxes_per_item.len();
    let mut t = scidl_nn::DetectionTargets::empty(n, grid, grid, classes);
    for (i, boxes) in boxes_per_item.iter().enumerate() {
        for b in boxes {
            let gx = ((b.cx * grid as f32) as usize).min(grid - 1);
            let gy = ((b.cy * grid as f32) as usize).min(grid - 1);
            let ox = (b.cx * grid as f32 - gx as f32).clamp(0.0, 1.0);
            let oy = (b.cy * grid as f32 - gy as f32).clamp(0.0, 1.0);
            t.add_object(i, gy, gx, b.class, ox, oy, b.w, b.h);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ds(n: usize, seed: u64) -> ClimateDataset {
        ClimateDataset::generate(ClimateConfig::small(), n, seed)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_ds(4, 3);
        let b = small_ds(4, 3);
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.image.data(), y.image.data());
            assert_eq!(x.boxes, y.boxes);
            assert_eq!(x.labelled, y.labelled);
        }
    }

    #[test]
    fn frames_have_requested_shape() {
        let ds = small_ds(2, 5);
        let s = ds.samples[0].image.shape();
        assert_eq!(s, Shape4::new(1, 4, 64, 64));
        assert!(ds.samples[0].image.all_finite());
    }

    #[test]
    fn boxes_are_normalised() {
        let ds = small_ds(30, 7);
        for sample in &ds.samples {
            for b in &sample.boxes {
                assert!((0.0..=1.0).contains(&b.cx) && (0.0..=1.0).contains(&b.cy));
                assert!(b.w > 0.0 && b.h > 0.0 && b.w <= 1.0 && b.h <= 1.0);
                assert!(b.class < 3);
            }
        }
    }

    #[test]
    fn labelled_fraction_respected() {
        let ds = ClimateDataset::generate(
            ClimateConfig { labelled_fraction: 0.3, ..ClimateConfig::small() },
            500,
            11,
        );
        let frac = ds.samples.iter().filter(|s| s.labelled).count() as f64 / 500.0;
        assert!((frac - 0.3).abs() < 0.08, "labelled fraction {frac}");
    }

    #[test]
    fn tc_produces_local_tmq_maximum_and_psl_minimum() {
        let cfg = ClimateConfig { events_per_frame: 0.0, ..ClimateConfig::small() };
        let mut rng = TensorRng::new(42);
        let mut frame = generate_frame(&cfg, &mut rng);
        let before_tmq = frame.image.clone();
        let boxed = render_event(&mut frame.image, EventClass::TropicalCyclone, &mut rng);
        let s = 64;
        let cx = (boxed.cx * s as f32) as usize;
        let cy = (boxed.cy * s as f32) as usize;
        let idx = |ch: usize| (ch * s + cy) * s + cx;
        // PSL dropped at the centre; TMQ rose near the ring.
        assert!(frame.image.data()[idx(channel::PSL)] < before_tmq.data()[idx(channel::PSL)]);
        let tmq_delta: f32 = frame
            .image
            .data()
            .iter()
            .zip(before_tmq.data())
            .take(s * s)
            .map(|(a, b)| a - b)
            .sum();
        assert!(tmq_delta > 0.0, "TC must add water vapour");
    }

    #[test]
    fn gather_hides_unlabelled_boxes() {
        let ds = ClimateDataset::generate(
            ClimateConfig { labelled_fraction: 0.0, events_per_frame: 3.0, ..ClimateConfig::small() },
            4,
            13,
        );
        let (batch, boxes) = ds.gather(&[0, 1, 2, 3]);
        assert_eq!(batch.shape().n, 4);
        assert!(boxes.iter().all(|b| b.is_empty()));
        // Ground truth still exists on the samples themselves.
        assert!(ds.samples.iter().any(|s| !s.boxes.is_empty()));
    }

    #[test]
    fn targets_mark_box_centres() {
        let boxes = vec![vec![GtBox { class: 2, cx: 0.55, cy: 0.30, w: 0.2, h: 0.1 }]];
        let t = boxes_to_targets(&boxes, 8, 3);
        assert_eq!(t.positives(), 1);
        // cell (gy, gx) = (2, 4): 0.30*8=2.4 → 2; 0.55*8=4.4 → 4.
        let cell = 2 * 8 + 4;
        assert_eq!(t.conf[cell], 1.0);
        assert_eq!(t.class[cell], 2);
        // Offsets are the fractional parts.
        assert!((t.bbox[cell] - 0.4).abs() < 1e-5);
        assert!((t.bbox[64 + cell] - 0.4).abs() < 1e-5);
    }

    #[test]
    fn event_mix_covers_all_classes() {
        let ds = ClimateDataset::generate(
            ClimateConfig { events_per_frame: 3.0, ..ClimateConfig::small() },
            60,
            17,
        );
        let mut seen = [false; 3];
        for s in &ds.samples {
            for b in &s.boxes {
                seen[b.class] = true;
            }
        }
        assert!(seen.iter().all(|&x| x), "all three event classes should appear");
    }
}
