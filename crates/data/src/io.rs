//! Binary dataset storage — the stand-in for the paper's HDF5 input
//! pipeline.
//!
//! Sec. VI-A identifies two I/O bottlenecks: "I/O throughput from a
//! single Xeon Phi core is relatively slow" and "the current HDF5
//! library is not multi-threaded". This module provides the substrate
//! that pipeline needs: a simple self-describing container for image
//! batches with per-image random access, a single-threaded reader (the
//! HDF5 analogue) and a sharded parallel reader (the fix the paper left
//! to future work), plus a throughput probe used to justify the
//! simulator's `io_bw` parameters.
//!
//! Format (little-endian): magic `b"SDAT"`, version u32, image count
//! u64, channels u32, height u32, width u32, then `count` records of
//! `label u32 + C*H*W f32`.

use scidl_tensor::{Shape4, Tensor};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SDAT";
const VERSION: u32 = 1;

/// Header of a dataset file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatasetHeader {
    /// Number of images.
    pub count: u64,
    /// Channels per image.
    pub channels: u32,
    /// Image height.
    pub height: u32,
    /// Image width.
    pub width: u32,
}

impl DatasetHeader {
    /// Bytes of one record (label + pixels).
    pub fn record_bytes(&self) -> u64 {
        4 + (self.channels as u64) * (self.height as u64) * (self.width as u64) * 4
    }

    /// Flat pixel count per image.
    pub fn pixels(&self) -> usize {
        (self.channels * self.height * self.width) as usize
    }

    const HEADER_BYTES: u64 = 4 + 4 + 8 + 4 + 4 + 4;
}

/// Writes a labelled image dataset to `path`.
pub fn write_dataset(path: &Path, images: &Tensor, labels: &[usize]) -> io::Result<()> {
    let s = images.shape();
    assert_eq!(s.n, labels.len(), "label count mismatch");
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(s.n as u64).to_le_bytes())?;
    w.write_all(&(s.c as u32).to_le_bytes())?;
    w.write_all(&(s.h as u32).to_le_bytes())?;
    w.write_all(&(s.w as u32).to_le_bytes())?;
    for (i, &label) in labels.iter().enumerate() {
        w.write_all(&(label as u32).to_le_bytes())?;
        for &px in images.item(i) {
            w.write_all(&px.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Single-threaded random-access reader — the analogue of the paper's
/// HDF5 path.
#[derive(Debug)]
pub struct DatasetReader {
    file: BufReader<File>,
    header: DatasetHeader,
}

impl DatasetReader {
    /// Opens a dataset file, validating the header.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut file = BufReader::new(File::open(path)?);
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut magic = [0u8; 4];
        file.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a scidl dataset"));
        }
        let mut u32buf = [0u8; 4];
        file.read_exact(&mut u32buf)?;
        if u32::from_le_bytes(u32buf) != VERSION {
            return Err(bad("unsupported dataset version"));
        }
        let mut u64buf = [0u8; 8];
        file.read_exact(&mut u64buf)?;
        let count = u64::from_le_bytes(u64buf);
        let mut dims = [0u32; 3];
        for d in dims.iter_mut() {
            file.read_exact(&mut u32buf)?;
            *d = u32::from_le_bytes(u32buf);
        }
        let header = DatasetHeader { count, channels: dims[0], height: dims[1], width: dims[2] };
        // Validate the file length.
        let expect = DatasetHeader::HEADER_BYTES + count * header.record_bytes();
        let actual = file.get_ref().metadata()?.len();
        if actual != expect {
            return Err(bad("dataset length mismatch"));
        }
        Ok(Self { file, header })
    }

    /// The file's header.
    pub fn header(&self) -> DatasetHeader {
        self.header
    }

    /// Reads one record by index.
    pub fn read_image(&mut self, index: u64) -> io::Result<(Vec<f32>, usize)> {
        assert!(index < self.header.count, "index out of range");
        let off = DatasetHeader::HEADER_BYTES + index * self.header.record_bytes();
        self.file.seek(SeekFrom::Start(off))?;
        let mut u32buf = [0u8; 4];
        self.file.read_exact(&mut u32buf)?;
        let label = u32::from_le_bytes(u32buf) as usize;
        let mut raw = vec![0u8; self.header.pixels() * 4];
        self.file.read_exact(&mut raw)?;
        let pixels = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok((pixels, label))
    }

    /// Reads a whole minibatch into an NCHW tensor.
    pub fn read_batch(&mut self, indices: &[u64]) -> io::Result<(Tensor, Vec<usize>)> {
        let h = self.header;
        let mut out = Tensor::zeros(Shape4::new(
            indices.len(),
            h.channels as usize,
            h.height as usize,
            h.width as usize,
        ));
        let mut labels = Vec::with_capacity(indices.len());
        for (j, &i) in indices.iter().enumerate() {
            let (pixels, label) = self.read_image(i)?;
            out.item_mut(j).copy_from_slice(&pixels);
            labels.push(label);
        }
        Ok((out, labels))
    }
}

/// Reads a batch with one thread per shard — the multi-threaded reader
/// the paper names as future work. Opens `threads` independent handles.
pub fn read_batch_parallel(
    path: &Path,
    indices: &[u64],
    threads: usize,
) -> io::Result<(Tensor, Vec<usize>)> {
    assert!(threads >= 1);
    let header = DatasetReader::open(path)?.header();
    let mut out = Tensor::zeros(Shape4::new(
        indices.len(),
        header.channels as usize,
        header.height as usize,
        header.width as usize,
    ));
    let mut labels = vec![0usize; indices.len()];

    let chunk = indices.len().div_ceil(threads);
    type ShardResult = Vec<(usize, Vec<f32>, usize)>;
    let results: Vec<io::Result<ShardResult>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, idx_chunk) in indices.chunks(chunk).enumerate() {
            let path = path.to_path_buf();
            handles.push(scope.spawn(move || {
                let mut reader = DatasetReader::open(&path)?;
                let mut local = Vec::with_capacity(idx_chunk.len());
                for (j, &i) in idx_chunk.iter().enumerate() {
                    let (pixels, label) = reader.read_image(i)?;
                    local.push((t * chunk + j, pixels, label));
                }
                Ok(local)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("reader thread panicked")).collect()
    });
    for r in results {
        for (slot, pixels, label) in r? {
            out.item_mut(slot).copy_from_slice(&pixels);
            labels[slot] = label;
        }
    }
    Ok((out, labels))
}

// ---------------------------------------------------------------------------
// Climate container: frames with bounding boxes and the labelled flag.
// ---------------------------------------------------------------------------

const CLIMATE_MAGIC: &[u8; 4] = b"SCLM";

/// Writes a climate dataset (frames + ground-truth boxes + labelled
/// flags) to `path`. Format: magic `b"SCLM"`, version u32, frame count
/// u64, channels u32, size u32, then per frame: labelled u8, box count
/// u32, boxes as `(class u32, cx, cy, w, h f32)`, then `C*S*S` f32
/// pixels.
pub fn write_climate_dataset(path: &Path, ds: &crate::ClimateDataset) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(CLIMATE_MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(ds.len() as u64).to_le_bytes())?;
    let shape = ds.samples.first().map(|s| s.image.shape());
    let (c, s) = shape.map(|sh| (sh.c, sh.h)).unwrap_or((0, 0));
    w.write_all(&(c as u32).to_le_bytes())?;
    w.write_all(&(s as u32).to_le_bytes())?;
    for frame in &ds.samples {
        assert_eq!(frame.image.shape().c, c, "inconsistent channel count");
        w.write_all(&[frame.labelled as u8])?;
        w.write_all(&(frame.boxes.len() as u32).to_le_bytes())?;
        for b in &frame.boxes {
            w.write_all(&(b.class as u32).to_le_bytes())?;
            for v in [b.cx, b.cy, b.w, b.h] {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        for &px in frame.image.data() {
            w.write_all(&px.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads a climate dataset written by [`write_climate_dataset`].
pub fn read_climate_dataset(path: &Path, config: crate::ClimateConfig) -> io::Result<crate::ClimateDataset> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut f = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    f.read_exact(&mut magic)?;
    if &magic != CLIMATE_MAGIC {
        return Err(bad("not a scidl climate dataset"));
    }
    let mut u32b = [0u8; 4];
    f.read_exact(&mut u32b)?;
    if u32::from_le_bytes(u32b) != VERSION {
        return Err(bad("unsupported climate dataset version"));
    }
    let mut u64b = [0u8; 8];
    f.read_exact(&mut u64b)?;
    let count = u64::from_le_bytes(u64b) as usize;
    f.read_exact(&mut u32b)?;
    let c = u32::from_le_bytes(u32b) as usize;
    f.read_exact(&mut u32b)?;
    let s = u32::from_le_bytes(u32b) as usize;

    let mut samples = Vec::with_capacity(count);
    for _ in 0..count {
        let mut flag = [0u8; 1];
        f.read_exact(&mut flag)?;
        f.read_exact(&mut u32b)?;
        let nboxes = u32::from_le_bytes(u32b) as usize;
        if nboxes > 1024 {
            return Err(bad("implausible box count"));
        }
        let mut boxes = Vec::with_capacity(nboxes);
        for _ in 0..nboxes {
            f.read_exact(&mut u32b)?;
            let class = u32::from_le_bytes(u32b) as usize;
            let mut vals = [0.0f32; 4];
            for v in vals.iter_mut() {
                f.read_exact(&mut u32b)?;
                *v = f32::from_le_bytes(u32b);
            }
            boxes.push(crate::GtBox { class, cx: vals[0], cy: vals[1], w: vals[2], h: vals[3] });
        }
        let mut raw = vec![0u8; c * s * s * 4];
        f.read_exact(&mut raw)?;
        let pixels: Vec<f32> = raw
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().unwrap()))
            .collect();
        samples.push(crate::ClimateSample {
            image: Tensor::from_vec(Shape4::new(1, c, s, s), pixels),
            boxes,
            labelled: flag[0] != 0,
        });
    }
    // Trailing garbage means a corrupt file.
    let mut extra = [0u8; 1];
    if f.read(&mut extra)? != 0 {
        return Err(bad("trailing bytes in climate dataset"));
    }
    Ok(crate::ClimateDataset { config, samples })
}

/// Measures sequential read throughput (bytes/second) over the whole
/// file — the probe behind the simulator's `io_bw` settings.
pub fn measure_read_bandwidth(path: &Path) -> io::Result<f64> {
    let t0 = std::time::Instant::now();
    let mut reader = DatasetReader::open(path)?;
    let count = reader.header().count;
    let mut total = 0u64;
    for i in 0..count {
        let (pixels, _) = reader.read_image(i)?;
        total += pixels.len() as u64 * 4 + 4;
    }
    Ok(total as f64 / t0.elapsed().as_secs_f64().max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hep::{HepConfig, HepDataset};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("scidl_data_{name}_{}", std::process::id()));
        p
    }

    fn sample() -> HepDataset {
        HepDataset::generate(HepConfig::small(), 12, 3)
    }

    #[test]
    fn roundtrip_preserves_images_and_labels() {
        let ds = sample();
        let path = tmp("roundtrip");
        write_dataset(&path, &ds.images, &ds.labels).unwrap();
        let mut reader = DatasetReader::open(&path).unwrap();
        assert_eq!(reader.header().count, 12);
        assert_eq!(reader.header().channels, 3);
        for i in [0u64, 5, 11] {
            let (pixels, label) = reader.read_image(i).unwrap();
            assert_eq!(pixels, ds.images.item(i as usize));
            assert_eq!(label, ds.labels[i as usize]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_read_matches_gather() {
        let ds = sample();
        let path = tmp("batch");
        write_dataset(&path, &ds.images, &ds.labels).unwrap();
        let mut reader = DatasetReader::open(&path).unwrap();
        let (batch, labels) = reader.read_batch(&[2, 7, 4]).unwrap();
        let (want, want_labels) = ds.gather(&[2, 7, 4]);
        assert_eq!(batch.data(), want.data());
        assert_eq!(labels, want_labels);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parallel_reader_matches_sequential() {
        let ds = sample();
        let path = tmp("parallel");
        write_dataset(&path, &ds.images, &ds.labels).unwrap();
        let indices: Vec<u64> = vec![0, 3, 6, 9, 1, 4];
        let mut reader = DatasetReader::open(&path).unwrap();
        let (seq, seq_labels) = reader.read_batch(&indices).unwrap();
        let (par, par_labels) = read_batch_parallel(&path, &indices, 3).unwrap();
        assert_eq!(seq.data(), par.data());
        assert_eq!(seq_labels, par_labels);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_magic_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"JUNKJUNKJUNKJUNKJUNKJUNKJUNK").unwrap();
        let err = DatasetReader::open(&path).unwrap_err();
        assert!(err.to_string().contains("not a scidl dataset"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let ds = sample();
        let path = tmp("trunc");
        write_dataset(&path, &ds.images, &ds.labels).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let err = DatasetReader::open(&path).unwrap_err();
        assert!(err.to_string().contains("length mismatch"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn climate_roundtrip_preserves_frames_boxes_and_flags() {
        use crate::climate::{ClimateConfig, ClimateDataset};
        let cfg = ClimateConfig { events_per_frame: 2.5, ..ClimateConfig::small() };
        let ds = ClimateDataset::generate(cfg, 5, 21);
        let path = tmp("climate_rt");
        write_climate_dataset(&path, &ds).unwrap();
        let back = read_climate_dataset(&path, cfg).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), ds.len());
        for (a, b) in ds.samples.iter().zip(&back.samples) {
            assert_eq!(a.image.data(), b.image.data());
            assert_eq!(a.boxes, b.boxes);
            assert_eq!(a.labelled, b.labelled);
        }
    }

    #[test]
    fn climate_reader_rejects_wrong_magic() {
        use crate::climate::ClimateConfig;
        let ds = sample();
        let path = tmp("climate_magic");
        // A HEP dataset file is not a climate file.
        write_dataset(&path, &ds.images, &ds.labels).unwrap();
        let err = read_climate_dataset(&path, ClimateConfig::small()).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("not a scidl climate dataset"));
    }

    #[test]
    fn climate_reader_rejects_trailing_bytes() {
        use crate::climate::{ClimateConfig, ClimateDataset};
        let cfg = ClimateConfig::small();
        let ds = ClimateDataset::generate(cfg, 2, 23);
        let path = tmp("climate_trail");
        write_climate_dataset(&path, &ds).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0xFF);
        std::fs::write(&path, &bytes).unwrap();
        let err = read_climate_dataset(&path, cfg).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("trailing bytes"));
    }

    #[test]
    fn bandwidth_probe_reports_positive() {
        let ds = sample();
        let path = tmp("bw");
        write_dataset(&path, &ds.images, &ds.labels).unwrap();
        let bw = measure_read_bandwidth(&path).unwrap();
        assert!(bw > 0.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn out_of_range_read_panics() {
        let ds = sample();
        let path = tmp("range");
        write_dataset(&path, &ds.images, &ds.labels).unwrap();
        let mut reader = DatasetReader::open(&path).unwrap();
        let _ = reader.read_image(99);
    }
}
