//! Synthetic HEP event generator and cut-based benchmark analysis.
//!
//! Stands in for the paper's Pythia 8 + Delphes pipeline (Sec. I-A): we
//! generate two event classes —
//!
//! * **Background**: QCD multi-jet events. A mostly back-to-back dijet
//!   system plus soft radiation; steeply falling pT spectrum.
//! * **Signal**: pair-produced heavy particles ("gluinos"), each decaying
//!   into three jets collimated around the parent axis. Compared to
//!   background at the *same* HT, signal events carry more jets, a more
//!   spherical topology and locally *clustered* jet groups — structure
//!   visible in the low-level image but only partially captured by the
//!   high-level features the cut-based benchmark [5] uses.
//!
//! Events are rendered onto a cylindrical η–φ calorimeter image with
//! three channels (Table I/II): electromagnetic energy, hadronic energy
//! and track counts. A preselection keeps only events in an overlapping
//! HT window, mirroring the paper's filtering to "those more challenging
//! to discriminate".

use scidl_tensor::{Shape4, Tensor, TensorRng};

/// η acceptance of the detector image.
const ETA_MAX: f64 = 2.5;

/// One reconstructed jet.
#[derive(Clone, Copy, Debug)]
struct Jet {
    pt: f64,
    eta: f64,
    phi: f64,
    /// Electromagnetic energy fraction.
    em_frac: f64,
    /// Charged-track multiplicity.
    ntrk: usize,
}

/// High-level physics features of one event — the inputs to the paper's
/// benchmark selections (HT, jet counts, leading-jet pT).
#[derive(Clone, Copy, Debug, Default)]
pub struct HepFeatures {
    /// Scalar sum of jet transverse momenta (GeV).
    pub ht: f32,
    /// Number of jets above threshold.
    pub njets: u32,
    /// Leading-jet pT (GeV).
    pub leading_pt: f32,
    /// Total charged-track multiplicity.
    pub ntracks: u32,
}

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct HepConfig {
    /// Square image side in pixels (224 at paper scale).
    pub image_size: usize,
    /// Fraction of generated events that are signal (the paper trains on
    /// a filtered, roughly balanced sample carved from 6.4M signal + 64M
    /// background events).
    pub signal_fraction: f64,
    /// Apply the HT-window preselection that keeps only events in the
    /// signal/background overlap region.
    pub preselect: bool,
}

impl HepConfig {
    /// Paper-scale configuration: 224x224 images.
    pub fn paper() -> Self {
        Self { image_size: 224, signal_fraction: 0.5, preselect: true }
    }

    /// Laptop-scale configuration: 32x32 images for fast training runs.
    pub fn small() -> Self {
        Self { image_size: 32, signal_fraction: 0.5, preselect: true }
    }
}

/// An in-memory labelled HEP dataset.
pub struct HepDataset {
    /// Generator configuration used.
    pub config: HepConfig,
    /// Images `(n, 3, s, s)`.
    pub images: Tensor,
    /// Labels: 1 = signal, 0 = background.
    pub labels: Vec<usize>,
    /// High-level features per event (for the cut-based baseline).
    pub features: Vec<HepFeatures>,
}

impl HepDataset {
    /// Generates `n` events deterministically from `seed`.
    pub fn generate(config: HepConfig, n: usize, seed: u64) -> Self {
        let s = config.image_size;
        let mut rng = TensorRng::new(seed ^ 0x4845_5045);
        let mut images = Tensor::zeros(Shape4::new(n, 3, s, s));
        let mut labels = Vec::with_capacity(n);
        let mut features = Vec::with_capacity(n);

        for i in 0..n {
            let is_signal = rng.bernoulli(config.signal_fraction);
            let (jets, feats) = loop {
                let jets = if is_signal {
                    gen_signal_jets(&mut rng)
                } else {
                    gen_background_jets(&mut rng)
                };
                let feats = compute_features(&jets);
                if !config.preselect || preselection(&feats) {
                    break (jets, feats);
                }
            };
            render_event(&jets, images.item_mut(i), s, &mut rng);
            labels.push(is_signal as usize);
            features.push(feats);
        }
        Self { config, images, labels, features }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Augments the dataset with φ-rotated copies of each event.
    ///
    /// The detector is a cylinder: rotating every particle by a common
    /// azimuthal angle is an exact physical symmetry, so rolling the
    /// image along the φ axis produces a genuinely valid new training
    /// view (unlike generic image augmentations). Appends `copies`
    /// rotated versions of every event, each by a random roll.
    pub fn augment_phi_rotations(&mut self, copies: usize, seed: u64) {
        let mut rng = TensorRng::new(seed ^ 0xA06);
        let s = self.config.image_size;
        let plane = s * s;
        let n0 = self.len();
        let mut new_items: Vec<Vec<f32>> = Vec::with_capacity(n0 * copies);
        for _ in 0..copies {
            for i in 0..n0 {
                let roll = rng.below(s);
                let src = self.images.item(i);
                let mut dst = vec![0.0f32; src.len()];
                // φ is the image row axis: roll rows within each channel.
                for c in 0..3 {
                    for y in 0..s {
                        let ny = (y + roll) % s;
                        dst[c * plane + ny * s..c * plane + ny * s + s]
                            .copy_from_slice(&src[c * plane + y * s..c * plane + y * s + s]);
                    }
                }
                new_items.push(dst);
                self.labels.push(self.labels[i]);
                self.features.push(self.features[i]);
            }
        }
        let mut data = self.images.data().to_vec();
        for item in &new_items {
            data.extend_from_slice(item);
        }
        self.images = Tensor::from_vec(
            Shape4::new(n0 + new_items.len(), 3, s, s),
            data,
        );
    }

    /// Copies a batch of events by index into a fresh tensor + label vec.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let s = self.images.shape();
        let mut out = Tensor::zeros(s.with_n(indices.len()));
        let mut labels = Vec::with_capacity(indices.len());
        for (j, &i) in indices.iter().enumerate() {
            out.item_mut(j).copy_from_slice(self.images.item(i));
            labels.push(self.labels[i]);
        }
        (out, labels)
    }
}

/// The paper's preselection analogue: keep events in the HT/jet window
/// where the two classes overlap and discrimination is hard.
fn preselection(f: &HepFeatures) -> bool {
    f.ht > 600.0 && f.ht < 2200.0 && f.njets >= 3
}

fn compute_features(jets: &[Jet]) -> HepFeatures {
    let ht: f64 = jets.iter().map(|j| j.pt).sum();
    let leading = jets.iter().map(|j| j.pt).fold(0.0, f64::max);
    HepFeatures {
        ht: ht as f32,
        njets: jets.len() as u32,
        leading_pt: leading as f32,
        ntracks: jets.iter().map(|j| j.ntrk as u32).sum(),
    }
}

/// QCD multi-jet background: hard dijet system plus Poisson soft jets.
fn gen_background_jets(rng: &mut TensorRng) -> Vec<Jet> {
    let mut jets = Vec::new();
    // Falling leading-pT spectrum.
    let lead_pt = 250.0 + 260.0 * (-rng.uniform().max(1e-12).ln());
    let phi1 = rng.uniform_range(-std::f64::consts::PI, std::f64::consts::PI);
    let eta1 = rng.normal_ms(0.0, 1.1).clamp(-ETA_MAX, ETA_MAX);
    jets.push(make_jet(rng, lead_pt, eta1, phi1, false));
    // Recoiling jet, roughly back-to-back with pT balance.
    let phi2 = wrap_phi(phi1 + std::f64::consts::PI + rng.normal_ms(0.0, 0.25));
    let eta2 = rng.normal_ms(0.0, 1.1).clamp(-ETA_MAX, ETA_MAX);
    let balance = rng.uniform_range(0.75, 1.0);
    jets.push(make_jet(rng, lead_pt * balance, eta2, phi2, false));
    // Soft radiation jets.
    let nsoft = rng.poisson(1.0);
    for _ in 0..nsoft {
        let pt = 40.0 + 90.0 * (-rng.uniform().max(1e-12).ln());
        let phi = rng.uniform_range(-std::f64::consts::PI, std::f64::consts::PI);
        let eta = rng.normal_ms(0.0, 1.4).clamp(-ETA_MAX, ETA_MAX);
        jets.push(make_jet(rng, pt, eta, phi, false));
    }
    jets
}

/// Signal: two back-to-back heavy parents, each decaying into 2–3
/// resolved jets collimated around the parent axis (occasionally two
/// decay products merge into one jet, as a real jet algorithm would),
/// plus initial-state radiation. Jet multiplicity therefore *overlaps*
/// the background's — the cut baseline retains discriminating power but
/// cannot see the angular clustering the CNN exploits.
fn gen_signal_jets(rng: &mut TensorRng) -> Vec<Jet> {
    let mut jets = Vec::new();
    let parent_phi = rng.uniform_range(-std::f64::consts::PI, std::f64::consts::PI);
    for side in 0..2 {
        let phi0 = wrap_phi(parent_phi + side as f64 * std::f64::consts::PI + rng.normal_ms(0.0, 0.15));
        let eta0 = rng.normal_ms(0.0, 0.9).clamp(-1.8, 1.8);
        // Parent energy split over the decay jets; with some probability
        // two products merge and are reconstructed as one jet.
        let parent_pt = rng.normal_ms(560.0, 150.0).max(200.0);
        let merged = rng.bernoulli(0.4);
        let fracs: Vec<f64> = if merged {
            let a = rng.uniform_range(0.35, 0.65);
            vec![a, 1.0 - a]
        } else {
            let mut f = [rng.uniform() + 0.2, rng.uniform() + 0.2, rng.uniform() + 0.2];
            let s: f64 = f.iter().sum();
            f.iter_mut().for_each(|x| *x /= s);
            f.to_vec()
        };
        for &frac in &fracs {
            let d_eta = rng.normal_ms(0.0, 0.4);
            let d_phi = rng.normal_ms(0.0, 0.4);
            jets.push(make_jet(
                rng,
                (parent_pt * frac).max(25.0),
                (eta0 + d_eta).clamp(-ETA_MAX, ETA_MAX),
                wrap_phi(phi0 + d_phi),
                true,
            ));
        }
    }
    // Initial-state radiation, indistinguishable from background soft jets.
    let nisr = rng.poisson(0.7);
    for _ in 0..nisr {
        let pt = 40.0 + 80.0 * (-rng.uniform().max(1e-12).ln());
        let phi = rng.uniform_range(-std::f64::consts::PI, std::f64::consts::PI);
        let eta = rng.normal_ms(0.0, 1.4).clamp(-ETA_MAX, ETA_MAX);
        jets.push(make_jet(rng, pt, eta, phi, false));
    }
    jets
}

fn make_jet(rng: &mut TensorRng, pt: f64, eta: f64, phi: f64, signal: bool) -> Jet {
    // Signal jets (from heavy-flavour-rich decays) are slightly
    // track-richer and less electromagnetic at the same pT — low-level
    // structure the HT/njet cuts cannot exploit, but with substantial
    // overlap so the CNN's advantage stays moderate.
    let em_frac = if signal {
        rng.uniform_range(0.2, 0.6)
    } else {
        rng.uniform_range(0.3, 0.75)
    };
    let trk_rate = if signal { pt / 7.5 } else { pt / 9.0 };
    Jet { pt, eta, phi, em_frac, ntrk: rng.poisson(trk_rate.min(80.0)) }
}

#[inline]
fn wrap_phi(phi: f64) -> f64 {
    let mut p = phi;
    while p > std::f64::consts::PI {
        p -= std::f64::consts::TAU;
    }
    while p < -std::f64::consts::PI {
        p += std::f64::consts::TAU;
    }
    p
}

/// Renders jets into the 3-channel image (`item` is one NCHW batch item,
/// channel-major): channel 0 ECAL, 1 HCAL, 2 tracks. φ wraps cylindrically
/// (the image seam is periodic, like the real detector).
fn render_event(jets: &[Jet], item: &mut [f32], s: usize, rng: &mut TensorRng) {
    let plane = s * s;
    let to_px_eta = |eta: f64| (eta + ETA_MAX) / (2.0 * ETA_MAX) * s as f64;
    let to_px_phi = |phi: f64| (phi + std::f64::consts::PI) / std::f64::consts::TAU * s as f64;

    for jet in jets {
        let cx = to_px_eta(jet.eta);
        let cy = to_px_phi(jet.phi);
        // Calorimeter splash: ECAL narrow, HCAL wide. Widths in pixels,
        // scaled with the image so small images keep the same topology.
        let sigma_em = 0.030 * s as f64;
        let sigma_had = 0.060 * s as f64;
        let amp = (1.0 + jet.pt / 100.0).ln() as f32;
        deposit_gaussian(&mut item[0..plane], s, cx, cy, sigma_em, amp * jet.em_frac as f32);
        deposit_gaussian(&mut item[plane..2 * plane], s, cx, cy, sigma_had, amp * (1.0 - jet.em_frac) as f32);
        // Discrete track hits scattered around the core.
        let trk_plane = &mut item[2 * plane..3 * plane];
        for _ in 0..jet.ntrk {
            let hx = cx + rng.normal_ms(0.0, sigma_em);
            let hy = cy + rng.normal_ms(0.0, sigma_em);
            let x = hx.rem_euclid(s as f64) as usize % s;
            let y = hy.rem_euclid(s as f64) as usize % s;
            trk_plane[y * s + x] += 0.25;
        }
    }
}

/// Adds a truncated Gaussian blob; y (φ) wraps, x (η) clips.
fn deposit_gaussian(plane: &mut [f32], s: usize, cx: f64, cy: f64, sigma: f64, amp: f32) {
    let r = (3.0 * sigma).ceil() as isize;
    let x0 = cx.floor() as isize;
    let y0 = cy.floor() as isize;
    let inv2s2 = 1.0 / (2.0 * sigma * sigma);
    for dy in -r..=r {
        let y = (y0 + dy).rem_euclid(s as isize) as usize;
        for dx in -r..=r {
            let x = x0 + dx;
            if x < 0 || x >= s as isize {
                continue;
            }
            let fx = x as f64 + 0.5 - cx;
            let fy = (y0 + dy) as f64 + 0.5 - cy;
            let w = (-((fx * fx + fy * fy) * inv2s2)).exp() as f32;
            plane[y * s + x as usize] += amp * w;
        }
    }
}

// ---------------------------------------------------------------------------
// Cut-based benchmark analysis (the paper's baseline, Sec. I-A / VII-A).
// ---------------------------------------------------------------------------

/// A benchmark selection: an event passes when every feature exceeds its
/// threshold. This mirrors the physics-motivated selections of [5]
/// (HT, jet multiplicity and leading-jet pT cuts).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CutSelection {
    /// Minimum HT (GeV).
    pub ht_min: f32,
    /// Minimum jet multiplicity.
    pub njets_min: u32,
    /// Minimum leading-jet pT (GeV).
    pub leading_min: f32,
}

impl CutSelection {
    /// Whether an event passes the selection.
    pub fn passes(&self, f: &HepFeatures) -> bool {
        f.ht >= self.ht_min && f.njets >= self.njets_min && f.leading_pt >= self.leading_min
    }
}

/// (false-positive rate, true-positive rate) of a selection on a dataset.
pub fn selection_rates(sel: &CutSelection, ds: &HepDataset) -> (f64, f64) {
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut pos = 0u64;
    let mut neg = 0u64;
    for (f, &l) in ds.features.iter().zip(&ds.labels) {
        let pass = sel.passes(f);
        if l == 1 {
            pos += 1;
            tp += pass as u64;
        } else {
            neg += 1;
            fp += pass as u64;
        }
    }
    (fp as f64 / neg.max(1) as f64, tp as f64 / pos.max(1) as f64)
}

/// Grid-searches cut thresholds to maximise TPR subject to
/// `FPR <= fpr_budget`; returns the best selection and its (FPR, TPR).
/// This is our re-implementation of tuning the benchmark analysis of [5]
/// at the working point the paper evaluates (FPR = 0.02%, Sec. VII-A).
pub fn tune_cuts(ds: &HepDataset, fpr_budget: f64) -> (CutSelection, f64, f64) {
    let mut best = (CutSelection { ht_min: f32::MAX, njets_min: 99, leading_min: f32::MAX }, 0.0, 0.0);
    for ht in (600..2300).step_by(100) {
        for nj in 3..9 {
            for lead in (100..900).step_by(100) {
                let sel = CutSelection {
                    ht_min: ht as f32,
                    njets_min: nj,
                    leading_min: lead as f32,
                };
                let (fpr, tpr) = selection_rates(&sel, ds);
                if fpr <= fpr_budget && tpr > best.2 {
                    best = (sel, fpr, tpr);
                }
            }
        }
    }
    best
}

/// TPR of a score-based classifier at the largest threshold whose
/// FPR ≤ `fpr_budget` (the metric of Sec. VII-A).
pub fn tpr_at_fpr(scores: &[f32], labels: &[usize], fpr_budget: f64) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let pos = labels.iter().filter(|&&l| l == 1).count().max(1) as f64;
    let neg = labels.iter().filter(|&&l| l == 0).count().max(1) as f64;
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut best_tpr = 0.0;
    for &i in &order {
        if labels[i] == 1 {
            tp += 1.0;
        } else {
            fp += 1.0;
            if fp / neg > fpr_budget {
                break;
            }
        }
        if fp / neg <= fpr_budget {
            best_tpr = tp / pos;
        }
    }
    best_tpr
}

/// Area under the ROC curve via the Mann–Whitney U statistic (exact,
/// including tie handling) — the summary metric used alongside the
/// paper's fixed-FPR working point.
pub fn auc(scores: &[f32], labels: &[usize]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap_or(std::cmp::Ordering::Equal));
    // Assign average ranks to ties.
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    let pos = labels.iter().filter(|&&l| l == 1).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    let rank_sum: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(&l, _)| l == 1)
        .map(|(_, &r)| r)
        .sum();
    (rank_sum - pos as f64 * (pos as f64 + 1.0) / 2.0) / (pos as f64 * neg as f64)
}

/// Full ROC curve as (FPR, TPR) points, sorted by descending threshold.
pub fn roc_curve(scores: &[f32], labels: &[usize]) -> Vec<(f64, f64)> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let pos = labels.iter().filter(|&&l| l == 1).count().max(1) as f64;
    let neg = labels.iter().filter(|&&l| l == 0).count().max(1) as f64;
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut out = Vec::with_capacity(order.len());
    for &i in &order {
        if labels[i] == 1 {
            tp += 1.0;
        } else {
            fp += 1.0;
        }
        out.push((fp / neg, tp / pos));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ds(n: usize, seed: u64) -> HepDataset {
        HepDataset::generate(HepConfig::small(), n, seed)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_ds(16, 7);
        let b = small_ds(16, 7);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.images.data(), b.images.data());
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_ds(16, 7);
        let b = small_ds(16, 8);
        assert_ne!(a.images.data(), b.images.data());
    }

    #[test]
    fn label_balance_follows_config() {
        let ds = small_ds(600, 1);
        let sig = ds.labels.iter().sum::<usize>() as f64 / ds.len() as f64;
        assert!((sig - 0.5).abs() < 0.08, "signal fraction {sig}");
    }

    #[test]
    fn images_are_finite_and_nonnegative() {
        let ds = small_ds(32, 3);
        assert!(ds.images.all_finite());
        assert!(ds.images.min() >= 0.0);
        assert!(ds.images.max() > 0.0, "images should have energy deposits");
    }

    #[test]
    fn preselection_bounds_ht() {
        let ds = small_ds(200, 5);
        for f in &ds.features {
            assert!(f.ht > 600.0 && f.ht < 2200.0, "HT {} outside window", f.ht);
            assert!(f.njets >= 3);
        }
    }

    #[test]
    fn signal_has_more_jets_on_average() {
        let ds = small_ds(400, 11);
        let mean = |lbl: usize| {
            let v: Vec<f64> = ds
                .features
                .iter()
                .zip(&ds.labels)
                .filter(|(_, &l)| l == lbl)
                .map(|(f, _)| f.njets as f64)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(mean(1) > mean(0), "signal {} vs background {}", mean(1), mean(0));
    }

    #[test]
    fn signal_is_track_richer() {
        let ds = small_ds(400, 13);
        let mean = |lbl: usize| {
            let v: Vec<f64> = ds
                .features
                .iter()
                .zip(&ds.labels)
                .filter(|(_, &l)| l == lbl)
                .map(|(f, _)| f.ntracks as f64)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(mean(1) > mean(0));
    }

    #[test]
    fn phi_augmentation_preserves_energy_and_labels() {
        let mut ds = small_ds(6, 31);
        let base_energy: Vec<f32> = (0..6).map(|i| ds.images.item(i).iter().sum()).collect();
        ds.augment_phi_rotations(2, 7);
        assert_eq!(ds.len(), 18);
        // Rotations are exact rolls: per-event total energy preserved.
        for copy in 0..2 {
            for (i, &base) in base_energy.iter().enumerate() {
                let j = 6 + copy * 6 + i;
                let e: f32 = ds.images.item(j).iter().sum();
                assert!((e - base).abs() < 1e-3, "event {j}");
                assert_eq!(ds.labels[j], ds.labels[i]);
                assert_eq!(ds.features[j].ht, ds.features[i].ht);
            }
        }
    }

    #[test]
    fn phi_augmentation_actually_rotates() {
        let mut ds = small_ds(2, 33);
        let orig = ds.images.item(0).to_vec();
        ds.augment_phi_rotations(1, 9);
        // The copy differs from the original (non-zero roll with
        // overwhelming probability for this seed) but has the same sorted
        // pixel multiset per channel.
        let copy = ds.images.item(2);
        assert_ne!(&orig, copy);
        let s = ds.config.image_size;
        for c in 0..3 {
            let mut a: Vec<f32> = orig[c * s * s..(c + 1) * s * s].to_vec();
            let mut b: Vec<f32> = copy[c * s * s..(c + 1) * s * s].to_vec();
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            b.sort_by(|x, y| x.partial_cmp(y).unwrap());
            assert_eq!(a, b, "channel {c} pixel multiset changed");
        }
    }

    #[test]
    fn gather_copies_requested_items() {
        let ds = small_ds(10, 17);
        let (batch, labels) = ds.gather(&[3, 7]);
        assert_eq!(batch.shape().n, 2);
        assert_eq!(labels, vec![ds.labels[3], ds.labels[7]]);
        assert_eq!(batch.item(0), ds.images.item(3));
    }

    #[test]
    fn cuts_separate_better_than_chance_but_imperfectly() {
        let ds = small_ds(2000, 23);
        let (sel, fpr, tpr) = tune_cuts(&ds, 0.05);
        assert!(fpr <= 0.05, "fpr {fpr}");
        assert!(tpr > 0.05, "cuts should do better than nothing: tpr {tpr} sel {sel:?}");
        assert!(tpr < 0.98, "cuts should not be perfect on the filtered sample: tpr {tpr}");
    }

    #[test]
    fn tpr_at_fpr_perfect_scores() {
        let scores = vec![0.9, 0.8, 0.2, 0.1];
        let labels = vec![1, 1, 0, 0];
        assert_eq!(tpr_at_fpr(&scores, &labels, 0.0), 1.0);
    }

    #[test]
    fn tpr_at_fpr_respects_budget() {
        // One FP ranked above the second TP.
        let scores = vec![0.9, 0.85, 0.8, 0.1];
        let labels = vec![1, 0, 1, 0];
        // Budget 0: only the top positive counts before the FP arrives.
        assert_eq!(tpr_at_fpr(&scores, &labels, 0.0), 0.5);
        // Budget 0.5 (one of two negatives): both positives reachable.
        assert_eq!(tpr_at_fpr(&scores, &labels, 0.5), 1.0);
    }

    #[test]
    fn roc_curve_monotone() {
        let ds = small_ds(300, 29);
        // Score by HT as a weak classifier.
        let scores: Vec<f32> = ds.features.iter().map(|f| f.ht).collect();
        let roc = roc_curve(&scores, &ds.labels);
        for w in roc.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
        let last = roc.last().unwrap();
        assert!((last.0 - 1.0).abs() < 1e-9 && (last.1 - 1.0).abs() < 1e-9);
    }

    /// HT spectrum falls: within the preselection window, low-HT bins
    /// must hold more background events than high-HT bins (steeply
    /// falling QCD spectrum).
    #[test]
    fn background_ht_spectrum_falls() {
        let ds = HepDataset::generate(
            HepConfig { signal_fraction: 0.0, ..HepConfig::small() },
            1500,
            41,
        );
        let low = ds.features.iter().filter(|f| f.ht < 1000.0).count();
        let high = ds.features.iter().filter(|f| f.ht >= 1400.0).count();
        assert!(
            low > 2 * high,
            "QCD HT spectrum should fall: {low} low vs {high} high"
        );
    }

    /// Background dijets are back-to-back in φ: the two hardest jets'
    /// energy should concentrate in opposite image halves more often
    /// than not. We proxy this with the φ separation of the two leading
    /// deposits being biased toward π.
    #[test]
    fn background_leading_jets_are_back_to_back() {
        let mut near = 0;
        let mut far = 0;
        // Regenerate raw jets directly for a clean measurement.
        let mut rng = TensorRng::new(77);
        for _ in 0..500 {
            let jets = gen_background_jets(&mut rng);
            let mut sorted = jets.clone();
            sorted.sort_by(|a, b| b.pt.partial_cmp(&a.pt).unwrap());
            let dphi = wrap_phi(sorted[0].phi - sorted[1].phi).abs();
            if dphi > std::f64::consts::PI / 2.0 {
                far += 1;
            } else {
                near += 1;
            }
        }
        assert!(far > 3 * near, "dijets should be back-to-back: {far} far vs {near} near");
    }

    /// Signal decay jets cluster: the mean φ separation between a signal
    /// event's two most collimated jets is far below the background's.
    #[test]
    fn signal_jets_cluster_tighter_than_background() {
        let mut rng = TensorRng::new(79);
        let min_sep = |jets: &[Jet]| -> f64 {
            let mut best = f64::MAX;
            for i in 0..jets.len() {
                for j in i + 1..jets.len() {
                    let deta = jets[i].eta - jets[j].eta;
                    let dphi = wrap_phi(jets[i].phi - jets[j].phi);
                    best = best.min((deta * deta + dphi * dphi).sqrt());
                }
            }
            best
        };
        let n = 400;
        let sig: f64 = (0..n).map(|_| min_sep(&gen_signal_jets(&mut rng))).sum::<f64>() / n as f64;
        let bkg: f64 = (0..n).map(|_| min_sep(&gen_background_jets(&mut rng))).sum::<f64>() / n as f64;
        assert!(
            sig < 0.8 * bkg,
            "signal decay products should be collimated: {sig:.3} vs {bkg:.3}"
        );
    }

    /// φ is uniformly populated over many events (no detector azimuthal
    /// bias): the energy in each of four φ quadrants agrees within 20%.
    #[test]
    fn phi_occupancy_is_uniform_in_aggregate() {
        let ds = small_ds(300, 47);
        let s = ds.config.image_size;
        let mut quadrant = [0.0f64; 4];
        for i in 0..ds.len() {
            let item = ds.images.item(i);
            for y in 0..s {
                let q = y * 4 / s;
                for x in 0..s {
                    quadrant[q] += item[y * s + x] as f64; // ECAL channel
                }
            }
        }
        let mean = quadrant.iter().sum::<f64>() / 4.0;
        for (q, &e) in quadrant.iter().enumerate() {
            assert!(
                (e - mean).abs() / mean < 0.2,
                "quadrant {q} energy {e:.1} deviates from mean {mean:.1}"
            );
        }
    }

    #[test]
    fn auc_perfect_random_and_inverted() {
        let labels = vec![1, 1, 0, 0];
        assert_eq!(auc(&[0.9, 0.8, 0.2, 0.1], &labels), 1.0);
        assert_eq!(auc(&[0.1, 0.2, 0.8, 0.9], &labels), 0.0);
        // All-equal scores: AUC 0.5 by tie handling.
        assert_eq!(auc(&[0.5, 0.5, 0.5, 0.5], &labels), 0.5);
    }

    #[test]
    fn auc_degenerate_single_class() {
        assert_eq!(auc(&[0.1, 0.9], &[1, 1]), 0.5);
    }

    #[test]
    fn phi_wraps_cylindrically() {
        assert!((wrap_phi(4.0) - (4.0 - std::f64::consts::TAU)).abs() < 1e-12);
        assert!((wrap_phi(-4.0) - (-4.0 + std::f64::consts::TAU)).abs() < 1e-12);
        assert_eq!(wrap_phi(1.0), 1.0);
    }
}
