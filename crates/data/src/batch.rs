//! Deterministic minibatch sampling with per-node sharding.
//!
//! In the paper's data-parallel setting every node draws its own chunk of
//! the global minibatch from its local shard of the dataset. The sampler
//! reproduces that: each (seed, node) pair yields an independent,
//! reproducible shuffled stream over the node's shard.

use scidl_tensor::TensorRng;

/// An epoch-reshuffling minibatch index sampler.
pub struct BatchSampler {
    indices: Vec<usize>,
    batch: usize,
    pos: usize,
    rng: TensorRng,
}

impl BatchSampler {
    /// Samples batches of `batch` indices from `0..n`.
    pub fn new(n: usize, batch: usize, seed: u64) -> Self {
        assert!(batch > 0, "batch size must be positive");
        assert!(n > 0, "dataset must be non-empty");
        let mut s = Self {
            indices: (0..n).collect(),
            batch,
            pos: 0,
            rng: TensorRng::new(seed ^ 0xBA7C4),
        };
        s.reshuffle();
        s
    }

    /// Sampler over the shard owned by `node` of `num_nodes` (round-robin
    /// assignment of indices), with a node-specific stream.
    pub fn for_node(n: usize, batch: usize, seed: u64, node: usize, num_nodes: usize) -> Self {
        assert!(num_nodes > 0 && node < num_nodes);
        let shard: Vec<usize> = (0..n).filter(|i| i % num_nodes == node).collect();
        assert!(!shard.is_empty(), "shard for node {node} is empty (n={n}, nodes={num_nodes})");
        let mut rng = TensorRng::new(seed ^ 0xBA7C4);
        let mut s = Self {
            indices: shard,
            batch,
            pos: 0,
            rng: rng.fork(node as u64 + 1),
        };
        s.reshuffle();
        s
    }

    fn reshuffle(&mut self) {
        // Fisher–Yates.
        for i in (1..self.indices.len()).rev() {
            let j = self.rng.below(i + 1);
            self.indices.swap(i, j);
        }
        self.pos = 0;
    }

    /// Number of items in this sampler's shard.
    pub fn shard_len(&self) -> usize {
        self.indices.len()
    }

    /// Draws the next minibatch of indices, reshuffling at epoch
    /// boundaries. Batches always have exactly `batch` entries; a partial
    /// tail wraps into the next epoch.
    pub fn next_batch(&mut self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.batch);
        while out.len() < self.batch {
            if self.pos >= self.indices.len() {
                self.reshuffle();
            }
            out.push(self.indices[self.pos]);
            self.pos += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn batches_have_requested_size() {
        let mut s = BatchSampler::new(10, 3, 1);
        for _ in 0..5 {
            assert_eq!(s.next_batch().len(), 3);
        }
    }

    #[test]
    fn one_epoch_covers_every_index() {
        let mut s = BatchSampler::new(12, 4, 2);
        let mut seen = HashSet::new();
        for _ in 0..3 {
            seen.extend(s.next_batch());
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = BatchSampler::new(20, 5, 7);
        let mut b = BatchSampler::new(20, 5, 7);
        for _ in 0..4 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
        let mut c = BatchSampler::new(20, 5, 8);
        let batches_a: Vec<_> = (0..4).map(|_| a.next_batch()).collect();
        let batches_c: Vec<_> = (0..4).map(|_| c.next_batch()).collect();
        assert_ne!(batches_a, batches_c);
    }

    #[test]
    fn shards_partition_the_dataset() {
        let n = 17;
        let nodes = 4;
        let mut all = HashSet::new();
        let mut total = 0;
        for node in 0..nodes {
            let s = BatchSampler::for_node(n, 2, 3, node, nodes);
            total += s.shard_len();
            all.extend(s.indices.iter().copied());
        }
        assert_eq!(total, n);
        assert_eq!(all.len(), n);
    }

    #[test]
    fn node_streams_differ() {
        let a = BatchSampler::for_node(100, 4, 9, 0, 2);
        let b = BatchSampler::for_node(100, 4, 9, 1, 2);
        // Shards are disjoint by construction.
        let sa: HashSet<_> = a.indices.iter().collect();
        assert!(b.indices.iter().all(|i| !sa.contains(i)));
    }

    #[test]
    fn wraps_across_epochs() {
        let mut s = BatchSampler::new(3, 2, 4);
        let mut counts = [0usize; 3];
        for _ in 0..30 {
            for i in s.next_batch() {
                counts[i] += 1;
            }
        }
        // 60 draws over 3 items → 20 each.
        assert_eq!(counts, [20, 20, 20]);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn rejects_zero_batch() {
        let _ = BatchSampler::new(10, 0, 1);
    }
}
