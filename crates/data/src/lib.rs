#![warn(missing_docs)]
//! # scidl-data
//!
//! Synthetic dataset generators standing in for the paper's two scientific
//! datasets, which are not publicly reproducible:
//!
//! * [`hep`] replaces the 10M-event Pythia 8 + Delphes simulation of
//!   Sec. I-A — RPV-SUSY-like multi-jet *signal* events versus QCD
//!   multi-jet *background*, rendered as 3-channel calorimeter images
//!   (ECAL energy, HCAL energy, track counts) on a cylindrical η–φ grid,
//!   together with the high-level physics features (HT, jet multiplicity,
//!   leading-jet pT) that the paper's cut-based benchmark analysis [5]
//!   uses.
//! * [`climate`] replaces the 15TB CAM5 climate archive of Sec. I-B —
//!   16-channel atmospheric state images with embedded extreme-weather
//!   events (tropical cyclones, extra-tropical cyclones, atmospheric
//!   rivers) and ground-truth bounding boxes, with a configurable labelled
//!   fraction for semi-supervised training.
//!
//! Both generators are fully deterministic given a seed, sized by a config
//! so tests run at laptop scale while the benchmark harness reports the
//! paper-scale characteristics of Table I.

pub mod batch;
pub mod climate;
pub mod hep;
pub mod io;

pub use batch::BatchSampler;
pub use climate::{ClimateConfig, ClimateDataset, ClimateSample, GtBox};
pub use hep::{HepConfig, HepDataset, HepFeatures};

/// One row of Table I: the characteristics of a dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// Dataset name as in Table I.
    pub name: &'static str,
    /// Image side in pixels (square images).
    pub pixels: usize,
    /// Channel count.
    pub channels: usize,
    /// Number of images at paper scale.
    pub images: u64,
    /// Total volume in terabytes (f32 pixels).
    pub volume_tb: f64,
}

impl DatasetStats {
    /// Computes the volume from the geometric parameters.
    pub fn computed(name: &'static str, pixels: usize, channels: usize, images: u64) -> Self {
        let bytes_per_image = (pixels * pixels * channels * 4) as f64;
        Self {
            name,
            pixels,
            channels,
            images,
            volume_tb: bytes_per_image * images as f64 / 1e12,
        }
    }
}

/// Paper-scale characteristics of the HEP dataset (Table I).
pub fn hep_stats() -> DatasetStats {
    DatasetStats::computed("HEP", 224, 3, 10_000_000)
}

/// Paper-scale characteristics of the climate dataset (Table I).
pub fn climate_stats() -> DatasetStats {
    DatasetStats::computed("Climate", 768, 16, 400_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes_match_paper() {
        let h = hep_stats();
        assert_eq!((h.pixels, h.channels, h.images), (224, 3, 10_000_000));
        let c = climate_stats();
        assert_eq!((c.pixels, c.channels, c.images), (768, 16, 400_000));
    }

    #[test]
    fn table1_volumes_in_paper_ballpark() {
        // Paper: HEP 7.4TB, Climate 15TB. Raw-f32 arithmetic gives 6.0TB
        // and 15.1TB; the HEP gap is storage overhead in the original
        // HDF5 files. We assert the computed volumes are in range.
        let h = hep_stats();
        assert!((5.5..7.5).contains(&h.volume_tb), "HEP volume {}", h.volume_tb);
        let c = climate_stats();
        assert!((14.0..16.0).contains(&c.volume_tb), "Climate volume {}", c.volume_tb);
    }
}
