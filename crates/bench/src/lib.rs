#![warn(missing_docs)]
//! # scidl-bench
//!
//! The harness that regenerates every table and figure of the paper's
//! evaluation section. Each binary corresponds to one artifact (see
//! DESIGN.md's per-experiment index):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table I — dataset characteristics |
//! | `table2` | Table II — architecture specifications |
//! | `fig5` | Fig. 5 — single-node per-layer time & FLOP rate |
//! | `fig6` | Fig. 6 — strong scaling |
//! | `fig7` | Fig. 7 — weak scaling |
//! | `fig8` | Fig. 8 — loss vs wall-clock, sync vs hybrid |
//! | `overall` | Sec. VI-B3 — full-system peak/sustained PFLOP/s |
//! | `hep_science` | Sec. VII-A — TPR at fixed FPR vs the cut baseline |
//! | `climate_science` | Sec. VII-B / Fig. 9 — detections + rendering |
//! | `ablation_ps` | per-layer PS vs single PS |
//! | `ablation_momentum` | momentum × asynchrony grid |
//! | `resilience` | Sec. VIII-A — failure behaviour |
//! | `serving` | dynamic-batching latency/throughput frontier (`scidl-serve`) |
//! | `kernels` | per-node kernel GFLOP/s (packed GEMM vs seed baseline) |
//!
//! Criterion benches (`cargo bench -p scidl-bench`) measure the real Rust
//! kernels (GEMM/conv/all-reduce) and the simulator itself.
//!
//! This library crate holds the small table/CSV formatting helpers the
//! binaries share.

/// Parses `--trace <out.json>` from `std::env::args()`. When the flag is
/// present, installs a fresh global [`scidl_trace::TraceSink`] — so every
/// instrumented layer (engines, comm, serving) starts recording — and
/// returns the output path for [`finish_trace`].
pub fn trace_from_args() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace" {
            let path = args.next().expect("--trace requires an output path, e.g. --trace out.json");
            scidl_trace::install(std::sync::Arc::new(scidl_trace::TraceSink::new()));
            return Some(path.into());
        }
    }
    None
}

/// Uninstalls the global trace sink and writes what it collected: Chrome
/// `trace_event` JSON at `path` (load it at `chrome://tracing` or
/// <https://ui.perfetto.dev>) plus the per-iteration CSV next to it
/// (same stem, `.csv` extension). Health alerts, if any, go to stderr.
pub fn finish_trace(path: &std::path::Path) {
    let Some(sink) = scidl_trace::uninstall() else { return };
    match sink.write_chrome_json(path) {
        Ok(()) => println!("trace: {} events -> {}", sink.events().len(), path.display()),
        Err(e) => println!("(could not write {}: {e})", path.display()),
    }
    let csv_path = path.with_extension("csv");
    match sink.write_iteration_csv(&csv_path) {
        Ok(()) => println!("trace: {} iteration rows -> {}", sink.rows().len(), csv_path.display()),
        Err(e) => println!("(could not write {}: {e})", csv_path.display()),
    }
    if sink.dropped() > 0 {
        eprintln!("trace: {} events dropped (sink at capacity)", sink.dropped());
    }
    for a in sink.health_alerts() {
        eprintln!(
            "trace: numeric-health alert: {}{}: {} non-finite value(s), first at [{}] = {}",
            a.source,
            a.layer.as_deref().map(|l| format!(" / layer {l}")).unwrap_or_default(),
            a.count,
            a.first_index,
            a.value
        );
    }
}

/// Renders rows as a GitHub-flavoured markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers.iter().map(|s| s.to_string()).collect(), &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
    }
    out
}

/// Renders rows as CSV (comma-separated, no quoting — callers keep cells
/// comma-free).
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row arity mismatch");
        for cell in row {
            assert!(!cell.contains(','), "CSV cells must not contain commas");
        }
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Formats a float with the given precision, normalising `-0.00…` to
/// `0.00…`.
pub fn fnum(v: f64, prec: usize) -> String {
    let s = format!("{v:.prec$}");
    if s.starts_with("-0.") && s[3..].bytes().all(|b| b == b'0') {
        s[1..].to_string()
    } else {
        s
    }
}

/// An ASCII scatter chart for quick terminal visualisation of series
/// (used by `fig8` to sketch loss curves).
pub fn ascii_chart(series: &[(&str, &[(f64, f32)])], width: usize, height: usize) -> String {
    let mut xmax = f64::MIN;
    let mut ymin = f32::MAX;
    let mut ymax = f32::MIN;
    for (_, pts) in series {
        for &(x, y) in *pts {
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
    }
    if !xmax.is_finite() || ymin > ymax {
        return String::from("(no data)\n");
    }
    let span = (ymax - ymin).max(1e-9);
    let mut grid = vec![vec![' '; width]; height];
    let marks = ['s', 'S', '2', '4', '8', '*'];
    for (si, (_, pts)) in series.iter().enumerate() {
        let m = marks[si % marks.len()];
        for &(x, y) in *pts {
            let cx = ((x / xmax.max(1e-12)) * (width - 1) as f64).round() as usize;
            let cy = (((ymax - y) / span) * (height - 1) as f32).round() as usize;
            grid[cy.min(height - 1)][cx.min(width - 1)] = m;
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{ymax:>8.3} |")
        } else if i == height - 1 {
            format!("{ymin:>8.3} |")
        } else {
            String::from("         |")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("          0 … {xmax:.1}s\n"));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("  [{}] {}\n", marks[si % marks.len()], name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_aligns_columns() {
        let t = markdown_table(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["100".into(), "x".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with("|--"));
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn csv_joins_rows() {
        let c = csv(&["x", "y"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn csv_rejects_ragged_rows() {
        let _ = csv(&["x", "y"], &[vec!["1".into()]]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(-0.0001, 2), "0.00");
    }

    #[test]
    fn ascii_chart_renders_series() {
        let a: Vec<(f64, f32)> = vec![(0.0, 1.0), (5.0, 0.5), (10.0, 0.1)];
        let s = ascii_chart(&[("sync", &a)], 30, 8);
        assert!(s.contains('s'));
        assert!(s.lines().count() >= 9);
    }

    #[test]
    fn ascii_chart_handles_empty() {
        let s = ascii_chart(&[], 10, 4);
        assert!(s.contains("no data"));
    }
}
