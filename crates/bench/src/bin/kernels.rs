//! Kernel throughput table — the per-node GFLOP/s trajectory.
//!
//! Times the packed register-tiled GEMM against the retained pre-packing
//! seed kernel on the paper's HEP/climate conv-lowered shapes (forward
//! NN, weight-gradient NT, backward-data TN, plus a square TT case), and
//! the end-to-end conv layer forward+backward on HEP/climate layer
//! geometries. These are the numbers that roll up into the paper's
//! ≈2 TFLOP/s-per-KNL-node Table 2 rates — on one sequential container
//! core the absolute scale is ~100× smaller, but the per-shape ratios
//! (and the packed-vs-seed speedup) are the tracked quantity.
//!
//! Emits a markdown table on stdout and writes
//! `results/kernels.{csv,txt}`.
//!
//! ```text
//! cargo run --release -p scidl-bench --bin kernels [--fast]
//! ```
//!
//! `--fast` (the CI smoke) runs one rep per shape instead of best-of-5
//! and skips the largest climate shape.

use scidl_bench::{csv, fnum, markdown_table};
use scidl_nn::{Conv2d, Layer};
use scidl_tensor::{gemm, gemm_unpacked, Shape4, TensorRng, Transpose};
use std::time::Instant;

/// `(label, ta, tb, m, n, k)` — conv-lowered GEMM shapes (see the
/// criterion bench for the same list with the faster-or-equal assert).
const GEMM_SHAPES: &[(&str, Transpose, Transpose, usize, usize, usize)] = &[
    ("hep_fwd_nn", Transpose::No, Transpose::No, 128, 196, 1152),
    ("hep_fwd_wide_nn", Transpose::No, Transpose::No, 128, 784, 1152),
    ("climate_enc_nn", Transpose::No, Transpose::No, 64, 3136, 576),
    ("hep_wgrad_nt", Transpose::No, Transpose::Yes, 128, 1152, 196),
    ("hep_bwddata_tn", Transpose::Yes, Transpose::No, 1152, 196, 128),
    ("square_tt", Transpose::Yes, Transpose::Yes, 256, 256, 256),
];

/// `(label, cin, cout, hw, k, stride, batch)` — layer geometries from the
/// two paper networks (spatial size reduced to keep one-core runtime
/// sane; the full climate 768² plane is ~150× this work).
const CONV_LAYERS: &[(&str, usize, usize, usize, usize, usize, usize)] = &[
    ("hep_conv_3to128_k3", 3, 128, 64, 3, 1, 4),
    ("hep_conv_128to128_k3", 128, 128, 14, 3, 1, 4),
    ("climate_enc_16to64_k5s2", 16, 64, 64, 5, 2, 4),
];

fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: populates the pack workspace pool
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let reps = if fast { 1 } else { 5 };

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    for &(label, ta, tb, m, n, k) in GEMM_SHAPES {
        if fast && m * n * k > 80_000_000 {
            continue;
        }
        let mut rng = TensorRng::new(11);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_range(-1.0, 1.0) as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform_range(-1.0, 1.0) as f32).collect();
        let mut out = vec![0.0f32; m * n];
        let flops = 2.0 * (m * n * k) as f64;
        let packed = flops / best_secs(reps, || {
            gemm(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut out);
        }) / 1e9;
        let seed = flops / best_secs(reps, || {
            gemm_unpacked(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut out);
        }) / 1e9;
        let dims = format!("{m}x{n}x{k}");
        rows.push(vec![
            format!("gemm/{label}"),
            dims.clone(),
            format!("{} GF/s", fnum(packed, 2)),
            format!("{} GF/s", fnum(seed, 2)),
            format!("{}x", fnum(packed / seed, 2)),
        ]);
        csv_rows.push(vec![
            format!("gemm/{label}"),
            dims,
            fnum(packed, 3),
            fnum(seed, 3),
            fnum(packed / seed, 3),
        ]);
    }

    for &(label, cin, cout, hw, k, stride, batch) in CONV_LAYERS {
        let mut rng = TensorRng::new(13);
        let mut conv = Conv2d::new("c", cin, cout, k, stride, k / 2, &mut rng);
        let x = rng.uniform_tensor(Shape4::new(batch, cin, hw, hw), -1.0, 1.0);
        // forward + backward ≈ 3× the forward MACs (fwd, wgrad, bwd-data).
        let flops = 3.0 * batch as f64 * conv.forward_flops_per_image(x.shape().with_n(1)) as f64;
        let secs = best_secs(reps, || {
            let y = conv.forward(&x);
            let _ = conv.backward(&y);
        });
        let rate = flops / secs / 1e9;
        let dims = format!("{batch}x{cin}x{hw}x{hw}->k{k}s{stride}x{cout}");
        rows.push(vec![
            format!("conv/{label}"),
            dims.clone(),
            format!("{} GF/s", fnum(rate, 2)),
            String::from("-"),
            String::from("-"),
        ]);
        csv_rows.push(vec![format!("conv/{label}"), dims, fnum(rate, 3), String::new(), String::new()]);
    }

    let headers = ["kernel", "shape", "packed", "seed", "speedup"];
    let table = markdown_table(&headers, &rows);
    println!("{table}");
    println!(
        "(packed = register-tiled packed GEMM; seed = pre-packing axpy baseline; \
         conv rows time layer fwd+bwd through the packed kernel)"
    );

    std::fs::create_dir_all("results").ok();
    let csv_text = csv(&["kernel", "shape", "packed_gflops", "seed_gflops", "speedup"], &csv_rows);
    match std::fs::write("results/kernels.csv", &csv_text) {
        Ok(()) => println!("written to results/kernels.csv"),
        Err(e) => println!("(could not write results/kernels.csv: {e})"),
    }
    let txt = format!(
        "Kernel throughput (one container core; paper's KNL nodes: ~2 TFLOP/s/node)\n\n{table}"
    );
    match std::fs::write("results/kernels.txt", &txt) {
        Ok(()) => println!("written to results/kernels.txt"),
        Err(e) => println!("(could not write results/kernels.txt: {e})"),
    }
}
