//! Ablation of **momentum vs asynchrony** (Sec. II-B2a / VI-B4,
//! following Mitliagkas et al. [31], "asynchrony begets momentum"): for
//! each group count, sweep the explicit SGD momentum and report the best
//! smoothed training loss within a fixed update budget. More groups →
//! more implicit momentum → lower optimal explicit momentum, and high
//! explicit momentum actively destabilises highly asynchronous runs.

use scidl_bench::{fnum, markdown_table};
use scidl_core::experiments::momentum_ablation;
use scidl_nn::solver::asynchrony_adjusted_momentum;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let (groups, updates): (&[usize], usize) = if fast { (&[1, 8], 80) } else { (&[1, 2, 4, 8], 150) };
    let momenta = [0.0f32, 0.7, 0.9, 0.95];
    let (batch, events) = (64, 1024);

    println!("Momentum x asynchrony grid ({updates} updates, total batch {batch})\n");
    let rows = momentum_ablation(groups, &momenta, updates, batch, events, 5);

    let mut table = Vec::new();
    for &g in groups {
        let mut row = vec![g.to_string()];
        let mut best: Option<(f32, f32)> = None;
        for &mu in &momenta {
            let r = rows
                .iter()
                .find(|r| r.groups == g && (r.momentum - mu).abs() < 1e-6)
                .unwrap();
            row.push(fnum(r.best_loss as f64, 4));
            if best.is_none() || r.best_loss < best.unwrap().1 {
                best = Some((mu, r.best_loss));
            }
        }
        row.push(fnum(best.unwrap().0 as f64, 2));
        row.push(fnum(asynchrony_adjusted_momentum(0.95, g) as f64, 2));
        table.push(row);
    }
    println!(
        "{}",
        markdown_table(
            &["groups", "mu=0.0", "mu=0.7", "mu=0.9", "mu=0.95", "best mu", "theory mu* (target 0.95)"],
            &table
        )
    );
    println!("\npaper: sync uses momentum 0.9; hybrid runs tune over {{0.0, 0.4, 0.7}} to");
    println!("compensate the implicit momentum contributed by asynchrony [31]. Expected:");
    println!("the best explicit momentum falls as the group count rises.");
}
