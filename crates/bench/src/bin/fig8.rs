//! Regenerates **Fig. 8** — training loss vs wall-clock for HEP on 1K
//! (virtual) nodes: synchronous vs hybrid with 2/4/8 groups, fixed total
//! batch.
//!
//! Gradients are real (scaled-down HEP problem); wall-clock is simulated
//! Cori time. The paper's readout: best hybrid reaches the target loss
//! ≈1.66× faster than the best sync run; the worst sync run is many
//! times slower.

use scidl_bench::{ascii_chart, finish_trace, fnum, markdown_table, trace_from_args};
use scidl_core::experiments::convergence::{fig8, Fig8Scale};

fn main() {
    let trace_path = trace_from_args();
    let fast = std::env::args().any(|a| a == "--fast");
    let overlap = std::env::args().any(|a| a == "--overlap");
    let mut scale = if fast {
        Fig8Scale {
            nodes: 256,
            total_batch: 256,
            sync_iterations: 48,
            dataset_events: 1024,
            smooth_window: 6,
            overlap_comm: false,
        }
    } else {
        Fig8Scale::default()
    };
    scale.overlap_comm = overlap;

    println!(
        "Fig. 8: loss vs simulated wall-clock ({} virtual nodes, total batch {}, comm overlap {})\n",
        scale.nodes,
        scale.total_batch,
        if overlap { "on" } else { "off" }
    );
    let result = fig8(&scale, 0xF168);

    let rows: Vec<Vec<String>> = result
        .runs
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.groups.to_string(),
                fnum(r.staleness, 2),
                r.curve
                    .final_loss()
                    .map(|l| fnum(l as f64, 4))
                    .unwrap_or_default(),
                r.time_to_target
                    .map(|t| format!("{} s", fnum(t, 1)))
                    .unwrap_or_else(|| "not reached".into()),
                format!("{} ms", fnum(r.iter_secs * 1e3, 2)),
                format!("{} ms", fnum(r.iter_secs_overlap * 1e3, 2)),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "run",
                "groups",
                "staleness",
                "final loss",
                &format!("time to loss {}", fnum(result.target_loss as f64, 3)),
                "iter (seq)",
                "iter (overlap)",
            ],
            &rows
        )
    );

    match result.best_hybrid_speedup {
        Some(s) => println!("best hybrid vs best sync speedup: {}x (paper: ~1.66x)\n", fnum(s, 2)),
        None => println!("best hybrid vs best sync speedup: n/a (target not reached)\n"),
    }

    let series: Vec<(&str, &[(f64, f32)])> = result
        .runs
        .iter()
        .map(|r| (r.label.as_str(), r.curve.points.as_slice()))
        .collect();
    println!("{}", ascii_chart(&series, 100, 24));

    if let Some(path) = trace_path {
        finish_trace(&path);
    }
}
