//! Regenerates **Fig. 5** — single-node runtime and FLOP rate of the top
//! time-consuming components at batch size 8.
//!
//! Two modes:
//! * default: the calibrated KNL model (what the paper measured on a
//!   Xeon Phi 7250),
//! * `--real`: additionally times our actual Rust kernels on the host
//!   for a scaled-down HEP network (224px full profile is expensive on a
//!   laptop; pass `--full` with `--real` to profile the full network).

use scidl_bench::{fnum, markdown_table};
use scidl_cluster::sim::single_node_profile;
use scidl_cluster::KnlModel;
use scidl_core::workloads::{climate_workload, hep_workload};
use scidl_tensor::{Shape4, TensorRng};

fn print_profile(name: &str, w: &scidl_cluster::sim::Workload, batch: usize) {
    let knl = KnlModel::default();
    let prof = single_node_profile(w, &knl, batch);
    let total_secs: f64 = prof.iter().map(|e| e.secs).sum();
    let total_flops: f64 = prof.iter().map(|e| e.flops).sum();

    println!("Fig. 5 ({name}): simulated KNL single-node profile, batch {batch}\n");
    let mut entries: Vec<_> = prof.iter().collect();
    entries.sort_by(|a, b| b.secs.partial_cmp(&a.secs).unwrap());
    let rows: Vec<Vec<String>> = entries
        .iter()
        .take(12)
        .map(|e| {
            vec![
                e.name.clone(),
                format!("{} ms", fnum(e.secs * 1e3, 2)),
                format!("{}%", fnum(100.0 * e.secs / total_secs, 1)),
                if e.flops > 0.0 {
                    format!("{} TF/s", fnum(e.flops / e.secs / 1e12, 2))
                } else {
                    "-".into()
                },
            ]
        })
        .collect();
    println!("{}", markdown_table(&["component", "time/iter", "share", "flop rate"], &rows));
    println!(
        "overall: {} ms/iteration, {} TF/s\n",
        fnum(total_secs * 1e3, 1),
        fnum(total_flops / total_secs / 1e12, 2)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let real = args.iter().any(|a| a == "--real");
    let full = args.iter().any(|a| a == "--full");

    print_profile("HEP", &hep_workload(), 8);
    println!("paper: HEP overall 1.90 TF/s; conv layers 1.25-3.5 TF/s; solver ~12.5%; I/O ~2%\n");
    print_profile("Climate", &climate_workload(), 8);
    println!("paper: Climate overall 2.09 TF/s; solver <2%; I/O ~13%\n");

    if real {
        let mut rng = TensorRng::new(7);
        let (mut net, input) = if full {
            (scidl_nn::arch::hep_network(&mut rng), Shape4::new(8, 3, 224, 224))
        } else {
            (scidl_nn::arch::hep_small(&mut rng), Shape4::new(8, 3, 32, 32))
        };
        println!(
            "-- real Rust kernels on this host ({}, batch 8) --\n",
            if full { "full 224px HEP network" } else { "scaled 32px HEP network" }
        );
        let prof = scidl_nn::profile::profile_network(&mut net, input, 1, 3);
        let rows: Vec<Vec<String>> = prof
            .iter()
            .map(|p| {
                vec![
                    p.name.clone(),
                    format!("{} ms", fnum(p.forward_secs * 1e3, 3)),
                    format!("{} ms", fnum(p.backward_secs * 1e3, 3)),
                    format!("{} GF/s", fnum(p.flop_rate() / 1e9, 2)),
                ]
            })
            .collect();
        println!("{}", markdown_table(&["layer", "fwd", "bwd", "rate"], &rows));
        println!(
            "aggregate host rate: {} GF/s",
            fnum(scidl_nn::profile::aggregate_flop_rate(&prof) / 1e9, 2)
        );
    }
}
