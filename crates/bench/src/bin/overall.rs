//! Regenerates **Sec. VI-B3 (Overall Performance)** — peak and sustained
//! system throughput at the paper's full-system configurations:
//!
//! * HEP: 9594 compute nodes + 6 PS in 9 groups, minibatch 1066/group
//!   (paper: 11.73 PF peak, 11.41 PF sustained, ~106 ms/iteration)
//! * Climate: 9608 compute nodes + 14 PS in 8 groups, minibatch
//!   9608/group, model snapshot every 10 iterations (paper: 15.07 PF
//!   peak, 13.27 PF sustained, ~12.16 s/iteration)
//!
//! Note on absolute numbers: our PFLOP/s are computed from *our*
//! networks' analytic FLOP counts (Sec. V methodology); the paper's SDE
//! counts imply ≈8x more FLOPs per HEP image than the architecture
//! description yields analytically, so our HEP absolute rate is lower
//! while iteration times and efficiencies are comparable (see
//! EXPERIMENTS.md).

use scidl_bench::{fnum, markdown_table};
use scidl_core::experiments::full_system;
use scidl_core::workloads::{climate_workload, hep_workload};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let iters = if fast { 12 } else { 40 };

    let hep = full_system(&hep_workload(), 9594, 9, 1066, iters, 0, 0x0A11);
    let climate = full_system(&climate_workload(), 9608, 8, 9608, iters.min(20), 10, 0x0A11);

    println!("Sec. VI-B3: full-system throughput\n");
    let rows = vec![
        vec![
            "HEP (9594 nodes, 9 groups, mb 1066)".to_string(),
            format!("{} PF", fnum(hep.peak_pflops, 2)),
            format!("{} PF", fnum(hep.sustained_pflops, 2)),
            format!("{}x", fnum(hep.speedup_vs_single, 0)),
            format!("{} ms", fnum(hep.mean_iter_secs * 1e3, 0)),
        ],
        vec![
            "Climate (9608 nodes, 8 groups, mb 9608)".to_string(),
            format!("{} PF", fnum(climate.peak_pflops, 2)),
            format!("{} PF", fnum(climate.sustained_pflops, 2)),
            format!("{}x", fnum(climate.speedup_vs_single, 0)),
            format!("{} s", fnum(climate.mean_iter_secs, 2)),
        ],
    ];
    println!(
        "{}",
        markdown_table(&["configuration", "peak", "sustained", "speedup vs 1 node", "iter time"], &rows)
    );
    println!("paper: HEP 11.73 PF peak / 11.41 PF sustained / 6173x / ~106 ms");
    println!("       Climate 15.07 PF peak / 13.27 PF sustained / 7205x / ~12.16 s (incl. snapshots)");
    println!("\nmean staleness: HEP {} updates, Climate {} updates", fnum(hep.staleness, 1), fnum(climate.staleness, 1));
}
