//! Serving benchmark — the latency/throughput frontier of dynamic
//! batching versus batch-1 on one KNL node running the HEP classifier,
//! plus the resilience degradation frontier under chaos.
//!
//! Sweeps offered load (open-loop Poisson arrivals at fractions and
//! multiples of the node's batch-32 saturated rate) × batching policy
//! through the deterministic virtual-time simulator
//! (`scidl-serve::sim`), so a fixed seed reproduces every number bit for
//! bit. Each point is run twice: clean, and under a standard serving
//! chaos plan (worker crash + straggler window, 250 ms deadlines), so
//! the frontier carries shed-rate and p99-under-chaos columns. Emits the
//! frontier as a markdown table on stdout and as `results/serving.csv`.
//!
//! The acceptance check: at saturating offered load, dynamic batching
//! must sustain ≥2× the throughput of batch-1 (the small-batch
//! efficiency cliff of Sec. II-A, exploited instead of suffered), with
//! p99 latency reported for both policies.
//!
//! With `--faults` the bench instead sweeps offered load × fault
//! severity (clean → light → heavy → storm) on a two-worker pool and
//! reports goodput, p99 and shed rate per cell — the degradation
//! frontier — written to `results/serving_chaos.csv`. Acceptance there:
//! every cell resolves all of its requests (exactly-once accounting),
//! goodput stays positive under every fault level, and the storm cell
//! replays bit-identically.
//!
//! With `--fleet` the bench sweeps the *fleet tier* instead: offered
//! load × replica count × dispatch policy through the virtual-time
//! fleet simulator (`scidl-serve::fleet`), under a skewed-load plan
//! (every worker of replica 0 is a 4× straggler). Each cell reports
//! throughput, p99, shed rate and replica-seconds cost, written to
//! `results/serving_fleet.csv`. Acceptance there: at the saturating
//! load factor, power-of-two-choices p99 must not exceed round-robin
//! p99 for every fleet size — the depth probes must steer around the
//! hot replica.
//!
//! ```text
//! cargo run --release -p scidl-bench --bin serving [--smoke|--fast] [--faults] [--fleet]
//! ```

use scidl_bench::{csv, finish_trace, fnum, markdown_table, trace_from_args};
use scidl_cluster::faults::FaultPlan;
use scidl_serve::fleet::{simulate_fleet, DispatchPolicy, FleetSimConfig, SimAutoscaler, SimCanary};
use scidl_serve::queue::BatchPolicy;
use scidl_serve::sim::{simulate, ServiceModel, SimConfig, SimOutcome};
use scidl_serve::PoissonArrivals;
use std::time::Duration;

const SEED: u64 = 4242;
/// Relative deadline attached to every request in chaos runs.
const CHAOS_DEADLINE_S: f64 = 0.25;

/// The standard single-node chaos plan the frontier's "under chaos"
/// columns are measured against: one mid-batch crash early in the run
/// and a 3× straggler window.
fn frontier_chaos() -> FaultPlan {
    FaultPlan::none().with_worker_crash(0, 3, 0.05).with_slow_worker(0, 10, 20, 3.0)
}

struct Point {
    offered: f64,
    policy: &'static str,
    completed: usize,
    rejected: usize,
    throughput: f64,
    p50_ms: f64,
    p99_ms: f64,
    queue_share: f64,
    shed_rate: f64,
    chaos_p99_ms: f64,
    chaos_shed_rate: f64,
}

fn run_point(
    model: &ServiceModel,
    policy: BatchPolicy,
    policy_name: &'static str,
    offered: f64,
    n: usize,
    seed: u64,
) -> Point {
    let arrivals: Vec<f64> = PoissonArrivals::new(seed, offered, n).collect();
    let cfg = SimConfig::new(1, 128, policy);
    let out = simulate(model, &arrivals, &cfg);
    let total = out.recorder.total_summary().expect("at least one request served");

    // The same schedule under the standard chaos plan, with deadlines so
    // overload degrades into typed sheds instead of unbounded queueing.
    let mut chaos_cfg = cfg.clone();
    chaos_cfg.faults = frontier_chaos();
    chaos_cfg.deadline_secs = Some(CHAOS_DEADLINE_S);
    let chaos = simulate(model, &arrivals, &chaos_cfg);
    assert_eq!(chaos.offered(), n, "chaos run must resolve every request");
    let chaos_p99_ms = chaos.recorder.total_summary().map_or(f64::NAN, |s| s.p99 * 1e3);

    Point {
        offered,
        policy: policy_name,
        completed: out.completed,
        rejected: out.rejected,
        throughput: out.throughput(),
        p50_ms: total.p50 * 1e3,
        p99_ms: total.p99 * 1e3,
        queue_share: out.recorder.queue_share().unwrap_or(0.0),
        shed_rate: out.shed_rate(),
        chaos_p99_ms,
        chaos_shed_rate: chaos.shed_rate(),
    }
}

fn frontier(model: &ServiceModel, n: usize) {
    let r1 = model.saturated_rate(1);
    let r32 = model.saturated_rate(32);
    println!("serving frontier: HEP classifier on one KNL node (seed {SEED}, {n} requests/point)\n");
    println!(
        "node capacity: batch-1 {} req/s ({} ms/image), batch-32 {} req/s ({} ms/image)",
        fnum(r1, 1),
        fnum(1e3 / r1, 2),
        fnum(r32, 1),
        fnum(1e3 / r32, 2)
    );
    println!(
        "chaos columns: worker crash after 3 batches (50 ms respawn) + 3x straggler \
         (batches 10..20), {} ms deadlines\n",
        fnum(CHAOS_DEADLINE_S * 1e3, 0)
    );

    let dynamic = BatchPolicy::dynamic(32, Duration::from_millis(10));
    let policies = [(BatchPolicy::batch1(), "batch-1"), (dynamic, "dynamic-32")];
    // Offered load from well under batch-1 capacity to 2× the batch-32
    // saturated rate (where even perfect batching must shed load).
    let load_factors = [0.5, 0.9, 1.5, 2.5, 4.0, 8.0];

    let mut points = Vec::new();
    for (li, &f) in load_factors.iter().enumerate() {
        for (policy, name) in policies {
            points.push(run_point(model, policy, name, f * r1, n, SEED + li as u64));
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{} req/s", fnum(p.offered, 0)),
                p.policy.to_string(),
                p.completed.to_string(),
                p.rejected.to_string(),
                format!("{} req/s", fnum(p.throughput, 1)),
                format!("{} ms", fnum(p.p50_ms, 2)),
                format!("{} ms", fnum(p.p99_ms, 2)),
                format!("{}%", fnum(100.0 * p.queue_share, 0)),
                format!("{}%", fnum(100.0 * p.shed_rate, 1)),
                format!("{} ms", fnum(p.chaos_p99_ms, 2)),
                format!("{}%", fnum(100.0 * p.chaos_shed_rate, 1)),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "offered",
                "policy",
                "served",
                "shed",
                "throughput",
                "p50",
                "p99",
                "queue share",
                "shed rate",
                "p99 chaos",
                "shed chaos",
            ],
            &rows
        )
    );

    let csv_rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                fnum(p.offered, 3),
                p.policy.to_string(),
                p.completed.to_string(),
                p.rejected.to_string(),
                fnum(p.throughput, 3),
                fnum(p.p50_ms, 4),
                fnum(p.p99_ms, 4),
                fnum(p.queue_share, 4),
                fnum(p.shed_rate, 4),
                fnum(p.chaos_p99_ms, 4),
                fnum(p.chaos_shed_rate, 4),
            ]
        })
        .collect();
    let csv_text = csv(
        &[
            "offered_rps",
            "policy",
            "served",
            "shed",
            "throughput_rps",
            "p50_ms",
            "p99_ms",
            "queue_share",
            "shed_rate",
            "chaos_p99_ms",
            "chaos_shed_rate",
        ],
        &csv_rows,
    );
    std::fs::create_dir_all("results").ok();
    match std::fs::write("results/serving.csv", &csv_text) {
        Ok(()) => println!("frontier written to results/serving.csv"),
        Err(e) => println!("(could not write results/serving.csv: {e})"),
    }

    // --- acceptance: dynamic ≥2× batch-1 at saturating offered load ----
    let saturating = *load_factors.last().unwrap() * r1;
    let at_sat = |name: &str| {
        points
            .iter()
            .find(|p| p.policy == name && (p.offered - saturating).abs() < 1e-9)
            .unwrap()
    };
    let b1 = at_sat("batch-1");
    let dy = at_sat("dynamic-32");
    let speedup = dy.throughput / b1.throughput;
    println!(
        "\nat saturating load ({} req/s offered):",
        fnum(saturating, 0)
    );
    println!(
        "  batch-1    sustains {} req/s, p99 {} ms",
        fnum(b1.throughput, 1),
        fnum(b1.p99_ms, 2)
    );
    println!(
        "  dynamic-32 sustains {} req/s, p99 {} ms",
        fnum(dy.throughput, 1),
        fnum(dy.p99_ms, 2)
    );
    println!("  dynamic batching speedup: {}x", fnum(speedup, 2));
    assert!(
        speedup >= 2.0,
        "acceptance: dynamic batching must sustain ≥2× batch-1 at saturation, got {speedup:.2}×"
    );
    println!("  acceptance: ≥2× sustained throughput — PASS");
}

/// One fault-severity level of the degradation frontier: its chaos plan
/// on a two-worker pool, plus the swap schedule it replays.
fn fault_level(name: &'static str) -> (FaultPlan, Vec<f64>) {
    match name {
        "clean" => (FaultPlan::none(), Vec::new()),
        "light" => (FaultPlan::none().with_worker_crash(0, 3, 0.05), Vec::new()),
        "heavy" => (
            FaultPlan::none()
                .with_worker_crash(0, 3, 0.05)
                .with_worker_crash(1, 6, 0.1)
                .with_slow_worker(0, 5, 15, 3.0),
            Vec::new(),
        ),
        "storm" => (
            FaultPlan::none()
                .with_worker_crash(0, 2, 0.1)
                .with_worker_crash(1, 4, 0.1)
                .with_worker_crash(0, 8, 0.2)
                .with_slow_worker(0, 3, 12, 4.0)
                .with_slow_worker(1, 6, 18, 3.0)
                .with_corrupt_swap(0)
                .with_corrupt_swap(1)
                .with_corrupt_swap(2),
            vec![0.05, 0.1, 0.15, 0.2, 0.25],
        ),
        other => unreachable!("unknown fault level {other}"),
    }
}

fn chaos_cell(model: &ServiceModel, offered: f64, level: &'static str, n: usize) -> SimOutcome {
    let arrivals: Vec<f64> = PoissonArrivals::new(SEED, offered, n).collect();
    let (faults, swap_schedule) = fault_level(level);
    let mut cfg =
        SimConfig::new(2, 128, BatchPolicy::dynamic(32, Duration::from_millis(10)));
    cfg.deadline_secs = Some(CHAOS_DEADLINE_S);
    cfg.breaker_threshold = 3;
    cfg.faults = faults;
    cfg.swap_schedule = swap_schedule;
    simulate(model, &arrivals, &cfg)
}

fn degradation_frontier(model: &ServiceModel, n: usize) {
    let r1 = model.saturated_rate(1);
    println!(
        "serving degradation frontier: offered load x fault severity, 2 workers, \
         dynamic-32, {} ms deadlines (seed {SEED}, {n} requests/cell)\n",
        fnum(CHAOS_DEADLINE_S * 1e3, 0)
    );

    let levels = ["clean", "light", "heavy", "storm"];
    let load_factors = [0.5, 1.5, 4.0];

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &f in &load_factors {
        let offered = f * r1;
        for level in levels {
            let out = chaos_cell(model, offered, level, n);
            assert_eq!(
                out.offered(),
                n,
                "every request must resolve exactly once ({level} @ {offered:.0} req/s)"
            );
            assert!(
                out.throughput() > 0.0,
                "goodput must stay positive under {level} @ {offered:.0} req/s"
            );
            let p99_ms = out.recorder.total_summary().map_or(f64::NAN, |s| s.p99 * 1e3);
            rows.push(vec![
                format!("{} req/s", fnum(offered, 0)),
                level.to_string(),
                out.completed.to_string(),
                format!("{}%", fnum(100.0 * out.shed_rate(), 1)),
                out.crashes.to_string(),
                out.requeued.to_string(),
                out.lost.to_string(),
                format!("{} req/s", fnum(out.throughput(), 1)),
                format!("{} ms", fnum(p99_ms, 2)),
                if out.breaker_opened { "open".into() } else { "-".into() },
            ]);
            csv_rows.push(vec![
                fnum(offered, 3),
                level.to_string(),
                out.completed.to_string(),
                out.rejected.to_string(),
                out.expired.to_string(),
                out.lost.to_string(),
                out.crashes.to_string(),
                out.requeued.to_string(),
                fnum(out.throughput(), 3),
                fnum(p99_ms, 4),
                fnum(out.shed_rate(), 4),
                (out.breaker_opened as u8).to_string(),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "offered", "faults", "served", "shed rate", "crashes", "requeued", "lost",
                "goodput", "p99", "breaker",
            ],
            &rows
        )
    );

    let csv_text = csv(
        &[
            "offered_rps",
            "fault_level",
            "served",
            "rejected",
            "expired",
            "lost",
            "crashes",
            "requeued",
            "goodput_rps",
            "p99_ms",
            "shed_rate",
            "breaker_opened",
        ],
        &csv_rows,
    );
    std::fs::create_dir_all("results").ok();
    match std::fs::write("results/serving_chaos.csv", &csv_text) {
        Ok(()) => println!("degradation frontier written to results/serving_chaos.csv"),
        Err(e) => println!("(could not write results/serving_chaos.csv: {e})"),
    }

    // --- acceptance: chaos is deterministic and never zeroes goodput ---
    let a = chaos_cell(model, 1.5 * r1, "storm", n);
    let b = chaos_cell(model, 1.5 * r1, "storm", n);
    assert_eq!(a.served_ids, b.served_ids, "storm cell must replay bit-identically");
    assert_eq!(a.lost_ids, b.lost_ids);
    assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    assert!(a.breaker_opened, "three corrupt swaps at threshold 3 must open the breaker");
    println!("\n  acceptance: exactly-once accounting, positive goodput, deterministic storm — PASS");
}

/// Per-replica base config of every fleet cell: two workers, a deep
/// queue (so the watermark does not truncate round-robin's tail under
/// skew), dynamic-8 batching.
fn fleet_base() -> SimConfig {
    SimConfig::new(2, 512, BatchPolicy::dynamic(8, Duration::from_millis(5)))
}

/// Skewed-load chaos plan for a fleet cell: every worker of replica 0
/// (global workers `0..wpr`) is a 4× straggler for its whole life.
fn fleet_skew(base: &SimConfig) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for w in 0..base.workers {
        plan = plan.with_slow_worker(w, 0, u64::MAX, 4.0);
    }
    plan
}

fn fleet_cell(
    model: &ServiceModel,
    replicas: usize,
    dispatch: DispatchPolicy,
    offered: f64,
    n: usize,
) -> scidl_serve::fleet::FleetSimOutcome {
    let arrivals: Vec<f64> = PoissonArrivals::new(SEED, offered, n).collect();
    let mut base = fleet_base();
    base.faults = fleet_skew(&base);
    let mut cfg = FleetSimConfig::new(replicas, base, dispatch);
    cfg.seed = SEED;
    simulate_fleet(model, &arrivals, &cfg)
}

fn fleet_frontier(model: &ServiceModel, n: usize) {
    let base = fleet_base();
    let per_rep = base.workers as f64 * model.saturated_rate(base.policy.max_batch);
    println!(
        "fleet serving frontier: offered load x replicas x dispatch policy, \
         {} workers/replica, dynamic-{}, skewed load (replica 0 is a 4x straggler) \
         (seed {SEED}, {n} requests/cell)\n",
        base.workers, base.policy.max_batch
    );
    println!("per-replica nominal capacity: {} req/s\n", fnum(per_rep, 1));

    let policies = [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::LeastLoaded,
        DispatchPolicy::PowerOfTwoChoices,
    ];
    let replica_counts = [2usize, 3, 4];
    // Fraction of the fleet's *nominal* capacity (the skewed replica
    // actually delivers a quarter of its share, so 0.8 saturates).
    let load_factors = [0.4, 0.8];
    const SATURATING: f64 = 0.8;

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut cells: Vec<(usize, f64, &'static str, f64)> = Vec::new();
    for &replicas in &replica_counts {
        for &f in &load_factors {
            let offered = f * replicas as f64 * per_rep;
            for d in policies {
                let out = fleet_cell(model, replicas, d, offered, n);
                assert_eq!(
                    out.offered(),
                    n,
                    "every request must resolve exactly once ({} r{replicas} @ {offered:.0})",
                    d.name()
                );
                let p99_ms = out.p99() * 1e3;
                cells.push((replicas, f, d.name(), out.p99()));
                rows.push(vec![
                    format!("{} req/s", fnum(offered, 0)),
                    replicas.to_string(),
                    d.name().to_string(),
                    out.completed.to_string(),
                    format!("{} req/s", fnum(out.throughput(), 1)),
                    format!("{} ms", fnum(p99_ms, 2)),
                    format!("{}%", fnum(100.0 * out.shed_rate(), 1)),
                    format!("{} s", fnum(out.replica_seconds, 2)),
                ]);
                csv_rows.push(vec![
                    fnum(offered, 3),
                    replicas.to_string(),
                    d.name().to_string(),
                    out.completed.to_string(),
                    fnum(out.throughput(), 3),
                    fnum(p99_ms, 4),
                    fnum(out.shed_rate(), 4),
                    fnum(out.replica_seconds, 4),
                ]);
            }
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "offered",
                "replicas",
                "policy",
                "served",
                "throughput",
                "p99",
                "shed rate",
                "replica-seconds",
            ],
            &rows
        )
    );

    let csv_text = csv(
        &[
            "offered_rps",
            "replicas",
            "policy",
            "served",
            "throughput_rps",
            "p99_ms",
            "shed_rate",
            "replica_seconds",
        ],
        &csv_rows,
    );
    std::fs::create_dir_all("results").ok();
    match std::fs::write("results/serving_fleet.csv", &csv_text) {
        Ok(()) => println!("fleet frontier written to results/serving_fleet.csv"),
        Err(e) => println!("(could not write results/serving_fleet.csv: {e})"),
    }

    // --- acceptance: p2c p99 ≤ round-robin p99 under skewed load -------
    println!("\nat the saturating load factor ({SATURATING} of nominal):");
    for &replicas in &replica_counts {
        let p99_of = |name: &str| {
            cells
                .iter()
                .find(|(r, f, p, _)| *r == replicas && (*f - SATURATING).abs() < 1e-9 && *p == name)
                .map(|(_, _, _, p99)| *p99)
                .unwrap()
        };
        let rr = p99_of("round-robin");
        let p2c = p99_of("p2c");
        println!(
            "  {replicas} replicas: round-robin p99 {} ms, p2c p99 {} ms",
            fnum(rr * 1e3, 2),
            fnum(p2c * 1e3, 2)
        );
        assert!(
            p2c <= rr,
            "acceptance: p2c p99 ({:.4}s) must not exceed round-robin p99 ({:.4}s) \
             under skewed load at {replicas} replicas",
            p2c,
            rr
        );
    }
    println!("  acceptance: p2c beats round-robin p99 under skew — PASS");

    // --- autoscaler + canary demonstration (virtual time) --------------
    let burst_rate = 3.0 * per_rep;
    let mut arrivals: Vec<f64> = PoissonArrivals::new(SEED, burst_rate, n).collect();
    let burst_end = *arrivals.last().unwrap();
    for i in 0..40 {
        arrivals.push(burst_end + 0.5 + i as f64 * 0.5);
    }
    let mut cfg = FleetSimConfig::new(1, fleet_base(), DispatchPolicy::LeastLoaded);
    cfg.seed = SEED;
    cfg.autoscaler = Some(SimAutoscaler {
        min_replicas: 1,
        max_replicas: 6,
        tick_secs: 0.2,
        startup_secs: 0.02,
        scale_down_backlog: 4,
        ..SimAutoscaler::default()
    });
    cfg.canary = Some(SimCanary {
        start_secs: burst_end * 0.1,
        decide_secs: burst_end * 0.9,
        fraction: 0.2,
        service_factor: 1.0,
        regression_tol: 0.25,
        candidate_iteration: 9000,
    });
    let out = simulate_fleet(model, &arrivals, &cfg);
    println!(
        "\nautoscaler + canary demo (burst at 3 replicas' load, then quiet): \
         {} scale-ups, {} scale-downs, final {} replicas; canary {} \
         (model iteration {}), {} canary-served requests",
        out.scale_ups,
        out.scale_downs,
        out.final_replicas,
        if out.canary_promoted { "promoted" } else { "rolled back" },
        out.final_iteration,
        out.canary_served
    );
}

fn main() {
    let trace_path = trace_from_args();
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--fast");
    let faults = std::env::args().any(|a| a == "--faults");
    let fleet = std::env::args().any(|a| a == "--fleet");
    let n = if smoke { 400 } else { 2000 };

    let model = ServiceModel::hep();
    if fleet {
        fleet_frontier(&model, n);
    } else if faults {
        degradation_frontier(&model, n);
    } else {
        frontier(&model, n);
    }

    if let Some(path) = trace_path {
        finish_trace(&path);
    }
}
