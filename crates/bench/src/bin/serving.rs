//! Serving benchmark — the latency/throughput frontier of dynamic
//! batching versus batch-1 on one KNL node running the HEP classifier.
//!
//! Sweeps offered load (open-loop Poisson arrivals at fractions and
//! multiples of the node's batch-32 saturated rate) × batching policy
//! through the deterministic virtual-time simulator
//! (`scidl-serve::sim`), so a fixed seed reproduces every number bit for
//! bit. Emits the frontier as a markdown table on stdout and as
//! `results/serving.csv`.
//!
//! The acceptance check: at saturating offered load, dynamic batching
//! must sustain ≥2× the throughput of batch-1 (the small-batch
//! efficiency cliff of Sec. II-A, exploited instead of suffered), with
//! p99 latency reported for both policies.
//!
//! ```text
//! cargo run --release -p scidl-bench --bin serving [--smoke]
//! ```

use scidl_bench::{csv, finish_trace, fnum, markdown_table, trace_from_args};
use scidl_serve::queue::BatchPolicy;
use scidl_serve::sim::{simulate, ServiceModel, SimConfig};
use scidl_serve::PoissonArrivals;
use std::time::Duration;

const SEED: u64 = 4242;

struct Point {
    offered: f64,
    policy: &'static str,
    completed: usize,
    rejected: usize,
    throughput: f64,
    p50_ms: f64,
    p99_ms: f64,
    queue_share: f64,
}

fn run_point(
    model: &ServiceModel,
    policy: BatchPolicy,
    policy_name: &'static str,
    offered: f64,
    n: usize,
    seed: u64,
) -> Point {
    let arrivals: Vec<f64> = PoissonArrivals::new(seed, offered, n).collect();
    let cfg = SimConfig { workers: 1, queue_capacity: 128, policy };
    let out = simulate(model, &arrivals, &cfg);
    let total = out.recorder.total_summary().expect("at least one request served");
    Point {
        offered,
        policy: policy_name,
        completed: out.completed,
        rejected: out.rejected,
        throughput: out.throughput(),
        p50_ms: total.p50 * 1e3,
        p99_ms: total.p99 * 1e3,
        queue_share: out.recorder.queue_share().unwrap_or(0.0),
    }
}

fn main() {
    let trace_path = trace_from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 400 } else { 2000 };

    let model = ServiceModel::hep();
    let r1 = model.saturated_rate(1);
    let r32 = model.saturated_rate(32);
    println!("serving frontier: HEP classifier on one KNL node (seed {SEED}, {n} requests/point)\n");
    println!(
        "node capacity: batch-1 {} req/s ({} ms/image), batch-32 {} req/s ({} ms/image)\n",
        fnum(r1, 1),
        fnum(1e3 / r1, 2),
        fnum(r32, 1),
        fnum(1e3 / r32, 2)
    );

    let dynamic = BatchPolicy::dynamic(32, Duration::from_millis(10));
    let policies = [(BatchPolicy::batch1(), "batch-1"), (dynamic, "dynamic-32")];
    // Offered load from well under batch-1 capacity to 2× the batch-32
    // saturated rate (where even perfect batching must shed load).
    let load_factors = [0.5, 0.9, 1.5, 2.5, 4.0, 8.0];

    let mut points = Vec::new();
    for (li, &f) in load_factors.iter().enumerate() {
        for (policy, name) in policies {
            points.push(run_point(&model, policy, name, f * r1, n, SEED + li as u64));
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{} req/s", fnum(p.offered, 0)),
                p.policy.to_string(),
                p.completed.to_string(),
                p.rejected.to_string(),
                format!("{} req/s", fnum(p.throughput, 1)),
                format!("{} ms", fnum(p.p50_ms, 2)),
                format!("{} ms", fnum(p.p99_ms, 2)),
                format!("{}%", fnum(100.0 * p.queue_share, 0)),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["offered", "policy", "served", "shed", "throughput", "p50", "p99", "queue share"],
            &rows
        )
    );

    let csv_rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                fnum(p.offered, 3),
                p.policy.to_string(),
                p.completed.to_string(),
                p.rejected.to_string(),
                fnum(p.throughput, 3),
                fnum(p.p50_ms, 4),
                fnum(p.p99_ms, 4),
                fnum(p.queue_share, 4),
            ]
        })
        .collect();
    let csv_text = csv(
        &["offered_rps", "policy", "served", "shed", "throughput_rps", "p50_ms", "p99_ms", "queue_share"],
        &csv_rows,
    );
    std::fs::create_dir_all("results").ok();
    match std::fs::write("results/serving.csv", &csv_text) {
        Ok(()) => println!("frontier written to results/serving.csv"),
        Err(e) => println!("(could not write results/serving.csv: {e})"),
    }

    // --- acceptance: dynamic ≥2× batch-1 at saturating offered load ----
    let saturating = *load_factors.last().unwrap() * r1;
    let at_sat = |name: &str| {
        points
            .iter()
            .find(|p| p.policy == name && (p.offered - saturating).abs() < 1e-9)
            .unwrap()
    };
    let b1 = at_sat("batch-1");
    let dy = at_sat("dynamic-32");
    let speedup = dy.throughput / b1.throughput;
    println!(
        "\nat saturating load ({} req/s offered):",
        fnum(saturating, 0)
    );
    println!(
        "  batch-1    sustains {} req/s, p99 {} ms",
        fnum(b1.throughput, 1),
        fnum(b1.p99_ms, 2)
    );
    println!(
        "  dynamic-32 sustains {} req/s, p99 {} ms",
        fnum(dy.throughput, 1),
        fnum(dy.p99_ms, 2)
    );
    println!("  dynamic batching speedup: {}x", fnum(speedup, 2));
    assert!(
        speedup >= 2.0,
        "acceptance: dynamic batching must sustain ≥2× batch-1 at saturation, got {speedup:.2}×"
    );
    println!("  acceptance: ≥2× sustained throughput — PASS");

    if let Some(path) = trace_path {
        finish_trace(&path);
    }
}
