//! Ablation of the **per-layer parameter-server** design (Sec. III-E(c),
//! Fig. 4): a single PS must absorb every group's full-model exchange and
//! saturates as asynchrony grows; dedicating a PS per trainable layer
//! shards both bandwidth and solver work.

use scidl_bench::{fnum, markdown_table};
use scidl_core::experiments::ps_ablation;
use scidl_core::workloads::{climate_workload, hep_workload};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let groups: &[usize] = if fast { &[2, 8, 32] } else { &[2, 4, 8, 16, 32, 64] };
    let iters = if fast { 8 } else { 15 };

    for (name, w, nodes, batch) in [
        ("HEP", hep_workload(), 1024usize, 1024usize),
        ("Climate", climate_workload(), 1024, 1024),
    ] {
        println!("PS ablation ({name}): {nodes} nodes, batch {batch}/group\n");
        let rows = ps_ablation(&w, nodes, groups, batch, iters, 0xAB1);
        let mut table = Vec::new();
        for &g in groups {
            let single = rows.iter().find(|r| r.groups == g && r.num_ps == 1).unwrap();
            let sharded = rows.iter().find(|r| r.groups == g && r.num_ps > 1).unwrap();
            table.push(vec![
                g.to_string(),
                fnum(single.images_per_sec, 0),
                format!("{} ({} PS)", fnum(sharded.images_per_sec, 0), sharded.num_ps),
                format!("{}x", fnum(sharded.images_per_sec / single.images_per_sec.max(1e-9), 2)),
            ]);
        }
        println!(
            "{}",
            markdown_table(&["groups", "single PS (img/s)", "per-layer PS (img/s)", "gain"], &table)
        );
        println!();
    }
    println!("expected: gains grow with group count — the motivation for Fig. 4's design.");
}
