//! Ablation of **compressed gradient communication** (Sec. VIII-B):
//! trains the scaled-down HEP classifier data-parallel with (a) full
//! f32 gradient all-reduce and (b) the 8-bit error-feedback compressed
//! all-reduce, comparing convergence and wire traffic — the question the
//! paper calls "poorly understood with regards to … scientific
//! datasets".

use scidl_bench::{fnum, markdown_table};
use scidl_core::experiments::compression_ablation;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let (ranks, iters, batch, events) = if fast { (2, 30, 8, 256) } else { (4, 80, 16, 1024) };

    println!("Gradient-compression ablation: {ranks} ranks, {iters} iterations, batch {batch}/rank\n");
    let r = compression_ablation(ranks, iters, batch, events, 0xC0F);

    let rows = vec![
        vec![
            "f32 all-reduce".to_string(),
            format!("{} B/iter", r.bytes_f32),
            fnum(r.loss_f32 as f64, 4),
        ],
        vec![
            "8-bit + error feedback".to_string(),
            format!("{} B/iter", r.bytes_q8),
            fnum(r.loss_q8 as f64, 4),
        ],
    ];
    println!("{}", markdown_table(&["configuration", "traffic", "final loss"], &rows));
    println!(
        "\ntraffic reduction: {}x; loss delta: {}",
        fnum(r.bytes_f32 as f64 / r.bytes_q8 as f64, 2),
        fnum((r.loss_q8 - r.loss_f32) as f64, 4)
    );
    println!("expected: ~4x less traffic at near-identical convergence (error feedback).");
}
