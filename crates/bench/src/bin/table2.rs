//! Regenerates **Table II** — specification of the DNN architectures —
//! directly from the real networks.

use scidl_bench::{fnum, markdown_table};
use scidl_nn::arch::{self, ClimateNet};
use scidl_nn::network::Model;
use scidl_tensor::TensorRng;

fn main() {
    let mut rng = TensorRng::new(1);
    let hep = arch::hep_network(&mut rng);
    let climate = ClimateNet::full(&mut rng);

    let hep_convs = hep.layers().iter().filter(|l| l.name().starts_with("conv")).count();
    let hep_fc = hep.layers().iter().filter(|l| l.name().starts_with("fc")).count();
    let enc = climate.encoder.layers().iter().filter(|l| l.name().starts_with("enc") && !l.name().contains("relu")).count();
    let dec = climate.decoder.layers().iter().filter(|l| l.name().starts_with("dec") && !l.name().contains("relu")).count();

    println!("Table II: specification of DNN architectures\n");
    let rows = vec![
        vec![
            "Supervised HEP".to_string(),
            format!("{}x{}x{}", arch::HEP_INPUT.h, arch::HEP_INPUT.w, arch::HEP_INPUT.c),
            format!("{hep_convs}xconv-pool, {hep_fc}xfully-connected"),
            "class probability".to_string(),
            format!("{} MiB ({} params)", fnum(hep.param_bytes() as f64 / (1024.0 * 1024.0), 2), hep.num_params()),
        ],
        vec![
            "Semi-sup. Climate".to_string(),
            format!("{}x{}x{}", arch::CLIMATE_INPUT.h, arch::CLIMATE_INPUT.w, arch::CLIMATE_INPUT.c),
            format!("{enc}xconv, {dec}xdeconv + 3 score heads"),
            "coordinates, class, confidence".to_string(),
            format!("{} MiB ({} params)", fnum(climate.param_bytes() as f64 / (1024.0 * 1024.0), 1), climate.num_params()),
        ],
    ];
    println!(
        "{}",
        markdown_table(&["architecture", "input", "layer details", "output", "parameters size"], &rows)
    );
    println!("paper reports: HEP 224x224x3, 5xconv-pool + 1xFC, 2.3 MiB");
    println!("               Climate 768x768x16, 9xconv + 5xdeconv, 302.1 MiB\n");

    println!("HEP layer stack:");
    let mut s = arch::HEP_INPUT;
    for l in hep.layers() {
        let o = l.out_shape(s);
        println!("  {:8} {:>14} -> {:>14}", l.name(), format!("{s}"), format!("{o}"));
        s = o;
    }
    println!("\nClimate encoder/decoder stacks:");
    let mut s = arch::CLIMATE_INPUT;
    for l in climate.encoder.layers() {
        let o = l.out_shape(s);
        println!("  {:10} {:>14} -> {:>14}", l.name(), format!("{s}"), format!("{o}"));
        s = o;
    }
    let feat = s;
    for l in climate.decoder.layers() {
        let o = l.out_shape(s);
        println!("  {:10} {:>14} -> {:>14}", l.name(), format!("{s}"), format!("{o}"));
        s = o;
    }
    println!("  (+3 scoring heads on the {feat} feature grid)");
}
