//! One-command condensed reproduction: runs every experiment at reduced
//! (`--fast`-equivalent) scale in-process and prints a summary table of
//! paper-vs-measured values. For the full-scale versions run the
//! individual binaries (see `scidl-bench`'s crate docs).

use scidl_bench::{fnum, markdown_table};
use scidl_cluster::KnlModel;
use scidl_core::experiments::convergence::{fig8, Fig8Scale};
use scidl_core::experiments::science::{hep_science, HepScienceScale};
use scidl_core::experiments::{strong_scaling, weak_scaling};
use scidl_core::workloads::{climate_workload, hep_workload};
use scidl_nn::arch::{self, ClimateNet};
use scidl_nn::network::Model;
use scidl_tensor::TensorRng;

fn main() {
    println!("scidl condensed reproduction (reduced scale; see EXPERIMENTS.md for full runs)\n");
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row = |exp: &str, paper: &str, ours: String| {
        rows.push(vec![exp.to_string(), paper.to_string(), ours]);
    };

    // Table II.
    let mut rng = TensorRng::new(1);
    let hep_net = arch::hep_network(&mut rng);
    row(
        "Table II: HEP model size",
        "2.3 MiB",
        format!("{} MiB", fnum(hep_net.param_bytes() as f64 / (1024.0 * 1024.0), 2)),
    );
    let climate_net = ClimateNet::full(&mut rng);
    row(
        "Table II: climate model size",
        "302.1 MiB",
        format!("{} MiB", fnum(climate_net.param_bytes() as f64 / (1024.0 * 1024.0), 1)),
    );
    drop(climate_net);

    // Fig. 5 headline rates.
    let knl = KnlModel::default();
    let wh = hep_workload();
    let wc = climate_workload();
    row(
        "Fig. 5: HEP single-node rate",
        "1.90 TF/s",
        format!("{} TF/s", fnum(wh.single_node_rate(&knl, 8) / 1e12, 2)),
    );
    row(
        "Fig. 5: climate single-node rate",
        "2.09 TF/s",
        format!("{} TF/s", fnum(wc.single_node_rate(&knl, 8) / 1e12, 2)),
    );

    // Fig. 6 condensed: sync saturation + hybrid-4 at 1024.
    let f6 = strong_scaling(&wh, &[512, 1024], &[1, 4], 2048, 10, 0xF166);
    let get = |n: usize, g: usize| f6.iter().find(|r| r.nodes == n && r.groups == g).unwrap().speedup;
    row(
        "Fig. 6a: HEP sync 512 -> 1024",
        "stops scaling past 256",
        format!("{} -> {}", fnum(get(512, 1), 0), fnum(get(1024, 1), 0)),
    );
    row(
        "Fig. 6a: HEP hybrid-4 @1024",
        "~580x",
        format!("{}x", fnum(get(1024, 4), 0)),
    );

    // Fig. 7 condensed.
    let f7h = weak_scaling(&wh, &[2048], &[1, 8], 8, 10, 0xF167);
    let f7c = weak_scaling(&wc, &[2048], &[1, 8], 8, 6, 0xF167);
    let pick = |rows: &[scidl_core::experiments::ScalingRow], g: usize| {
        rows.iter().find(|r| r.groups == g).unwrap().speedup
    };
    row(
        "Fig. 7a: HEP weak @2048 (sync/hyb8)",
        "~1500 / ~1150",
        format!("{} / {}", fnum(pick(&f7h, 1), 0), fnum(pick(&f7h, 8), 0)),
    );
    row(
        "Fig. 7b: climate weak @2048 (sync/hyb8)",
        "~1750 / ~1850",
        format!("{} / {}", fnum(pick(&f7c, 1), 0), fnum(pick(&f7c, 8), 0)),
    );

    // Fig. 8 condensed.
    let scale = Fig8Scale {
        nodes: 256,
        total_batch: 256,
        sync_iterations: 48,
        dataset_events: 1024,
        smooth_window: 6,
        overlap_comm: false,
    };
    let f8 = fig8(&scale, 0xF168);
    row(
        "Fig. 8: best hybrid vs best sync",
        "~1.66x",
        f8.best_hybrid_speedup
            .map(|s| format!("{}x", fnum(s, 2)))
            .unwrap_or_else(|| "n/a".into()),
    );

    // Sec. VII-A condensed.
    let hs = hep_science(
        &HepScienceScale {
            train_events: 1200,
            test_events: 1200,
            iterations: 150,
            batch: 32,
            fpr_budget: 0.02,
        },
        0x5C1,
    );
    row(
        "Sec. VII-A: CNN vs cuts",
        "1.7x (72% vs 42% TPR)",
        format!(
            "{}x ({}% vs {}%)",
            fnum(hs.improvement, 2),
            fnum(hs.cnn_tpr * 100.0, 1),
            fnum(hs.baseline_tpr * 100.0, 1)
        ),
    );

    println!("{}", markdown_table(&["experiment", "paper", "ours (fast scale)"], &rows));
}
