//! ASCII Gantt chart of simulated group iterations — makes the paper's
//! central mechanism visible: a synchronous run is one serialized lane
//! with straggler-stretched iterations, while hybrid groups overlap
//! freely and slide past each other (the asynchrony that removes the
//! batch-size limit and the straggler barrier, Sec. II-B2).

use scidl_cluster::sim::{ClusterSim, SimConfig};
use scidl_core::workloads::hep_workload;

const WIDTH: usize = 100;

fn gantt(timeline: &[(usize, f64, f64)], groups: usize, total: f64) -> String {
    let mut rows = vec![vec![' '; WIDTH]; groups];
    let marks = ['#', '=', '*', '+', 'o', '%', '@', '~'];
    for &(g, start, end) in timeline {
        let a = ((start / total) * WIDTH as f64) as usize;
        let b = (((end / total) * WIDTH as f64) as usize).min(WIDTH - 1);
        for (i, cell) in rows[g][a..=b].iter_mut().enumerate() {
            // Alternate the glyph at interval boundaries so adjacent
            // iterations stay distinguishable.
            *cell = if i == 0 { '|' } else { marks[g % marks.len()] };
        }
    }
    let mut out = String::new();
    for (g, row) in rows.iter().enumerate() {
        out.push_str(&format!("group {g:>2} "));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("         0 {:>width$.2}s\n", total, width = WIDTH - 2));
    out
}

fn main() {
    let w = hep_workload();
    for (label, groups) in [("synchronous (1 group)", 1usize), ("hybrid (4 groups)", 4)] {
        let mut cfg = SimConfig::new(w.clone(), 64, groups, 512);
        cfg.iterations = 8;
        cfg.seed = 0x71;
        let r = ClusterSim::new(cfg).run();
        println!("{label}: 64 nodes, batch 512/group, 8 iterations/group\n");
        println!("{}", gantt(&r.timeline, groups, r.total_time));
        println!(
            "throughput {:.0} img/s, mean staleness {:.2}\n",
            r.images_per_sec(),
            r.mean_staleness
        );
    }
    println!("'|' marks iteration starts; hybrid groups overlap and drift apart —");
    println!("no global barrier — while the synchronous lane serializes everything.");
}
