//! Regenerates **Table I** — characteristics of the datasets — from the
//! synthetic generator configurations, and validates a generated sample
//! against them.

use scidl_bench::{fnum, markdown_table};
use scidl_data::{climate_stats, hep_stats, ClimateConfig, ClimateDataset, HepConfig, HepDataset};

fn main() {
    println!("Table I: characteristics of datasets used\n");
    let rows: Vec<Vec<String>> = [hep_stats(), climate_stats()]
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                format!("{}x{}", s.pixels, s.pixels),
                s.channels.to_string(),
                format!("{}M", fnum(s.images as f64 / 1e6, 1)),
                format!("{}TB", fnum(s.volume_tb, 1)),
            ]
        })
        .collect();
    println!("{}", markdown_table(&["dataset", "pixels", "channels", "#images", "volume (f32)"], &rows));

    println!("paper reports: HEP 228x228 / 3 ch / 10M / 7.4TB (stored HDF5)");
    println!("               Climate 768x768 / 16 ch / 0.4M / 15TB\n");

    // Generate small samples and verify their per-image geometry matches
    // the Table I configuration.
    let hep = HepDataset::generate(HepConfig::paper(), 2, 1);
    let hs = hep.images.shape();
    println!(
        "generated HEP sample: {}x{} px, {} ch, {} bytes/image",
        hs.h,
        hs.w,
        hs.c,
        hs.item_len() * 4
    );
    let climate = ClimateDataset::generate(ClimateConfig::paper(), 1, 1);
    let cs = climate.samples[0].image.shape();
    println!(
        "generated climate frame: {}x{} px, {} ch, {} bytes/image, {} labelled boxes",
        cs.h,
        cs.w,
        cs.c,
        cs.item_len() * 4,
        climate.samples[0].boxes.len()
    );
}
