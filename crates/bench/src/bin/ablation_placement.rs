//! Ablation of **topology-aware placement** (Fig. 3): the ideal layout
//! packs each compute group into whole electrical groups of the Aries
//! dragonfly; a topology-oblivious scheduler scatters it across the
//! machine, paying optical-hop latency and shared-global-link contention
//! on every all-reduce.

use scidl_bench::{fnum, markdown_table};
use scidl_core::experiments::placement_ablation;

fn main() {
    println!("Placement ablation (Fig. 3): 1024-node compute group on a 9688-node dragonfly\n");
    for (name, bytes) in [("HEP (2.3 MiB model)", 2_411_724u64), ("Climate (306 MiB model)", 321_120_352u64)] {
        let rows = placement_ablation(1024, 9688, bytes, 0xF163);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.label.to_string(),
                    r.groups_spanned.to_string(),
                    format!("{} ms", fnum(r.allreduce_secs * 1e3, 3)),
                ]
            })
            .collect();
        println!("{name}:");
        println!(
            "{}",
            markdown_table(&["placement", "electrical groups spanned", "all-reduce time"], &table)
        );
        let penalty = rows[1].allreduce_secs / rows[0].allreduce_secs;
        println!("scattered-placement penalty: {}x\n", fnum(penalty, 2));
    }
}
