//! Regenerates **Sec. VII-B / Fig. 9 (Climate Science Result)** — trains
//! the semi-supervised detector and renders a test frame's integrated
//! water vapour (TMQ) channel with ground-truth (`#`) and predicted
//! (`+`) bounding boxes, plus detection metrics the paper says they were
//! still developing.

use scidl_bench::{fnum, markdown_table};
use scidl_core::experiments::science::{climate_science, ClimateScienceScale};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let scale = if fast {
        ClimateScienceScale {
            train_frames: 48,
            test_frames: 12,
            epochs: 15,
            batch: 8,
            labelled_fraction: 0.7,
            confidence: 0.8,
        }
    } else {
        ClimateScienceScale::default()
    };

    println!(
        "Sec. VII-B: semi-supervised extreme-weather detection ({} train frames, {}% labelled, {} epochs)\n",
        scale.train_frames,
        fnum(scale.labelled_fraction * 100.0, 0),
        scale.epochs
    );
    let r = climate_science(&scale, 0xC11);

    let rows = vec![vec![
        format!("{}", r.detections),
        format!("{}", r.ground_truth),
        format!("{}%", fnum(r.precision * 100.0, 1)),
        format!("{}%", fnum(r.recall * 100.0, 1)),
        fnum(r.final_recon_loss as f64, 4),
    ]];
    println!(
        "{}",
        markdown_table(
            &["detections", "ground truth", "precision", "recall", "recon loss"],
            &rows
        )
    );

    println!("\nFig. 9 (ASCII): TMQ channel of a test frame; '#' ground truth, '+' predictions\n");
    println!("{}", r.rendering);
    println!("paper: qualitative — the architecture localises tropical cyclones well;");
    println!("       no established benchmark exists for this task in the climate community.");
}
