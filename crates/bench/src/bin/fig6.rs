//! Regenerates **Fig. 6** — strong scaling of synchronous vs hybrid
//! configurations (batch 2048 per synchronous group).

use scidl_bench::{fnum, markdown_table};
use scidl_core::experiments::strong_scaling;
use scidl_core::workloads::{climate_workload, hep_workload};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let (nodes, iters): (&[usize], usize) = if fast {
        (&[1, 64, 256, 1024], 8)
    } else {
        (&[1, 64, 128, 256, 512, 1024], 15)
    };
    let groups = [1usize, 2, 4];

    for (name, w, paper) in [
        (
            "HEP",
            hep_workload(),
            "paper: sync does not scale past 256 nodes; hybrid-2 saturates ~280x; hybrid-4 ~580x at 1024",
        ),
        (
            "Climate",
            climate_workload(),
            "paper: sync max ~320x at 512 then stops; hybrid-2 ~580x, hybrid-4 ~780x at 1024",
        ),
    ] {
        println!("Fig. 6 ({name}): strong scaling, batch 2048 per synchronous group\n");
        let rows = strong_scaling(&w, nodes, &groups, 2048, iters, 0xF166);
        let mut by_nodes: Vec<Vec<String>> = Vec::new();
        for &n in nodes {
            let mut row = vec![n.to_string()];
            for &g in &groups {
                let v = rows
                    .iter()
                    .find(|r| r.nodes == n && r.groups == g)
                    .map(|r| fnum(r.speedup, 0))
                    .unwrap_or_else(|| "-".into());
                row.push(v);
            }
            by_nodes.push(row);
        }
        println!(
            "{}",
            markdown_table(&["nodes", "sync", "hybrid-2", "hybrid-4"], &by_nodes)
        );
        println!("{paper}\n");
    }
}
