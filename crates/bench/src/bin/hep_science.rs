//! Regenerates **Sec. VII-A (HEP Science Result)** — true-positive rate
//! at a fixed very-low false-positive rate: the tuned cut-based
//! benchmark analysis vs the trained CNN.
//!
//! Paper (10M events, FPR = 0.02%): cuts 42% TPR, CNN 72% TPR — a 1.7x
//! improvement. At laptop scale the budget is 2% (the smallest FPR
//! resolvable with thousands of events); the CNN-vs-cuts comparison at
//! equal budget is the preserved quantity.

use scidl_bench::{fnum, markdown_table};
use scidl_core::experiments::science::{hep_science, HepScienceScale};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let scale = if fast {
        HepScienceScale {
            train_events: 1200,
            test_events: 1200,
            iterations: 150,
            batch: 32,
            fpr_budget: 0.02,
        }
    } else {
        HepScienceScale::default()
    };

    println!(
        "Sec. VII-A: HEP classification at FPR budget {}% ({} train / {} test events)\n",
        fnum(scale.fpr_budget * 100.0, 2),
        scale.train_events,
        scale.test_events
    );
    let r = hep_science(&scale, 0x5C1);

    let rows = vec![
        vec![
            "cut-based benchmark [5]".to_string(),
            format!(
                "HT>{} njets>={} lead pT>{}",
                fnum(r.cuts.ht_min as f64, 0),
                r.cuts.njets_min,
                fnum(r.cuts.leading_min as f64, 0)
            ),
            format!("{}%", fnum(r.baseline_fpr * 100.0, 2)),
            format!("{}%", fnum(r.baseline_tpr * 100.0, 1)),
        ],
        vec![
            "CNN (ours)".to_string(),
            "low-level calorimeter images".to_string(),
            format!("{}%", fnum(r.fpr_budget * 100.0, 2)),
            format!("{}%", fnum(r.cnn_tpr * 100.0, 1)),
        ],
    ];
    println!("{}", markdown_table(&["classifier", "selection", "FPR", "TPR"], &rows));
    println!(
        "improvement: {}x (paper: 1.7x with tuning, 1.3x without)",
        fnum(r.improvement, 2)
    );
    println!("final training loss: {}", fnum(r.final_loss as f64, 4));
}
