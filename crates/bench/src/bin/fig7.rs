//! Regenerates **Fig. 7** — weak scaling (batch 8 per node) of
//! synchronous vs hybrid configurations.

use scidl_bench::{fnum, markdown_table};
use scidl_core::experiments::weak_scaling;
use scidl_core::workloads::{climate_workload, hep_workload};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let (nodes, iters): (&[usize], usize) = if fast {
        (&[1, 256, 2048], 8)
    } else {
        (&[1, 128, 256, 512, 1024, 2048], 15)
    };

    println!("Fig. 7a (HEP): weak scaling, batch 8/node\n");
    let groups = [1usize, 2, 4, 8];
    let rows = weak_scaling(&hep_workload(), nodes, &groups, 8, iters, 0xF167);
    let mut table: Vec<Vec<String>> = Vec::new();
    for &n in nodes {
        let mut row = vec![n.to_string()];
        for &g in &groups {
            row.push(
                rows.iter()
                    .find(|r| r.nodes == n && r.groups == g)
                    .map(|r| fnum(r.speedup, 0))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        table.push(row);
    }
    println!(
        "{}",
        markdown_table(&["nodes", "sync", "hybrid-2", "hybrid-4", "hybrid-8"], &table)
    );
    println!("paper: sublinear for all; ~1500x sync / ~1150-1250x hybrid at 2048 (jitter on ~12 ms layers)\n");

    println!("Fig. 7b (Climate): weak scaling, batch 8/node\n");
    let cgroups = [1usize, 4, 8];
    let rows = weak_scaling(&climate_workload(), nodes, &cgroups, 8, iters.min(8), 0xF167);
    let mut table: Vec<Vec<String>> = Vec::new();
    for &n in nodes {
        let mut row = vec![n.to_string()];
        for &g in &cgroups {
            row.push(
                rows.iter()
                    .find(|r| r.nodes == n && r.groups == g)
                    .map(|r| fnum(r.speedup, 0))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        table.push(row);
    }
    println!(
        "{}",
        markdown_table(&["nodes", "sync", "hybrid-4", "hybrid-8"], &table)
    );
    println!("paper: near-linear (~1750x sync, ~1850x hybrid at 2048; >300 ms layers hide jitter)");
}
