//! Ablation of the paper's **architecture design rule** (Sec. I): "to
//! not use layers with large dense weights such as batch normalization
//! or fully connected units". Compares the published HEP head (global
//! average pooling + a 128→2 dense layer) against a VGG-style flattened
//! dense head on the same convolutional stack: what every all-reduce and
//! PS exchange would have to move, and what that does to weak scaling.

use scidl_bench::{fnum, markdown_table};
use scidl_core::experiments::arch_ablation;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let iters = if fast { 6 } else { 12 };

    println!("Architecture-rule ablation: HEP conv stack with two heads\n");
    let rows = arch_ablation(iters, 0xA2C);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                r.params.to_string(),
                format!("{} MiB", fnum(r.model_mib, 1)),
                format!("{} ms", fnum(r.allreduce_secs * 1e3, 2)),
                fnum(r.images_per_sec_1024, 0),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["head design", "params", "model size", "all-reduce @1024", "img/s @1024 (hybrid-4, b=8/node)"],
            &table
        )
    );
    println!("\nthe paper's rule keeps the model all-reduce-sized; the dense head");
    println!("multiplies communication volume by ~170x and costs scaling.");
}
