//! Regenerates the **resilience observation of Sec. VIII-A**: "even a
//! single node failure can cause complete failure of synchronous runs;
//! hybrid runs are much more resilient since only one of the compute
//! groups gets affected."

use scidl_bench::markdown_table;
use scidl_core::experiments::resilience;
use scidl_core::workloads::hep_workload;

fn main() {
    println!("Sec. VIII-A: failure resilience under an aggressive failure rate\n");
    let mut table = Vec::new();
    for (nodes, groups) in [(256usize, 4usize), (1024, 8)] {
        let r = resilience(&hep_workload(), nodes, groups, 0xF41);
        table.push(vec![
            format!("{nodes} nodes / sync"),
            if r.sync_failed { "DIED".into() } else { "survived".into() },
            r.sync_iterations_done.to_string(),
            "0".into(),
            "-".into(),
        ]);
        table.push(vec![
            format!("{nodes} nodes / hybrid-{groups}"),
            format!("{}/{} groups alive", r.hybrid_live_groups, groups),
            r.hybrid_iterations_done.to_string(),
            "0".into(),
            format!(
                "{}x more work done",
                if r.sync_iterations_done > 0 {
                    format!("{:.1}", r.hybrid_iterations_done as f64 / r.sync_iterations_done as f64)
                } else {
                    "∞".into()
                }
            ),
        ]);
        table.push(vec![
            format!("{nodes} nodes / hybrid-{groups} + recovery"),
            format!("{}/{} groups alive", r.recovery_live_groups, groups),
            r.recovery_iterations_done.to_string(),
            r.recovered_iterations.to_string(),
            "crashed group rejoins from the PS bank".into(),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["configuration", "outcome", "iterations completed", "recovered iterations", "note"],
            &table
        )
    );
}
