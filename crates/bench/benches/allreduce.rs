//! Criterion benchmarks of the communication layer: tree vs ring
//! all-reduce across thread counts at the HEP model's 2.3 MiB payload,
//! and the PS bank's update throughput (single PS vs per-layer sharding).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scidl_comm::ps::UpdateFn;
use scidl_comm::{
    ring_allreduce_mean, ring_allreduce_mean_scratch, CommWorld, PsBank, RingFabric, RingScratch,
};
use std::thread;
use std::time::{Duration, Instant};

fn bench_tree_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_allreduce");
    group.sample_size(10);
    for &ranks in &[2usize, 4, 8] {
        // HEP model size in f32 elements.
        let len = 594_178;
        group.throughput(Throughput::Bytes((len * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |bench, &n| {
            bench.iter(|| {
                let comms = CommWorld::new(n);
                let handles: Vec<_> = comms
                    .into_iter()
                    .map(|comm| {
                        thread::spawn(move || {
                            let mut data = vec![1.0f32; len];
                            comm.allreduce_mean(&mut data);
                            data[0]
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<f32>()
            })
        });
    }
    group.finish();
}

fn bench_ring_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_allreduce");
    group.sample_size(10);
    for &ranks in &[2usize, 4, 8] {
        let len = 594_178;
        group.throughput(Throughput::Bytes((len * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |bench, &n| {
            bench.iter(|| {
                let endpoints = RingFabric::new(n).into_endpoints();
                let handles: Vec<_> = endpoints
                    .into_iter()
                    .enumerate()
                    .map(|(rank, (tx, rx))| {
                        thread::spawn(move || {
                            let mut data = vec![1.0f32; len];
                            ring_allreduce_mean(rank, n, &mut data, &tx, &rx).unwrap();
                            data[0]
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<f32>()
            })
        });
    }
    group.finish();
}

/// The disabled-tracing fast path is one relaxed atomic load per
/// instrumented call; this group makes the claim checkable by running the
/// same ring all-reduce with no sink installed ("disabled" — the default
/// everywhere else in this suite) and with a live sink ("enabled").
fn bench_trace_overhead(c: &mut Criterion) {
    fn ring_once(n: usize, len: usize) -> f32 {
        let endpoints = RingFabric::new(n).into_endpoints();
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, (tx, rx))| {
                thread::spawn(move || {
                    let mut data = vec![1.0f32; len];
                    ring_allreduce_mean(rank, n, &mut data, &tx, &rx).unwrap();
                    data[0]
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum::<f32>()
    }

    let mut group = c.benchmark_group("trace_overhead_ring");
    group.sample_size(10);
    let (n, len) = (4usize, 65_536usize);
    group.bench_function("disabled", |b| {
        assert!(!scidl_trace::is_enabled(), "no sink must be installed here");
        b.iter(|| ring_once(n, len))
    });
    group.bench_function("enabled", |b| {
        scidl_trace::install(std::sync::Arc::new(scidl_trace::TraceSink::new()));
        scidl_trace::active().unwrap().begin_run("bench");
        b.iter(|| ring_once(n, len));
        scidl_trace::uninstall();
    });
    group.finish();
}

/// `ring_allreduce_mean_scratch` exists to kill the plain entry point's
/// per-call allocations (the chunk-offset table plus one send buffer per
/// step). This group times both over a burst of back-to-back reductions
/// on one persistent ring — the bucketed-overlap usage pattern, where a
/// comm thread reduces bucket after bucket — and then *asserts* the
/// reuse path is not slower (generously: within 25%, since the stand-in
/// harness does no outlier rejection).
fn bench_ring_scratch(c: &mut Criterion) {
    const N: usize = 4;
    const LEN: usize = 65_536;
    const ROUNDS: usize = 24;

    fn burst(reuse: bool) -> Duration {
        let endpoints = RingFabric::new(N).into_endpoints();
        let start = Instant::now();
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, (tx, rx))| {
                thread::spawn(move || {
                    let mut scratch = RingScratch::new();
                    let mut data = vec![1.0f32; LEN];
                    for _ in 0..ROUNDS {
                        if reuse {
                            ring_allreduce_mean_scratch(rank, N, &mut data, &mut scratch, &tx, &rx)
                                .unwrap();
                        } else {
                            ring_allreduce_mean(rank, N, &mut data, &tx, &rx).unwrap();
                        }
                    }
                    data[0]
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        start.elapsed()
    }

    let mut group = c.benchmark_group("ring_scratch_reuse");
    group.sample_size(10);
    group.throughput(Throughput::Bytes((LEN * 4 * ROUNDS) as u64));
    group.bench_function("alloc_per_call", |b| b.iter(|| burst(false)));
    group.bench_function("scratch_reuse", |b| b.iter(|| burst(true)));
    group.finish();

    // The perf claim, checked: best-of-5 bursts each way (min is the
    // noise-robust statistic for a cold-start-free comparison).
    let _ = burst(true); // warm-up
    let best = |reuse: bool| (0..5).map(|_| burst(reuse)).min().unwrap();
    let alloc = best(false);
    let scratch = best(true);
    println!("ring scratch reuse check: alloc {alloc:?} vs scratch {scratch:?}");
    assert!(
        scratch < alloc.mul_f64(1.25),
        "scratch reuse must not be slower than allocating per call: {scratch:?} vs {alloc:?}"
    );
}

fn bench_ps_bank(c: &mut Criterion) {
    let mut group = c.benchmark_group("ps_bank_update");
    group.sample_size(10);
    // 12 blocks ≈ the HEP network's parameter blocks (Fig. 4 sharding).
    for &blocks in &[1usize, 12] {
        let total = 594_178usize;
        let per = total / blocks;
        group.throughput(Throughput::Bytes((total * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(blocks), &blocks, |bench, &nb| {
            let bank = PsBank::spawn(
                (0..nb)
                    .map(|_| {
                        let u: UpdateFn = Box::new(move |p: &mut [f32], g: &[f32]| {
                            for (pi, gi) in p.iter_mut().zip(g) {
                                *pi -= 0.01 * gi;
                            }
                        });
                        (vec![0.0f32; per], u)
                    })
                    .collect(),
            );
            bench.iter(|| {
                let grads: Vec<Vec<f32>> = (0..nb).map(|_| vec![1.0f32; per]).collect();
                let replies = bank.update_all(grads).unwrap();
                replies[0].version
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tree_allreduce,
    bench_ring_allreduce,
    bench_ring_scratch,
    bench_trace_overhead,
    bench_ps_bank
);
criterion_main!(benches);
