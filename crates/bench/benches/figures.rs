//! Criterion benchmarks of the figure-generation machinery itself: how
//! fast the discrete-event cluster simulator executes the paper-scale
//! configurations. (The *results* of the figures come from the dedicated
//! binaries; these benches keep the simulator's own cost visible.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scidl_cluster::sim::{ClusterSim, SimConfig};
use scidl_core::workloads::{climate_workload, hep_workload};

fn bench_cluster_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_sim");
    group.sample_size(10);
    for &(nodes, groups) in &[(256usize, 1usize), (1024, 4), (9594, 9)] {
        let w = hep_workload();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("hep_{nodes}n_{groups}g")),
            &0,
            |bench, _| {
                bench.iter(|| {
                    let mut cfg = SimConfig::new(w.clone(), nodes, groups, 1024);
                    cfg.iterations = 10;
                    ClusterSim::new(cfg).run().total_flops
                })
            },
        );
    }
    group.finish();
}

fn bench_workload_builders(c: &mut Criterion) {
    // Building the climate workload walks the full 80M-parameter network —
    // seconds per call, so keep the sample count low.
    let mut group = c.benchmark_group("workload_builders");
    group.sample_size(10);
    group.bench_function("build_climate_workload", |b| {
        b.iter(|| climate_workload().params)
    });
    group.finish();
}

criterion_group!(benches, bench_cluster_sim, bench_workload_builders);
criterion_main!(benches);
