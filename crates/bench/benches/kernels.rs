//! Criterion microbenchmarks of the dense-linear-algebra kernels that
//! dominate training time — the Rust analogue of the MKL primitives the
//! paper's single-node numbers (Fig. 5) depend on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scidl_nn::{Conv2d, Deconv2d, Layer};
use scidl_tensor::{gemm, gemm_unpacked, im2col, ConvGeometry, Shape4, TensorRng, Transpose};
use std::time::{Duration, Instant};

/// The conv-lowered GEMM shapes the packed kernel must win on: the
/// paper's HEP 3x3 stack and climate encoder forwards (NN), the
/// weight-gradient (NT) and backward-data (TN) shapes of the same
/// layers, plus a square TT case. `(label, ta, tb, m, n, k)`.
const CONV_SHAPES: &[(&str, Transpose, Transpose, usize, usize, usize)] = &[
    ("hep_fwd_nn", Transpose::No, Transpose::No, 128, 196, 1152),
    ("hep_fwd_wide_nn", Transpose::No, Transpose::No, 128, 784, 1152),
    ("climate_enc_nn", Transpose::No, Transpose::No, 64, 3136, 576),
    ("hep_wgrad_nt", Transpose::No, Transpose::Yes, 128, 1152, 196),
    ("hep_bwddata_tn", Transpose::Yes, Transpose::No, 1152, 196, 128),
    ("square_tt", Transpose::Yes, Transpose::Yes, 256, 256, 256),
];

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    // All four transpose combinations: packing absorbs transposition, so
    // NT/TN/TT must now run at NN-class GFLOP/s rather than the seed
    // kernel's strided-read slow paths.
    for &(label, ta, tb, m, n, k) in CONV_SHAPES {
        let mut rng = TensorRng::new(1);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_range(-1.0, 1.0) as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform_range(-1.0, 1.0) as f32).collect();
        let mut out = vec![0.0f32; m * n];
        group.throughput(Throughput::Elements((2 * m * n * k) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{label}_{m}x{n}x{k}")),
            &(m, n, k),
            |bench, _| {
                bench.iter(|| {
                    gemm(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut out);
                    out[0]
                })
            },
        );
    }
    group.finish();
}

fn bench_packed_vs_seed(c: &mut Criterion) {
    // Criterion timings for both kernels, then the perf claim checked the
    // same way as the allreduce scratch-reuse bench: warm-up + best-of-5
    // bursts (min is the noise-robust statistic), asserting the packed
    // kernel faster-or-equal on EVERY benched conv shape.
    let mut group = c.benchmark_group("gemm_packed_vs_seed");
    group.sample_size(10);
    for &(label, ta, tb, m, n, k) in CONV_SHAPES {
        let mut rng = TensorRng::new(7);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_range(-1.0, 1.0) as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform_range(-1.0, 1.0) as f32).collect();
        let mut out = vec![0.0f32; m * n];
        group.throughput(Throughput::Elements((2 * m * n * k) as u64));
        group.bench_with_input(BenchmarkId::new("packed", label), &0, |bench, _| {
            bench.iter(|| {
                gemm(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut out);
                out[0]
            })
        });
        group.bench_with_input(BenchmarkId::new("seed", label), &0, |bench, _| {
            bench.iter(|| {
                gemm_unpacked(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut out);
                out[0]
            })
        });
    }
    group.finish();

    for &(label, ta, tb, m, n, k) in CONV_SHAPES {
        let mut rng = TensorRng::new(7);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_range(-1.0, 1.0) as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform_range(-1.0, 1.0) as f32).collect();
        let mut out = vec![0.0f32; m * n];
        let mut burst = |packed: bool| -> Duration {
            let start = Instant::now();
            if packed {
                gemm(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut out);
            } else {
                gemm_unpacked(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut out);
            }
            start.elapsed()
        };
        let _ = burst(true); // warm-up (pack workspace + caches)
        let _ = burst(false);
        let best = |burst: &mut dyn FnMut(bool) -> Duration, packed: bool| {
            (0..5).map(|_| burst(packed)).min().unwrap()
        };
        let packed = best(&mut burst, true);
        let seed = best(&mut burst, false);
        let gf = |d: Duration| 2.0 * (m * n * k) as f64 / d.as_secs_f64() / 1e9;
        println!(
            "gemm packed-vs-seed {label}: packed {:.2} GFLOP/s vs seed {:.2} GFLOP/s",
            gf(packed),
            gf(seed)
        );
        assert!(
            packed < seed.mul_f64(1.10),
            "packed GEMM must be faster-or-equal to the seed kernel on {label} \
             ({m}x{n}x{k} {ta:?}{tb:?}): packed {packed:?} vs seed {seed:?}"
        );
    }
}

fn bench_im2col(c: &mut Criterion) {
    let mut group = c.benchmark_group("im2col");
    for &(ch, hw, k, s) in &[(3usize, 64usize, 3usize, 1usize), (16, 64, 5, 2), (128, 28, 3, 1)] {
        let geo = ConvGeometry::new(ch, 1, hw, hw, k, s, k / 2);
        let image: Vec<f32> = (0..ch * hw * hw).map(|i| i as f32 * 0.001).collect();
        let mut col = vec![0.0f32; geo.col_rows() * geo.col_cols()];
        group.throughput(Throughput::Elements(col.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("c{ch}_hw{hw}_k{k}_s{s}")),
            &geo,
            |bench, geo| {
                bench.iter(|| {
                    im2col(geo, &image, &mut col);
                    col[0]
                })
            },
        );
    }
    group.finish();
}

fn bench_conv_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_fwd_bwd");
    group.sample_size(10);
    // A HEP-style layer (3->128, 3x3) and a climate-style strided layer
    // (16->64, 5x5/s2), at reduced spatial size to keep bench time sane.
    for &(cin, cout, hw, k, s) in &[(3usize, 128usize, 64usize, 3usize, 1usize), (16, 64, 64, 5, 2)] {
        let mut rng = TensorRng::new(2);
        let mut conv = Conv2d::new("c", cin, cout, k, s, k / 2, &mut rng);
        let x = rng.uniform_tensor(Shape4::new(8, cin, hw, hw), -1.0, 1.0);
        let flops = 8 * conv.forward_flops_per_image(x.shape().with_n(1));
        group.throughput(Throughput::Elements(flops));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("conv{cin}to{cout}_k{k}s{s}")),
            &0,
            |bench, _| {
                bench.iter(|| {
                    let y = conv.forward(&x);
                    let g = conv.backward(&y);
                    g.data()[0]
                })
            },
        );
    }
    group.finish();
}

fn bench_winograd_vs_direct(c: &mut Criterion) {
    use scidl_nn::winograd::winograd_conv3x3;
    let mut group = c.benchmark_group("conv3x3_algorithms");
    group.sample_size(10);
    let mut rng = TensorRng::new(5);
    let mut conv = Conv2d::new("c", 16, 32, 3, 1, 1, &mut rng);
    let x = rng.uniform_tensor(Shape4::new(4, 16, 32, 32), -1.0, 1.0);
    let weight = conv.params()[0].value.clone();
    let bias: Vec<f32> = conv.params()[1].value.data().to_vec();
    group.bench_function("im2col_gemm", |b| {
        b.iter(|| {
            let y = conv.forward(&x);
            y.data()[0]
        })
    });
    group.bench_function("winograd_f2x2", |b| {
        b.iter(|| {
            let y = winograd_conv3x3(&x, &weight, &bias);
            y.data()[0]
        })
    });
    group.bench_function("fft_conv", |b| {
        use scidl_nn::fftconv::fft_conv;
        b.iter(|| {
            let y = fft_conv(&x, &weight, &bias, 1);
            y.data()[0]
        })
    });
    group.finish();
}

fn bench_deconv_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("deconv_fwd");
    group.sample_size(10);
    let mut rng = TensorRng::new(3);
    let mut dec = Deconv2d::new("d", 64, 16, 4, 2, 1, &mut rng);
    let x = rng.uniform_tensor(Shape4::new(8, 64, 24, 24), -1.0, 1.0);
    group.bench_function("deconv64to16_k4s2", |bench| {
        bench.iter(|| {
            let y = dec.forward(&x);
            y.data()[0]
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_packed_vs_seed,
    bench_im2col,
    bench_conv_layers,
    bench_winograd_vs_direct,
    bench_deconv_layer
);
criterion_main!(benches);
