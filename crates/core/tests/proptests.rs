//! Property-based tests for the training engines, metrics and
//! checkpointing under arbitrary configurations.

use proptest::prelude::*;
use scidl_core::checkpoint::Checkpoint;
use scidl_core::metrics::LossCurve;
use scidl_core::sim_engine::{SimEngine, SimEngineConfig, SolverKind};
use scidl_core::workloads::hep_workload;
use scidl_data::{HepConfig, HepDataset};
use scidl_nn::network::Model;
use scidl_tensor::TensorRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The simulated engine applies exactly `groups × iterations`
    /// updates, records one loss point per update in nondecreasing time,
    /// and keeps the model finite — for any seed and group count.
    #[test]
    fn engine_invariants(groups in 1usize..4, seed in any::<u64>()) {
        let ds = HepDataset::generate(HepConfig::small(), 48, seed);
        let mut cfg = SimEngineConfig::fig8(8, groups, 16, hep_workload());
        cfg.iterations = 4;
        cfg.seed = seed;
        cfg.solver = SolverKind::Sgd { momentum: 0.5 };
        let mut rng = TensorRng::new(seed);
        let mut model = scidl_nn::arch::hep_small(&mut rng);
        let run = SimEngine::run(&cfg, &mut model, &ds);
        prop_assert_eq!(run.updates, groups * 4);
        prop_assert_eq!(run.curve.len(), groups * 4);
        let times: Vec<f64> = run.curve.points.iter().map(|p| p.0).collect();
        prop_assert!(times.windows(2).all(|w| w[1] >= w[0]));
        prop_assert!(run.final_params.iter().all(|p| p.is_finite()));
        prop_assert_eq!(model.flat_params(), run.final_params);
    }

    /// The thread engine conserves update counts under arbitrary
    /// group-crash fault plans: without recovery the dead group
    /// contributes exactly its pre-crash iterations; with recovery every
    /// group finishes its budget and the rejoined work is counted as
    /// recovered. The staleness histogram accounts for every update and
    /// staleness stays bounded by the work other groups can do.
    #[test]
    fn thread_engine_fault_plan_invariants(
        groups in 1usize..4,
        crash_iter in 0usize..5,
        recover in any::<bool>(),
        seed in any::<u64>(),
    ) {
        use scidl_core::faults;
        use scidl_core::thread_engine::{ThreadEngine, ThreadEngineConfig};
        let iters = 5usize;
        let ds = std::sync::Arc::new(HepDataset::generate(HepConfig::small(), 48, seed));
        let mut cfg = ThreadEngineConfig::new(groups, 2, 8);
        cfg.iterations = iters;
        cfg.seed = seed;
        cfg.faults = if recover {
            faults::kill_and_recover_group(0, crash_iter, 1, 0.0)
        } else {
            faults::kill_group(0, crash_iter)
        };
        let run = ThreadEngine::run(&cfg, ds);
        let expected = if recover {
            (groups * iters) as u64
        } else {
            ((groups - 1) * iters + crash_iter) as u64
        };
        prop_assert_eq!(run.updates, expected);
        if recover {
            prop_assert_eq!(run.recovered_updates, (iters - crash_iter) as u64);
        } else {
            prop_assert_eq!(run.recovered_updates, 0);
        }
        prop_assert_eq!(run.staleness_histogram.iter().sum::<u64>(), run.updates);
        prop_assert_eq!(run.curve.len() as u64, run.updates);
        // Staleness is bounded by the total work the *other* groups can
        // interleave; a single group is fully synchronous even across a
        // crash-and-recover cycle.
        prop_assert!(run.mean_staleness <= ((groups - 1) * iters) as f64);
        if groups == 1 {
            prop_assert_eq!(run.mean_staleness, 0.0);
        }
        prop_assert_eq!(run.ps_respawns, 0);
        prop_assert!(run.final_params.iter().all(|p| p.is_finite()));
    }

    /// Checkpoints round-trip arbitrary parameter vectors exactly.
    #[test]
    fn checkpoint_roundtrip_arbitrary_params(
        params in proptest::collection::vec(-1e6f32..1e6, 1..200),
        iteration in any::<u64>(),
        seed in any::<u64>(),
    ) {
        struct Raw(Vec<f32>);
        impl Model for Raw {
            fn param_blocks(&self) -> Vec<&scidl_nn::ParamBlock> { Vec::new() }
            fn param_blocks_mut(&mut self) -> Vec<&mut scidl_nn::ParamBlock> { Vec::new() }
            fn flat_params(&self) -> Vec<f32> { self.0.clone() }
            fn set_flat_params(&mut self, flat: &[f32]) { self.0 = flat.to_vec(); }
        }
        let model = Raw(params.clone());
        let ck = Checkpoint::capture(&model, iteration, seed);
        let mut path = std::env::temp_dir();
        path.push(format!("scidl_prop_{}_{}", std::process::id(), iteration & 0xFFFF));
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back.params, params);
        prop_assert_eq!(back.iteration, iteration);
        prop_assert_eq!(back.seed, seed);
    }

    /// time_to_loss is monotone in the target: an easier target is never
    /// reached later than a harder one.
    #[test]
    fn time_to_loss_monotone_in_target(
        losses in proptest::collection::vec(0.0f32..2.0, 2..50),
        t_easy in 0.2f32..2.0,
        delta in 0.01f32..0.5,
    ) {
        let mut curve = LossCurve::new();
        for (i, &l) in losses.iter().enumerate() {
            curve.push(i as f64, l);
        }
        let t_hard = t_easy - delta;
        match (curve.time_to_loss(t_easy, 1), curve.time_to_loss(t_hard.max(0.0), 1)) {
            (Some(easy), Some(hard)) => prop_assert!(easy <= hard),
            (None, Some(_)) => prop_assert!(false, "harder target reached but easier not"),
            _ => {}
        }
    }

    /// The random-search tuner returns exactly `trials` results sorted by
    /// score, and the best score is no worse than any other.
    #[test]
    fn tuner_sorted_output(trials in 1usize..5, seed in any::<u64>()) {
        use scidl_core::tuner::{random_search, SearchSpace, TunerConfig};
        let ds = HepDataset::generate(HepConfig::small(), 32, seed);
        let cfg = TunerConfig { trials, updates: 4, total_batch: 8, nodes: 4, smooth_window: 2 };
        let results = random_search(&SearchSpace::default(), &cfg, &hep_workload(), &ds, seed);
        prop_assert_eq!(results.len(), trials);
        for pair in results.windows(2) {
            prop_assert!(pair[0].score <= pair[1].score);
        }
    }
}
