#![warn(missing_docs)]
//! # scidl-core
//!
//! The primary contribution of *Deep Learning at 15PF* (Kurth et al.,
//! SC'17), rebuilt in Rust: a **hybrid synchronous/asynchronous
//! distributed training system**. Nodes form *compute groups* that are
//! internally synchronous — data-parallel SGD with an all-reduce — while
//! groups communicate asynchronously through dedicated per-layer
//! parameter servers. The group count is the knob trading *hardware
//! efficiency* (stragglers, small-batch kernel efficiency) against
//! *statistical efficiency* (gradient staleness), tuned jointly with
//! momentum (Sec. II-B2, III-E).
//!
//! Two execution backends implement the same architecture:
//!
//! * [`ThreadEngine`](thread_engine::ThreadEngine) — every simulated node
//!   is a real thread; groups all-reduce through `scidl-comm` and
//!   exchange updates with real per-layer PS threads. Used to validate
//!   the *correctness* of the architecture (sync ≡ single-process SGD;
//!   staleness is real).
//! * [`SimEngine`](sim_engine::SimEngine) — deterministic simulated-time
//!   execution: gradients are computed for real (so loss trajectories
//!   and staleness effects are genuine), while iteration *durations*
//!   come from the calibrated Cori models in `scidl-cluster`. Used for
//!   the wall-clock convergence results (Fig. 8) where thousands of
//!   virtual nodes are needed.
//!
//! [`experiments`] contains one driver per table/figure of the paper;
//! the `scidl-bench` binaries are thin wrappers around them.
//!
//! ## Example
//!
//! ```
//! use scidl_core::sim_engine::{SimEngine, SimEngineConfig, SolverKind};
//! use scidl_core::workloads::hep_workload;
//! use scidl_data::{HepConfig, HepDataset};
//! use scidl_tensor::TensorRng;
//!
//! // Hybrid training: 2 groups of virtual nodes, real gradients,
//! // simulated Cori wall-clock.
//! let ds = HepDataset::generate(HepConfig::small(), 32, 1);
//! let mut cfg = SimEngineConfig::fig8(4, 2, 8, hep_workload());
//! cfg.iterations = 3;
//! cfg.solver = SolverKind::Sgd { momentum: 0.7 };
//! let mut model = scidl_nn::arch::hep_small(&mut TensorRng::new(1));
//! let run = SimEngine::run(&cfg, &mut model, &ds);
//! assert_eq!(run.updates, 6);
//! assert!(run.mean_staleness > 0.0); // groups really interleave
//! ```

pub use scidl_trace as trace;

pub mod checkpoint;
pub mod experiments;
pub mod faults;
pub mod metrics;
pub mod model_parallel;
pub mod sim_engine;
pub mod task;
pub mod thread_engine;
pub mod tuner;
pub mod workloads;

pub use faults::FaultPlan;
pub use metrics::LossCurve;
pub use sim_engine::{SimEngine, SimEngineConfig, SimRunSummary};
pub use thread_engine::{ThreadEngine, ThreadEngineConfig, ThreadRunSummary};
pub use workloads::{climate_workload, hep_workload};
