//! Model checkpointing.
//!
//! The paper's sustained-throughput numbers include "the overhead of
//! storing a model snapshot to disk once in 10 iterations" (Sec. VI-B3),
//! and resilience to failures (Sec. VIII-A) presumes restartability.
//! The cluster simulator charges the *time* of snapshots; this module
//! provides the real artefact: a small, self-describing binary format
//! for model parameters plus training metadata, with integrity checks —
//! no serialization dependency needed.
//!
//! Format (little-endian): magic `b"SCDL"`, version u32, iteration u64,
//! seed u64, param-count u64, raw f32 parameters, FNV-1a checksum u64 of
//! everything before it.

use scidl_nn::network::Model;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SCDL";
const VERSION: u32 = 1;

/// A checkpoint: flat parameters plus the training cursor.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Training iteration at which the snapshot was taken.
    pub iteration: u64,
    /// The run's RNG seed (restarts must keep sampling streams).
    pub seed: u64,
    /// Flat model parameters (block order).
    pub params: Vec<f32>,
}

impl Checkpoint {
    /// Captures a model's current parameters.
    pub fn capture(model: &dyn Model, iteration: u64, seed: u64) -> Self {
        Self { iteration, seed, params: model.flat_params() }
    }

    /// Restores the parameters into a model (shapes must match).
    pub fn restore(&self, model: &mut dyn Model) {
        model.set_flat_params(&self.params);
    }

    /// Writes the checkpoint to `path` *crash-safely*: the bytes go to a
    /// sibling temporary file which is fsynced and then atomically
    /// renamed over `path`. A crash mid-write leaves either the previous
    /// checkpoint intact or a stray `.tmp` that [`Checkpoint::load`]
    /// never sees — never a torn file at `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut buf = Vec::with_capacity(4 + 4 + 8 + 8 + 8 + self.params.len() * 4 + 8);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&self.iteration.to_le_bytes());
        buf.extend_from_slice(&self.seed.to_le_bytes());
        buf.extend_from_slice(&(self.params.len() as u64).to_le_bytes());
        for p in &self.params {
            buf.extend_from_slice(&p.to_le_bytes());
        }
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());

        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let mut f = File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
        drop(f);
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                Err(e)
            }
        }
    }

    /// Reads a checkpoint from `path`, verifying magic, version and
    /// checksum.
    pub fn load(path: &Path) -> io::Result<Self> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        if buf.len() < 4 + 4 + 8 + 8 + 8 + 8 {
            return Err(bad("checkpoint truncated"));
        }
        let (body, sum_bytes) = buf.split_at(buf.len() - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
        if fnv1a(body) != stored {
            return Err(bad("checkpoint checksum mismatch"));
        }
        if &body[0..4] != MAGIC {
            return Err(bad("not a scidl checkpoint"));
        }
        let version = u32::from_le_bytes(body[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(bad("unsupported checkpoint version"));
        }
        let iteration = u64::from_le_bytes(body[8..16].try_into().unwrap());
        let seed = u64::from_le_bytes(body[16..24].try_into().unwrap());
        let count = u64::from_le_bytes(body[24..32].try_into().unwrap()) as usize;
        if body.len() != 32 + count * 4 {
            return Err(bad("checkpoint length mismatch"));
        }
        let params = body[32..]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(Self { iteration, seed, params })
    }
}

/// FNV-1a over a byte slice.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidl_nn::Solver;
    use scidl_tensor::TensorRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("scidl_ckpt_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let mut rng = TensorRng::new(3);
        let model = scidl_nn::arch::hep_small(&mut rng);
        let ck = Checkpoint::capture(&model, 1234, 0xBEEF);
        let path = tmp("roundtrip");
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(ck, back);
    }

    #[test]
    fn restore_overwrites_model_params() {
        let mut rng = TensorRng::new(4);
        let model_a = scidl_nn::arch::hep_small(&mut rng);
        let mut rng2 = TensorRng::new(5);
        let mut model_b = scidl_nn::arch::hep_small(&mut rng2);
        assert_ne!(model_a.flat_params(), model_b.flat_params());
        let ck = Checkpoint::capture(&model_a, 0, 0);
        ck.restore(&mut model_b);
        assert_eq!(model_a.flat_params(), model_b.flat_params());
    }

    #[test]
    fn corruption_is_detected() {
        let mut rng = TensorRng::new(6);
        let model = scidl_nn::arch::hep_small(&mut rng);
        let ck = Checkpoint::capture(&model, 7, 8);
        let path = tmp("corrupt");
        ck.save(&path).unwrap();
        // Flip one byte in the middle.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn truncation_is_detected() {
        let path = tmp("trunc");
        std::fs::write(&path, b"SCDL").unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn mid_data_truncation_fails_the_checksum() {
        // A file long enough to parse but cut mid-parameters must be
        // rejected by the checksum, not read as a shorter model.
        let mut rng = TensorRng::new(21);
        let model = scidl_nn::arch::hep_small(&mut rng);
        let ck = Checkpoint::capture(&model, 7, 8);
        let path = tmp("midtrunc");
        ck.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 100]).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("checksum"), "got: {err}");
    }

    #[test]
    fn save_replaces_atomically_and_leaves_no_tmp() {
        let mut rng = TensorRng::new(22);
        let model = scidl_nn::arch::hep_small(&mut rng);
        let path = tmp("atomic");
        Checkpoint::capture(&model, 1, 0).save(&path).unwrap();
        // Overwrite with a later snapshot; the file must parse cleanly
        // and hold the *new* cursor, with no .tmp sibling left behind.
        Checkpoint::capture(&model, 2, 0).save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.iteration, 2);
        let mut tmp_path = path.as_os_str().to_owned();
        tmp_path.push(".tmp");
        assert!(!std::path::Path::new(&tmp_path).exists(), "tmp file left behind");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tmp_write_does_not_clobber_the_previous_checkpoint() {
        // Simulate a crash between tmp-write and rename: the stray .tmp
        // must not affect loading the last good checkpoint.
        let mut rng = TensorRng::new(23);
        let model = scidl_nn::arch::hep_small(&mut rng);
        let path = tmp("torn");
        Checkpoint::capture(&model, 5, 0).save(&path).unwrap();
        let mut tmp_path = path.as_os_str().to_owned();
        tmp_path.push(".tmp");
        std::fs::write(&tmp_path, b"garbage from a crashed writer").unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.iteration, 5);
        std::fs::remove_file(&tmp_path).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut rng = TensorRng::new(9);
        let model = scidl_nn::arch::hep_small(&mut rng);
        let ck = Checkpoint::capture(&model, 1, 2);
        let path = tmp("magic");
        ck.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        // Re-stamp the checksum so only the magic is wrong.
        let body_len = bytes.len() - 8;
        let sum = super::fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("not a scidl checkpoint"));
    }

    #[test]
    fn resume_continues_training_identically() {
        use crate::sim_engine::{SimEngine, SimEngineConfig, SolverKind};
        use crate::workloads::hep_workload;
        use scidl_data::{HepConfig, HepDataset};

        // Train 4 iterations straight vs 2 + checkpoint + 2 with a fresh
        // engine resumed from the snapshot. SGD without momentum has no
        // solver state, so parameters must match exactly.
        let ds = HepDataset::generate(HepConfig::small(), 48, 77);
        let mk = |iters: usize| {
            let mut cfg = SimEngineConfig::fig8(1, 1, 8, hep_workload());
            cfg.iterations = iters;
            cfg.solver = SolverKind::Sgd { momentum: 0.0 };
            cfg.jitter = scidl_cluster::JitterModel::none();
            cfg
        };
        let mut rng = TensorRng::new(1);
        let mut straight = scidl_nn::arch::hep_small(&mut rng);
        SimEngine::run(&mk(4), &mut straight, &ds);

        let mut rng = TensorRng::new(1);
        let mut resumed = scidl_nn::arch::hep_small(&mut rng);
        // First half. The sampler draws 2 batches.
        let mut cfg_a = mk(2);
        cfg_a.seed = 0xF18;
        SimEngine::run(&cfg_a, &mut resumed, &ds);
        let path = tmp("resume");
        Checkpoint::capture(&resumed, 2, cfg_a.seed).save(&path).unwrap();

        // "Restart": fresh model, restore, continue with a sampler that
        // replays the stream past the first 2 batches.
        let mut rng = TensorRng::new(99);
        let mut fresh = scidl_nn::arch::hep_small(&mut rng);
        Checkpoint::load(&path).unwrap().restore(&mut fresh);
        std::fs::remove_file(&path).ok();
        // Drive the remaining 2 iterations manually with the same stream.
        let mut sampler = scidl_data::BatchSampler::for_node(ds.len(), 8, cfg_a.seed, 0, 1);
        let _ = sampler.next_batch();
        let _ = sampler.next_batch();
        let mut solver = scidl_nn::Sgd::new(1e-3, 0.0);
        let sizes: Vec<usize> = fresh.param_blocks().iter().map(|b| b.len()).collect();
        let mut flat = fresh.flat_params();
        for _ in 0..2 {
            fresh.set_flat_params(&flat);
            let idx = sampler.next_batch();
            let (_, grad) = crate::task::hep_gradient(&mut fresh, &ds, &idx);
            let mut off = 0;
            for (i, &len) in sizes.iter().enumerate() {
                solver.step_block(i, &mut flat[off..off + len], &grad[off..off + len]);
                off += len;
            }
        }
        fresh.set_flat_params(&flat);

        let a = straight.flat_params();
        let b = fresh.flat_params();
        let max_err = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max);
        assert!(max_err < 1e-6, "resume must reproduce straight-through training: {max_err}");
    }
}
