//! Builders turning real `scidl-nn` networks into the cost descriptions
//! (`scidl-cluster::sim::Workload`) that the cluster simulator consumes —
//! the single source of truth for layer FLOPs is the network itself.

use scidl_cluster::knl::{LayerCost, RateClass};
use scidl_cluster::sim::Workload;
use scidl_nn::arch::{self, ClimateNet};
use scidl_nn::network::{Model, Network};
use scidl_tensor::{Shape4, TensorRng};

/// Builds a per-layer cost table from a network at the given input shape.
fn layer_costs(net: &Network, input: Shape4) -> Vec<LayerCost> {
    let mut s = input.with_n(1);
    let mut out = Vec::with_capacity(net.layers().len());
    for l in net.layers() {
        let name = l.name().to_string();
        let train = l.forward_flops_per_image(s) + l.backward_flops_per_image(s);
        let os = l.out_shape(s);
        // Classify by name/behaviour: convolutions and deconvolutions are
        // GEMM-bound; dense layers here are tiny; everything else
        // (relu/pool) is bandwidth-bound.
        let class = if name.starts_with("conv") || name.starts_with("enc") || name.starts_with("head") {
            RateClass::Conv { cin: s.c }
        } else if name.starts_with("dec") && !name.contains("relu") {
            // Deconv: the mirror conv's input channels are this layer's
            // *output* channels.
            RateClass::Conv { cin: os.c }
        } else if name.starts_with("fc") {
            if train > 100_000_000 {
                // A large dense layer is GEMM-bound like a deep conv
                // (only counterfactual architectures hit this arm).
                RateClass::Conv { cin: 256 }
            } else {
                RateClass::DenseSmall
            }
        } else {
            // Forward touches in+out activations, backward the same again.
            let bytes = 4 * (s.item_len() + os.item_len()) * 2;
            RateClass::MemoryBound { bytes_per_image: bytes as u64 }
        };
        out.push(LayerCost { name, train_flops_per_image: train, class });
        s = os;
    }
    out
}

/// Builds a workload description for an arbitrary network (used by the
/// architecture-choice ablation to cost counterfactual designs).
pub fn workload_for_network(
    name: &str,
    net: &Network,
    input: Shape4,
    io_bw: f64,
    solver_flops_per_param: u64,
    solver_bytes_per_param: f64,
    solver_bw: f64,
) -> Workload {
    let params = net.num_params() as u64;
    Workload {
        name: name.into(),
        layers: layer_costs(net, input),
        params,
        model_bytes: 4 * params,
        image_bytes: (input.item_len() * 4) as u64,
        io_bw,
        solver_flops_per_param,
        solver_bytes_per_param,
        solver_bw,
    }
}

/// The HEP workload of Table II: the real 224px network's per-layer
/// costs, 594k-parameter model, ADAM solver, fast 3-channel input
/// pipeline (I/O is ~2% of runtime, Sec. VI-A).
pub fn hep_workload() -> Workload {
    let mut rng = TensorRng::new(1);
    let net = arch::hep_network(&mut rng);
    let input = arch::HEP_INPUT;
    let params = net.num_params() as u64;
    Workload {
        name: "hep".into(),
        layers: layer_costs(&net, input),
        params,
        model_bytes: 4 * params,
        image_bytes: (input.item_len() * 4) as u64,
        io_bw: 3.6e9,
        solver_flops_per_param: 12, // ADAM
        // ADAM on IntelCaffe: history copies in a poorly threaded phase —
        // 12.5% of runtime at batch 8 (Sec. VI-A).
        solver_bytes_per_param: 24.0,
        solver_bw: 1.6e9,
    }
}

/// The climate workload of Table II: the 768px semi-supervised network,
/// ≈80M-parameter model, SGD-momentum solver, slow 16-channel hyperslab
/// input pipeline (I/O is ~13% of runtime, Sec. VI-A).
pub fn climate_workload() -> Workload {
    let mut rng = TensorRng::new(2);
    let net = ClimateNet::full(&mut rng);
    let input = arch::CLIMATE_INPUT;
    let feat = net.encoder.out_shape(input.with_n(1));

    let mut layers = layer_costs(&net.encoder, input);
    // Scoring heads (small convs on the 24x24 feature grid).
    for (name, cout) in [("head_conf", 1usize), ("head_class", arch::CLIMATE_CLASSES), ("head_bbox", 4)] {
        let macs = (cout * feat.c * 9 * feat.h * feat.w) as u64;
        layers.push(LayerCost {
            name: name.into(),
            train_flops_per_image: 6 * macs,
            class: RateClass::Conv { cin: feat.c },
        });
    }
    layers.extend(layer_costs(&net.decoder, feat));

    let params = net.num_params() as u64;
    Workload {
        name: "climate".into(),
        layers,
        params,
        model_bytes: 4 * params,
        image_bytes: (input.item_len() * 4) as u64,
        io_bw: 7.2e8,
        solver_flops_per_param: 6, // SGD + momentum
        // Plain momentum-SGD touches far fewer arrays and threads well —
        // the update is insignificant (<2%) for climate (Sec. VI-A).
        solver_bytes_per_param: 12.0,
        solver_bw: 1.2e10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidl_cluster::KnlModel;

    #[test]
    fn hep_single_node_rate_matches_paper() {
        // Sec. VI-A: 1.90 TF/s at batch 8. Accept ±15% (the model is
        // calibrated, not fitted per-layer).
        let w = hep_workload();
        let rate = w.single_node_rate(&KnlModel::default(), 8);
        let target = 1.90e12;
        assert!(
            (rate - target).abs() / target < 0.15,
            "HEP single-node rate {:.3} TF/s vs paper 1.90",
            rate / 1e12
        );
    }

    #[test]
    fn climate_single_node_rate_matches_paper() {
        // Sec. VI-A: 2.09 TF/s at batch 8.
        let w = climate_workload();
        let rate = w.single_node_rate(&KnlModel::default(), 8);
        let target = 2.09e12;
        assert!(
            (rate - target).abs() / target < 0.15,
            "Climate single-node rate {:.3} TF/s vs paper 2.09",
            rate / 1e12
        );
    }

    #[test]
    fn hep_solver_share_near_paper() {
        // Sec. VI-A: ~12.5% of HEP runtime is the solver update.
        let w = hep_workload();
        let knl = KnlModel::default();
        let share = w.solver_secs(w.params) / w.node_iteration_time(&knl, 8);
        assert!((0.07..0.20).contains(&share), "solver share {share}");
    }

    #[test]
    fn climate_io_share_near_paper() {
        // Sec. VI-A: ~13% of climate runtime is input I/O; HEP ~2%.
        let knl = KnlModel::default();
        let wc = climate_workload();
        let c_share = wc.io_time(8) / wc.node_iteration_time(&knl, 8);
        assert!((0.08..0.20).contains(&c_share), "climate io share {c_share}");
        let wh = hep_workload();
        let h_share = wh.io_time(8) / wh.node_iteration_time(&knl, 8);
        assert!((0.005..0.05).contains(&h_share), "hep io share {h_share}");
    }

    #[test]
    fn model_bytes_match_table2() {
        let wh = hep_workload();
        assert!((wh.model_bytes as f64 / (1024.0 * 1024.0) - 2.27).abs() < 0.1);
        let wc = climate_workload();
        let mib = wc.model_bytes as f64 / (1024.0 * 1024.0);
        assert!((mib - 302.1).abs() < 6.0, "climate model {mib} MiB");
    }

    #[test]
    fn conv_layers_dominate_flops() {
        for w in [hep_workload(), climate_workload()] {
            let conv_flops: u64 = w
                .layers
                .iter()
                .filter(|l| matches!(l.class, RateClass::Conv { .. }))
                .map(|l| l.train_flops_per_image)
                .sum();
            let total: u64 = w.layers.iter().map(|l| l.train_flops_per_image).sum();
            assert!(conv_flops as f64 / total as f64 > 0.95, "{}", w.name);
        }
    }
}
