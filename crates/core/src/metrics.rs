//! Training-run metrics: loss curves over (simulated or real) time, the
//! time-to-loss readout of Fig. 8, and speedup tables — plus the
//! per-request latency accounting used by the `scidl-serve` inference
//! subsystem (queue wait vs compute split, p50/p95/p99).
//!
//! Percentile/summary-stat math is shared workspace-wide through
//! [`scidl_tensor::stats`]; this module re-exports it so metrics
//! consumers have a single import point.

pub use scidl_tensor::stats::{median, percentile, percentile_sorted, Summary};

/// Per-request serving latency accounting: each completed request
/// contributes its queue wait (submit → batch formation) and its compute
/// time (share of the batched forward pass). Total latency is their sum.
///
/// This is the serving-side analogue of the paper's throughput
/// bookkeeping (Sec. V): sustained numbers come from completed work over
/// wall-clock, and the tail (p99) — not the mean — is what a
/// production latency budget is written against.
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    queue: Vec<f64>,
    compute: Vec<f64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request.
    pub fn push(&mut self, queue_secs: f64, compute_secs: f64) {
        debug_assert!(queue_secs >= 0.0 && compute_secs >= 0.0);
        self.queue.push(queue_secs);
        self.compute.push(compute_secs);
    }

    /// Merges another recorder's samples (used to combine per-worker
    /// recorders).
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.queue.extend_from_slice(&other.queue);
        self.compute.extend_from_slice(&other.compute);
    }

    /// Number of completed requests recorded.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Summary of total (queue + compute) request latency. `None` when
    /// empty.
    pub fn total_summary(&self) -> Option<Summary> {
        (!self.is_empty()).then(|| {
            let totals: Vec<f64> =
                self.queue.iter().zip(&self.compute).map(|(q, c)| q + c).collect();
            Summary::from_samples(&totals)
        })
    }

    /// Summary of queue-wait time alone.
    pub fn queue_summary(&self) -> Option<Summary> {
        (!self.is_empty()).then(|| Summary::from_samples(&self.queue))
    }

    /// Summary of compute time alone.
    pub fn compute_summary(&self) -> Option<Summary> {
        (!self.is_empty()).then(|| Summary::from_samples(&self.compute))
    }

    /// Fraction of mean total latency spent waiting in the queue, in
    /// `[0, 1]`. `None` when empty.
    pub fn queue_share(&self) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let q: f64 = self.queue.iter().sum();
        let c: f64 = self.compute.iter().sum();
        let t = q + c;
        (t > 0.0).then(|| q / t)
    }
}

/// A loss trajectory over time.
#[derive(Clone, Debug, Default)]
pub struct LossCurve {
    /// `(seconds, loss)` samples in nondecreasing time order.
    pub points: Vec<(f64, f32)>,
}

impl LossCurve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample; time must not go backwards.
    pub fn push(&mut self, time: f64, loss: f32) {
        if let Some(&(t, _)) = self.points.last() {
            assert!(time >= t, "loss curve time went backwards: {time} < {t}");
        }
        self.points.push((time, loss));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the curve has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Final loss value, if any.
    pub fn final_loss(&self) -> Option<f32> {
        self.points.last().map(|&(_, l)| l)
    }

    /// First time at which a *smoothed* loss (trailing window of
    /// `window` samples) reaches `target`. This is the paper's Fig. 8
    /// readout: "wall-clock time speedups with respect to a loss of
    /// 0.05". Returns `None` when the target is never reached.
    pub fn time_to_loss(&self, target: f32, window: usize) -> Option<f64> {
        let w = window.max(1);
        let mut sum = 0.0f64;
        let mut buf: std::collections::VecDeque<f32> = Default::default();
        for &(t, l) in &self.points {
            buf.push_back(l);
            sum += l as f64;
            if buf.len() > w {
                sum -= buf.pop_front().unwrap() as f64;
            }
            if buf.len() == w && (sum / w as f64) <= target as f64 {
                return Some(t);
            }
        }
        None
    }

    /// Minimum smoothed loss over the run.
    pub fn best_smoothed(&self, window: usize) -> Option<f32> {
        let w = window.max(1);
        if self.points.len() < w {
            return self.points.iter().map(|&(_, l)| l).fold(None, |acc: Option<f32>, l| {
                Some(acc.map_or(l, |a| a.min(l)))
            });
        }
        let losses: Vec<f32> = self.points.iter().map(|&(_, l)| l).collect();
        losses
            .windows(w)
            .map(|win| win.iter().sum::<f32>() / w as f32)
            .fold(None, |acc: Option<f32>, v| Some(acc.map_or(v, |a| a.min(v))))
    }
}

/// Speedup of `fast` over `slow` in time-to-target terms; `None` when
/// either never reaches the target.
pub fn time_to_loss_speedup(
    slow: &LossCurve,
    fast: &LossCurve,
    target: f32,
    window: usize,
) -> Option<f64> {
    let ts = slow.time_to_loss(target, window)?;
    let tf = fast.time_to_loss(target, window)?;
    (tf > 0.0).then(|| ts / tf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(points: &[(f64, f32)]) -> LossCurve {
        let mut c = LossCurve::new();
        for &(t, l) in points {
            c.push(t, l);
        }
        c
    }

    #[test]
    fn time_to_loss_finds_first_crossing() {
        let c = curve(&[(0.0, 1.0), (1.0, 0.5), (2.0, 0.04), (3.0, 0.03)]);
        assert_eq!(c.time_to_loss(0.05, 1), Some(2.0));
        assert_eq!(c.time_to_loss(0.001, 1), None);
    }

    #[test]
    fn smoothing_ignores_transient_dips() {
        // A single noisy dip at t=1 must not count with window 3.
        let c = curve(&[(0.0, 1.0), (1.0, 0.01), (2.0, 1.0), (3.0, 0.04), (4.0, 0.04), (5.0, 0.04)]);
        assert_eq!(c.time_to_loss(0.05, 3), Some(5.0));
        assert_eq!(c.time_to_loss(0.05, 1), Some(1.0));
    }

    #[test]
    fn speedup_ratio() {
        let slow = curve(&[(0.0, 1.0), (10.0, 0.04)]);
        let fast = curve(&[(0.0, 1.0), (5.0, 0.04)]);
        assert_eq!(time_to_loss_speedup(&slow, &fast, 0.05, 1), Some(2.0));
    }

    #[test]
    fn speedup_none_when_target_unreached() {
        let slow = curve(&[(0.0, 1.0), (10.0, 0.5)]);
        let fast = curve(&[(0.0, 1.0), (5.0, 0.04)]);
        assert_eq!(time_to_loss_speedup(&slow, &fast, 0.05, 1), None);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn rejects_nonmonotone_time() {
        let mut c = LossCurve::new();
        c.push(1.0, 0.5);
        c.push(0.5, 0.4);
    }

    #[test]
    fn best_smoothed_handles_short_curves() {
        let c = curve(&[(0.0, 0.8), (1.0, 0.6)]);
        assert_eq!(c.best_smoothed(5), Some(0.6));
        let c2 = curve(&[(0.0, 1.0), (1.0, 0.5), (2.0, 0.7), (3.0, 0.2)]);
        // Window-2 means: (0.75, 0.6, 0.45) → min 0.45.
        assert!((c2.best_smoothed(2).unwrap() - 0.45).abs() < 1e-6);
    }
}
