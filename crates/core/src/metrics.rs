//! Training-run metrics: loss curves over (simulated or real) time, the
//! time-to-loss readout of Fig. 8, and speedup tables.

/// A loss trajectory over time.
#[derive(Clone, Debug, Default)]
pub struct LossCurve {
    /// `(seconds, loss)` samples in nondecreasing time order.
    pub points: Vec<(f64, f32)>,
}

impl LossCurve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample; time must not go backwards.
    pub fn push(&mut self, time: f64, loss: f32) {
        if let Some(&(t, _)) = self.points.last() {
            assert!(time >= t, "loss curve time went backwards: {time} < {t}");
        }
        self.points.push((time, loss));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the curve has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Final loss value, if any.
    pub fn final_loss(&self) -> Option<f32> {
        self.points.last().map(|&(_, l)| l)
    }

    /// First time at which a *smoothed* loss (trailing window of
    /// `window` samples) reaches `target`. This is the paper's Fig. 8
    /// readout: "wall-clock time speedups with respect to a loss of
    /// 0.05". Returns `None` when the target is never reached.
    pub fn time_to_loss(&self, target: f32, window: usize) -> Option<f64> {
        let w = window.max(1);
        let mut sum = 0.0f64;
        let mut buf: std::collections::VecDeque<f32> = Default::default();
        for &(t, l) in &self.points {
            buf.push_back(l);
            sum += l as f64;
            if buf.len() > w {
                sum -= buf.pop_front().unwrap() as f64;
            }
            if buf.len() == w && (sum / w as f64) <= target as f64 {
                return Some(t);
            }
        }
        None
    }

    /// Minimum smoothed loss over the run.
    pub fn best_smoothed(&self, window: usize) -> Option<f32> {
        let w = window.max(1);
        if self.points.len() < w {
            return self.points.iter().map(|&(_, l)| l).fold(None, |acc: Option<f32>, l| {
                Some(acc.map_or(l, |a| a.min(l)))
            });
        }
        let losses: Vec<f32> = self.points.iter().map(|&(_, l)| l).collect();
        losses
            .windows(w)
            .map(|win| win.iter().sum::<f32>() / w as f32)
            .fold(None, |acc: Option<f32>, v| Some(acc.map_or(v, |a| a.min(v))))
    }
}

/// Speedup of `fast` over `slow` in time-to-target terms; `None` when
/// either never reaches the target.
pub fn time_to_loss_speedup(
    slow: &LossCurve,
    fast: &LossCurve,
    target: f32,
    window: usize,
) -> Option<f64> {
    let ts = slow.time_to_loss(target, window)?;
    let tf = fast.time_to_loss(target, window)?;
    (tf > 0.0).then(|| ts / tf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(points: &[(f64, f32)]) -> LossCurve {
        let mut c = LossCurve::new();
        for &(t, l) in points {
            c.push(t, l);
        }
        c
    }

    #[test]
    fn time_to_loss_finds_first_crossing() {
        let c = curve(&[(0.0, 1.0), (1.0, 0.5), (2.0, 0.04), (3.0, 0.03)]);
        assert_eq!(c.time_to_loss(0.05, 1), Some(2.0));
        assert_eq!(c.time_to_loss(0.001, 1), None);
    }

    #[test]
    fn smoothing_ignores_transient_dips() {
        // A single noisy dip at t=1 must not count with window 3.
        let c = curve(&[(0.0, 1.0), (1.0, 0.01), (2.0, 1.0), (3.0, 0.04), (4.0, 0.04), (5.0, 0.04)]);
        assert_eq!(c.time_to_loss(0.05, 3), Some(5.0));
        assert_eq!(c.time_to_loss(0.05, 1), Some(1.0));
    }

    #[test]
    fn speedup_ratio() {
        let slow = curve(&[(0.0, 1.0), (10.0, 0.04)]);
        let fast = curve(&[(0.0, 1.0), (5.0, 0.04)]);
        assert_eq!(time_to_loss_speedup(&slow, &fast, 0.05, 1), Some(2.0));
    }

    #[test]
    fn speedup_none_when_target_unreached() {
        let slow = curve(&[(0.0, 1.0), (10.0, 0.5)]);
        let fast = curve(&[(0.0, 1.0), (5.0, 0.04)]);
        assert_eq!(time_to_loss_speedup(&slow, &fast, 0.05, 1), None);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn rejects_nonmonotone_time() {
        let mut c = LossCurve::new();
        c.push(1.0, 0.5);
        c.push(0.5, 0.4);
    }

    #[test]
    fn best_smoothed_handles_short_curves() {
        let c = curve(&[(0.0, 0.8), (1.0, 0.6)]);
        assert_eq!(c.best_smoothed(5), Some(0.6));
        let c2 = curve(&[(0.0, 1.0), (1.0, 0.5), (2.0, 0.7), (3.0, 0.2)]);
        // Window-2 means: (0.75, 0.6, 0.45) → min 0.45.
        assert!((c2.best_smoothed(2).unwrap() - 0.45).abs() < 1e-6);
    }
}
