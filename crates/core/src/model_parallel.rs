//! Model parallelism.
//!
//! Sec. III-D: MLSL "enables different forms of parallelism — both data
//! and model parallelism — to be applied to different layers of the
//! network". The paper's networks are fully convolutional with tiny
//! dense heads, so it uses data parallelism only; this module supplies
//! the other form for completeness: a **column-parallel dense layer**
//! whose output features are sharded across the ranks of a communicator.
//! Forward all-gathers the output shards; backward all-reduces the
//! partial input gradients — the standard tensor-parallel decomposition.

use scidl_comm::Communicator;
use scidl_nn::layer::ParamBlock;
use scidl_tensor::{gemm, Shape4, Tensor, TensorRng, Transpose};

/// A dense layer `y = W x + b` with `W`'s rows (output features) sharded
/// over `size` ranks. All ranks construct the identical full weight from
/// the shared seed and keep only their shard, so a sharded ensemble is
/// numerically identical to the unsharded layer.
pub struct ShardedDense {
    rank: usize,
    size: usize,
    input: usize,
    full_output: usize,
    shard: usize,
    /// This rank's weight shard `(shard, input)` and its gradient.
    pub weight: ParamBlock,
    /// This rank's bias shard and its gradient.
    pub bias: ParamBlock,
    cached_input: Option<Tensor>,
}

impl ShardedDense {
    /// Creates rank `rank` of `size`'s shard. `full_output` must divide
    /// evenly by `size`.
    pub fn new(
        name: &str,
        input: usize,
        full_output: usize,
        rank: usize,
        size: usize,
        seed: u64,
    ) -> Self {
        assert!(size >= 1 && rank < size, "invalid rank/size");
        assert_eq!(full_output % size, 0, "output features must shard evenly");
        let shard = full_output / size;
        // Build the full weight deterministically, keep our row block.
        let mut rng = TensorRng::new(seed);
        let full_w = rng.he_tensor(Shape4::new(full_output, input, 1, 1), input);
        let w_shard: Vec<f32> =
            full_w.data()[rank * shard * input..(rank + 1) * shard * input].to_vec();
        let weight = ParamBlock::new(
            format!("{name}.weight[{rank}/{size}]"),
            Tensor::from_vec(Shape4::new(shard, input, 1, 1), w_shard),
        );
        let bias = ParamBlock::new(
            format!("{name}.bias[{rank}/{size}]"),
            Tensor::zeros(Shape4::flat(shard)),
        );
        Self { rank, size, input, full_output, shard, weight, bias, cached_input: None }
    }

    /// Forward pass: computes the local output shard and all-gathers the
    /// full `(n, full_output)` activation across the communicator.
    pub fn forward(&mut self, x: &Tensor, comm: &Communicator) -> Tensor {
        assert_eq!(comm.size(), self.size, "communicator size mismatch");
        assert_eq!(x.shape().item_len(), self.input, "input width mismatch");
        let n = x.shape().n;

        // Local shard: y_s (n x shard) = x W_s^T + b_s.
        let mut local = vec![0.0f32; n * self.shard];
        gemm(
            Transpose::No,
            Transpose::Yes,
            n,
            self.shard,
            self.input,
            1.0,
            x.data(),
            self.weight.value.data(),
            0.0,
            &mut local,
        );
        for row in local.chunks_mut(self.shard) {
            for (v, &b) in row.iter_mut().zip(self.bias.value.data()) {
                *v += b;
            }
        }

        // All-gather by summing disjoint placements (mean × size).
        let mut full = vec![0.0f32; n * self.full_output];
        for i in 0..n {
            full[i * self.full_output + self.rank * self.shard
                ..i * self.full_output + (self.rank + 1) * self.shard]
                .copy_from_slice(&local[i * self.shard..(i + 1) * self.shard]);
        }
        comm.allreduce_mean(&mut full);
        for v in &mut full {
            *v *= self.size as f32;
        }
        self.cached_input = Some(x.clone());
        Tensor::from_vec(Shape4::new(n, self.full_output, 1, 1), full)
    }

    /// Backward pass: consumes the full output gradient, accumulates this
    /// shard's weight/bias gradients and returns the full input gradient
    /// (all-reduced partial products).
    pub fn backward(&mut self, dy: &Tensor, comm: &Communicator) -> Tensor {
        let x = self.cached_input.take().expect("backward before forward");
        let n = x.shape().n;
        assert_eq!(dy.shape(), Shape4::new(n, self.full_output, 1, 1), "dy shape mismatch");

        // Slice our output-feature columns.
        let mut dy_s = vec![0.0f32; n * self.shard];
        for i in 0..n {
            dy_s[i * self.shard..(i + 1) * self.shard].copy_from_slice(
                &dy.data()[i * self.full_output + self.rank * self.shard
                    ..i * self.full_output + (self.rank + 1) * self.shard],
            );
        }

        // dW_s += dy_s^T x ; db_s += column sums.
        gemm(
            Transpose::Yes,
            Transpose::No,
            self.shard,
            self.input,
            n,
            1.0,
            &dy_s,
            x.data(),
            1.0,
            self.weight.grad.data_mut(),
        );
        for i in 0..n {
            for (g, &d) in self
                .bias
                .grad
                .data_mut()
                .iter_mut()
                .zip(&dy_s[i * self.shard..(i + 1) * self.shard])
            {
                *g += d;
            }
        }

        // Partial dx = dy_s W_s ; the full dx is the sum over ranks.
        let mut dx = vec![0.0f32; n * self.input];
        gemm(
            Transpose::No,
            Transpose::No,
            n,
            self.input,
            self.shard,
            1.0,
            &dy_s,
            self.weight.value.data(),
            0.0,
            &mut dx,
        );
        comm.allreduce_mean(&mut dx);
        for v in &mut dx {
            *v *= self.size as f32;
        }
        Tensor::from_vec(x.shape(), dx)
    }

    /// This rank's output-feature range.
    pub fn shard_range(&self) -> std::ops::Range<usize> {
        self.rank * self.shard..(self.rank + 1) * self.shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidl_comm::CommWorld;
    use scidl_nn::{Dense, Layer};
    use std::thread;

    /// Reference: unsharded Dense with the same seed.
    fn reference(input: usize, output: usize, seed: u64) -> Dense {
        let mut rng = TensorRng::new(seed);
        Dense::new("ref", input, output, &mut rng)
    }

    fn run_sharded(
        size: usize,
        input: usize,
        output: usize,
        seed: u64,
        x: Tensor,
        dy: Tensor,
    ) -> (Tensor, Tensor, Vec<Vec<f32>>) {
        let comms = CommWorld::new(size);
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                let x = x.clone();
                let dy = dy.clone();
                thread::spawn(move || {
                    let mut layer = ShardedDense::new("mp", input, output, rank, size, seed);
                    let y = layer.forward(&x, &comm);
                    let dx = layer.backward(&dy, &comm);
                    (rank, y, dx, layer.weight.grad.data().to_vec())
                })
            })
            .collect();
        let mut results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort_by_key(|r| r.0);
        let y = results[0].1.clone();
        let dx = results[0].2.clone();
        let wgrads = results.iter().map(|r| r.3.clone()).collect();
        (y, dx, wgrads)
    }

    #[test]
    fn sharded_matches_unsharded_forward_and_backward() {
        let (input, output, seed) = (6usize, 8usize, 0x77);
        let mut rng = TensorRng::new(9);
        let x = rng.uniform_tensor(Shape4::new(3, input, 1, 1), -1.0, 1.0);
        let dy = rng.uniform_tensor(Shape4::new(3, output, 1, 1), -1.0, 1.0);

        let mut dense = reference(input, output, seed);
        let y_ref = dense.forward(&x);
        let dx_ref = dense.backward(&dy);
        let wgrad_ref = dense.params()[0].grad.data().to_vec();

        for size in [1usize, 2, 4] {
            let (y, dx, wgrads) = run_sharded(size, input, output, seed, x.clone(), dy.clone());
            assert!(
                y.max_abs_diff(&y_ref) < 1e-4,
                "forward mismatch at size {size}: {}",
                y.max_abs_diff(&y_ref)
            );
            assert!(
                dx.max_abs_diff(&dx_ref) < 1e-4,
                "backward mismatch at size {size}"
            );
            // Concatenated shard weight-gradients equal the full gradient.
            let concat: Vec<f32> = wgrads.concat();
            let max_err = concat
                .iter()
                .zip(&wgrad_ref)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(max_err < 1e-4, "weight grad mismatch at size {size}: {max_err}");
        }
    }

    #[test]
    fn every_rank_sees_the_same_full_activation() {
        let (input, output, seed) = (4usize, 6usize, 0x13);
        let mut rng = TensorRng::new(2);
        let x = rng.uniform_tensor(Shape4::new(2, input, 1, 1), -1.0, 1.0);
        let comms = CommWorld::new(3);
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                let x = x.clone();
                thread::spawn(move || {
                    let mut layer = ShardedDense::new("mp", input, output, rank, 3, seed);
                    layer.forward(&x, &comm).into_vec()
                })
            })
            .collect();
        let results: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn shard_ranges_partition_features() {
        let mut covered = [false; 12];
        for rank in 0..4 {
            let l = ShardedDense::new("mp", 3, 12, rank, 4, 1);
            for i in l.shard_range() {
                assert!(!covered[i], "feature {i} double-covered");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    #[should_panic(expected = "shard evenly")]
    fn uneven_shard_rejected() {
        let _ = ShardedDense::new("mp", 3, 10, 0, 4, 1);
    }
}
