//! The supervised HEP training task used by both engines: compute loss
//! and flattened gradient for a minibatch.

use scidl_data::HepDataset;
use scidl_nn::network::{Model, Network};
use scidl_nn::SoftmaxCrossEntropy;

/// Runs one forward/backward over the indexed minibatch and returns
/// `(mean loss, flat gradient)`. Gradients are fresh (zeroed first), so
/// the result is exactly the minibatch-mean gradient.
pub fn hep_gradient(model: &mut Network, ds: &HepDataset, indices: &[usize]) -> (f32, Vec<f32>) {
    let (batch, labels) = ds.gather(indices);
    model.zero_grads();
    let logits = model.forward(&batch);
    let (loss, grad) = SoftmaxCrossEntropy::forward(&logits, &labels);
    model.backward(&grad);
    (loss, model.flat_grads())
}

/// Classification accuracy of `model` over the given indices.
pub fn hep_accuracy(model: &mut Network, ds: &HepDataset, indices: &[usize]) -> f64 {
    let (batch, labels) = ds.gather(indices);
    let logits = model.forward(&batch);
    let probs = SoftmaxCrossEntropy::probabilities(&logits);
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        if scidl_tensor::ops::argmax(probs.item(i)) == label {
            correct += 1;
        }
    }
    correct as f64 / labels.len().max(1) as f64
}

/// Signal-class probabilities (scores) for ROC evaluation.
pub fn hep_scores(model: &mut Network, ds: &HepDataset, indices: &[usize]) -> Vec<f32> {
    // Evaluate in chunks to bound memory.
    let mut scores = Vec::with_capacity(indices.len());
    for chunk in indices.chunks(64) {
        let (batch, _) = ds.gather(chunk);
        let logits = model.forward(&batch);
        let probs = SoftmaxCrossEntropy::probabilities(&logits);
        for i in 0..chunk.len() {
            scores.push(probs.item(i)[1]);
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidl_data::HepConfig;
    use scidl_tensor::TensorRng;

    #[test]
    fn gradient_is_deterministic_and_nonzero() {
        let ds = HepDataset::generate(HepConfig::small(), 8, 1);
        let mut rng = TensorRng::new(5);
        let mut model = scidl_nn::arch::hep_small(&mut rng);
        let (l1, g1) = hep_gradient(&mut model, &ds, &[0, 1, 2, 3]);
        let (l2, g2) = hep_gradient(&mut model, &ds, &[0, 1, 2, 3]);
        assert_eq!(l1, l2);
        assert_eq!(g1, g2);
        assert!(g1.iter().any(|&g| g != 0.0));
    }

    #[test]
    fn scores_are_probabilities() {
        let ds = HepDataset::generate(HepConfig::small(), 8, 2);
        let mut rng = TensorRng::new(6);
        let mut model = scidl_nn::arch::hep_small(&mut rng);
        let idx: Vec<usize> = (0..8).collect();
        let s = hep_scores(&mut model, &ds, &idx);
        assert_eq!(s.len(), 8);
        assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn accuracy_bounded() {
        let ds = HepDataset::generate(HepConfig::small(), 16, 3);
        let mut rng = TensorRng::new(7);
        let mut model = scidl_nn::arch::hep_small(&mut rng);
        let idx: Vec<usize> = (0..16).collect();
        let a = hep_accuracy(&mut model, &ds, &idx);
        assert!((0.0..=1.0).contains(&a));
    }
}
