//! The supervised HEP training task used by both engines: compute loss
//! and flattened gradient for a minibatch, as a plain function and as a
//! [`GradTask`] capable of overlapping gradient communication with the
//! backward pass.

use scidl_comm::bucket::BucketSink;
use scidl_data::HepDataset;
use scidl_nn::network::{Model, Network};
use scidl_nn::SoftmaxCrossEntropy;
use std::sync::Arc;

/// A training task the engines can drive: given a model and a minibatch
/// of sample indices, produce the loss and the flat gradient.
///
/// Any `Fn(&mut M, &[usize]) -> (f32, Vec<f32>)` closure is a
/// `GradTask` via the blanket impl (the non-overlapping path). Tasks
/// that know their model's backward structure — like [`HepGradTask`] —
/// additionally override [`GradTask::grad_overlapped`] to deliver each
/// parameter block into a [`BucketSink`] the moment its gradients are
/// final, so bucketed all-reduces run while shallower layers still
/// backpropagate (the paper's MLSL overlap, Sec. V).
pub trait GradTask<M: Model>: Send + Sync {
    /// One forward/backward over the minibatch: `(mean loss, flat gradient)`.
    fn grad(&self, model: &mut M, indices: &[usize]) -> (f32, Vec<f32>);

    /// Overlapped variant: compute the gradient, pushing parameter
    /// blocks into `sink` in backward-readiness order (deepest layer
    /// first; within a layer, reverse block order). Returns the loss;
    /// the reduced gradient comes back from the sink's stream.
    ///
    /// The default computes the full flat gradient first and then
    /// replays its blocks — bit-identical to a true layered backward,
    /// it just hides no communication. Override it to overlap for real.
    fn grad_overlapped(
        &self,
        model: &mut M,
        indices: &[usize],
        sink: &mut dyn BucketSink,
    ) -> f32 {
        let (loss, grads) = self.grad(model, indices);
        sink.push_flat(&grads);
        loss
    }
}

impl<M: Model, F> GradTask<M> for F
where
    F: Fn(&mut M, &[usize]) -> (f32, Vec<f32>) + Send + Sync,
{
    fn grad(&self, model: &mut M, indices: &[usize]) -> (f32, Vec<f32>) {
        self(model, indices)
    }
}

/// The supervised HEP classification task as a [`GradTask`] with a true
/// layer-wise overlapped backward: [`GradTask::grad_overlapped`] walks
/// [`Network::backward_layered`] and ships each layer's blocks as soon
/// as that layer's backward completes.
pub struct HepGradTask {
    ds: Arc<HepDataset>,
}

impl HepGradTask {
    /// Wraps the dataset the task samples minibatches from.
    pub fn new(ds: Arc<HepDataset>) -> Self {
        Self { ds }
    }
}

impl GradTask<Network> for HepGradTask {
    fn grad(&self, model: &mut Network, indices: &[usize]) -> (f32, Vec<f32>) {
        hep_gradient(model, &self.ds, indices)
    }

    fn grad_overlapped(
        &self,
        model: &mut Network,
        indices: &[usize],
        sink: &mut dyn BucketSink,
    ) -> f32 {
        let (batch, labels) = self.ds.gather(indices);
        model.zero_grads();
        let logits = model.forward(&batch);
        let (loss, dlogits) = SoftmaxCrossEntropy::forward(&logits, &labels);
        // Flat-order index of each layer's first parameter block.
        let first_block: Vec<usize> = model
            .layers()
            .iter()
            .scan(0usize, |acc, l| {
                let first = *acc;
                *acc += l.params().len();
                Some(first)
            })
            .collect();
        model.backward_layered(&dlogits, |li, layer| {
            // Within a layer all blocks become final together; pushing
            // them in reverse keeps the global delivery order equal to
            // strict reverse flat order, matching the bucket plan.
            let params = layer.params();
            for (bi, b) in params.iter().enumerate().rev() {
                sink.push_block(first_block[li] + bi, b.grad.data());
            }
        });
        loss
    }
}

/// Runs one forward/backward over the indexed minibatch and returns
/// `(mean loss, flat gradient)`. Gradients are fresh (zeroed first), so
/// the result is exactly the minibatch-mean gradient.
pub fn hep_gradient(model: &mut Network, ds: &HepDataset, indices: &[usize]) -> (f32, Vec<f32>) {
    let (batch, labels) = ds.gather(indices);
    model.zero_grads();
    let logits = model.forward(&batch);
    let (loss, grad) = SoftmaxCrossEntropy::forward(&logits, &labels);
    model.backward(&grad);
    (loss, model.flat_grads())
}

/// Classification accuracy of `model` over the given indices.
pub fn hep_accuracy(model: &mut Network, ds: &HepDataset, indices: &[usize]) -> f64 {
    let (batch, labels) = ds.gather(indices);
    let logits = model.forward(&batch);
    let probs = SoftmaxCrossEntropy::probabilities(&logits);
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        if scidl_tensor::ops::argmax(probs.item(i)) == label {
            correct += 1;
        }
    }
    correct as f64 / labels.len().max(1) as f64
}

/// Signal-class probabilities (scores) for ROC evaluation.
pub fn hep_scores(model: &mut Network, ds: &HepDataset, indices: &[usize]) -> Vec<f32> {
    // Evaluate in chunks to bound memory.
    let mut scores = Vec::with_capacity(indices.len());
    for chunk in indices.chunks(64) {
        let (batch, _) = ds.gather(chunk);
        let logits = model.forward(&batch);
        let probs = SoftmaxCrossEntropy::probabilities(&logits);
        for i in 0..chunk.len() {
            scores.push(probs.item(i)[1]);
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidl_data::HepConfig;
    use scidl_tensor::TensorRng;

    #[test]
    fn gradient_is_deterministic_and_nonzero() {
        let ds = HepDataset::generate(HepConfig::small(), 8, 1);
        let mut rng = TensorRng::new(5);
        let mut model = scidl_nn::arch::hep_small(&mut rng);
        let (l1, g1) = hep_gradient(&mut model, &ds, &[0, 1, 2, 3]);
        let (l2, g2) = hep_gradient(&mut model, &ds, &[0, 1, 2, 3]);
        assert_eq!(l1, l2);
        assert_eq!(g1, g2);
        assert!(g1.iter().any(|&g| g != 0.0));
    }

    #[test]
    fn overlapped_gradient_is_bit_identical_and_deepest_first() {
        struct Collect {
            blocks: Vec<(usize, Vec<f32>)>,
        }
        impl BucketSink for Collect {
            fn push_block(&mut self, block: usize, grad: &[f32]) {
                self.blocks.push((block, grad.to_vec()));
            }
            fn push_flat(&mut self, _flat: &[f32]) {
                panic!("HepGradTask must deliver per-block, not flat");
            }
        }

        let ds = Arc::new(HepDataset::generate(HepConfig::small(), 8, 11));
        let task = HepGradTask::new(Arc::clone(&ds));
        let mut rng = TensorRng::new(15);
        let mut model = scidl_nn::arch::hep_small(&mut rng);
        let idx = [0usize, 1, 2, 3];

        let (loss_ref, grads_ref) = task.grad(&mut model, &idx);

        let mut sink = Collect { blocks: Vec::new() };
        let loss = task.grad_overlapped(&mut model, &idx, &mut sink);
        assert_eq!(loss, loss_ref);

        let num_blocks = model.param_blocks().len();
        assert_eq!(sink.blocks.len(), num_blocks);
        // Delivery order is strict reverse flat order (readiness order).
        let order: Vec<usize> = sink.blocks.iter().map(|(b, _)| *b).collect();
        let want: Vec<usize> = (0..num_blocks).rev().collect();
        assert_eq!(order, want);
        // Reassembling the blocks in flat order reproduces the flat
        // gradient bit-for-bit.
        let mut sorted = sink.blocks.clone();
        sorted.sort_by_key(|(b, _)| *b);
        let flat: Vec<f32> = sorted.into_iter().flat_map(|(_, g)| g).collect();
        assert_eq!(flat, grads_ref);
    }

    #[test]
    fn scores_are_probabilities() {
        let ds = HepDataset::generate(HepConfig::small(), 8, 2);
        let mut rng = TensorRng::new(6);
        let mut model = scidl_nn::arch::hep_small(&mut rng);
        let idx: Vec<usize> = (0..8).collect();
        let s = hep_scores(&mut model, &ds, &idx);
        assert_eq!(s.len(), 8);
        assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn accuracy_bounded() {
        let ds = HepDataset::generate(HepConfig::small(), 16, 3);
        let mut rng = TensorRng::new(7);
        let mut model = scidl_nn::arch::hep_small(&mut rng);
        let idx: Vec<usize> = (0..16).collect();
        let a = hep_accuracy(&mut model, &ds, &idx);
        assert!((0.0..=1.0).contains(&a));
    }
}
