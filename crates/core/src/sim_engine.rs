//! Deterministic simulated-time hybrid training.
//!
//! This backend reproduces the paper's *convergence* experiments
//! (Fig. 8) at laptop scale: gradients and loss trajectories are computed
//! for real on a scaled-down HEP problem, while iteration *durations*
//! come from the calibrated Cori cost models — so a "1024-node" run takes
//! seconds of host time but reports simulated wall-clock in the paper's
//! regime, with genuine gradient staleness produced by the simulated
//! event ordering.
//!
//! Semantics match the hybrid architecture exactly:
//!
//! * each group snapshots the central model when it *starts* an
//!   iteration,
//! * it computes a real gradient on its own shard/minibatch against that
//!   snapshot,
//! * the per-layer PS bank applies updates in simulated-arrival order —
//!   by the time a group's update lands, other groups may have advanced
//!   the model (staleness),
//! * with `groups == 1` this degenerates to exact synchronous SGD.

use crate::metrics::LossCurve;
use crate::task::hep_gradient;
use scidl_cluster::event::EventQueue;
use scidl_cluster::sim::Workload;
use scidl_cluster::{AriesModel, JitterModel, KnlModel};
use scidl_data::{BatchSampler, HepDataset};
use scidl_nn::network::{Model, Network};
use scidl_nn::solver::asynchrony_adjusted_momentum;
use scidl_nn::{Adam, Sgd, Solver};
use scidl_tensor::TensorRng;

/// Which solver the parameter servers run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SolverKind {
    /// SGD with the given momentum.
    Sgd {
        /// Explicit momentum coefficient.
        momentum: f32,
    },
    /// ADAM (the paper's HEP solver).
    Adam,
}

/// Configuration of one simulated-time training run.
#[derive(Clone, Debug)]
pub struct SimEngineConfig {
    /// Total virtual compute nodes.
    pub nodes: usize,
    /// Compute groups (1 = synchronous).
    pub groups: usize,
    /// Minibatch per group per update. Fig. 8 fixes the *total* batch, so
    /// callers set `batch_per_group = total / groups`.
    pub batch_per_group: usize,
    /// Iterations per group.
    pub iterations: usize,
    /// Learning rate.
    pub lr: f32,
    /// Solver kind.
    pub solver: SolverKind,
    /// When true, SGD momentum is reduced according to the implicit
    /// asynchrony momentum of Mitliagkas et al. [31].
    pub auto_momentum: bool,
    /// Seed for data sampling and jitter.
    pub seed: u64,
    /// Timing workload (typically [`crate::workloads::hep_workload`] so
    /// the simulated clock lives in the paper's regime).
    pub timing: Workload,
    /// Node model.
    pub knl: KnlModel,
    /// Interconnect model.
    pub net: AriesModel,
    /// Variability model.
    pub jitter: JitterModel,
    /// Charge the bucketed backward-overlapped all-reduce cost model
    /// (Sec. III-D / MLSL): up to half of the compute window hides
    /// communication, so only the excess all-reduce time is exposed.
    /// This is the same window `scidl_cluster::SimConfig::overlap_comm`
    /// charges, and mirrors the thread engine's
    /// `ThreadEngineConfig::overlap_comm`. Gradient values are
    /// timing-independent, so flipping this never changes the math —
    /// only simulated wall-clock.
    pub overlap_comm: bool,
}

impl SimEngineConfig {
    /// A Fig. 8-style configuration: `nodes` virtual nodes in `groups`
    /// groups sharing a fixed total batch.
    pub fn fig8(nodes: usize, groups: usize, total_batch: usize, timing: Workload) -> Self {
        assert!(groups >= 1 && total_batch >= groups);
        Self {
            nodes,
            groups,
            batch_per_group: total_batch / groups,
            iterations: 60,
            lr: 1e-3,
            solver: SolverKind::Adam,
            auto_momentum: false,
            seed: 0xF18,
            timing,
            knl: KnlModel::default(),
            net: AriesModel::default(),
            jitter: JitterModel::default(),
            overlap_comm: false,
        }
    }

    fn build_solver(&self) -> Box<dyn Solver> {
        match self.solver {
            SolverKind::Sgd { momentum } => {
                let mu = if self.auto_momentum {
                    asynchrony_adjusted_momentum(momentum, self.groups)
                } else {
                    momentum
                };
                Box::new(Sgd::new(self.lr, mu))
            }
            SolverKind::Adam => Box::new(Adam::new(self.lr)),
        }
    }
}

/// Result of one simulated-time run.
#[derive(Debug)]
pub struct SimRunSummary {
    /// Training loss at every group update, in simulated-time order.
    pub curve: LossCurve,
    /// Per-group curves.
    pub per_group: Vec<LossCurve>,
    /// Mean gradient staleness in group-updates.
    pub mean_staleness: f64,
    /// Total simulated seconds.
    pub total_time: f64,
    /// Total group updates applied.
    pub updates: usize,
    /// The trained flat parameter vector.
    pub final_params: Vec<f32>,
}

/// The simulated-time hybrid training engine.
pub struct SimEngine;

impl SimEngine {
    /// Runs HEP classification training of `model` on `ds` under `cfg`.
    /// The model is used as the initial point and is left holding the
    /// final parameters.
    pub fn run(cfg: &SimEngineConfig, model: &mut Network, ds: &HepDataset) -> SimRunSummary {
        Self::run_with(cfg, model, ds.len(), |m, idx| hep_gradient(m, ds, idx))
    }

    /// Generic simulated-time hybrid training: works for any [`Model`]
    /// and task. `grad_fn` computes `(loss, flat gradient)` for the given
    /// sample indices against the model's current parameters — the
    /// climate semi-supervised objective plugs in here just like the HEP
    /// classifier.
    pub fn run_with<M: Model>(
        cfg: &SimEngineConfig,
        model: &mut M,
        dataset_len: usize,
        mut grad_fn: impl FnMut(&mut M, &[usize]) -> (f32, Vec<f32>),
    ) -> SimRunSummary {
        assert!(cfg.groups >= 1 && cfg.nodes >= cfg.groups, "invalid group/node config");
        let groups = cfg.groups;
        let nodes_per_group = cfg.nodes / groups;
        let hybrid = groups > 1;
        let mut rng = TensorRng::new(cfg.seed ^ 0x51E6);

        // Central model (the PS bank's contents, flattened) + block map.
        let block_sizes: Vec<usize> = model.param_blocks().iter().map(|b| b.len()).collect();
        // Tracing: spans carry *simulated* timestamps, so a seeded run
        // emits a bit-identical trace; block names feed the health
        // sentinel's layer attribution.
        let tr = scidl_trace::TraceHandle::begin("sim-engine");
        let block_names: Vec<String> =
            model.param_blocks().iter().map(|b| b.name.clone()).collect();
        let mut central = model.flat_params();
        let mut solver = cfg.build_solver();

        // Per-group state.
        let mut group_params: Vec<Vec<f32>> = (0..groups).map(|_| central.clone()).collect();
        let mut samplers: Vec<BatchSampler> = (0..groups)
            .map(|g| BatchSampler::for_node(dataset_len, cfg.batch_per_group, cfg.seed, g, groups))
            .collect();
        let mut jrngs: Vec<TensorRng> = (0..groups).map(|g| rng.fork(g as u64 + 31)).collect();

        // PS service bank timing (per-layer PS of Fig. 4); per-request
        // byte/param shards are derived inside `group_duration`.
        let num_ps = block_sizes.len().clamp(1, 16);
        let mut ps_free = vec![0.0f64; num_ps];

        let mut updates_applied: u64 = 0;
        let mut group_seen = vec![0u64; groups];
        let mut staleness_sum = 0.0f64;

        let mut curve = LossCurve::new();
        let mut per_group: Vec<LossCurve> = vec![LossCurve::new(); groups];

        let mut queue: EventQueue<(usize, usize)> = EventQueue::new();
        // One outstanding iteration per group; its timing breakdown is
        // kept so the span can be emitted when the event fires.
        let mut pending: Vec<IterTiming> = Vec::with_capacity(groups);
        for (g, jrng) in jrngs.iter_mut().enumerate() {
            let t = Self::group_duration(cfg, nodes_per_group, hybrid, &mut ps_free, 0.0, jrng);
            queue.schedule(t.total, (g, 0));
            pending.push(t);
        }

        let mut updates = 0usize;
        while let Some((now, (g, iter))) = queue.pop() {
            // Real gradient against the group's snapshot.
            model.set_flat_params(&group_params[g]);
            let indices = samplers[g].next_batch();
            let (loss, grad) = grad_fn(model, &indices);

            // PS applies the (possibly stale) update to the central model.
            let mut off = 0;
            for (idx, &len) in block_sizes.iter().enumerate() {
                solver.step_block(idx, &mut central[off..off + len], &grad[off..off + len]);
                off += len;
            }
            let stale = updates_applied - group_seen[g];
            staleness_sum += stale as f64;
            updates_applied += 1;
            group_seen[g] = updates_applied;
            updates += 1;

            if tr.enabled() {
                let t = pending[g];
                let start = now - t.total;
                let (gu, iu) = (g as u64, iter as u64);
                tr.event_at(gu, start, t.total, scidl_trace::EventKind::Iteration {
                    group: gu,
                    iter: iu,
                });
                tr.event_at(gu, start, t.compute, scidl_trace::EventKind::Compute {
                    group: gu,
                    iter: iu,
                });
                tr.event_at(
                    gu,
                    start + t.compute,
                    t.allreduce,
                    scidl_trace::EventKind::Allreduce { elems: cfg.timing.params },
                );
                if t.hidden > 0.0 {
                    // One simulated bucket per parameter block: the span
                    // covers the backward tail where comm was hidden.
                    tr.event_at(
                        gu,
                        start + t.compute - t.hidden,
                        t.hidden,
                        scidl_trace::EventKind::Overlap {
                            buckets: block_sizes.len() as u64,
                            hidden_s: t.hidden,
                        },
                    );
                }
                if t.ps > 0.0 {
                    tr.event_at(
                        gu,
                        start + t.compute + t.allreduce,
                        t.ps,
                        scidl_trace::EventKind::PsExchange { group: gu, staleness: stale },
                    );
                }
                if !loss.is_finite() {
                    tr.health(scidl_trace::HealthAlert {
                        source: "loss",
                        layer: None,
                        first_index: 0,
                        count: 1,
                        value: loss,
                        iter: Some(iu),
                    });
                }
                if let Some(alert) = scidl_trace::scan_blocks(
                    "gradient",
                    &grad,
                    &block_sizes,
                    &block_names,
                    Some(iu),
                ) {
                    tr.health(alert);
                }
                tr.row(scidl_trace::IterRow {
                    run: 0, // filled in by the handle
                    kind: "train",
                    track: gu,
                    iter: iu,
                    start_s: start,
                    compute_s: t.compute,
                    comm_s: t.allreduce,
                    ps_s: t.ps,
                    queue_s: 0.0,
                    staleness: stale,
                    loss: loss as f64,
                    batch: cfg.batch_per_group as u64,
                });
            }

            curve.push(now, loss);
            per_group[g].push(now, loss);

            // The group re-reads the fresh central model and schedules its
            // next iteration.
            group_params[g].copy_from_slice(&central);
            if iter + 1 < cfg.iterations {
                let t = Self::group_duration(cfg, nodes_per_group, hybrid, &mut ps_free, now, &mut jrngs[g]);
                queue.schedule(now + t.total, (g, iter + 1));
                pending[g] = t;
            }
        }

        model.set_flat_params(&central);
        SimRunSummary {
            curve,
            per_group,
            mean_staleness: if updates > 0 { staleness_sum / updates as f64 } else { 0.0 },
            total_time: queue.now(),
            updates,
            final_params: central,
        }
    }

    /// Simulated duration of one group iteration starting at `now`:
    /// compute (with barrier jitter) + intra-group all-reduce
    /// (+ PS fork-join with queueing when hybrid). Returned as a
    /// breakdown so the trace can attribute the time.
    fn group_duration(
        cfg: &SimEngineConfig,
        nodes_per_group: usize,
        hybrid: bool,
        ps_free: &mut [f64],
        now: f64,
        rng: &mut TensorRng,
    ) -> IterTiming {
        let b = (cfg.batch_per_group / nodes_per_group).max(1);
        let mut compute = cfg.timing.node_iteration_time(&cfg.knl, b);
        if hybrid {
            compute -= cfg.timing.solver_secs(cfg.timing.params);
        }
        let barrier = cfg.jitter.barrier_multiplier(rng, nodes_per_group);
        let delay = cfg.jitter.barrier_delay(rng, nodes_per_group);
        let mut allreduce = cfg.net.allreduce_time(nodes_per_group, cfg.timing.model_bytes);
        let mut hidden = 0.0;
        if cfg.overlap_comm {
            // Bucketed layer-wise all-reduce overlaps with the backward
            // pass (≈ half of the compute); only the excess is exposed —
            // the same window `SimConfig::overlap_comm` charges in the
            // cluster simulator.
            let window = 0.5 * compute * barrier;
            hidden = allreduce.min(window);
            allreduce = (allreduce - window).max(0.0);
        }
        let compute_part = compute * barrier + delay;
        let mut dur = compute_part + allreduce;
        if hybrid {
            let arrive = now + dur;
            let num_ps = ps_free.len();
            let ps_bytes = cfg.timing.model_bytes / num_ps as u64;
            let ps_params = cfg.timing.params / num_ps as u64;
            let mut resume = arrive;
            for free in ps_free.iter_mut() {
                let begin = free.max(arrive);
                let service = cfg.net.p2p_time(ps_bytes) * 2.0
                    + cfg.timing.solver_secs(ps_params)
                    + cfg.jitter.ps_request_delay(rng);
                *free = begin + service;
                resume = resume.max(*free);
            }
            resume += cfg.net.broadcast_time(nodes_per_group, cfg.timing.model_bytes);
            dur = resume - now;
        }
        IterTiming {
            compute: compute_part,
            allreduce,
            hidden,
            ps: dur - compute_part - allreduce,
            total: dur,
        }
    }

    /// Mean simulated seconds per group iteration under `cfg`, replaying
    /// the timing model alone (no gradients computed). `num_blocks` sizes
    /// the PS bank exactly as a real run with that many parameter blocks
    /// would; `samples` iterations per group are simulated. This is what
    /// the fig8 bench uses for its per-iteration wall-clock columns, so
    /// overlap on/off can be compared without retraining.
    pub fn mean_iteration_secs(cfg: &SimEngineConfig, num_blocks: usize, samples: usize) -> f64 {
        assert!(cfg.groups >= 1 && cfg.nodes >= cfg.groups, "invalid group/node config");
        assert!(samples > 0, "need at least one sampled iteration");
        let groups = cfg.groups;
        let nodes_per_group = cfg.nodes / groups;
        let hybrid = groups > 1;
        let mut rng = TensorRng::new(cfg.seed ^ 0x51E6);
        let num_ps = num_blocks.clamp(1, 16);
        let mut ps_free = vec![0.0f64; num_ps];
        let mut jrngs: Vec<TensorRng> = (0..groups).map(|g| rng.fork(g as u64 + 31)).collect();
        let mut queue: EventQueue<(usize, usize)> = EventQueue::new();
        for (g, jrng) in jrngs.iter_mut().enumerate() {
            let t = Self::group_duration(cfg, nodes_per_group, hybrid, &mut ps_free, 0.0, jrng);
            queue.schedule(t.total, (g, 0));
        }
        while let Some((now, (g, iter))) = queue.pop() {
            if iter + 1 < samples {
                let t =
                    Self::group_duration(cfg, nodes_per_group, hybrid, &mut ps_free, now, &mut jrngs[g]);
                queue.schedule(now + t.total, (g, iter + 1));
            }
        }
        queue.now() / samples as f64
    }
}

/// Component breakdown of one simulated group iteration. `ps` covers the
/// PS fork-join (queueing included) plus the model broadcast; 0 when
/// synchronous.
#[derive(Clone, Copy, Debug)]
struct IterTiming {
    compute: f64,
    allreduce: f64,
    /// All-reduce seconds hidden behind the backward pass; non-zero only
    /// with [`SimEngineConfig::overlap_comm`].
    hidden: f64,
    ps: f64,
    total: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::hep_workload;
    use scidl_data::HepConfig;

    fn tiny_dataset() -> HepDataset {
        HepDataset::generate(HepConfig::small(), 96, 42)
    }

    fn base_cfg(groups: usize) -> SimEngineConfig {
        let mut cfg = SimEngineConfig::fig8(32, groups, 32, hep_workload());
        cfg.iterations = 12;
        cfg.lr = 2e-3;
        cfg
    }

    #[test]
    fn sync_run_is_deterministic() {
        let ds = tiny_dataset();
        let cfg = base_cfg(1);
        let mut rng = TensorRng::new(9);
        let mut m1 = scidl_nn::arch::hep_small(&mut rng);
        let mut rng2 = TensorRng::new(9);
        let mut m2 = scidl_nn::arch::hep_small(&mut rng2);
        let a = SimEngine::run(&cfg, &mut m1, &ds);
        let b = SimEngine::run(&cfg, &mut m2, &ds);
        assert_eq!(a.final_params, b.final_params);
        assert_eq!(a.curve.points, b.curve.points);
    }

    #[test]
    fn sync_has_zero_staleness_hybrid_nonzero() {
        let ds = tiny_dataset();
        let mut rng = TensorRng::new(9);
        let mut m = scidl_nn::arch::hep_small(&mut rng);
        let sync = SimEngine::run(&base_cfg(1), &mut m, &ds);
        assert_eq!(sync.mean_staleness, 0.0);

        let mut rng = TensorRng::new(9);
        let mut m = scidl_nn::arch::hep_small(&mut rng);
        let hyb = SimEngine::run(&base_cfg(4), &mut m, &ds);
        assert!(hyb.mean_staleness > 0.5, "staleness {}", hyb.mean_staleness);
    }

    #[test]
    fn training_reduces_loss() {
        let ds = tiny_dataset();
        let mut cfg = base_cfg(1);
        cfg.iterations = 40;
        let mut rng = TensorRng::new(10);
        let mut m = scidl_nn::arch::hep_small(&mut rng);
        let r = SimEngine::run(&cfg, &mut m, &ds);
        let first: f32 = r.curve.points[..5].iter().map(|p| p.1).sum::<f32>() / 5.0;
        let last: f32 = r.curve.points[r.curve.len() - 5..].iter().map(|p| p.1).sum::<f32>() / 5.0;
        assert!(last < first, "loss should fall: {first} → {last}");
    }

    #[test]
    fn sync_matches_plain_sgd_reference() {
        // With one group and no jitter, the engine must be *exactly*
        // sequential minibatch training.
        let ds = tiny_dataset();
        let mut cfg = base_cfg(1);
        cfg.jitter = JitterModel::none();
        cfg.solver = SolverKind::Sgd { momentum: 0.9 };
        cfg.iterations = 6;

        let mut rng = TensorRng::new(11);
        let mut m = scidl_nn::arch::hep_small(&mut rng);
        let engine_run = SimEngine::run(&cfg, &mut m, &ds);

        // Reference: same sampler stream, same solver, sequential.
        let mut rng = TensorRng::new(11);
        let mut mref = scidl_nn::arch::hep_small(&mut rng);
        let mut sampler = BatchSampler::for_node(ds.len(), cfg.batch_per_group, cfg.seed, 0, 1);
        let mut solver = Sgd::new(cfg.lr, 0.9);
        for _ in 0..cfg.iterations {
            let idx = sampler.next_batch();
            let (_, grad) = crate::task::hep_gradient(&mut mref, &ds, &idx);
            let sizes: Vec<usize> = mref.param_blocks().iter().map(|b| b.len()).collect();
            let mut flat = mref.flat_params();
            let mut off = 0;
            for (i, &len) in sizes.iter().enumerate() {
                solver.step_block(i, &mut flat[off..off + len], &grad[off..off + len]);
                off += len;
            }
            mref.set_flat_params(&flat);
        }
        let want = mref.flat_params();
        assert_eq!(engine_run.final_params.len(), want.len());
        let max_err = engine_run
            .final_params
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 1e-5, "engine diverges from SGD reference by {max_err}");
    }

    #[test]
    fn hybrid_events_interleave_groups() {
        let ds = tiny_dataset();
        let cfg = base_cfg(2);
        let mut rng = TensorRng::new(12);
        let mut m = scidl_nn::arch::hep_small(&mut rng);
        let r = SimEngine::run(&cfg, &mut m, &ds);
        assert_eq!(r.updates, 2 * cfg.iterations);
        // Both groups contribute points spread over the run.
        assert!(r.per_group.iter().all(|c| c.len() == cfg.iterations));
        assert!(r.total_time > 0.0);
    }

    #[test]
    fn overlap_changes_only_simulated_time_never_the_math() {
        let ds = tiny_dataset();
        let run = |overlap: bool| {
            let mut cfg = base_cfg(1);
            cfg.overlap_comm = overlap;
            let mut rng = TensorRng::new(21);
            let mut m = scidl_nn::arch::hep_small(&mut rng);
            SimEngine::run(&cfg, &mut m, &ds)
        };
        let plain = run(false);
        let overlapped = run(true);
        // Gradients are timing-independent with one group, so the
        // trajectory and final parameters are bit-identical…
        assert_eq!(plain.final_params, overlapped.final_params);
        let pl: Vec<f32> = plain.curve.points.iter().map(|p| p.1).collect();
        let ov: Vec<f32> = overlapped.curve.points.iter().map(|p| p.1).collect();
        assert_eq!(pl, ov);
        // …while the simulated clock advances strictly less.
        assert!(
            overlapped.total_time < plain.total_time,
            "overlap must hide communication: {} vs {}",
            overlapped.total_time,
            plain.total_time
        );
    }

    #[test]
    fn mean_iteration_secs_tracks_overlap_savings() {
        let mut cfg = base_cfg(1);
        cfg.jitter = JitterModel::none();
        let plain = SimEngine::mean_iteration_secs(&cfg, 8, 16);
        cfg.overlap_comm = true;
        let overlapped = SimEngine::mean_iteration_secs(&cfg, 8, 16);
        assert!(plain > 0.0 && overlapped > 0.0);
        assert!(
            overlapped < plain,
            "overlap column must be lower: {overlapped} vs {plain}"
        );
        // Without jitter the saving is exactly min(allreduce, window).
        let nodes = cfg.nodes / cfg.groups;
        let allreduce = cfg.net.allreduce_time(nodes, cfg.timing.model_bytes);
        let b = (cfg.batch_per_group / nodes).max(1);
        let window = 0.5 * cfg.timing.node_iteration_time(&cfg.knl, b);
        let saved = plain - overlapped;
        let want = allreduce.min(window);
        assert!(
            (saved - want).abs() < 1e-9,
            "saved {saved} vs expected hidden {want}"
        );
    }

    #[test]
    fn auto_momentum_reduces_explicit_momentum_for_groups() {
        let mut cfg = base_cfg(4);
        cfg.solver = SolverKind::Sgd { momentum: 0.9 };
        cfg.auto_momentum = true;
        // Just verify the plumbing: build_solver should not panic and the
        // adjusted momentum is below the target.
        let adjusted = asynchrony_adjusted_momentum(0.9, 4);
        assert!(adjusted < 0.9);
        let _ = cfg.build_solver();
    }
}
