//! Hyper-parameter search.
//!
//! Sec. VIII-B: "it is unreasonable to expect scientists to be conversant
//! in the art of hyper-parameter tuning … hybrid schemes add an extra
//! parameter to be tuned, which stresses the need for principled
//! momentum tuning approaches", and "higher-level libraries such as
//! Spearmint can be used for automating the search". This module is the
//! minimal such layer for scidl: a deterministic random-search tuner
//! over (learning rate, momentum, group count) driving the simulated
//! engine, scoring configurations by best smoothed loss within a fixed
//! update budget. The asynchrony-aware momentum prior of [31] is used to
//! bias the momentum proposal for high group counts.

use crate::metrics::LossCurve;
use crate::sim_engine::{SimEngine, SimEngineConfig, SolverKind};
use scidl_cluster::sim::Workload;
use scidl_data::HepDataset;
use scidl_nn::solver::asynchrony_adjusted_momentum;
use scidl_tensor::TensorRng;

/// The search space.
#[derive(Clone, Debug)]
pub struct SearchSpace {
    /// Log-uniform learning-rate range.
    pub lr: (f32, f32),
    /// Momentum candidates.
    pub momenta: Vec<f32>,
    /// Group-count candidates.
    pub groups: Vec<usize>,
    /// Bias momentum proposals with the asynchrony correction of [31].
    pub momentum_prior: bool,
}

impl Default for SearchSpace {
    fn default() -> Self {
        Self {
            lr: (1e-4, 5e-2),
            momenta: vec![0.0, 0.4, 0.7, 0.9],
            groups: vec![1, 2, 4, 8],
            momentum_prior: true,
        }
    }
}

/// One evaluated trial.
#[derive(Clone, Debug)]
pub struct Trial {
    /// Learning rate.
    pub lr: f32,
    /// Explicit momentum.
    pub momentum: f32,
    /// Group count.
    pub groups: usize,
    /// Best smoothed training loss achieved.
    pub score: f32,
    /// The loss trajectory.
    pub curve: LossCurve,
}

/// Tuning budget and problem size.
#[derive(Clone, Debug)]
pub struct TunerConfig {
    /// Number of random trials.
    pub trials: usize,
    /// Model updates per trial.
    pub updates: usize,
    /// Total batch across the system.
    pub total_batch: usize,
    /// Virtual nodes.
    pub nodes: usize,
    /// Smoothing window for scoring.
    pub smooth_window: usize,
}

impl Default for TunerConfig {
    fn default() -> Self {
        Self { trials: 12, updates: 40, total_batch: 64, nodes: 64, smooth_window: 5 }
    }
}

/// Runs the random search; returns trials sorted best-first.
pub fn random_search(
    space: &SearchSpace,
    cfg: &TunerConfig,
    timing: &Workload,
    ds: &HepDataset,
    seed: u64,
) -> Vec<Trial> {
    assert!(cfg.trials >= 1 && !space.momenta.is_empty() && !space.groups.is_empty());
    let mut rng = TensorRng::new(seed ^ 0x7C7E);
    let mut trials = Vec::with_capacity(cfg.trials);
    for t in 0..cfg.trials {
        let lr = (space.lr.0 as f64
            * ((space.lr.1 / space.lr.0) as f64).powf(rng.uniform())) as f32;
        let groups = space.groups[rng.below(space.groups.len())];
        let momentum = if space.momentum_prior {
            // Propose around the theory value for this group count.
            let target = space.momenta[rng.below(space.momenta.len())];
            asynchrony_adjusted_momentum(target, groups)
        } else {
            space.momenta[rng.below(space.momenta.len())]
        };

        let mut ecfg = SimEngineConfig::fig8(cfg.nodes.max(groups), groups, cfg.total_batch, timing.clone());
        ecfg.iterations = (cfg.updates / groups).max(1);
        ecfg.lr = lr;
        ecfg.solver = SolverKind::Sgd { momentum };
        ecfg.seed = seed ^ (t as u64) << 8;

        let mut mrng = TensorRng::new(seed ^ 0xB00);
        let mut model = scidl_nn::arch::hep_small(&mut mrng);
        let run = SimEngine::run(&ecfg, &mut model, ds);
        let score = run.curve.best_smoothed(cfg.smooth_window).unwrap_or(f32::INFINITY);
        trials.push(Trial { lr, momentum, groups, score, curve: run.curve });
    }
    trials.sort_by(|a, b| a.score.partial_cmp(&b.score).unwrap_or(std::cmp::Ordering::Equal));
    trials
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::hep_workload;
    use scidl_data::HepConfig;

    fn small_setup() -> (Workload, HepDataset) {
        (hep_workload(), HepDataset::generate(HepConfig::small(), 128, 3))
    }

    #[test]
    fn search_returns_sorted_trials() {
        let (w, ds) = small_setup();
        let cfg = TunerConfig { trials: 4, updates: 8, total_batch: 16, nodes: 8, smooth_window: 3 };
        let trials = random_search(&SearchSpace::default(), &cfg, &w, &ds, 5);
        assert_eq!(trials.len(), 4);
        for pair in trials.windows(2) {
            assert!(pair[0].score <= pair[1].score);
        }
        assert!(trials.iter().all(|t| t.score.is_finite()));
    }

    #[test]
    fn search_is_deterministic() {
        let (w, ds) = small_setup();
        let cfg = TunerConfig { trials: 3, updates: 6, total_batch: 16, nodes: 8, smooth_window: 3 };
        let a = random_search(&SearchSpace::default(), &cfg, &w, &ds, 9);
        let b = random_search(&SearchSpace::default(), &cfg, &w, &ds, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.lr, y.lr);
            assert_eq!(x.score, y.score);
        }
    }

    #[test]
    fn proposals_respect_the_search_space() {
        let (w, ds) = small_setup();
        let space = SearchSpace {
            lr: (1e-3, 1e-2),
            momenta: vec![0.5],
            groups: vec![2],
            momentum_prior: false,
        };
        let cfg = TunerConfig { trials: 5, updates: 4, total_batch: 8, nodes: 4, smooth_window: 2 };
        for t in random_search(&space, &cfg, &w, &ds, 11) {
            assert!((1e-3..=1e-2).contains(&t.lr), "lr {}", t.lr);
            assert_eq!(t.momentum, 0.5);
            assert_eq!(t.groups, 2);
        }
    }

    #[test]
    fn momentum_prior_reduces_momentum_for_many_groups() {
        let (w, ds) = small_setup();
        let space = SearchSpace {
            lr: (1e-3, 1e-3),
            momenta: vec![0.9],
            groups: vec![8],
            momentum_prior: true,
        };
        let cfg = TunerConfig { trials: 3, updates: 4, total_batch: 16, nodes: 8, smooth_window: 2 };
        for t in random_search(&space, &cfg, &w, &ds, 13) {
            assert!(t.momentum < 0.9, "prior should shrink momentum: {}", t.momentum);
        }
    }
}
