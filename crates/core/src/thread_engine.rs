//! Real-concurrency hybrid training: every virtual node is a thread.
//!
//! This backend exists to validate the *architecture* rather than to
//! scale: groups of worker threads run data-parallel SGD with a real
//! all-reduce (`scidl-comm`), group roots exchange per-layer updates
//! with a real parameter-server bank, and staleness arises from genuine
//! thread interleaving. With one group the result is bit-identical to
//! sequential minibatch SGD — the correctness anchor the simulated-time
//! backend builds on.
//!
//! The engine is generic over the model and task
//! ([`ThreadEngine::run_with`]); [`ThreadEngine::run`] is the HEP
//! classification instantiation.
//!
//! ## Fault injection and recovery (Sec. VIII-A)
//!
//! [`ThreadEngineConfig::faults`] takes a [`FaultPlan`] describing
//! scheduled group crashes, PS crashes, stragglers and message delays:
//!
//! * A **group crash** stops all of the group's workers together. Without
//!   a recovery policy the group stays dead and the others keep training
//!   through the shared PS bank — the paper's observation. With
//!   [`FaultPlan::with_recovery`], the group sits out its MTTR
//!   (`mttr_iters` × its own measured iteration time), re-fetches the
//!   *current* model from the PS bank and rejoins; its post-recovery
//!   updates are reported in [`ThreadRunSummary::recovered_updates`].
//! * A **PS crash** kills a parameter-server thread mid-run. The engine
//!   talks to the bank through `scidl-comm`'s supervisor, which detects
//!   the dead shard and respawns it from its last snapshot — the run
//!   completes instead of aborting ([`ThreadRunSummary::ps_respawns`]).
//! * **Stragglers** and **message delays** stretch compute and PS
//!   exchanges with real sleeps, producing genuine extra staleness.
//!
//! Independently, [`ThreadEngineConfig::checkpoint_every`] makes the
//! root of group 0 write crash-safe model checkpoints
//! ([`crate::checkpoint::Checkpoint`]) while training runs.

use crate::checkpoint::Checkpoint;
use crate::faults::FaultPlan;
use crate::metrics::LossCurve;
use crate::task::{GradTask, HepGradTask};
use parking_lot::Mutex;
use scidl_comm::bucket::{BucketPlan, OverlapContext};
use scidl_comm::ps::UpdateFn;
use scidl_comm::supervisor::{SupervisedPsBank, SupervisorConfig, UpdateFactory};
use scidl_comm::{CommWorld, RingEndpoint, RingFabric};
use scidl_data::{BatchSampler, HepDataset};
use scidl_nn::network::Model;
use scidl_nn::Solver;
use scidl_tensor::TensorRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cap (exclusive) on the staleness histogram; larger values land in the
/// last bucket.
const STALENESS_BUCKETS: usize = 32;

/// Configuration of a thread-backed training run.
#[derive(Clone, Debug)]
pub struct ThreadEngineConfig {
    /// Compute groups.
    pub groups: usize,
    /// Worker threads per group.
    pub nodes_per_group: usize,
    /// Minibatch per group per update (split across the group's nodes).
    pub batch_per_group: usize,
    /// Iterations per group.
    pub iterations: usize,
    /// Learning rate of the PS solver.
    pub lr: f32,
    /// Momentum of the PS solver (ignored when `adam` is set).
    pub momentum: f32,
    /// Run ADAM at the parameter servers instead of momentum-SGD (the
    /// paper's HEP configuration, Sec. III-A).
    pub adam: bool,
    /// Overlap gradient communication with backward compute (Sec. V):
    /// each group's gradients are bucketed ([`bucket_bytes`](Self::bucket_bytes))
    /// and ring-reduced on a dedicated per-rank comm thread while
    /// shallower layers still backpropagate. Updates are bit-identical
    /// to the sequential bucketed schedule; only the timing changes.
    pub overlap_comm: bool,
    /// Target gradient bucket size in bytes for overlap mode (blocks are
    /// coalesced in backward-readiness order up to roughly this size;
    /// `0` = one bucket per parameter block).
    pub bucket_bytes: usize,
    /// Fault-injection scenario (Sec. VIII-A): group crashes (with or
    /// without recovery), PS crashes, stragglers and message delays.
    /// Single-rank `node_crashes` require `overlap_comm` (only the ring
    /// collectives can *detect* a missing peer). `FaultPlan::none()`
    /// trains fault-free.
    pub faults: FaultPlan,
    /// Write a crash-safe checkpoint every N group-0 iterations
    /// (0 = off; requires `checkpoint_path`).
    pub checkpoint_every: usize,
    /// Where periodic checkpoints go.
    pub checkpoint_path: Option<PathBuf>,
    /// Seed for model init and data sampling.
    pub seed: u64,
}

impl ThreadEngineConfig {
    /// A small default configuration.
    pub fn new(groups: usize, nodes_per_group: usize, batch_per_group: usize) -> Self {
        Self {
            groups,
            nodes_per_group,
            batch_per_group,
            iterations: 10,
            lr: 1e-3,
            momentum: 0.0,
            adam: false,
            overlap_comm: false,
            bucket_bytes: 1 << 16,
            faults: FaultPlan::none(),
            checkpoint_every: 0,
            checkpoint_path: None,
            seed: 0x7B,
        }
    }
}

/// Result of a thread-backed run.
#[derive(Debug)]
pub struct ThreadRunSummary {
    /// Group-update losses over real elapsed seconds.
    pub curve: LossCurve,
    /// Final flat model parameters (from the PS bank).
    pub final_params: Vec<f32>,
    /// Mean staleness observed at the PS (in updates).
    pub mean_staleness: f64,
    /// Histogram of observed staleness values (bucket `i` counts updates
    /// with staleness `i`; the last bucket aggregates the tail).
    pub staleness_histogram: Vec<u64>,
    /// Total updates applied across all groups.
    pub updates: u64,
    /// Updates contributed by groups *after* they recovered from a crash
    /// — work the recovery policy saved (0 without recovery).
    pub recovered_updates: u64,
    /// PS-shard failovers performed by the supervisor during the run.
    pub ps_respawns: u64,
    /// Crash-safe checkpoints written during the run.
    pub checkpoints_written: u64,
}

/// Shared run-wide accumulators.
struct Shared {
    losses: Mutex<Vec<(f64, f32)>>,
    staleness: Mutex<(f64, u64, Vec<u64>)>,
    /// `(recovered updates, checkpoints written)`.
    fault_stats: Mutex<(u64, u64)>,
}

/// The thread-backed hybrid engine.
pub struct ThreadEngine;

impl ThreadEngine {
    /// Trains `hep_small` (seeded from `cfg.seed`) on `ds`. With
    /// `cfg.overlap_comm` the HEP task's layered backward overlaps each
    /// bucket's ring all-reduce with the remaining backward compute.
    pub fn run(cfg: &ThreadEngineConfig, ds: Arc<HepDataset>) -> ThreadRunSummary {
        let len = ds.len();
        Self::run_with(
            cfg,
            len,
            move |seed| {
                let mut rng = TensorRng::new(seed);
                scidl_nn::arch::hep_small(&mut rng)
            },
            HepGradTask::new(ds),
        )
    }

    /// Generic thread-backed hybrid training. `build` constructs the
    /// (identical) initial model on every worker from the seed; `grad`
    /// computes `(loss, flat gradient)` for a batch of sample indices —
    /// a plain closure works, and a [`GradTask`] overriding
    /// `grad_overlapped` additionally supports `cfg.overlap_comm`.
    pub fn run_with<M, B, G>(
        cfg: &ThreadEngineConfig,
        dataset_len: usize,
        build: B,
        grad: G,
    ) -> ThreadRunSummary
    where
        M: Model,
        B: Fn(u64) -> M + Send + Sync,
        G: GradTask<M>,
    {
        assert!(cfg.groups >= 1 && cfg.nodes_per_group >= 1);
        assert!(
            cfg.batch_per_group >= cfg.nodes_per_group,
            "each node needs at least one image"
        );
        assert!(
            cfg.faults.node_crashes.is_empty() || cfg.overlap_comm,
            "single-rank node crashes require overlap_comm: only the ring \
             collectives detect a missing peer (the tree all-reduce would hang)"
        );

        // Template model defines the block structure and initial params.
        let template = build(cfg.seed);
        let block_sizes: Vec<usize> = template.param_blocks().iter().map(|b| b.len()).collect();
        // Block names feed the health sentinel's first-offender layer
        // attribution; the trace handle is a no-op when no sink is
        // installed.
        let block_names: Arc<Vec<String>> =
            Arc::new(template.param_blocks().iter().map(|b| b.name.clone()).collect());
        let tr = scidl_trace::TraceHandle::begin("thread-engine");

        // Supervised per-layer PS bank: each shard has its own solver
        // state and is respawned from a snapshot if it dies. The factory
        // rebuilds the update rule for a respawned shard (its solver
        // state restarts fresh, like a PS process restarting from a
        // checkpoint).
        let (adam, lr, momentum) = (cfg.adam, cfg.lr, cfg.momentum);
        let bank = SupervisedPsBank::spawn_with(
            template
                .param_blocks()
                .iter()
                .enumerate()
                .map(|(shard, b)| {
                    let factory: UpdateFactory = Box::new(move || {
                        if adam {
                            let mut solver = scidl_nn::Adam::new(lr);
                            Box::new(move |p: &mut [f32], g: &[f32]| {
                                solver.step_block(0, p, g);
                            }) as UpdateFn
                        } else {
                            let mut solver = scidl_nn::Sgd::new(lr, momentum);
                            Box::new(move |p: &mut [f32], g: &[f32]| {
                                solver.step_block(0, p, g);
                            }) as UpdateFn
                        }
                    });
                    let sup = SupervisorConfig {
                        inject_crash_after: cfg
                            .faults
                            .ps_crash_for_shard(shard)
                            .map(|c| c.after_requests),
                        ..SupervisorConfig::default()
                    };
                    (b.value.data().to_vec(), factory, sup)
                })
                .collect(),
        );
        let bank = Arc::new(bank);
        let shared = Arc::new(Shared {
            losses: Mutex::new(Vec::new()),
            staleness: Mutex::new((0.0, 0, vec![0u64; STALENESS_BUCKETS])),
            fault_stats: Mutex::new((0, 0)),
        });
        // Overlap mode: one bucket plan shared by all ranks (readiness
        // order over the blocks), one gradient ring per group.
        let plan = Arc::new(BucketPlan::new(&block_sizes, cfg.bucket_bytes));
        let t0 = Instant::now();

        std::thread::scope(|scope| {
            for g in 0..cfg.groups {
                let comms = CommWorld::new(cfg.nodes_per_group);
                let mut endpoints: Vec<Option<RingEndpoint>> = if cfg.overlap_comm {
                    RingFabric::new(cfg.nodes_per_group)
                        .into_endpoints()
                        .into_iter()
                        .map(Some)
                        .collect()
                } else {
                    (0..cfg.nodes_per_group).map(|_| None).collect()
                };
                for (r, comm) in comms.into_iter().enumerate() {
                    let cfg = cfg.clone();
                    let bank = Arc::clone(&bank);
                    let shared = Arc::clone(&shared);
                    let block_sizes = block_sizes.clone();
                    let block_names = Arc::clone(&block_names);
                    let plan = Arc::clone(&plan);
                    let endpoint = endpoints[r].take();
                    let tr = tr.clone();
                    let build = &build;
                    let grad = &grad;
                    scope.spawn(move || {
                        worker(
                            g,
                            r,
                            comm,
                            endpoint,
                            plan,
                            cfg,
                            dataset_len,
                            bank,
                            shared,
                            block_sizes,
                            block_names,
                            tr,
                            t0,
                            build,
                            grad,
                        )
                    });
                }
            }
        });

        let mut curve = LossCurve::new();
        let mut pts = shared.losses.lock().clone();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (t, l) in pts {
            curve.push(t, l);
        }

        let bank = Arc::try_unwrap(bank).ok().expect("bank still shared");
        let ps_respawns = bank.total_respawns();
        let final_params: Vec<f32> = bank
            .fetch_all()
            .expect("PS bank unreachable at shutdown")
            .into_iter()
            .flat_map(|r| r.params)
            .collect();
        let (ssum, supdates, hist) = shared.staleness.lock().clone();
        let (recovered_updates, checkpoints_written) = *shared.fault_stats.lock();
        ThreadRunSummary {
            curve,
            final_params,
            mean_staleness: if supdates > 0 { ssum / supdates as f64 } else { 0.0 },
            staleness_histogram: hist,
            updates: supdates,
            recovered_updates,
            ps_respawns,
            checkpoints_written,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker<M, B, G>(
    group: usize,
    rank: usize,
    comm: scidl_comm::Communicator,
    endpoint: Option<RingEndpoint>,
    plan: Arc<BucketPlan>,
    cfg: ThreadEngineConfig,
    dataset_len: usize,
    bank: Arc<SupervisedPsBank>,
    shared: Arc<Shared>,
    block_sizes: Vec<usize>,
    block_names: Arc<Vec<String>>,
    tr: scidl_trace::TraceHandle,
    t0: Instant,
    build: &B,
    grad: &G,
) where
    M: Model,
    B: Fn(u64) -> M + Send + Sync,
    G: GradTask<M>,
{
    // Every worker builds the identical initial model.
    let mut model = build(cfg.seed);
    // Overlap mode: a dedicated comm thread owns this rank's ring
    // endpoint for the whole run (MLSL's endpoint proxy threads).
    let mut overlap: Option<OverlapContext> =
        endpoint.map(|ep| OverlapContext::spawn(rank, cfg.nodes_per_group, ep));
    let node_crash_iter = cfg.faults.node_crash_at(group, rank);

    let node_id = group * cfg.nodes_per_group + rank;
    let total_nodes = cfg.groups * cfg.nodes_per_group;
    let per_node = cfg.batch_per_group / cfg.nodes_per_group;
    let mut sampler = BatchSampler::for_node(dataset_len, per_node, cfg.seed, node_id, total_nodes);

    let mut last_version: u64 = 0;
    let mut flat = model.flat_params();
    // MTTR is expressed in iterations; convert with the group's own
    // measured pace (fallback before the first iteration completes).
    let mut last_iter_secs = 1e-3f64;
    let mut recovered = false;

    for iter in 0..cfg.iterations {
        if node_crash_iter.is_some_and(|k| iter >= k) {
            // This rank alone dies (Sec. VIII-A): returning drops the
            // overlap comm thread and with it this rank's ring channels,
            // so the group's survivors hit the dead neighbour mid-bucket
            // and abort with a CommError instead of hanging.
            return;
        }
        if !recovered && cfg.faults.group_crash_at(group) == Some(iter) {
            // The whole group observes the same condition and stops
            // together — a node failure taking its group down
            // (Sec. VIII-A). Other groups keep going via the PS bank.
            match cfg.faults.recovery {
                None => return, // permanent loss: the paper's baseline
                Some(rec) => {
                    // Sit out the repair time, then rejoin from the
                    // *current* model at the PS bank — everything the
                    // other groups learned meanwhile is picked up.
                    std::thread::sleep(Duration::from_secs_f64(
                        rec.mttr_iters as f64 * last_iter_secs,
                    ));
                    recovered = true;
                    if rank == 0 {
                        match bank.fetch_all() {
                            Ok(replies) => {
                                flat.clear();
                                for r in &replies {
                                    flat.extend_from_slice(&r.params);
                                }
                                // Resync the staleness cursor to "now".
                                last_version = replies[0].version;
                            }
                            Err(_) => {
                                // The bank itself is unreachable: the
                                // group cannot rejoin. Signal the group
                                // to stop together below.
                                let mut status = [0.0f32];
                                comm.broadcast(0, &mut status);
                                return;
                            }
                        }
                        let mut status = [1.0f32];
                        comm.broadcast(0, &mut status);
                    } else {
                        let mut status = [0.0f32];
                        comm.broadcast(0, &mut status);
                        if status[0] < 0.5 {
                            return;
                        }
                    }
                    comm.broadcast(0, &mut flat);
                }
            }
        }
        let iter_start = Instant::now();
        // All spans land on lane `group`, emitted by the group root only
        // so the timeline has one lane per group.
        let iter_t = tr.now();
        model.set_flat_params(&flat);
        let indices = sampler.next_batch();
        // Overlap mode: backward streams gradient buckets to the comm
        // thread as layers complete; `finish` drains the reduced buckets,
        // so `grads` is already the group mean.
        let mut already_reduced = false;
        let (loss, mut grads) = match overlap.as_mut() {
            Some(ctx) => {
                let mut stream = ctx.stream(&plan);
                let loss = grad.grad_overlapped(&mut model, &indices, &mut stream);
                let mut reduced = vec![0.0f32; plan.total_len()];
                match stream.finish(&mut reduced) {
                    Ok(()) => {
                        already_reduced = true;
                        (loss, reduced)
                    }
                    Err(_) => {
                        // A ring neighbour died mid-bucket: fatal for the
                        // whole synchronous group (Sec. VIII-A). Return
                        // before any tree collective so the group's
                        // survivors stop together instead of deadlocking
                        // on a rank that will never arrive.
                        return;
                    }
                }
            }
            None => grad.grad(&mut model, &indices),
        };
        let compute_s = tr.now() - iter_t;
        if rank == 0 {
            tr.span(
                group as u64,
                iter_t,
                scidl_trace::EventKind::Compute { group: group as u64, iter: iter as u64 },
            );
        }

        // Scheduled straggler: stretch this group's compute phase by the
        // plan's factor (the all-reduce barrier spreads the slowdown to
        // the whole group, as a slow node does).
        let factor = cfg.faults.straggler_factor(group, iter);
        if factor > 1.0 {
            let straggle_t = tr.now();
            let spent = iter_start.elapsed();
            std::thread::sleep(spent.mul_f64(factor - 1.0));
            if rank == 0 {
                tr.span(
                    group as u64,
                    straggle_t,
                    scidl_trace::EventKind::Straggler { group: group as u64, factor },
                );
            }
        }

        // Intra-group synchronous step: average gradients and loss (the
        // gradient mean already happened on the ring in overlap mode).
        let ar_t = tr.now();
        if !already_reduced {
            comm.allreduce_mean(&mut grads);
        }
        let mut lbuf = [loss];
        comm.allreduce_mean(&mut lbuf);
        let group_loss = lbuf[0];
        let mut comm_s = tr.now() - ar_t;
        if rank == 0 {
            tr.span(
                group as u64,
                ar_t,
                scidl_trace::EventKind::Allreduce { elems: grads.len() as u64 + 1 },
            );
            // Numeric-health sentinel: a non-finite loss or gradient
            // (from any node — the mean propagates it) is caught here
            // and the first offender attributed to its parameter block.
            if tr.enabled() {
                if !group_loss.is_finite() {
                    tr.health(scidl_trace::HealthAlert {
                        source: "loss",
                        layer: None,
                        first_index: 0,
                        count: 1,
                        value: group_loss,
                        iter: Some(iter as u64),
                    });
                }
                if let Some(alert) = scidl_trace::scan_blocks(
                    "gradient",
                    &grads,
                    &block_sizes,
                    &block_names,
                    Some(iter as u64),
                ) {
                    tr.health(alert);
                }
            }
        }

        // One status word per iteration keeps the group's fate shared:
        // if the root's PS exchange fails terminally, every worker of the
        // group returns together instead of deadlocking in a broadcast.
        let mut status = [1.0f32];
        let mut ps_s = 0.0f64;
        let mut row_stale = 0u64;
        if rank == 0 {
            // PS-exchange span includes the injected network delay: both
            // model the time the root spends away from compute.
            let ps_t = tr.now();
            // Scheduled network delay in front of the exchange.
            let delay = cfg.faults.message_delay_secs(group, iter);
            if delay > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(delay));
            }
            // Root: per-layer PS exchange (asynchronous across groups).
            // The supervisor behind `update_all` retries and respawns
            // dead shards; an error here means retries are exhausted.
            let mut blocks = Vec::with_capacity(block_sizes.len());
            let mut off = 0;
            for &len in &block_sizes {
                blocks.push(grads[off..off + len].to_vec());
                off += len;
            }
            match bank.update_all(&blocks) {
                Ok(replies) => {
                    // Staleness from the first block's version stream.
                    let v = replies[0].version;
                    let stale = v.saturating_sub(last_version + 1);
                    last_version = v;
                    ps_s = tr.now() - ps_t;
                    row_stale = stale;
                    tr.span(
                        group as u64,
                        ps_t,
                        scidl_trace::EventKind::PsExchange {
                            group: group as u64,
                            staleness: stale,
                        },
                    );
                    {
                        let mut s = shared.staleness.lock();
                        s.0 += stale as f64;
                        s.1 += 1;
                        let bucket = (stale as usize).min(STALENESS_BUCKETS - 1);
                        s.2[bucket] += 1;
                    }
                    if recovered {
                        shared.fault_stats.lock().0 += 1;
                    }
                    flat.clear();
                    for r in &replies {
                        flat.extend_from_slice(&r.params);
                    }
                    shared
                        .losses
                        .lock()
                        .push((t0.elapsed().as_secs_f64(), group_loss));

                    // Periodic crash-safe checkpoint from group 0's root.
                    if group == 0
                        && cfg.checkpoint_every > 0
                        && (iter + 1) % cfg.checkpoint_every == 0
                    {
                        if let Some(path) = &cfg.checkpoint_path {
                            let ck_t = tr.now();
                            let ck = Checkpoint {
                                iteration: (iter + 1) as u64,
                                seed: cfg.seed,
                                params: flat.clone(),
                            };
                            if ck.save(path).is_ok() {
                                shared.fault_stats.lock().1 += 1;
                            }
                            tr.span(
                                group as u64,
                                ck_t,
                                scidl_trace::EventKind::Checkpoint {
                                    iter: (iter + 1) as u64,
                                    bytes: (flat.len() * 4) as u64,
                                },
                            );
                        }
                    }
                }
                Err(_) => {
                    // The PS bank is terminally unreachable for this
                    // group: it dies, the others keep going.
                    status[0] = 0.0;
                }
            }
        }
        let bc_t = tr.now();
        comm.broadcast(0, &mut status);
        if status[0] < 0.5 {
            return;
        }
        // Root broadcasts the fresh model to its group.
        comm.broadcast(0, &mut flat);
        comm_s += tr.now() - bc_t;
        last_iter_secs = iter_start.elapsed().as_secs_f64().max(1e-6);
        if rank == 0 {
            tr.span(
                group as u64,
                iter_t,
                scidl_trace::EventKind::Iteration { group: group as u64, iter: iter as u64 },
            );
            tr.row(scidl_trace::IterRow {
                run: 0, // filled in by the handle
                kind: "train",
                track: group as u64,
                iter: iter as u64,
                start_s: iter_t,
                compute_s,
                comm_s,
                ps_s,
                queue_s: 0.0,
                staleness: row_stale,
                loss: group_loss as f64,
                batch: cfg.batch_per_group as u64,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults;
    use crate::task::hep_gradient;
    use scidl_data::HepConfig;
    use scidl_nn::Sgd;

    fn dataset() -> Arc<HepDataset> {
        Arc::new(HepDataset::generate(HepConfig::small(), 64, 77))
    }

    #[test]
    fn single_group_single_node_matches_sequential_sgd() {
        let ds = dataset();
        let mut cfg = ThreadEngineConfig::new(1, 1, 8);
        cfg.iterations = 5;
        cfg.momentum = 0.9;
        let run = ThreadEngine::run(&cfg, Arc::clone(&ds));

        // Sequential reference with identical sampling and solver.
        let mut mrng = TensorRng::new(cfg.seed);
        let mut model = scidl_nn::arch::hep_small(&mut mrng);
        let block_sizes: Vec<usize> = model.param_blocks().iter().map(|b| b.len()).collect();
        let mut sampler = BatchSampler::for_node(ds.len(), 8, cfg.seed, 0, 1);
        let mut solvers: Vec<Sgd> = block_sizes.iter().map(|_| Sgd::new(cfg.lr, 0.9)).collect();
        let mut flat = model.flat_params();
        for _ in 0..cfg.iterations {
            model.set_flat_params(&flat);
            let idx = sampler.next_batch();
            let (_, grads) = hep_gradient(&mut model, &ds, &idx);
            let mut off = 0;
            for (i, &len) in block_sizes.iter().enumerate() {
                solvers[i].step_block(0, &mut flat[off..off + len], &grads[off..off + len]);
                off += len;
            }
        }
        assert_eq!(run.final_params.len(), flat.len());
        let max_err = run
            .final_params
            .iter()
            .zip(&flat)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 1e-6, "thread engine diverges from SGD by {max_err}");
        assert_eq!(run.mean_staleness, 0.0);
        assert_eq!(run.ps_respawns, 0);
        assert_eq!(run.recovered_updates, 0);
    }

    #[test]
    fn overlap_single_node_is_bit_identical_to_sequential_path() {
        // With one rank the ring is the identity, so overlap on/off must
        // produce bit-identical parameters — pinning that the overlapped
        // grad path computes exactly the same gradients.
        let ds = dataset();
        let mut cfg = ThreadEngineConfig::new(1, 1, 8);
        cfg.iterations = 5;
        cfg.momentum = 0.9;
        let base = ThreadEngine::run(&cfg, Arc::clone(&ds));
        cfg.overlap_comm = true;
        cfg.bucket_bytes = 512; // force several buckets
        let over = ThreadEngine::run(&cfg, Arc::clone(&ds));
        assert_eq!(base.final_params, over.final_params);
        assert_eq!(base.updates, over.updates);
    }

    #[test]
    fn overlap_group_agrees_with_tree_path_numerically() {
        // Across ranks the ring and tree all-reduce sum in different
        // orders, so bit-identity is not expected against the *tree*
        // baseline (the sequential bucketed-ring reference in the
        // integration tests pins bit-identity); numerically the runs
        // must agree tightly.
        let ds = dataset();
        let mut cfg = ThreadEngineConfig::new(1, 4, 8);
        cfg.iterations = 6;
        cfg.momentum = 0.5;
        let base = ThreadEngine::run(&cfg, Arc::clone(&ds));
        cfg.overlap_comm = true;
        cfg.bucket_bytes = 2048;
        let over = ThreadEngine::run(&cfg, Arc::clone(&ds));
        assert_eq!(over.updates, base.updates);
        let max_err = base
            .final_params
            .iter()
            .zip(&over.final_params)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 1e-4, "overlap run diverged from tree run by {max_err}");
    }

    #[test]
    fn node_crash_in_overlap_mode_stops_the_group_not_the_run() {
        // Rank 1 of group 0 dies at iteration 2: group 0's survivors hit
        // the dead ring neighbour, get a CommError and stop together;
        // group 1 keeps training through the PS bank.
        let ds = dataset();
        let mut cfg = ThreadEngineConfig::new(2, 3, 6);
        cfg.iterations = 8;
        cfg.overlap_comm = true;
        cfg.bucket_bytes = 1024;
        cfg.faults = faults::kill_node(0, 1, 2);
        let run = ThreadEngine::run(&cfg, Arc::clone(&ds));
        // Group 0 contributes its 2 pre-crash updates; group 1 all 8.
        assert_eq!(run.updates, 8 + 2);
        assert!(run.final_params.iter().all(|p| p.is_finite()));
    }

    #[test]
    #[should_panic(expected = "node crashes require overlap_comm")]
    fn node_crash_without_overlap_is_rejected() {
        let ds = dataset();
        let mut cfg = ThreadEngineConfig::new(1, 2, 4);
        cfg.faults = faults::kill_node(0, 1, 1);
        let _ = ThreadEngine::run(&cfg, ds);
    }

    #[test]
    fn group_of_four_nodes_matches_single_node_big_batch() {
        // Data-parallel equivalence: 4 nodes × batch 2 with all-reduce
        // must equal 1 node × batch 8 *if* they see the same images. We
        // verify the weaker, architecture-level property that gradients
        // averaged over the group produce a valid converging run and all
        // nodes stay in sync (same final params from the bank).
        let ds = dataset();
        let mut cfg = ThreadEngineConfig::new(1, 4, 8);
        cfg.iterations = 6;
        let run = ThreadEngine::run(&cfg, Arc::clone(&ds));
        assert_eq!(run.updates, 6);
        assert_eq!(run.curve.len(), 6);
        assert!(run.final_params.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn hybrid_groups_interleave_and_apply_all_updates() {
        let ds = dataset();
        let mut cfg = ThreadEngineConfig::new(3, 2, 6);
        cfg.iterations = 8;
        let run = ThreadEngine::run(&cfg, Arc::clone(&ds));
        assert_eq!(run.updates, 3 * 8);
        assert_eq!(run.curve.len(), 3 * 8);
        assert!(run.final_params.iter().all(|p| p.is_finite()));
        // Histogram accounts for every update.
        assert_eq!(run.staleness_histogram.iter().sum::<u64>(), 24);
    }

    #[test]
    fn hybrid_staleness_is_positive_with_multiple_groups() {
        let ds = dataset();
        let mut cfg = ThreadEngineConfig::new(4, 1, 4);
        cfg.iterations = 12;
        let run = ThreadEngine::run(&cfg, Arc::clone(&ds));
        // With 4 free-running groups, updates from other groups land
        // between a group's read and write essentially always.
        assert!(
            run.mean_staleness > 0.5,
            "expected real staleness, got {}",
            run.mean_staleness
        );
        // The histogram's non-zero buckets dominate.
        let zero = run.staleness_histogram[0];
        let total: u64 = run.staleness_histogram.iter().sum();
        assert!(zero < total, "some updates must be stale");
    }

    #[test]
    fn failed_group_leaves_others_running() {
        let ds = dataset();
        let mut cfg = ThreadEngineConfig::new(3, 2, 6);
        cfg.iterations = 10;
        cfg.faults = faults::kill_group(1, 3); // group 1 dies at iteration 3
        let run = ThreadEngine::run(&cfg, Arc::clone(&ds));
        // Two healthy groups × 10 + the failed group's 3 updates.
        assert_eq!(run.updates, 2 * 10 + 3);
        assert_eq!(run.recovered_updates, 0);
        assert!(run.final_params.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn crashed_group_recovers_and_finishes_the_run() {
        let ds = dataset();
        let mut cfg = ThreadEngineConfig::new(3, 2, 6);
        cfg.iterations = 10;
        cfg.faults = faults::kill_and_recover_group(1, 3, 2, 0.0);
        let run = ThreadEngine::run(&cfg, Arc::clone(&ds));
        // Every group completes all its iterations: the crashed group
        // contributes its 3 pre-crash updates plus 7 recovered ones.
        assert_eq!(run.updates, 3 * 10);
        assert_eq!(run.recovered_updates, 7);
        assert!(run.final_params.iter().all(|p| p.is_finite()));
        // The recovery beats the no-recovery baseline by exactly the
        // recovered updates (23 vs 30).
        assert!(run.updates > 2 * 10 + 3);
    }

    #[test]
    fn ps_crash_mid_run_is_survived_by_the_supervisor() {
        let ds = dataset();
        let mut cfg = ThreadEngineConfig::new(2, 1, 4);
        cfg.iterations = 12;
        // Shard 0 dies after 5 served requests; the supervisor respawns
        // it from its snapshot and the run completes fully.
        cfg.faults = faults::kill_ps_shard(0, 5, 0.0);
        let run = ThreadEngine::run(&cfg, Arc::clone(&ds));
        assert_eq!(run.updates, 2 * 12, "no iteration may be lost to the PS crash");
        assert!(run.ps_respawns >= 1, "the supervisor must have failed over");
        assert!(run.final_params.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn straggler_and_delay_injection_completes_with_extra_staleness() {
        let ds = dataset();
        let mut cfg = ThreadEngineConfig::new(2, 1, 4);
        cfg.iterations = 8;
        cfg.faults = FaultPlan::none()
            .with_straggler(0, 2, 6, 3.0)
            .with_message_delay(0, 4, 0.002);
        let run = ThreadEngine::run(&cfg, Arc::clone(&ds));
        assert_eq!(run.updates, 2 * 8);
        assert!(run.final_params.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn periodic_checkpoints_are_written_and_loadable() {
        let ds = dataset();
        let mut path = std::env::temp_dir();
        path.push(format!("scidl_engine_ckpt_{}", std::process::id()));
        let mut cfg = ThreadEngineConfig::new(2, 1, 4);
        cfg.iterations = 6;
        cfg.checkpoint_every = 2;
        cfg.checkpoint_path = Some(path.clone());
        let run = ThreadEngine::run(&cfg, Arc::clone(&ds));
        assert_eq!(run.checkpoints_written, 3);
        let ck = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(ck.iteration, 6);
        assert_eq!(ck.seed, cfg.seed);
        assert_eq!(ck.params.len(), run.final_params.len());
        assert!(ck.params.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn adam_at_the_parameter_servers_converges() {
        let ds = Arc::new(HepDataset::generate(HepConfig::small(), 128, 79));
        let mut cfg = ThreadEngineConfig::new(2, 1, 16);
        cfg.iterations = 30;
        cfg.lr = 1e-3;
        cfg.adam = true;
        let run = ThreadEngine::run(&cfg, ds);
        assert_eq!(run.updates, 60);
        assert!(run.final_params.iter().all(|p| p.is_finite()));
        let pts = &run.curve.points;
        let first: f32 = pts[..6].iter().map(|p| p.1).sum::<f32>() / 6.0;
        let last: f32 = pts[pts.len() - 6..].iter().map(|p| p.1).sum::<f32>() / 6.0;
        assert!(last < first, "ADAM-at-PS should learn: {first} → {last}");
    }

    #[test]
    fn generic_engine_trains_resnet_on_threads() {
        let ds = dataset();
        let mut cfg = ThreadEngineConfig::new(2, 1, 8);
        cfg.iterations = 4;
        let data = Arc::clone(&ds);
        let run = ThreadEngine::run_with(
            &cfg,
            ds.len(),
            |seed| {
                let mut rng = TensorRng::new(seed);
                scidl_nn::residual::resnet_small(3, 2, &mut rng)
            },
            move |model: &mut scidl_nn::network::Network, indices: &[usize]| {
                hep_gradient(model, &data, indices)
            },
        );
        assert_eq!(run.updates, 8);
        assert!(run.final_params.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn training_loss_decreases() {
        let ds = Arc::new(HepDataset::generate(HepConfig::small(), 128, 78));
        let mut cfg = ThreadEngineConfig::new(1, 2, 16);
        cfg.iterations = 60;
        cfg.lr = 4e-3;
        cfg.momentum = 0.8;
        let run = ThreadEngine::run(&cfg, ds);
        let pts = &run.curve.points;
        let first: f32 = pts[..8].iter().map(|p| p.1).sum::<f32>() / 8.0;
        let last: f32 = pts[pts.len() - 8..].iter().map(|p| p.1).sum::<f32>() / 8.0;
        assert!(last < first, "loss should fall: {first} → {last}");
    }
}
