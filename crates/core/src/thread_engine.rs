//! Real-concurrency hybrid training: every virtual node is a thread.
//!
//! This backend exists to validate the *architecture* rather than to
//! scale: groups of worker threads run data-parallel SGD with a real
//! all-reduce (`scidl-comm`), group roots exchange per-layer updates
//! with a real parameter-server bank, and staleness arises from genuine
//! thread interleaving. With one group the result is bit-identical to
//! sequential minibatch SGD — the correctness anchor the simulated-time
//! backend builds on.
//!
//! The engine is generic over the model and task
//! ([`ThreadEngine::run_with`]); [`ThreadEngine::run`] is the HEP
//! classification instantiation. Failure injection
//! ([`ThreadEngineConfig::fail_group_at`]) kills one compute group
//! mid-run, demonstrating the Sec. VIII-A resilience property on real
//! threads: the remaining groups keep training through the shared PS
//! bank.

use crate::metrics::LossCurve;
use crate::task::hep_gradient;
use parking_lot::Mutex;
use scidl_comm::ps::UpdateFn;
use scidl_comm::{CommWorld, PendingExchange, PsBank};
use scidl_data::{BatchSampler, HepDataset};
use scidl_nn::network::Model;
use scidl_nn::{Sgd, Solver};
use scidl_tensor::TensorRng;
use std::sync::Arc;
use std::time::Instant;

/// Cap (exclusive) on the staleness histogram; larger values land in the
/// last bucket.
const STALENESS_BUCKETS: usize = 32;

/// Configuration of a thread-backed training run.
#[derive(Clone, Debug)]
pub struct ThreadEngineConfig {
    /// Compute groups.
    pub groups: usize,
    /// Worker threads per group.
    pub nodes_per_group: usize,
    /// Minibatch per group per update (split across the group's nodes).
    pub batch_per_group: usize,
    /// Iterations per group.
    pub iterations: usize,
    /// Learning rate of the PS solver.
    pub lr: f32,
    /// Momentum of the PS solver (ignored when `adam` is set).
    pub momentum: f32,
    /// Run ADAM at the parameter servers instead of momentum-SGD (the
    /// paper's HEP configuration, Sec. III-A).
    pub adam: bool,
    /// Kill group `.0` at the start of its iteration `.1` (failure
    /// injection, Sec. VIII-A). All of the group's workers stop together;
    /// the other groups are unaffected.
    pub fail_group_at: Option<(usize, usize)>,
    /// Seed for model init and data sampling.
    pub seed: u64,
}

impl ThreadEngineConfig {
    /// A small default configuration.
    pub fn new(groups: usize, nodes_per_group: usize, batch_per_group: usize) -> Self {
        Self {
            groups,
            nodes_per_group,
            batch_per_group,
            iterations: 10,
            lr: 1e-3,
            momentum: 0.0,
            adam: false,
            fail_group_at: None,
            seed: 0x7B,
        }
    }
}

/// Result of a thread-backed run.
#[derive(Debug)]
pub struct ThreadRunSummary {
    /// Group-update losses over real elapsed seconds.
    pub curve: LossCurve,
    /// Final flat model parameters (from the PS bank).
    pub final_params: Vec<f32>,
    /// Mean staleness observed at the PS (in updates).
    pub mean_staleness: f64,
    /// Histogram of observed staleness values (bucket `i` counts updates
    /// with staleness `i`; the last bucket aggregates the tail).
    pub staleness_histogram: Vec<u64>,
    /// Total updates applied across all groups.
    pub updates: u64,
}

/// Shared run-wide accumulators.
struct Shared {
    losses: Mutex<Vec<(f64, f32)>>,
    staleness: Mutex<(f64, u64, Vec<u64>)>,
}

/// The thread-backed hybrid engine.
pub struct ThreadEngine;

impl ThreadEngine {
    /// Trains `hep_small` (seeded from `cfg.seed`) on `ds`.
    pub fn run(cfg: &ThreadEngineConfig, ds: Arc<HepDataset>) -> ThreadRunSummary {
        let data = Arc::clone(&ds);
        Self::run_with(
            cfg,
            ds.len(),
            move |seed| {
                let mut rng = TensorRng::new(seed);
                scidl_nn::arch::hep_small(&mut rng)
            },
            move |model, indices| hep_gradient(model, &data, indices),
        )
    }

    /// Generic thread-backed hybrid training. `build` constructs the
    /// (identical) initial model on every worker from the seed; `grad`
    /// computes `(loss, flat gradient)` for a batch of sample indices.
    pub fn run_with<M, B, G>(
        cfg: &ThreadEngineConfig,
        dataset_len: usize,
        build: B,
        grad: G,
    ) -> ThreadRunSummary
    where
        M: Model,
        B: Fn(u64) -> M + Send + Sync,
        G: Fn(&mut M, &[usize]) -> (f32, Vec<f32>) + Send + Sync,
    {
        assert!(cfg.groups >= 1 && cfg.nodes_per_group >= 1);
        assert!(
            cfg.batch_per_group >= cfg.nodes_per_group,
            "each node needs at least one image"
        );

        // Template model defines the block structure and initial params.
        let template = build(cfg.seed);
        let block_sizes: Vec<usize> = template.param_blocks().iter().map(|b| b.len()).collect();

        // Per-layer PS bank, each with its own solver state.
        let bank = PsBank::spawn(
            template
                .param_blocks()
                .iter()
                .map(|b| {
                    let update: UpdateFn = if cfg.adam {
                        let mut solver = scidl_nn::Adam::new(cfg.lr);
                        Box::new(move |p: &mut [f32], g: &[f32]| {
                            solver.step_block(0, p, g);
                        })
                    } else {
                        let mut solver = Sgd::new(cfg.lr, cfg.momentum);
                        Box::new(move |p: &mut [f32], g: &[f32]| {
                            solver.step_block(0, p, g);
                        })
                    };
                    (b.value.data().to_vec(), update)
                })
                .collect(),
        );
        let bank = Arc::new(bank);
        let shared = Arc::new(Shared {
            losses: Mutex::new(Vec::new()),
            staleness: Mutex::new((0.0, 0, vec![0u64; STALENESS_BUCKETS])),
        });
        let t0 = Instant::now();

        std::thread::scope(|scope| {
            for g in 0..cfg.groups {
                let comms = CommWorld::new(cfg.nodes_per_group);
                for (r, comm) in comms.into_iter().enumerate() {
                    let cfg = cfg.clone();
                    let bank = Arc::clone(&bank);
                    let shared = Arc::clone(&shared);
                    let block_sizes = block_sizes.clone();
                    let build = &build;
                    let grad = &grad;
                    scope.spawn(move || {
                        worker(
                            g,
                            r,
                            comm,
                            cfg,
                            dataset_len,
                            bank,
                            shared,
                            block_sizes,
                            t0,
                            build,
                            grad,
                        )
                    });
                }
            }
        });

        let mut curve = LossCurve::new();
        let mut pts = shared.losses.lock().clone();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (t, l) in pts {
            curve.push(t, l);
        }

        let final_params: Vec<f32> = Arc::try_unwrap(bank)
            .ok()
            .expect("bank still shared")
            .fetch_all()
            .into_iter()
            .flat_map(|r| r.params)
            .collect();
        let (ssum, supdates, hist) = shared.staleness.lock().clone();
        ThreadRunSummary {
            curve,
            final_params,
            mean_staleness: if supdates > 0 { ssum / supdates as f64 } else { 0.0 },
            staleness_histogram: hist,
            updates: supdates,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker<M, B, G>(
    group: usize,
    rank: usize,
    comm: scidl_comm::Communicator,
    cfg: ThreadEngineConfig,
    dataset_len: usize,
    bank: Arc<PsBank>,
    shared: Arc<Shared>,
    block_sizes: Vec<usize>,
    t0: Instant,
    build: &B,
    grad: &G,
) where
    M: Model,
    B: Fn(u64) -> M + Send + Sync,
    G: Fn(&mut M, &[usize]) -> (f32, Vec<f32>) + Send + Sync,
{
    // Every worker builds the identical initial model.
    let mut model = build(cfg.seed);

    let node_id = group * cfg.nodes_per_group + rank;
    let total_nodes = cfg.groups * cfg.nodes_per_group;
    let per_node = cfg.batch_per_group / cfg.nodes_per_group;
    let mut sampler = BatchSampler::for_node(dataset_len, per_node, cfg.seed, node_id, total_nodes);

    let mut last_version: u64 = 0;
    let mut flat = model.flat_params();

    for iter in 0..cfg.iterations {
        if let Some((fg, fi)) = cfg.fail_group_at {
            if fg == group && iter >= fi {
                // The whole group observes the same condition and stops
                // together — a node failure taking its group down
                // (Sec. VIII-A). Other groups keep going via the PS bank.
                return;
            }
        }
        model.set_flat_params(&flat);
        let indices = sampler.next_batch();
        let (loss, mut grads) = grad(&mut model, &indices);

        // Intra-group synchronous step: average gradients and loss.
        comm.allreduce_mean(&mut grads);
        let mut lbuf = [loss];
        comm.allreduce_mean(&mut lbuf);
        let group_loss = lbuf[0];

        if rank == 0 {
            // Root: per-layer PS exchange (asynchronous across groups).
            let mut blocks = Vec::with_capacity(block_sizes.len());
            let mut off = 0;
            for &len in &block_sizes {
                blocks.push(grads[off..off + len].to_vec());
                off += len;
            }
            let replies = PendingExchange::post(&bank, blocks).wait();
            // Staleness from the first block's version stream.
            let v = replies[0].version;
            let stale = v.saturating_sub(last_version + 1);
            last_version = v;
            {
                let mut s = shared.staleness.lock();
                s.0 += stale as f64;
                s.1 += 1;
                let bucket = (stale as usize).min(STALENESS_BUCKETS - 1);
                s.2[bucket] += 1;
            }
            flat.clear();
            for r in &replies {
                flat.extend_from_slice(&r.params);
            }
            shared
                .losses
                .lock()
                .push((t0.elapsed().as_secs_f64(), group_loss));
        }
        // Root broadcasts the fresh model to its group.
        comm.broadcast(0, &mut flat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidl_data::HepConfig;

    fn dataset() -> Arc<HepDataset> {
        Arc::new(HepDataset::generate(HepConfig::small(), 64, 77))
    }

    #[test]
    fn single_group_single_node_matches_sequential_sgd() {
        let ds = dataset();
        let mut cfg = ThreadEngineConfig::new(1, 1, 8);
        cfg.iterations = 5;
        cfg.momentum = 0.9;
        let run = ThreadEngine::run(&cfg, Arc::clone(&ds));

        // Sequential reference with identical sampling and solver.
        let mut mrng = TensorRng::new(cfg.seed);
        let mut model = scidl_nn::arch::hep_small(&mut mrng);
        let block_sizes: Vec<usize> = model.param_blocks().iter().map(|b| b.len()).collect();
        let mut sampler = BatchSampler::for_node(ds.len(), 8, cfg.seed, 0, 1);
        let mut solvers: Vec<Sgd> = block_sizes.iter().map(|_| Sgd::new(cfg.lr, 0.9)).collect();
        let mut flat = model.flat_params();
        for _ in 0..cfg.iterations {
            model.set_flat_params(&flat);
            let idx = sampler.next_batch();
            let (_, grads) = hep_gradient(&mut model, &ds, &idx);
            let mut off = 0;
            for (i, &len) in block_sizes.iter().enumerate() {
                solvers[i].step_block(0, &mut flat[off..off + len], &grads[off..off + len]);
                off += len;
            }
        }
        assert_eq!(run.final_params.len(), flat.len());
        let max_err = run
            .final_params
            .iter()
            .zip(&flat)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 1e-6, "thread engine diverges from SGD by {max_err}");
        assert_eq!(run.mean_staleness, 0.0);
    }

    #[test]
    fn group_of_four_nodes_matches_single_node_big_batch() {
        // Data-parallel equivalence: 4 nodes × batch 2 with all-reduce
        // must equal 1 node × batch 8 *if* they see the same images. We
        // verify the weaker, architecture-level property that gradients
        // averaged over the group produce a valid converging run and all
        // nodes stay in sync (same final params from the bank).
        let ds = dataset();
        let mut cfg = ThreadEngineConfig::new(1, 4, 8);
        cfg.iterations = 6;
        let run = ThreadEngine::run(&cfg, Arc::clone(&ds));
        assert_eq!(run.updates, 6);
        assert_eq!(run.curve.len(), 6);
        assert!(run.final_params.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn hybrid_groups_interleave_and_apply_all_updates() {
        let ds = dataset();
        let mut cfg = ThreadEngineConfig::new(3, 2, 6);
        cfg.iterations = 8;
        let run = ThreadEngine::run(&cfg, Arc::clone(&ds));
        assert_eq!(run.updates, 3 * 8);
        assert_eq!(run.curve.len(), 3 * 8);
        assert!(run.final_params.iter().all(|p| p.is_finite()));
        // Histogram accounts for every update.
        assert_eq!(run.staleness_histogram.iter().sum::<u64>(), 24);
    }

    #[test]
    fn hybrid_staleness_is_positive_with_multiple_groups() {
        let ds = dataset();
        let mut cfg = ThreadEngineConfig::new(4, 1, 4);
        cfg.iterations = 12;
        let run = ThreadEngine::run(&cfg, Arc::clone(&ds));
        // With 4 free-running groups, updates from other groups land
        // between a group's read and write essentially always.
        assert!(
            run.mean_staleness > 0.5,
            "expected real staleness, got {}",
            run.mean_staleness
        );
        // The histogram's non-zero buckets dominate.
        let zero = run.staleness_histogram[0];
        let total: u64 = run.staleness_histogram.iter().sum();
        assert!(zero < total, "some updates must be stale");
    }

    #[test]
    fn failed_group_leaves_others_running() {
        let ds = dataset();
        let mut cfg = ThreadEngineConfig::new(3, 2, 6);
        cfg.iterations = 10;
        cfg.fail_group_at = Some((1, 3)); // group 1 dies at iteration 3
        let run = ThreadEngine::run(&cfg, Arc::clone(&ds));
        // Two healthy groups × 10 + the failed group's 3 updates.
        assert_eq!(run.updates, 2 * 10 + 3);
        assert!(run.final_params.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn adam_at_the_parameter_servers_converges() {
        let ds = Arc::new(HepDataset::generate(HepConfig::small(), 128, 79));
        let mut cfg = ThreadEngineConfig::new(2, 1, 16);
        cfg.iterations = 30;
        cfg.lr = 1e-3;
        cfg.adam = true;
        let run = ThreadEngine::run(&cfg, ds);
        assert_eq!(run.updates, 60);
        assert!(run.final_params.iter().all(|p| p.is_finite()));
        let pts = &run.curve.points;
        let first: f32 = pts[..6].iter().map(|p| p.1).sum::<f32>() / 6.0;
        let last: f32 = pts[pts.len() - 6..].iter().map(|p| p.1).sum::<f32>() / 6.0;
        assert!(last < first, "ADAM-at-PS should learn: {first} → {last}");
    }

    #[test]
    fn generic_engine_trains_resnet_on_threads() {
        let ds = dataset();
        let mut cfg = ThreadEngineConfig::new(2, 1, 8);
        cfg.iterations = 4;
        let data = Arc::clone(&ds);
        let run = ThreadEngine::run_with(
            &cfg,
            ds.len(),
            |seed| {
                let mut rng = TensorRng::new(seed);
                scidl_nn::residual::resnet_small(3, 2, &mut rng)
            },
            move |model, indices| hep_gradient(model, &data, indices),
        );
        assert_eq!(run.updates, 8);
        assert!(run.final_params.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn training_loss_decreases() {
        let ds = Arc::new(HepDataset::generate(HepConfig::small(), 128, 78));
        let mut cfg = ThreadEngineConfig::new(1, 2, 16);
        cfg.iterations = 60;
        cfg.lr = 4e-3;
        cfg.momentum = 0.8;
        let run = ThreadEngine::run(&cfg, ds);
        let pts = &run.curve.points;
        let first: f32 = pts[..8].iter().map(|p| p.1).sum::<f32>() / 8.0;
        let last: f32 = pts[pts.len() - 8..].iter().map(|p| p.1).sum::<f32>() / 8.0;
        assert!(last < first, "loss should fall: {first} → {last}");
    }
}
