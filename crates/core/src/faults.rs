//! Fault-injection plans for the training engines.
//!
//! The plan type itself lives in `scidl-cluster` (the simulator consumes
//! it too); this module re-exports it alongside convenience constructors
//! for the thread-engine scenarios the tests and examples use. See
//! [`crate::thread_engine::ThreadEngineConfig::faults`] and
//! `scidl_cluster::SimConfig::faults` for the injection points.

pub use scidl_cluster::faults::{
    FaultPlan, GroupCrash, MessageDelay, NodeCrash, PsCrash, Recovery, Straggler,
};

/// A plan that kills `group` at `iteration` and never repairs it — the
/// seed engine's `fail_group_at` behaviour (Sec. VIII-A baseline).
pub fn kill_group(group: usize, iteration: usize) -> FaultPlan {
    FaultPlan::none().with_group_crash(group, iteration)
}

/// A plan that kills `group` at `iteration` and brings it back after
/// `mttr_iters` iterations' worth of wall-clock time (thread engine) or
/// `mttr_secs` simulated seconds (cluster sim).
pub fn kill_and_recover_group(
    group: usize,
    iteration: usize,
    mttr_iters: u64,
    mttr_secs: f64,
) -> FaultPlan {
    FaultPlan::none()
        .with_group_crash(group, iteration)
        .with_recovery(mttr_iters, mttr_secs)
}

/// A plan that kills rank `rank` of `group` at `iteration` and never
/// repairs it. In the thread engine's bucketed-overlap mode the group's
/// survivors hit the dead ring neighbour mid-bucket and abort with a
/// `CommError` (Sec. VIII-A: a synchronous group dies with its first
/// node).
pub fn kill_node(group: usize, rank: usize, iteration: usize) -> FaultPlan {
    FaultPlan::none().with_node_crash(group, rank, iteration)
}

/// A plan that crashes PS shard `shard` after it has served
/// `after_requests` requests; the supervisor (thread engine) or the
/// repair model (sim, `repair_secs`) brings it back.
pub fn kill_ps_shard(shard: usize, after_requests: u64, repair_secs: f64) -> FaultPlan {
    FaultPlan::none().with_ps_crash(shard, after_requests, repair_secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_the_expected_plans() {
        let p = kill_group(1, 3);
        assert_eq!(p.group_crash_at(1), Some(3));
        assert!(p.recovery.is_none());

        let p = kill_and_recover_group(0, 2, 4, 9.0);
        assert_eq!(p.group_crash_at(0), Some(2));
        assert_eq!(p.recovery.unwrap().mttr_iters, 4);

        let p = kill_ps_shard(2, 50, 1.5);
        assert_eq!(p.ps_crash_for_shard(2).unwrap().after_requests, 50);
        assert!(p.group_crash_at(0).is_none());
    }
}
