//! Fault-injection plans for the training engines.
//!
//! The plan type itself lives in `scidl-cluster` (the simulator consumes
//! it too); this module re-exports it alongside convenience constructors
//! for the thread-engine scenarios the tests and examples use. See
//! [`crate::thread_engine::ThreadEngineConfig::faults`] and
//! `scidl_cluster::SimConfig::faults` for the injection points.

pub use scidl_cluster::faults::{
    CorruptSwap, FaultPlan, GroupCrash, MessageDelay, NodeCrash, PsCrash, Recovery, SlowWorker,
    Straggler, WorkerCrash,
};

/// A plan that kills `group` at `iteration` and never repairs it — the
/// seed engine's `fail_group_at` behaviour (Sec. VIII-A baseline).
pub fn kill_group(group: usize, iteration: usize) -> FaultPlan {
    FaultPlan::none().with_group_crash(group, iteration)
}

/// A plan that kills `group` at `iteration` and brings it back after
/// `mttr_iters` iterations' worth of wall-clock time (thread engine) or
/// `mttr_secs` simulated seconds (cluster sim).
pub fn kill_and_recover_group(
    group: usize,
    iteration: usize,
    mttr_iters: u64,
    mttr_secs: f64,
) -> FaultPlan {
    FaultPlan::none()
        .with_group_crash(group, iteration)
        .with_recovery(mttr_iters, mttr_secs)
}

/// A plan that kills rank `rank` of `group` at `iteration` and never
/// repairs it. In the thread engine's bucketed-overlap mode the group's
/// survivors hit the dead ring neighbour mid-bucket and abort with a
/// `CommError` (Sec. VIII-A: a synchronous group dies with its first
/// node).
pub fn kill_node(group: usize, rank: usize, iteration: usize) -> FaultPlan {
    FaultPlan::none().with_node_crash(group, rank, iteration)
}

/// A plan that crashes PS shard `shard` after it has served
/// `after_requests` requests; the supervisor (thread engine) or the
/// repair model (sim, `repair_secs`) brings it back.
pub fn kill_ps_shard(shard: usize, after_requests: u64, repair_secs: f64) -> FaultPlan {
    FaultPlan::none().with_ps_crash(shard, after_requests, repair_secs)
}

/// A plan that kills serving worker `worker` mid-batch once it has
/// dispatched `after_batches` batches. The threaded server's supervisor
/// re-queues the in-flight requests and respawns the slot; the serving
/// simulator charges `respawn_secs` of downtime.
pub fn crash_worker(worker: usize, after_batches: u64, respawn_secs: f64) -> FaultPlan {
    FaultPlan::none().with_worker_crash(worker, after_batches, respawn_secs)
}

/// The canonical serving-chaos scenario the acceptance criterion and the
/// chaos smoke run: one worker crash, one straggling worker and one
/// corrupt hot-swap, all in a single plan that drives the threaded
/// server and the virtual-time serving simulator identically.
pub fn serving_chaos() -> FaultPlan {
    FaultPlan::none()
        .with_worker_crash(0, 3, 0.05)
        .with_slow_worker(1, 2, 6, 3.0)
        .with_corrupt_swap(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_helpers_build_the_expected_plans() {
        let p = crash_worker(1, 4, 0.25);
        assert_eq!(p.worker_crash_for(1).unwrap().after_batches, 4);
        assert!(p.has_serving_faults());

        let p = serving_chaos();
        assert!(p.worker_crash_for(0).is_some());
        assert!(p.slow_worker_factor(1, 3) > 1.0);
        assert!(p.swap_is_corrupt(0) && !p.swap_is_corrupt(1));
    }

    #[test]
    fn helpers_build_the_expected_plans() {
        let p = kill_group(1, 3);
        assert_eq!(p.group_crash_at(1), Some(3));
        assert!(p.recovery.is_none());

        let p = kill_and_recover_group(0, 2, 4, 9.0);
        assert_eq!(p.group_crash_at(0), Some(2));
        assert_eq!(p.recovery.unwrap().mttr_iters, 4);

        let p = kill_ps_shard(2, 50, 1.5);
        assert_eq!(p.ps_crash_for_shard(2).unwrap().after_requests, 50);
        assert!(p.group_crash_at(0).is_none());
    }
}
