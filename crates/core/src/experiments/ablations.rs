//! Ablations of the paper's design choices:
//!
//! * **Per-layer parameter servers** (Sec. III-E(c), Fig. 4): a single PS
//!   saturates as group count grows; sharding the model over per-layer
//!   servers removes the bottleneck.
//! * **Momentum under asynchrony** (Sec. II-B2a, ref. [31]): more groups
//!   inject implicit momentum, so the optimal explicit momentum falls.
//! * **Resilience** (Sec. VIII-A): one node failure kills a synchronous
//!   run; a hybrid run loses only the affected group.

use crate::sim_engine::{SimEngine, SimEngineConfig, SolverKind};
use crate::workloads::hep_workload;
use scidl_cluster::sim::{ClusterSim, SimConfig, Workload};
use scidl_cluster::JitterModel;
use scidl_data::{HepConfig, HepDataset};
use scidl_tensor::TensorRng;

/// One row of the PS-sharding ablation.
#[derive(Clone, Debug)]
pub struct PsAblationRow {
    /// Compute groups.
    pub groups: usize,
    /// Parameter servers used.
    pub num_ps: usize,
    /// Achieved throughput, images/second.
    pub images_per_sec: f64,
}

/// Sweeps group counts with a single PS vs a per-layer PS bank.
pub fn ps_ablation(
    workload: &Workload,
    nodes: usize,
    group_counts: &[usize],
    batch_per_group: usize,
    iterations: usize,
    seed: u64,
) -> Vec<PsAblationRow> {
    let mut rows = Vec::new();
    for &groups in group_counts {
        for num_ps in [1usize, 0] {
            let mut cfg = SimConfig::new(workload.clone(), nodes, groups, batch_per_group);
            cfg.iterations = iterations;
            cfg.num_ps = num_ps; // 0 → per-layer bank
            cfg.seed = seed ^ groups as u64;
            cfg.jitter = JitterModel::none();
            let r = ClusterSim::new(cfg.clone()).run();
            rows.push(PsAblationRow {
                groups,
                num_ps: if num_ps == 0 { cfg.workload.layers.len().clamp(1, 16) } else { 1 },
                images_per_sec: r.images_per_sec(),
            });
        }
    }
    rows
}

/// One row of the momentum–asynchrony grid.
#[derive(Clone, Debug)]
pub struct MomentumRow {
    /// Compute groups.
    pub groups: usize,
    /// Explicit SGD momentum.
    pub momentum: f32,
    /// Best smoothed training loss achieved.
    pub best_loss: f32,
}

/// Grid of (groups × momentum) training runs on the scaled-down HEP
/// problem, reporting the best smoothed loss each achieves in a fixed
/// update budget — the paper tunes momentum over {0.0, 0.4, 0.7} for
/// hybrid runs and finds lower explicit momentum compensates asynchrony.
pub fn momentum_ablation(
    group_counts: &[usize],
    momenta: &[f32],
    updates: usize,
    total_batch: usize,
    events: usize,
    seed: u64,
) -> Vec<MomentumRow> {
    let ds = HepDataset::generate(HepConfig::small(), events, seed);
    let timing = hep_workload();
    let mut rows = Vec::new();
    for &groups in group_counts {
        for &momentum in momenta {
            let mut cfg = SimEngineConfig::fig8(64.max(groups), groups, total_batch, timing.clone());
            cfg.iterations = updates / groups;
            cfg.solver = SolverKind::Sgd { momentum };
            cfg.lr = 2.5e-2;
            cfg.seed = seed ^ 0x40;
            let mut rng = TensorRng::new(seed ^ 0x31415);
            let mut model = scidl_nn::arch::hep_small(&mut rng);
            let r = SimEngine::run(&cfg, &mut model, &ds);
            rows.push(MomentumRow {
                groups,
                momentum,
                best_loss: r.curve.best_smoothed(6).unwrap_or(f32::INFINITY),
            });
        }
    }
    rows
}

/// One row of the architecture-choice ablation.
#[derive(Clone, Debug)]
pub struct ArchRow {
    /// Design label.
    pub label: &'static str,
    /// Scalar parameter count.
    pub params: u64,
    /// Model size in MiB (what every all-reduce and PS exchange moves).
    pub model_mib: f64,
    /// All-reduce seconds at 1024 nodes.
    pub allreduce_secs: f64,
    /// Weak-scaling speedup at 1024 nodes (batch 8/node, hybrid-4).
    /// Note: speedup flatters the dense head because its *single-node*
    /// baseline is crippled by the 1.5 s local solver pass; compare
    /// `images_per_sec_1024` for the absolute story.
    pub weak_speedup_1024: f64,
    /// Absolute throughput at 1024 nodes (images/second).
    pub images_per_sec_1024: f64,
}

/// The paper's design rule quantified (Sec. I: "not use layers with
/// large dense weights"): the published GAP + tiny-FC head versus a
/// VGG-style flattened dense head on the same conv stack.
pub fn arch_ablation(iterations: usize, seed: u64) -> Vec<ArchRow> {
    use crate::workloads::workload_for_network;
    use scidl_cluster::AriesModel;
    use scidl_nn::arch::{hep_dense_variant, hep_network, HEP_INPUT};

    let net = AriesModel::default();
    let mut rows = Vec::new();
    for (label, workload) in [
        ("paper design (GAP + 128->2 FC)", {
            let mut rng = TensorRng::new(seed);
            workload_for_network("hep", &hep_network(&mut rng), HEP_INPUT, 3.6e9, 12, 24.0, 1.6e9)
        }),
        ("dense head (flatten -> 4096)", {
            let mut rng = TensorRng::new(seed);
            workload_for_network("hep-dense", &hep_dense_variant(&mut rng), HEP_INPUT, 3.6e9, 12, 24.0, 1.6e9)
        }),
    ] {
        let weak = crate::experiments::weak_scaling(&workload, &[1024], &[4], 8, iterations, seed);
        rows.push(ArchRow {
            label,
            params: workload.params,
            model_mib: workload.model_bytes as f64 / (1024.0 * 1024.0),
            allreduce_secs: net.allreduce_time(1024, workload.model_bytes),
            weak_speedup_1024: weak[0].speedup,
            images_per_sec_1024: weak[0].images_per_sec,
        });
    }
    rows
}

/// Result of the failure-resilience experiment.
#[derive(Clone, Debug)]
pub struct ResilienceResult {
    /// Did the synchronous run die?
    pub sync_failed: bool,
    /// Iterations the synchronous run completed before dying.
    pub sync_iterations_done: usize,
    /// Groups the hybrid run (no recovery) finished with.
    pub hybrid_live_groups: usize,
    /// Total iterations hybrid groups completed despite the failure
    /// (no recovery — the paper's baseline observation).
    pub hybrid_iterations_done: usize,
    /// Total iterations with the recovery policy enabled: crashed groups
    /// rejoin from the PS bank after the MTTR.
    pub recovery_iterations_done: usize,
    /// Of those, iterations contributed *after* a recovery.
    pub recovered_iterations: usize,
    /// Groups alive at the end of the recovery-enabled run.
    pub recovery_live_groups: usize,
}

/// Injects an aggressive failure rate and compares three runs
/// (Sec. VIII-A): a synchronous run (one failure kills everything), a
/// hybrid run (only the affected group is lost), and a hybrid run with
/// the recovery policy (the lost group rejoins from the PS bank).
pub fn resilience(workload: &Workload, nodes: usize, groups: usize, seed: u64) -> ResilienceResult {
    let deadly = JitterModel {
        fail_rate_per_node_hour: 100.0,
        ..JitterModel::none()
    };
    let iterations = 400;

    let mut sync_cfg = SimConfig::new(workload.clone(), nodes, 1, 8 * nodes);
    sync_cfg.jitter = deadly.clone();
    sync_cfg.iterations = iterations;
    sync_cfg.seed = seed;
    let sync = ClusterSim::new(sync_cfg).run();

    let mut hyb_cfg = SimConfig::new(workload.clone(), nodes, groups, 8 * nodes / groups);
    hyb_cfg.jitter = deadly;
    hyb_cfg.iterations = iterations;
    hyb_cfg.seed = seed;
    let hyb = ClusterSim::new(hyb_cfg.clone()).run();

    // Same scenario, same seed, plus a recovery policy: repair takes
    // roughly ten mean iterations of wall-clock.
    let mut rec_cfg = hyb_cfg;
    let est_iter = rec_cfg.workload.node_iteration_time(&rec_cfg.knl, 8);
    rec_cfg.faults = scidl_cluster::FaultPlan::none().with_recovery(10, 10.0 * est_iter);
    let rec = ClusterSim::new(rec_cfg).run();

    ResilienceResult {
        sync_failed: sync.failure_at.is_some() && sync.live_groups == 0,
        sync_iterations_done: sync.iter_times[0].len(),
        hybrid_live_groups: hyb.live_groups,
        hybrid_iterations_done: hyb.iter_times.iter().map(|v| v.len()).sum(),
        recovery_iterations_done: rec.iter_times.iter().map(|v| v.len()).sum(),
        recovered_iterations: rec.recovered_iterations,
        recovery_live_groups: rec.live_groups,
    }
}

/// Result of the gradient-compression ablation (Sec. VIII-B).
#[derive(Clone, Debug)]
pub struct CompressionResult {
    /// Final smoothed loss with full-precision all-reduce.
    pub loss_f32: f32,
    /// Final smoothed loss with 8-bit error-feedback all-reduce.
    pub loss_q8: f32,
    /// Bytes a rank sent per iteration at full precision.
    pub bytes_f32: usize,
    /// Bytes a rank sent per iteration compressed.
    pub bytes_q8: usize,
}

/// Trains the scaled-down HEP classifier data-parallel over `ranks`
/// threads twice — once averaging gradients in f32, once through the
/// 8-bit error-feedback compressed all-reduce — and compares convergence
/// and traffic. This is the experiment Sec. VIII-B says is "poorly
/// understood … for scientific datasets".
pub fn compression_ablation(
    ranks: usize,
    iterations: usize,
    batch_per_rank: usize,
    events: usize,
    seed: u64,
) -> CompressionResult {
    use scidl_comm::{CommWorld, CompressedAllReduce};
    use scidl_nn::network::Model;
    use scidl_nn::Solver;
    use std::sync::Arc;

    let ds = Arc::new(HepDataset::generate(HepConfig::small(), events, seed));

    let run = |compressed: bool| -> (f32, usize) {
        let comms = CommWorld::new(ranks);
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                let ds = Arc::clone(&ds);
                std::thread::spawn(move || {
                    let mut mrng = TensorRng::new(seed ^ 0xC0);
                    let mut model = scidl_nn::arch::hep_small(&mut mrng);
                    let mut sampler = scidl_data::BatchSampler::for_node(
                        ds.len(),
                        batch_per_rank,
                        seed,
                        rank,
                        ranks,
                    );
                    let mut solver = scidl_nn::Sgd::new(4e-3, 0.8);
                    let sizes: Vec<usize> =
                        model.param_blocks().iter().map(|b| b.len()).collect();
                    let mut flat = model.flat_params();
                    let mut state = CompressedAllReduce::new();
                    let mut losses = Vec::new();
                    let mut bytes = 0usize;
                    for _ in 0..iterations {
                        model.set_flat_params(&flat);
                        let idx = sampler.next_batch();
                        let (loss, mut grads) =
                            crate::task::hep_gradient(&mut model, &ds, &idx);
                        if compressed {
                            bytes = state.allreduce_mean(&comm, &mut grads);
                        } else {
                            comm.allreduce_mean(&mut grads);
                            bytes = grads.len() * 4;
                        }
                        losses.push(loss);
                        let mut off = 0;
                        for (i, &len) in sizes.iter().enumerate() {
                            solver.step_block(i, &mut flat[off..off + len], &grads[off..off + len]);
                            off += len;
                        }
                    }
                    let tail = losses.len().saturating_sub(6);
                    let final_loss =
                        losses[tail..].iter().sum::<f32>() / (losses.len() - tail) as f32;
                    (final_loss, bytes)
                })
            })
            .collect();
        let results: Vec<(f32, usize)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results[0]
    };

    let (loss_f32, bytes_f32) = run(false);
    let (loss_q8, bytes_q8) = run(true);
    CompressionResult { loss_f32, loss_q8, bytes_f32, bytes_q8 }
}

/// One row of the topology-placement ablation (Fig. 3).
#[derive(Clone, Debug)]
pub struct PlacementRow {
    /// Placement label.
    pub label: &'static str,
    /// Electrical groups the compute group spans.
    pub groups_spanned: usize,
    /// All-reduce seconds for the HEP model.
    pub allreduce_secs: f64,
}

/// Compares the ideal contiguous placement of Fig. 3 against a
/// topology-oblivious scattered placement for a compute group of
/// `nodes` nodes on a `machine_nodes`-node machine.
pub fn placement_ablation(nodes: usize, machine_nodes: usize, model_bytes: u64, seed: u64) -> Vec<PlacementRow> {
    use scidl_cluster::topology::{allreduce_time_placed, Dragonfly, Placement};
    let fly = Dragonfly::default();
    let net = scidl_cluster::AriesModel::default();
    let contiguous = Placement::contiguous(nodes, &fly);
    let scattered = Placement::scattered(nodes, machine_nodes, &fly, seed);
    vec![
        PlacementRow {
            label: "contiguous (Fig. 3)",
            groups_spanned: contiguous.groups_spanned(),
            allreduce_secs: allreduce_time_placed(&net, &fly, &contiguous, model_bytes),
        },
        PlacementRow {
            label: "scattered",
            groups_spanned: scattered.groups_spanned(),
            allreduce_secs: allreduce_time_placed(&net, &fly, &scattered, model_bytes),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_layer_ps_beats_single_ps_at_high_group_counts() {
        let rows = ps_ablation(&hep_workload(), 256, &[16], 256, 8, 3);
        let single = rows.iter().find(|r| r.num_ps == 1).unwrap();
        let sharded = rows.iter().find(|r| r.num_ps > 1).unwrap();
        assert!(
            sharded.images_per_sec >= single.images_per_sec,
            "sharded {} vs single {}",
            sharded.images_per_sec,
            single.images_per_sec
        );
    }

    #[test]
    fn momentum_grid_produces_finite_losses() {
        let rows = momentum_ablation(&[1, 4], &[0.0, 0.7], 12, 32, 128, 5);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.best_loss.is_finite()));
    }

    #[test]
    fn resilience_matches_paper_story() {
        let r = resilience(&hep_workload(), 64, 4, 9);
        assert!(r.sync_failed, "sync run should die under heavy failure rate");
        assert_eq!(r.hybrid_live_groups, 3, "hybrid should lose exactly one group");
        assert!(r.hybrid_iterations_done > r.sync_iterations_done);
        // Recovery recoups the crashed group's remaining iterations.
        assert!(
            r.recovery_iterations_done > r.hybrid_iterations_done,
            "recovery {} should beat no-recovery {}",
            r.recovery_iterations_done,
            r.hybrid_iterations_done
        );
        assert!(r.recovered_iterations > 0);
        assert_eq!(
            r.recovery_iterations_done - r.hybrid_iterations_done,
            r.recovered_iterations,
            "the gain is exactly the recovered iterations"
        );
    }

    #[test]
    fn dense_head_pays_in_model_size_and_scaling() {
        let rows = arch_ablation(6, 3);
        let paper = &rows[0];
        let dense = &rows[1];
        assert!(dense.params > 100 * paper.params, "dense head should dwarf the model");
        assert!(dense.allreduce_secs > 10.0 * paper.allreduce_secs);
        assert!(
            dense.images_per_sec_1024 < 0.5 * paper.images_per_sec_1024,
            "dense head should cost real throughput: {} vs {}",
            dense.images_per_sec_1024,
            paper.images_per_sec_1024
        );
    }

    #[test]
    fn compressed_training_converges_with_quarter_traffic() {
        let r = compression_ablation(2, 25, 8, 128, 7);
        assert!(r.bytes_q8 * 3 < r.bytes_f32, "compression should shrink traffic ~4x");
        assert!(r.loss_q8.is_finite() && r.loss_f32.is_finite());
        // Error feedback keeps convergence close to full precision.
        assert!(
            r.loss_q8 < r.loss_f32 + 0.15,
            "compressed loss {} should track f32 loss {}",
            r.loss_q8,
            r.loss_f32
        );
    }

    #[test]
    fn placement_ablation_prefers_contiguous() {
        let rows = placement_ablation(1024, 9688, 2_411_724, 3);
        let good = &rows[0];
        let bad = &rows[1];
        assert!(good.groups_spanned < bad.groups_spanned);
        assert!(good.allreduce_secs < bad.allreduce_secs);
    }
}
