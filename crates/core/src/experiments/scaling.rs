//! Scaling studies (Figs. 6–7) and full-system throughput (Sec. VI-B3),
//! run on the calibrated cluster simulator.

use scidl_cluster::sim::{ClusterSim, SimConfig, Workload};

/// One point of a scaling curve.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Compute nodes.
    pub nodes: usize,
    /// Compute groups (1 = synchronous).
    pub groups: usize,
    /// Throughput in images/second.
    pub images_per_sec: f64,
    /// Speedup over the single-node baseline of the same study.
    pub speedup: f64,
    /// Mean update staleness.
    pub staleness: f64,
}

fn run_config(workload: &Workload, nodes: usize, groups: usize, batch_per_group: usize, iterations: usize, seed: u64) -> f64 {
    let mut cfg = SimConfig::new(workload.clone(), nodes, groups, batch_per_group);
    cfg.iterations = iterations;
    cfg.seed = seed;
    ClusterSim::new(cfg).run().images_per_sec()
}

/// Strong scaling (Fig. 6): fixed batch of `batch` per synchronous
/// group; the hybrid configurations assign each group a complete batch.
/// Returns one row per `(nodes, groups)` combination, with speedups
/// relative to a single-node run at the same batch.
pub fn strong_scaling(
    workload: &Workload,
    node_counts: &[usize],
    group_counts: &[usize],
    batch: usize,
    iterations: usize,
    seed: u64,
) -> Vec<ScalingRow> {
    let base_ips = run_config(workload, 1, 1, batch, iterations, seed);
    let mut rows = Vec::new();
    for &groups in group_counts {
        for &nodes in node_counts {
            if nodes < groups {
                continue;
            }
            let mut cfg = SimConfig::new(workload.clone(), nodes, groups, batch);
            cfg.iterations = iterations;
            cfg.seed = seed ^ (nodes as u64) << 8 ^ groups as u64;
            let r = ClusterSim::new(cfg).run();
            rows.push(ScalingRow {
                nodes,
                groups,
                images_per_sec: r.images_per_sec(),
                speedup: r.images_per_sec() / base_ips,
                staleness: r.mean_staleness,
            });
        }
    }
    rows
}

/// Weak scaling (Fig. 7): fixed batch per node (8 in the paper).
pub fn weak_scaling(
    workload: &Workload,
    node_counts: &[usize],
    group_counts: &[usize],
    batch_per_node: usize,
    iterations: usize,
    seed: u64,
) -> Vec<ScalingRow> {
    let base_ips = run_config(workload, 1, 1, batch_per_node, iterations, seed);
    let mut rows = Vec::new();
    for &groups in group_counts {
        for &nodes in node_counts {
            if nodes < groups {
                continue;
            }
            let per_group_nodes = nodes / groups;
            let batch_per_group = batch_per_node * per_group_nodes;
            let mut cfg = SimConfig::new(workload.clone(), nodes, groups, batch_per_group);
            cfg.iterations = iterations;
            cfg.seed = seed ^ (nodes as u64) << 8 ^ groups as u64;
            let r = ClusterSim::new(cfg).run();
            rows.push(ScalingRow {
                nodes,
                groups,
                images_per_sec: r.images_per_sec(),
                speedup: r.images_per_sec() / base_ips,
                staleness: r.mean_staleness,
            });
        }
    }
    rows
}

/// Full-system throughput (Sec. VI-B3).
#[derive(Clone, Debug)]
pub struct FullSystemResult {
    /// Peak system FLOP rate (PFLOP/s).
    pub peak_pflops: f64,
    /// Sustained system FLOP rate (PFLOP/s).
    pub sustained_pflops: f64,
    /// Speedup of sustained throughput over one node.
    pub speedup_vs_single: f64,
    /// Mean iteration seconds per group.
    pub mean_iter_secs: f64,
    /// Mean staleness.
    pub staleness: f64,
}

/// Runs the paper's full-system configuration: `nodes` compute nodes in
/// `groups` groups with `batch_per_group`, checkpointing every
/// `checkpoint_every` iterations (the climate number includes a snapshot
/// every 10 iterations).
pub fn full_system(
    workload: &Workload,
    nodes: usize,
    groups: usize,
    batch_per_group: usize,
    iterations: usize,
    checkpoint_every: usize,
    seed: u64,
) -> FullSystemResult {
    let mut cfg = SimConfig::new(workload.clone(), nodes, groups, batch_per_group);
    cfg.iterations = iterations;
    cfg.checkpoint_every = checkpoint_every;
    cfg.seed = seed;
    let r = ClusterSim::new(cfg).run();

    // Single-node baseline rate for the speedup quote (6173x / 7205x in
    // the paper).
    let single = {
        let mut c = SimConfig::new(workload.clone(), 1, 1, 8);
        c.iterations = iterations.min(10);
        c.seed = seed;
        ClusterSim::new(c).run()
    };

    let all_iters: Vec<f64> = r.iter_times.iter().flatten().copied().collect();
    let mean_iter = all_iters.iter().sum::<f64>() / all_iters.len().max(1) as f64;

    FullSystemResult {
        peak_pflops: r.peak_rate / 1e15,
        sustained_pflops: r.sustained_rate / 1e15,
        speedup_vs_single: r.sustained_rate / single.average_rate(),
        mean_iter_secs: mean_iter,
        staleness: r.mean_staleness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::hep_workload;

    #[test]
    fn strong_scaling_rows_cover_grid() {
        let rows = strong_scaling(&hep_workload(), &[1, 16, 64], &[1, 2], 256, 6, 3);
        // groups=2 is skipped at nodes=1.
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.speedup > 0.0));
    }

    #[test]
    fn single_node_speedup_is_one() {
        let rows = strong_scaling(&hep_workload(), &[1], &[1], 64, 6, 3);
        assert!((rows[0].speedup - 1.0).abs() < 0.25, "speedup {}", rows[0].speedup);
    }

    #[test]
    fn weak_scaling_grows_with_nodes() {
        let rows = weak_scaling(&hep_workload(), &[1, 16, 64], &[1], 8, 20, 5);
        assert!(rows[1].speedup > 8.0, "16 nodes: {}", rows[1].speedup);
        assert!(
            rows[2].speedup > rows[1].speedup * 2.0,
            "64 nodes {} vs 16 nodes {}",
            rows[2].speedup,
            rows[1].speedup
        );
    }

    #[test]
    fn full_system_reports_positive_rates() {
        let r = full_system(&hep_workload(), 256, 4, 512, 8, 0, 7);
        assert!(r.peak_pflops > 0.0);
        assert!(r.sustained_pflops > 0.0);
        assert!(r.peak_pflops >= r.sustained_pflops * 0.8);
        assert!(r.speedup_vs_single > 32.0);
    }
}
