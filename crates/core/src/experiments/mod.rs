//! One driver per table/figure of the paper (see DESIGN.md's
//! per-experiment index). The `scidl-bench` binaries are thin wrappers
//! that print these results as the paper's rows/series.

pub mod ablations;
pub mod convergence;
pub mod scaling;
pub mod science;

pub use ablations::{
    arch_ablation, compression_ablation, momentum_ablation, placement_ablation, ps_ablation,
    resilience,
};
pub use convergence::{fig8, Fig8Result};
pub use scaling::{
    full_system, strong_scaling, weak_scaling, FullSystemResult, ScalingRow,
};
pub use science::{
    climate_distributed, climate_science, hep_science, ClimateDistributedResult,
    ClimateScienceResult, HepScienceResult,
};
