//! Science results (Sec. VII): the HEP classifier vs the cut-based
//! benchmark (VII-A), and the semi-supervised climate detector (VII-B /
//! Fig. 9).

use crate::task::{hep_gradient, hep_scores};
use scidl_data::climate::{boxes_to_targets, ClimateConfig, ClimateDataset};
use scidl_data::hep::{tpr_at_fpr, tune_cuts, CutSelection};
use scidl_data::{BatchSampler, HepConfig, HepDataset};
use scidl_nn::arch::ClimateNet;
use scidl_nn::loss::{decode_detections, iou, Detection};
use scidl_nn::network::Model;
use scidl_nn::{Adam, Sgd, Solver};
use scidl_tensor::TensorRng;

/// Result of the HEP science study (Sec. VII-A).
#[derive(Clone, Debug)]
pub struct HepScienceResult {
    /// The tuned benchmark selection.
    pub cuts: CutSelection,
    /// FPR actually achieved by the cuts.
    pub baseline_fpr: f64,
    /// TPR of the cut-based benchmark at the working point.
    pub baseline_tpr: f64,
    /// TPR of the CNN at the same FPR budget.
    pub cnn_tpr: f64,
    /// `cnn_tpr / baseline_tpr` (paper: ≈1.7× at FPR = 0.02%).
    pub improvement: f64,
    /// The FPR budget used.
    pub fpr_budget: f64,
    /// Final training loss of the CNN.
    pub final_loss: f32,
}

/// Scale knobs for the HEP study.
#[derive(Clone, Debug)]
pub struct HepScienceScale {
    /// Training events.
    pub train_events: usize,
    /// Evaluation events.
    pub test_events: usize,
    /// Training iterations.
    pub iterations: usize,
    /// Minibatch size.
    pub batch: usize,
    /// FPR working point. The paper evaluates at 0.02% on 10M events; at
    /// laptop scale the budget must stay measurable, so the default is
    /// 2% on thousands of events — the *comparison* (CNN vs cuts at the
    /// same budget) is what carries over.
    pub fpr_budget: f64,
}

impl Default for HepScienceScale {
    fn default() -> Self {
        Self { train_events: 4000, test_events: 3000, iterations: 300, batch: 32, fpr_budget: 0.02 }
    }
}

/// Trains the CNN, tunes the cut benchmark and compares TPR at the fixed
/// FPR budget.
pub fn hep_science(scale: &HepScienceScale, seed: u64) -> HepScienceResult {
    let train = HepDataset::generate(HepConfig::small(), scale.train_events, seed);
    let test = HepDataset::generate(HepConfig::small(), scale.test_events, seed ^ 0xE57);

    // Benchmark analysis: tune on the training set, evaluate on test.
    let (cuts, _, _) = tune_cuts(&train, scale.fpr_budget);
    let (baseline_fpr, baseline_tpr) = scidl_data::hep::selection_rates(&cuts, &test);

    // CNN training (plain ADAM, as the paper's Sec. III-A).
    let mut rng = TensorRng::new(seed ^ 0x15C1);
    let mut model = scidl_nn::arch::hep_small(&mut rng);
    let mut solver = Adam::new(1e-3);
    let mut sampler = BatchSampler::new(train.len(), scale.batch, seed);
    let block_sizes: Vec<usize> = model.param_blocks().iter().map(|b| b.len()).collect();
    let mut flat = model.flat_params();
    let mut final_loss = f32::NAN;
    for _ in 0..scale.iterations {
        model.set_flat_params(&flat);
        let idx = sampler.next_batch();
        let (loss, grads) = hep_gradient(&mut model, &train, &idx);
        final_loss = loss;
        let mut off = 0;
        for (i, &len) in block_sizes.iter().enumerate() {
            solver.step_block(i, &mut flat[off..off + len], &grads[off..off + len]);
            off += len;
        }
    }
    model.set_flat_params(&flat);

    let idx: Vec<usize> = (0..test.len()).collect();
    let scores = hep_scores(&mut model, &test, &idx);
    let cnn_tpr = tpr_at_fpr(&scores, &test.labels, scale.fpr_budget);

    HepScienceResult {
        cuts,
        baseline_fpr,
        baseline_tpr,
        cnn_tpr,
        improvement: if baseline_tpr > 0.0 { cnn_tpr / baseline_tpr } else { f64::INFINITY },
        fpr_budget: scale.fpr_budget,
        final_loss,
    }
}

/// Result of the climate science study (Sec. VII-B / Fig. 9).
#[derive(Debug)]
pub struct ClimateScienceResult {
    /// Detection precision at the confidence threshold.
    pub precision: f64,
    /// Detection recall.
    pub recall: f64,
    /// Detections on the held-out frames.
    pub detections: usize,
    /// Ground-truth objects on the held-out frames.
    pub ground_truth: usize,
    /// Final reconstruction loss (the unsupervised path).
    pub final_recon_loss: f32,
    /// ASCII rendering of one test frame's TMQ channel with ground-truth
    /// (`#`) and predicted (`+`) boxes — our Fig. 9.
    pub rendering: String,
}

/// Scale knobs for the climate study.
#[derive(Clone, Debug)]
pub struct ClimateScienceScale {
    /// Training frames.
    pub train_frames: usize,
    /// Held-out frames.
    pub test_frames: usize,
    /// Training epochs over the frame set.
    pub epochs: usize,
    /// Minibatch frames.
    pub batch: usize,
    /// Fraction of labelled training frames (semi-supervised setting).
    pub labelled_fraction: f64,
    /// Confidence threshold for kept detections (paper: 0.8).
    pub confidence: f32,
}

impl Default for ClimateScienceScale {
    fn default() -> Self {
        Self {
            train_frames: 96,
            test_frames: 24,
            epochs: 30,
            batch: 8,
            labelled_fraction: 0.7,
            confidence: 0.8,
        }
    }
}

/// Trains the semi-supervised detector and evaluates box quality on
/// held-out frames.
pub fn climate_science(scale: &ClimateScienceScale, seed: u64) -> ClimateScienceResult {
    let cfg = ClimateConfig {
        labelled_fraction: scale.labelled_fraction,
        ..ClimateConfig::small()
    };
    let train = ClimateDataset::generate(cfg, scale.train_frames, seed);
    let test = ClimateDataset::generate(
        ClimateConfig { labelled_fraction: 1.0, ..cfg },
        scale.test_frames,
        seed ^ 0xC11,
    );

    let mut rng = TensorRng::new(seed ^ 0x5EED);
    let mut net = ClimateNet::small(&mut rng);
    net.lambda_recon = 0.5;
    // Positive cells are rare on the coarse grid; weight them up so the
    // confidence head learns within a laptop-scale epoch budget.
    net.det_loss.lambda_obj = 8.0;
    let mut solver = Sgd::new(0.008, 0.9);
    let grid = net.grid_for(train.samples[0].image.shape()).h;
    let classes = net.classes();

    let mut final_recon = f32::NAN;
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut orng = TensorRng::new(seed ^ 0x0D0);
    for _epoch in 0..scale.epochs {
        // Simple reshuffle each epoch.
        for i in (1..order.len()).rev() {
            let j = orng.below(i + 1);
            order.swap(i, j);
        }
        for chunk in order.chunks(scale.batch) {
            let (batch, boxes) = train.gather(chunk);
            let labelled = boxes.iter().any(|b| !b.is_empty());
            net.zero_grads();
            let (_, recon) = if labelled {
                let targets = boxes_to_targets(&boxes, grid, classes);
                net.forward_backward(&batch, Some(&targets))
            } else {
                net.forward_backward(&batch, None)
            };
            final_recon = recon;
            // Per-block gradient-norm clipping keeps the momentum-SGD
            // stable on the mixed detection + reconstruction objective.
            for b in net.param_blocks_mut() {
                scidl_tensor::ops::clip_norm(b.grad.data_mut(), 1.0);
            }
            solver.step_model(&mut net);
        }
    }

    // Evaluation: decode detections and match against ground truth.
    let mut tp = 0usize;
    let mut n_det = 0usize;
    let mut n_gt = 0usize;
    let mut rendering = String::new();
    for (i, sample) in test.samples.iter().enumerate() {
        let out = net.forward(&sample.image);
        let dets = decode_detections(&out.conf, &out.class, &out.bbox, scale.confidence);
        n_det += dets.len();
        n_gt += sample.boxes.len();
        let mut used = vec![false; dets.len()];
        for gt in &sample.boxes {
            let gt_det = Detection {
                item: 0,
                class: gt.class,
                confidence: 1.0,
                cx: gt.cx,
                cy: gt.cy,
                w: gt.w,
                h: gt.h,
            };
            if let Some((j, _)) = dets
                .iter()
                .enumerate()
                .filter(|(j, d)| !used[*j] && iou(d, &gt_det) > 0.1)
                .map(|(j, d)| (j, iou(d, &gt_det)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            {
                used[j] = true;
                tp += 1;
            }
        }
        if i == 0 {
            rendering = render_frame(sample, &dets);
        }
    }

    ClimateScienceResult {
        precision: if n_det > 0 { tp as f64 / n_det as f64 } else { 0.0 },
        recall: if n_gt > 0 { tp as f64 / n_gt as f64 } else { 0.0 },
        detections: n_det,
        ground_truth: n_gt,
        final_recon_loss: final_recon,
        rendering,
    }
}

/// Result of a distributed (simulated-time) climate training run — the
/// paper's actual headline workload: the semi-supervised network trained
/// by the hybrid architecture.
#[derive(Debug)]
pub struct ClimateDistributedResult {
    /// Combined (detection + reconstruction) loss per group update over
    /// simulated time.
    pub curve: crate::metrics::LossCurve,
    /// Mean gradient staleness.
    pub mean_staleness: f64,
    /// Simulated seconds.
    pub total_time: f64,
    /// Updates applied.
    pub updates: usize,
}

/// Trains the scaled-down climate network with the hybrid engine
/// (`groups` compute groups over simulated Cori time, real gradients)
/// on a mixed labelled/unlabelled frame set.
pub fn climate_distributed(
    groups: usize,
    updates: usize,
    frames: usize,
    batch_per_group: usize,
    seed: u64,
) -> ClimateDistributedResult {
    use crate::sim_engine::{SimEngine, SimEngineConfig, SolverKind};
    use crate::workloads::climate_workload;

    let cfg_data = ClimateConfig { labelled_fraction: 0.7, ..ClimateConfig::small() };
    let ds = ClimateDataset::generate(cfg_data, frames, seed);

    let mut rng = TensorRng::new(seed ^ 0xD157);
    let mut net = ClimateNet::small(&mut rng);
    net.det_loss.lambda_obj = 8.0;
    net.lambda_recon = 0.5;
    let grid = net.grid_for(ds.samples[0].image.shape()).h;
    let classes = net.classes();

    let mut ecfg = SimEngineConfig::fig8(64.max(groups), groups, batch_per_group * groups, climate_workload());
    ecfg.iterations = (updates / groups).max(1);
    ecfg.solver = SolverKind::Sgd { momentum: 0.9 };
    ecfg.auto_momentum = true; // correct for asynchrony per [31]
    ecfg.lr = 0.008;
    ecfg.seed = seed;

    let summary = SimEngine::run_with(&ecfg, &mut net, ds.len(), |net, indices| {
        let (batch, boxes) = ds.gather(indices);
        let labelled = boxes.iter().any(|b| !b.is_empty());
        net.zero_grads();
        let (parts, recon) = if labelled {
            let targets = boxes_to_targets(&boxes, grid, classes);
            net.forward_backward(&batch, Some(&targets))
        } else {
            net.forward_backward(&batch, None)
        };
        for b in net.param_blocks_mut() {
            scidl_tensor::ops::clip_norm(b.grad.data_mut(), 1.0);
        }
        (parts.total() + recon, net.flat_grads())
    });

    ClimateDistributedResult {
        curve: summary.curve,
        mean_staleness: summary.mean_staleness,
        total_time: summary.total_time,
        updates: summary.updates,
    }
}

/// ASCII rendering of a frame's TMQ channel with ground-truth (`#`) and
/// predicted (`+`) box outlines — the terminal version of Fig. 9.
pub fn render_frame(sample: &scidl_data::ClimateSample, dets: &[Detection]) -> String {
    const W: usize = 64;
    const H: usize = 32;
    let img = &sample.image;
    let s = img.shape().h;
    // Downsample TMQ to H x W with max pooling, then map to shades.
    let mut grid = vec![0.0f32; W * H];
    for y in 0..H {
        for x in 0..W {
            let mut m = f32::NEG_INFINITY;
            for sy in (y * s / H)..(((y + 1) * s / H).max(y * s / H + 1)) {
                for sx in (x * s / W)..(((x + 1) * s / W).max(x * s / W + 1)) {
                    m = m.max(img.at(0, scidl_data::climate::channel::TMQ, sy, sx));
                }
            }
            grid[y * W + x] = m;
        }
    }
    let lo = grid.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = grid.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let shades = [' ', '.', ':', '-', '=', 'o', 'O', '@'];
    let mut chars: Vec<char> = grid
        .iter()
        .map(|&v| {
            let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.0 };
            shades[((t * (shades.len() - 1) as f32).round() as usize).min(shades.len() - 1)]
        })
        .collect();

    let mut draw_box = |cx: f32, cy: f32, w: f32, h: f32, ch: char| {
        let x0 = (((cx - w / 2.0) * W as f32) as isize).clamp(0, W as isize - 1) as usize;
        let x1 = (((cx + w / 2.0) * W as f32) as isize).clamp(0, W as isize - 1) as usize;
        let y0 = (((cy - h / 2.0) * H as f32) as isize).clamp(0, H as isize - 1) as usize;
        let y1 = (((cy + h / 2.0) * H as f32) as isize).clamp(0, H as isize - 1) as usize;
        for x in x0..=x1 {
            chars[y0 * W + x] = ch;
            chars[y1 * W + x] = ch;
        }
        for y in y0..=y1 {
            chars[y * W + x0] = ch;
            chars[y * W + x1] = ch;
        }
    };
    for b in &sample.boxes {
        draw_box(b.cx, b.cy, b.w, b.h, '#');
    }
    for d in dets {
        draw_box(d.cx, d.cy, d.w, d.h, '+');
    }

    let mut out = String::with_capacity((W + 1) * H);
    for y in 0..H {
        out.extend(&chars[y * W..(y + 1) * W]);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hep_science_cnn_beats_cuts_at_small_scale() {
        let scale = HepScienceScale {
            train_events: 700,
            test_events: 700,
            iterations: 120,
            batch: 24,
            fpr_budget: 0.05,
        };
        let r = hep_science(&scale, 3);
        assert!(r.baseline_fpr <= 0.08, "cuts fpr {}", r.baseline_fpr);
        assert!(r.baseline_tpr > 0.02, "cuts should catch some signal: {}", r.baseline_tpr);
        assert!(
            r.cnn_tpr > r.baseline_tpr,
            "CNN ({}) should beat cuts ({})",
            r.cnn_tpr,
            r.baseline_tpr
        );
        assert!(r.final_loss < 0.69, "training should improve on chance: {}", r.final_loss);
    }

    #[test]
    fn climate_science_learns_to_detect() {
        let scale = ClimateScienceScale {
            train_frames: 32,
            test_frames: 8,
            epochs: 10,
            batch: 8,
            labelled_fraction: 0.9,
            confidence: 0.6,
        };
        let r = climate_science(&scale, 5);
        assert!(r.ground_truth > 0);
        assert!(r.final_recon_loss.is_finite());
        assert!(!r.rendering.is_empty());
        // At this tiny scale we only require the detector to produce
        // *some* signal: either detections with nonzero precision or
        // none at all (conservative network). The full-scale bench
        // asserts real precision/recall.
        if r.detections > 0 {
            assert!(r.precision >= 0.0 && r.precision <= 1.0);
        }
    }

    #[test]
    fn climate_distributed_hybrid_training_converges() {
        let r = climate_distributed(2, 16, 32, 8, 11);
        assert_eq!(r.updates, 16);
        assert!(r.mean_staleness > 0.0, "two groups must interleave");
        assert!(r.total_time > 0.0);
        let pts = &r.curve.points;
        assert!(pts.iter().all(|p| p.1.is_finite()));
        let head: f32 = pts[..4].iter().map(|p| p.1).sum::<f32>() / 4.0;
        let tail: f32 = pts[pts.len() - 4..].iter().map(|p| p.1).sum::<f32>() / 4.0;
        assert!(tail < head, "combined loss should fall: {head} -> {tail}");
    }

    #[test]
    fn rendering_contains_gt_boxes() {
        let ds = ClimateDataset::generate(
            ClimateConfig { events_per_frame: 2.0, labelled_fraction: 1.0, ..ClimateConfig::small() },
            3,
            9,
        );
        let with_boxes = ds.samples.iter().find(|s| !s.boxes.is_empty()).unwrap();
        let s = render_frame(with_boxes, &[]);
        assert!(s.contains('#'), "rendering should outline ground truth");
        assert_eq!(s.lines().count(), 32);
    }
}
