//! Time-to-train study (Fig. 8): training loss vs wall-clock for a fixed
//! total batch, comparing the synchronous configuration against hybrid
//! runs with 2, 4 and 8 groups, with momentum tuned per asynchrony level.
//!
//! Real gradients on a scaled-down HEP problem; simulated wall-clock from
//! the calibrated Cori models (see `SimEngine`). The paper's readout:
//! the best hybrid reaches the target loss ≈1.66× faster than the best
//! synchronous run; the worst synchronous run is many times slower.

use crate::metrics::LossCurve;
use crate::sim_engine::{SimEngine, SimEngineConfig, SolverKind};
use crate::workloads::hep_workload;
use scidl_data::{HepConfig, HepDataset};
use scidl_tensor::TensorRng;

/// One run of the Fig. 8 study.
#[derive(Debug)]
pub struct Fig8Run {
    /// Label, e.g. `"sync (best)"` or `"hybrid-4"`.
    pub label: String,
    /// Group count.
    pub groups: usize,
    /// Loss trajectory over simulated seconds.
    pub curve: LossCurve,
    /// Simulated seconds to reach the target loss (smoothed), if reached.
    pub time_to_target: Option<f64>,
    /// Mean staleness.
    pub staleness: f64,
    /// Mean simulated seconds per iteration with the all-reduce fully
    /// exposed (overlap off).
    pub iter_secs: f64,
    /// Mean simulated seconds per iteration with the bucketed
    /// backward-overlapped all-reduce charged (overlap on). Lower than
    /// [`Fig8Run::iter_secs`] whenever there is communication to hide.
    pub iter_secs_overlap: f64,
}

/// The complete Fig. 8 result.
#[derive(Debug)]
pub struct Fig8Result {
    /// All runs.
    pub runs: Vec<Fig8Run>,
    /// The target loss used for the time-to-train readout.
    pub target_loss: f32,
    /// Speedup of the best hybrid over the best sync run (paper: ≈1.66×).
    pub best_hybrid_speedup: Option<f64>,
}

/// Study scale knobs (the defaults regenerate the figure; tests shrink).
#[derive(Clone, Debug)]
pub struct Fig8Scale {
    /// Virtual nodes (paper: 1024).
    pub nodes: usize,
    /// Total batch across the system (paper: 1024).
    pub total_batch: usize,
    /// Iterations per group for the synchronous run; hybrid runs get
    /// `iterations × groups / 1` scaled so every configuration sees the
    /// same number of *updates*.
    pub sync_iterations: usize,
    /// Training events in the scaled-down dataset.
    pub dataset_events: usize,
    /// Smoothing window for the time-to-target readout.
    pub smooth_window: usize,
    /// Train with the bucketed backward-overlapped all-reduce cost model
    /// (`SimEngineConfig::overlap_comm`). Gradients are
    /// timing-independent for the synchronous runs, so this moves the
    /// loss-vs-wall-clock curves left without changing their shape; the
    /// per-iteration columns ([`Fig8Run::iter_secs`] /
    /// [`Fig8Run::iter_secs_overlap`]) are always reported both ways.
    pub overlap_comm: bool,
}

impl Default for Fig8Scale {
    fn default() -> Self {
        Self {
            nodes: 1024,
            total_batch: 1024,
            sync_iterations: 150,
            dataset_events: 4096,
            smooth_window: 8,
            overlap_comm: false,
        }
    }
}

/// Runs the Fig. 8 study. `seed` controls data and jitter; the sync
/// configuration is run with two jitter seeds to produce the paper's
/// best/worst pair.
pub fn fig8(scale: &Fig8Scale, seed: u64) -> Fig8Result {
    let ds = HepDataset::generate(HepConfig::small(), scale.dataset_events, seed);
    let timing = hep_workload();

    let mut runs: Vec<Fig8Run> = Vec::new();

    let make_cfg = |groups: usize, jitter_seed: u64| {
        let mut cfg = SimEngineConfig::fig8(scale.nodes, groups, scale.total_batch, timing.clone());
        // Same number of model updates for every configuration.
        cfg.iterations = scale.sync_iterations / groups;
        cfg.lr = 1e-3;
        cfg.solver = SolverKind::Adam;
        cfg.seed = seed ^ jitter_seed;
        cfg.overlap_comm = scale.overlap_comm;
        cfg
    };

    // Per-iteration wall-clock, reported with the all-reduce exposed and
    // with the bucketed backward overlap charged — the overlap column of
    // the results table. Timing-only replay, so it is cheap to do both.
    let num_blocks = {
        use scidl_nn::network::Model;
        let mut rng = TensorRng::new(seed ^ 0xA11);
        scidl_nn::arch::hep_small(&mut rng).param_blocks().len()
    };
    let iter_secs_pair = |cfg: &SimEngineConfig| {
        let samples = cfg.iterations.clamp(1, 32);
        let mut seq = cfg.clone();
        seq.overlap_comm = false;
        let mut ovl = cfg.clone();
        ovl.overlap_comm = true;
        (
            SimEngine::mean_iteration_secs(&seq, num_blocks, samples),
            SimEngine::mean_iteration_secs(&ovl, num_blocks, samples),
        )
    };

    // Synchronous: best and worst of two seeds (the paper reports best
    // and worst of 3 runs of the same hyper-parameters).
    for (label, jseed) in [("sync (a)", 1u64), ("sync (b)", 2u64)] {
        let cfg = make_cfg(1, jseed);
        let (iter_secs, iter_secs_overlap) = iter_secs_pair(&cfg);
        let mut rng = TensorRng::new(seed ^ 0xA11);
        let mut model = scidl_nn::arch::hep_small(&mut rng);
        let r = SimEngine::run(&cfg, &mut model, &ds);
        runs.push(Fig8Run {
            label: label.into(),
            groups: 1,
            curve: r.curve,
            time_to_target: None,
            staleness: r.mean_staleness,
            iter_secs,
            iter_secs_overlap,
        });
    }

    for groups in [2usize, 4, 8] {
        let cfg = make_cfg(groups, 3);
        let (iter_secs, iter_secs_overlap) = iter_secs_pair(&cfg);
        let mut rng = TensorRng::new(seed ^ 0xA11);
        let mut model = scidl_nn::arch::hep_small(&mut rng);
        let r = SimEngine::run(&cfg, &mut model, &ds);
        runs.push(Fig8Run {
            label: format!("hybrid-{groups}"),
            groups,
            curve: r.curve,
            time_to_target: None,
            staleness: r.mean_staleness,
            iter_secs,
            iter_secs_overlap,
        });
    }

    // Target: a loss all healthy runs eventually reach — the upper-median
    // of the runs' best smoothed losses, relaxed by 10%. (`sorted[n/2]`
    // is the type-1 upper median; percentile(0.5) interpolates, so use
    // the rank that preserves the historical target.)
    let bests: Vec<f64> = runs
        .iter()
        .filter_map(|r| r.curve.best_smoothed(scale.smooth_window))
        .map(f64::from)
        .collect();
    let q = (bests.len() / 2) as f64 / (bests.len() - 1).max(1) as f64;
    let target_loss = (crate::metrics::percentile(&bests, q) * 1.1) as f32;

    for r in &mut runs {
        r.time_to_target = r.curve.time_to_loss(target_loss, scale.smooth_window);
    }

    let best_sync = runs
        .iter()
        .filter(|r| r.groups == 1)
        .filter_map(|r| r.time_to_target)
        .fold(None::<f64>, |acc, t| Some(acc.map_or(t, |a| a.min(t))));
    let best_hybrid = runs
        .iter()
        .filter(|r| r.groups > 1)
        .filter_map(|r| r.time_to_target)
        .fold(None::<f64>, |acc, t| Some(acc.map_or(t, |a| a.min(t))));

    let best_hybrid_speedup = match (best_sync, best_hybrid) {
        (Some(s), Some(h)) if h > 0.0 => Some(s / h),
        _ => None,
    };

    Fig8Result { runs, target_loss, best_hybrid_speedup }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Fig8Scale {
        Fig8Scale {
            nodes: 64,
            total_batch: 64,
            sync_iterations: 24,
            dataset_events: 256,
            smooth_window: 4,
            overlap_comm: false,
        }
    }

    #[test]
    fn fig8_produces_all_five_runs() {
        let r = fig8(&tiny_scale(), 5);
        assert_eq!(r.runs.len(), 5);
        let labels: Vec<&str> = r.runs.iter().map(|x| x.label.as_str()).collect();
        assert!(labels.contains(&"sync (a)"));
        assert!(labels.contains(&"hybrid-8"));
    }

    #[test]
    fn hybrid_runs_carry_staleness() {
        let r = fig8(&tiny_scale(), 7);
        for run in &r.runs {
            if run.groups == 1 {
                assert_eq!(run.staleness, 0.0, "{}", run.label);
            } else {
                assert!(run.staleness > 0.0, "{}", run.label);
            }
        }
    }

    #[test]
    fn all_configs_see_same_update_count() {
        let scale = tiny_scale();
        let r = fig8(&scale, 9);
        for run in &r.runs {
            let expect = (scale.sync_iterations / run.groups) * run.groups;
            assert_eq!(run.curve.len(), expect, "{}", run.label);
        }
    }

    #[test]
    fn overlap_column_is_lower_for_every_run() {
        // Every tiny-scale configuration keeps ≥ 4 ranks per group, so
        // the overlapped per-iteration wall-clock must beat sequential.
        let r = fig8(&tiny_scale(), 13);
        for run in &r.runs {
            assert!(run.iter_secs > 0.0, "{}", run.label);
            assert!(
                run.iter_secs_overlap < run.iter_secs,
                "{}: overlap {} should beat sequential {}",
                run.label,
                run.iter_secs_overlap,
                run.iter_secs
            );
        }
    }

    #[test]
    fn overlap_scale_runs_and_keeps_the_update_count() {
        let mut scale = tiny_scale();
        scale.overlap_comm = true;
        let r = fig8(&scale, 13);
        assert_eq!(r.runs.len(), 5);
        for run in &r.runs {
            let expect = (scale.sync_iterations / run.groups) * run.groups;
            assert_eq!(run.curve.len(), expect, "{}", run.label);
        }
    }

    #[test]
    fn losses_fall_over_each_run() {
        let r = fig8(&tiny_scale(), 11);
        for run in &r.runs {
            let pts = &run.curve.points;
            let head: f32 = pts[..4].iter().map(|p| p.1).sum::<f32>() / 4.0;
            let tail: f32 = pts[pts.len() - 4..].iter().map(|p| p.1).sum::<f32>() / 4.0;
            assert!(
                tail < head * 1.05,
                "{}: loss should not grow: {head} → {tail}",
                run.label
            );
        }
    }
}
