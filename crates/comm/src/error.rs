//! Error type for every cross-thread communication path in the crate.
//!
//! The seed implementation panicked (`expect`) whenever a peer thread
//! was gone — acceptable while failures were out of scope, fatal once
//! they are the point (Sec. VIII-A). Every operation that crosses a
//! thread boundary now returns [`CommResult`] so the caller — usually
//! the [`crate::supervisor`] — can decide between retry, respawn and
//! giving the failure back to the engine.

use std::fmt;
use std::time::Duration;

/// Result alias used across `scidl-comm`.
pub type CommResult<T> = Result<T, CommError>;

/// Why a communication operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// The peer's channel is closed: its thread exited or crashed.
    ChannelClosed {
        /// Which link failed (e.g. `"PS update"`, `"ring neighbour"`).
        context: &'static str,
    },
    /// No reply arrived before the deadline; the peer may be hung.
    Timeout {
        /// Which link timed out.
        context: &'static str,
        /// How long the caller waited.
        waited: Duration,
    },
    /// A buffer had the wrong length for the target shard.
    SizeMismatch {
        /// Which operation was rejected.
        context: &'static str,
        /// Length the shard expects.
        expected: usize,
        /// Length the caller supplied.
        got: usize,
    },
    /// A supervised operation failed even after respawn + retry.
    RetriesExhausted {
        /// Which operation gave up.
        context: &'static str,
        /// Attempts made (including the first).
        attempts: u32,
    },
    /// A peer thread panicked (observed at join time).
    ServerPanicked {
        /// Which server panicked.
        context: &'static str,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ChannelClosed { context } => {
                write!(f, "{context}: peer channel closed (thread gone)")
            }
            Self::Timeout { context, waited } => {
                write!(f, "{context}: no reply within {waited:?}")
            }
            Self::SizeMismatch { context, expected, got } => {
                write!(f, "{context}: length {got} does not match shard length {expected}")
            }
            Self::RetriesExhausted { context, attempts } => {
                write!(f, "{context}: failed after {attempts} attempts (respawns included)")
            }
            Self::ServerPanicked { context } => write!(f, "{context}: server thread panicked"),
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CommError::SizeMismatch { context: "PS update", expected: 4, got: 3 };
        assert!(e.to_string().contains("PS update"));
        assert!(e.to_string().contains('3') && e.to_string().contains('4'));
        let t = CommError::Timeout { context: "PS fetch", waited: Duration::from_millis(5) };
        assert!(t.to_string().contains("PS fetch"));
    }
}
