//! Endpoint-style asynchronous PS exchanges.
//!
//! MLSL uses *endpoints* — proxy threads/processes that drive
//! communication on behalf of an MPI rank so network transfers overlap
//! with compute (Sec. III-D). Our PS servers are already independent
//! threads; this module provides the client-side handle that makes the
//! overlap explicit: a root node *posts* its per-layer gradient exchange
//! and keeps computing, collecting the fresh model when it actually
//! needs it.
//!
//! Both posting and collecting return [`CommResult`]: a dead PS surfaces
//! as [`CommError::ChannelClosed`] instead of a panic, so an engine can
//! treat a lost exchange as a recoverable event (Sec. VIII-A).

use crate::error::{CommError, CommResult};
use crate::ps::{PsBank, PsReply};
use crossbeam::channel::Receiver;

/// An in-flight fork-join exchange with a [`PsBank`].
pub struct PendingExchange {
    receivers: Vec<Receiver<PsReply>>,
}

impl PendingExchange {
    /// Posts one gradient per block to the bank without blocking.
    pub fn post(bank: &PsBank, grads: Vec<Vec<f32>>) -> CommResult<Self> {
        if grads.len() != bank.len() {
            return Err(CommError::SizeMismatch {
                context: "PS exchange post",
                expected: bank.len(),
                got: grads.len(),
            });
        }
        let receivers = grads
            .into_iter()
            .enumerate()
            .map(|(i, g)| bank.server(i).update_async(g))
            .collect::<CommResult<_>>()?;
        Ok(Self { receivers })
    }

    /// True when every block's reply has already arrived.
    pub fn ready(&self) -> bool {
        self.receivers.iter().all(|r| !r.is_empty())
    }

    /// Blocks until all replies arrive, returning them in block order.
    pub fn wait(self) -> CommResult<Vec<PsReply>> {
        self.receivers
            .into_iter()
            .map(|r| {
                r.recv()
                    .map_err(|_| CommError::ChannelClosed { context: "PS exchange reply" })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ps::UpdateFn;

    fn sgd(lr: f32) -> UpdateFn {
        Box::new(move |p, g| {
            for (pi, gi) in p.iter_mut().zip(g) {
                *pi -= lr * gi;
            }
        })
    }

    #[test]
    fn post_then_wait_returns_all_blocks() {
        let bank = PsBank::spawn(vec![(vec![1.0], sgd(1.0)), (vec![2.0, 3.0], sgd(1.0))]);
        let pending = PendingExchange::post(&bank, vec![vec![1.0], vec![1.0, 1.0]]).unwrap();
        let replies = pending.wait().unwrap();
        assert_eq!(replies[0].params, vec![0.0]);
        assert_eq!(replies[1].params, vec![1.0, 2.0]);
    }

    #[test]
    fn overlap_with_compute() {
        let bank = PsBank::spawn(vec![(vec![0.0], sgd(1.0))]);
        let pending = PendingExchange::post(&bank, vec![vec![-1.0]]).unwrap();
        // Simulated compute while the exchange is in flight.
        let mut acc = 0.0f64;
        for i in 0..10_000 {
            acc += (i as f64).sqrt();
        }
        assert!(acc > 0.0);
        let replies = pending.wait().unwrap();
        assert_eq!(replies[0].params, vec![1.0]);
    }

    #[test]
    fn ready_becomes_true_after_service() {
        let bank = PsBank::spawn(vec![(vec![0.0], sgd(1.0))]);
        let pending = PendingExchange::post(&bank, vec![vec![1.0]]).unwrap();
        // Eventually the server replies.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !pending.ready() {
            assert!(std::time::Instant::now() < deadline, "PS never replied");
            std::thread::yield_now();
        }
        assert!(pending.ready());
        pending.wait().unwrap();
    }

    #[test]
    fn rejects_wrong_block_count() {
        let bank = PsBank::spawn(vec![(vec![0.0], sgd(1.0))]);
        match PendingExchange::post(&bank, vec![]) {
            Err(err) => {
                assert!(matches!(err, CommError::SizeMismatch { expected: 1, got: 0, .. }))
            }
            Ok(_) => panic!("mismatched block count must be rejected"),
        }
    }

    #[test]
    fn wait_reports_dead_server_instead_of_panicking() {
        let bank = PsBank::spawn(vec![(vec![0.0], sgd(1.0))]);
        bank.server(0).crash();
        // The crash races the post; whichever side fails, the outcome is
        // an error value, never a process abort.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match PendingExchange::post(&bank, vec![vec![1.0]]).and_then(|p| p.wait()) {
                Err(CommError::ChannelClosed { .. }) => break,
                Ok(_) | Err(_) => {
                    assert!(std::time::Instant::now() < deadline, "crash never observed");
                    std::thread::yield_now();
                }
            }
        }
    }
}
