//! Compressed gradient exchange.
//!
//! Sec. VIII-B: "more aggressive optimizations involving computing in
//! low-precision and *communicating high-order bits of weight updates*
//! are poorly understood with regards to their implications for
//! classification and regression accuracy for scientific datasets."
//! This module implements that optimisation so its implications can be
//! studied: an 8-bit quantised all-reduce with **error feedback** — each
//! rank keeps the quantisation residual and adds it to its next
//! contribution, which preserves convergence (the residuals telescope).
//!
//! The wire format is `scidl_tensor::ops::quantize_i8` (symmetric linear
//! i8 + one f32 scale): 3.99x less traffic than f32 for large buffers.

use crate::world::Communicator;
use scidl_tensor::ops::{dequantize_i8, quantize_i8};

/// Per-rank state for error-feedback compressed all-reduce.
pub struct CompressedAllReduce {
    /// Quantisation residual carried to the next round.
    residual: Vec<f32>,
}

impl Default for CompressedAllReduce {
    fn default() -> Self {
        Self::new()
    }
}

impl CompressedAllReduce {
    /// Creates fresh (zero-residual) state.
    pub fn new() -> Self {
        Self { residual: Vec::new() }
    }

    /// Compressed mean all-reduce: quantises `data + residual` to 8 bits,
    /// exchanges the quantised view, stores the new residual, and leaves
    /// the *dequantised mean of the quantised contributions* in `data`.
    ///
    /// Returns the wire bytes this rank sent (for traffic accounting).
    pub fn allreduce_mean(&mut self, comm: &Communicator, data: &mut [f32]) -> usize {
        if self.residual.len() != data.len() {
            self.residual.clear();
            self.residual.resize(data.len(), 0.0);
        }
        // Error feedback: compensate what previous rounds dropped.
        for (d, r) in data.iter_mut().zip(&self.residual) {
            *d += r;
        }
        let (q, scale) = quantize_i8(data);
        // New residual = intended − actually-sent.
        let mut sent = vec![0.0f32; data.len()];
        dequantize_i8(&q, scale, &mut sent);
        for ((r, d), s) in self.residual.iter_mut().zip(data.iter()).zip(&sent) {
            *r = d - s;
        }
        // The exchange itself reuses the exact shared-memory collective;
        // on a real network only `q` + `scale` would travel.
        data.copy_from_slice(&sent);
        comm.allreduce_mean(data);
        q.len() + std::mem::size_of::<f32>()
    }

    /// Current residual magnitude (L2), for diagnostics.
    pub fn residual_norm(&self) -> f64 {
        self.residual.iter().map(|&x| x as f64 * x as f64).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::CommWorld;
    use std::thread;

    #[test]
    fn compressed_mean_close_to_exact() {
        let n = 4;
        let len = 257;
        let comms = CommWorld::new(n);
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                thread::spawn(move || {
                    let mut state = CompressedAllReduce::new();
                    let mut data: Vec<f32> =
                        (0..len).map(|i| ((rank * len + i) % 13) as f32 * 0.1 - 0.6).collect();
                    let exact: Vec<f32> = (0..len)
                        .map(|i| {
                            (0..n).map(|r| ((r * len + i) % 13) as f32 * 0.1 - 0.6).sum::<f32>()
                                / n as f32
                        })
                        .collect();
                    let bytes = state.allreduce_mean(&comm, &mut data);
                    (data, exact, bytes)
                })
            })
            .collect();
        for h in handles {
            let (got, exact, bytes) = h.join().unwrap();
            assert_eq!(bytes, len + 4);
            for (g, e) in got.iter().zip(&exact) {
                // Worst-case per-element quantisation error is max/127.
                assert!((g - e).abs() < 0.02, "{g} vs {e}");
            }
        }
    }

    #[test]
    fn error_feedback_recovers_dropped_mass_over_rounds() {
        // A value far below one quantisation step would be silently
        // dropped without error feedback; with it, the accumulated sum
        // over many rounds approaches the true total.
        let comms = CommWorld::new(1);
        let comm = &comms[0];
        let mut state = CompressedAllReduce::new();
        let tiny = 0.004f32;
        let big = 1.0f32;
        let mut acc = 0.0f64;
        let rounds = 500;
        for _ in 0..rounds {
            // Element 0 is tiny, element 1 sets the scale (1/127 ≈ 0.0079
            // per step > tiny).
            let mut data = vec![tiny, big];
            state.allreduce_mean(comm, &mut data);
            acc += data[0] as f64;
        }
        let want = tiny as f64 * rounds as f64;
        assert!(
            (acc - want).abs() / want < 0.05,
            "error feedback should preserve mass: {acc} vs {want}"
        );
    }

    #[test]
    fn without_feedback_tiny_values_vanish() {
        // Control for the test above: plain quantisation drops values
        // under half a quantisation step (1/254 of the max here).
        let (q, scale) = scidl_tensor::ops::quantize_i8(&[0.003, 1.0]);
        let mut out = vec![0.0f32; 2];
        scidl_tensor::ops::dequantize_i8(&q, scale, &mut out);
        assert_eq!(out[0], 0.0, "tiny value must round to zero at this scale");
    }

    #[test]
    fn residual_norm_reports_state() {
        let comms = CommWorld::new(1);
        let mut state = CompressedAllReduce::new();
        assert_eq!(state.residual_norm(), 0.0);
        let mut data = vec![0.004, 1.0];
        state.allreduce_mean(&comms[0], &mut data);
        assert!(state.residual_norm() > 0.0);
    }

    #[test]
    fn wire_bytes_quarter_of_f32() {
        let comms = CommWorld::new(1);
        let mut state = CompressedAllReduce::new();
        let mut data = vec![1.0f32; 1000];
        let bytes = state.allreduce_mean(&comms[0], &mut data);
        assert_eq!(bytes, 1004);
        assert!(bytes * 3 < 1000 * 4);
    }
}
