#![warn(missing_docs)]
//! # scidl-comm
//!
//! Thread-backed replacement for Intel MLSL (Sec. III-D/E): the
//! communication primitives the distributed training engines are built
//! on, with *real* concurrency so the correctness properties (gradient
//! equivalence of all-reduce, FIFO update application and staleness
//! semantics at the parameter server) hold by construction rather than by
//! simulation.
//!
//! * [`world`] — [`CommWorld`]/[`Communicator`]: rank/size handles over a
//!   shared-memory "fabric", with `split` into disjoint communication
//!   groups (our analogue of the MLSL extension the paper wrote to place
//!   nodes into disjoint groups, Sec. III-E(b)).
//! * [`allreduce`] — two all-reduce algorithms: a shared-accumulator tree
//!   and a true ring reduce-scatter/all-gather over per-rank mailboxes
//!   (what MLSL runs on the Aries network); both produce the exact mean
//!   of the contributions.
//! * [`bucket`] — bucketed, backward-overlapped gradient all-reduce
//!   (Sec. V / Das et al. 1602.06709): a [`BucketPlan`] coalesces
//!   parameter blocks into buckets in backward-readiness order and an
//!   [`OverlapContext`] ring-reduces each bucket on a dedicated comm
//!   thread while shallower layers still backprop — bit-identical to the
//!   sequential [`bucketed_allreduce_mean`] baseline.
//! * [`ps`] — per-layer parameter servers (Sec. III-E(c)): each trainable
//!   block gets a dedicated server thread owning that shard of the model,
//!   applying updates in arrival order and returning the fresh shard;
//!   versions are tracked so staleness is measurable.
//! * [`endpoint`] — asynchronous send handles mirroring MLSL's endpoint
//!   proxy threads: a root node posts its PS exchange and overlaps it
//!   with the next iteration's compute.

//! * [`compress`] — the Sec. VIII-B optimisation: 8-bit quantised
//!   all-reduce with error feedback ("communicating high-order bits of
//!   weight updates").
//! * [`error`] — [`CommError`]/[`CommResult`]: every cross-thread
//!   operation returns a result instead of panicking, so peer failures
//!   are recoverable events (Sec. VIII-A).
//! * [`supervisor`] — PS failover: snapshots each shard, detects dead or
//!   hung servers and respawns them from the last snapshot with bounded
//!   retry + exponential backoff.
//!
//! ## Example
//!
//! ```
//! use scidl_comm::CommWorld;
//!
//! let handles: Vec<_> = CommWorld::new(3)
//!     .into_iter()
//!     .map(|comm| {
//!         std::thread::spawn(move || {
//!             let mut grad = vec![comm.rank() as f32; 4];
//!             comm.allreduce_mean(&mut grad);
//!             grad[0]
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     assert_eq!(h.join().unwrap(), 1.0); // mean of 0, 1, 2
//! }
//! ```

pub mod allreduce;
pub mod bucket;
pub mod compress;
pub mod endpoint;
pub mod error;
pub mod ps;
pub mod supervisor;
pub mod world;

pub use allreduce::{
    ring_allreduce_mean, ring_allreduce_mean_scratch, RingEndpoint, RingFabric, RingScratch,
};
pub use bucket::{bucketed_allreduce_mean, BucketPlan, BucketSink, BucketStream, OverlapContext};
pub use compress::CompressedAllReduce;
pub use endpoint::PendingExchange;
pub use error::{CommError, CommResult};
pub use ps::{PsBank, PsReply, PsServer};
pub use supervisor::{SupervisedPs, SupervisedPsBank, SupervisorConfig, UpdateFactory};
pub use world::{CommWorld, Communicator};
