//! Parameter-server supervision: snapshots, crash detection and failover.
//!
//! Sec. VIII-A observes that in the hybrid configuration a failed node
//! only removes its compute group — *unless* the failed node hosts a
//! parameter server, in which case the whole run stalls. This module
//! closes that gap: a [`SupervisedPs`] wraps a [`PsServer`], keeps a
//! snapshot of the last known shard state, and when the server stops
//! answering (closed channel, or a reply timeout on a hung thread) it
//! respawns the shard from the snapshot and retries the operation with
//! exponential backoff.
//!
//! Recovery semantics:
//! - **Parameters** are restored from the last snapshot. Snapshots ride
//!   on successful replies (every reply already carries the full shard),
//!   so with `snapshot_every = 1` the snapshot is at most one update old
//!   per client and snapshotting adds zero extra traffic.
//! - **Versions** stay monotonic: the respawned server continues from the
//!   snapshot's version, so staleness accounting survives a failover.
//! - **Updates that were in flight when the server died are lost** —
//!   exactly the bounded loss the paper's async design tolerates (a lost
//!   update is indistinguishable from a slightly staler gradient).
//! - **Solver state** internal to the update rule (momentum/ADAM moments)
//!   restarts fresh on the respawned shard; the update-rule factory
//!   recreates it. This matches restarting a PS process from a checkpoint.

use crate::error::{CommError, CommResult};
use crate::ps::{PsReply, PsServer, UpdateFn};
use parking_lot::Mutex;
use std::time::Duration;

/// Recreates the update rule for a respawned server. The plain
/// [`UpdateFn`] is consumed by the server thread, so the supervisor
/// needs a factory to build a fresh one after a crash.
pub type UpdateFactory = Box<dyn Fn() -> UpdateFn + Send + Sync>;

/// Tuning knobs for a [`SupervisedPs`].
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Refresh the snapshot every N successful operations (1 = always).
    pub snapshot_every: u64,
    /// How long to wait for a reply before declaring the server hung.
    pub reply_timeout: Duration,
    /// Total attempts per operation (first try + retries, each retry
    /// preceded by a respawn when the server is dead).
    pub max_retries: u32,
    /// Backoff before retry k is `backoff_base * 2^(k-1)`.
    pub backoff_base: Duration,
    /// Fault injection: crash the server after this many successful
    /// operations (once). `None` disables injection.
    pub inject_crash_after: Option<u64>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            snapshot_every: 1,
            reply_timeout: Duration::from_secs(5),
            max_retries: 3,
            backoff_base: Duration::from_millis(1),
            inject_crash_after: None,
        }
    }
}

struct Inner {
    server: PsServer,
    /// Last shard state seen in a reply (the failover image).
    snapshot: Vec<f32>,
    snapshot_version: u64,
    /// Successful operations since spawn (drives snapshot cadence and
    /// crash injection).
    successes: u64,
    /// Bumped on every respawn; lets a client that observed a failure
    /// tell whether someone else already replaced the server.
    generation: u64,
    respawns: u64,
    injected: bool,
}

/// A [`PsServer`] with crash detection and automatic failover.
pub struct SupervisedPs {
    cfg: SupervisorConfig,
    make_update: UpdateFactory,
    /// Trace label: which shard of the bank this is (`u32::MAX` =
    /// unlabelled); respawn events and service spans land on this lane.
    shard: u32,
    inner: Mutex<Inner>,
}

impl SupervisedPs {
    /// Spawns a supervised server owning `params`.
    pub fn spawn(params: Vec<f32>, make_update: UpdateFactory, cfg: SupervisorConfig) -> Self {
        Self::spawn_shard(params, make_update, cfg, u32::MAX)
    }

    /// [`SupervisedPs::spawn`] with a shard label for tracing.
    pub fn spawn_shard(
        params: Vec<f32>,
        make_update: UpdateFactory,
        cfg: SupervisorConfig,
        shard: u32,
    ) -> Self {
        let server = PsServer::spawn_shard(params.clone(), 0, shard, make_update());
        Self {
            cfg,
            make_update,
            shard,
            inner: Mutex::new(Inner {
                server,
                snapshot: params,
                snapshot_version: 0,
                successes: 0,
                generation: 0,
                respawns: 0,
                injected: false,
            }),
        }
    }

    /// Number of failovers performed so far.
    pub fn respawns(&self) -> u64 {
        self.inner.lock().respawns
    }

    /// Fault injection: kill the underlying server now. The next
    /// operation will detect the death and fail over.
    pub fn crash(&self) {
        self.inner.lock().server.crash();
    }

    /// Records a successful reply: refresh the snapshot (respecting the
    /// cadence) and fire scheduled crash injection.
    fn on_success(inner: &mut Inner, cfg: &SupervisorConfig, generation: u64, reply: &PsReply) {
        inner.successes += 1;
        // A reply from an older incarnation must not roll the snapshot
        // back past the respawn point.
        if generation == inner.generation
            && reply.version >= inner.snapshot_version
            && inner.successes.is_multiple_of(cfg.snapshot_every)
        {
            inner.snapshot = reply.params.clone();
            inner.snapshot_version = reply.version;
        }
        if let Some(n) = cfg.inject_crash_after {
            if !inner.injected && inner.successes >= n {
                inner.injected = true;
                inner.server.crash();
            }
        }
    }

    /// Replaces a dead/hung server with one spawned from the snapshot.
    /// `observed_generation` guards against double-respawn when several
    /// clients detect the same failure.
    fn respawn(&self, observed_generation: u64) {
        let mut inner = self.inner.lock();
        if inner.generation != observed_generation {
            return; // someone else already failed over
        }
        let fresh = PsServer::spawn_shard(
            inner.snapshot.clone(),
            inner.snapshot_version,
            self.shard,
            (self.make_update)(),
        );
        // Never join the old thread — it may be hung forever.
        std::mem::replace(&mut inner.server, fresh).abandon();
        inner.generation += 1;
        inner.respawns += 1;
        let track = if self.shard == u32::MAX { 0 } else { self.shard as u64 };
        scidl_trace::TraceHandle::current()
            .instant(track, scidl_trace::EventKind::PsRespawn { shard: self.shard as u64 });
    }

    /// One attempt: post under the lock (capturing the generation), wait
    /// outside it so concurrent clients and the supervisor stay live.
    fn attempt(&self, grad: Option<&[f32]>) -> Result<PsReply, (CommError, u64)> {
        let (rx, generation) = {
            let inner = self.inner.lock();
            let gen = inner.generation;
            let rx = match grad {
                Some(g) => inner.server.update_async(g.to_vec()),
                None => inner.server.fetch_async(),
            };
            (rx.map_err(|e| (e, gen))?, gen)
        };
        match rx.recv_timeout(self.cfg.reply_timeout) {
            Ok(reply) => Ok(reply),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err((
                CommError::Timeout {
                    context: "supervised PS reply",
                    waited: self.cfg.reply_timeout,
                },
                generation,
            )),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err((
                CommError::ChannelClosed { context: "supervised PS reply" },
                generation,
            )),
        }
    }

    fn run(&self, context: &'static str, grad: Option<&[f32]>) -> CommResult<PsReply> {
        // Validate once up front so a size mismatch is a client error,
        // not a reason to respawn a healthy server.
        if let Some(g) = grad {
            let expected = self.inner.lock().server.param_len();
            if g.len() != expected {
                return Err(CommError::SizeMismatch { context, expected, got: g.len() });
            }
        }
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match self.attempt(grad) {
                Ok(reply) => {
                    let mut inner = self.inner.lock();
                    // Generation at reply time may have advanced; the
                    // snapshot guard in on_success handles that.
                    let gen = inner.generation;
                    Self::on_success(&mut inner, &self.cfg, gen, &reply);
                    return Ok(reply);
                }
                Err((_err, generation)) if attempts < self.cfg.max_retries => {
                    self.respawn(generation);
                    let backoff = self.cfg.backoff_base * 2u32.saturating_pow(attempts - 1);
                    std::thread::sleep(backoff);
                }
                Err(..) => {
                    return Err(CommError::RetriesExhausted { context, attempts });
                }
            }
        }
    }

    /// Sends a gradient and blocks for the fresh parameters, failing
    /// over and retrying if the server is dead or hung.
    pub fn update(&self, grad: &[f32]) -> CommResult<PsReply> {
        self.run("supervised PS update", Some(grad))
    }

    /// Fetches the current parameters with the same failover guarantees.
    pub fn fetch(&self) -> CommResult<PsReply> {
        self.run("supervised PS fetch", None)
    }

    /// Stops the server, returning its final update count.
    pub fn shutdown(self) -> CommResult<u64> {
        let inner = self.inner.into_inner();
        inner.server.shutdown()
    }
}

/// A bank of supervised servers — drop-in for [`crate::ps::PsBank`]
/// when failover is wanted.
pub struct SupervisedPsBank {
    servers: Vec<SupervisedPs>,
}

impl SupervisedPsBank {
    /// Spawns one supervised server per `(params, update factory)` pair.
    pub fn spawn(blocks: Vec<(Vec<f32>, UpdateFactory)>, cfg: SupervisorConfig) -> Self {
        Self {
            servers: blocks
                .into_iter()
                .enumerate()
                .map(|(i, (p, f))| SupervisedPs::spawn_shard(p, f, cfg.clone(), i as u32))
                .collect(),
        }
    }

    /// Spawns a bank where each shard gets its own supervisor config —
    /// how a fault plan schedules a crash on one specific shard.
    pub fn spawn_with(blocks: Vec<(Vec<f32>, UpdateFactory, SupervisorConfig)>) -> Self {
        Self {
            servers: blocks
                .into_iter()
                .enumerate()
                .map(|(i, (p, f, cfg))| SupervisedPs::spawn_shard(p, f, cfg, i as u32))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True when the bank holds no shards.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Access to one supervised shard.
    pub fn server(&self, idx: usize) -> &SupervisedPs {
        &self.servers[idx]
    }

    /// Updates every shard, failing over dead ones as needed.
    pub fn update_all(&self, grads: &[Vec<f32>]) -> CommResult<Vec<PsReply>> {
        if grads.len() != self.servers.len() {
            return Err(CommError::SizeMismatch {
                context: "supervised PS bank update",
                expected: self.servers.len(),
                got: grads.len(),
            });
        }
        self.servers
            .iter()
            .zip(grads)
            .map(|(s, g)| s.update(g))
            .collect()
    }

    /// Fetches every shard.
    pub fn fetch_all(&self) -> CommResult<Vec<PsReply>> {
        self.servers.iter().map(|s| s.fetch()).collect()
    }

    /// Total failovers across all shards.
    pub fn total_respawns(&self) -> u64 {
        self.servers.iter().map(|s| s.respawns()).sum()
    }

    /// Stops every shard, returning per-shard update counts.
    pub fn shutdown(self) -> CommResult<Vec<u64>> {
        self.servers.into_iter().map(|s| s.shutdown()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sgd_factory(lr: f32) -> UpdateFactory {
        Box::new(move || {
            Box::new(move |p: &mut [f32], g: &[f32]| {
                for (pi, gi) in p.iter_mut().zip(g) {
                    *pi -= lr * gi;
                }
            })
        })
    }

    #[test]
    fn survives_injected_crash() {
        let cfg = SupervisorConfig { inject_crash_after: Some(5), ..Default::default() };
        let ps = SupervisedPs::spawn(vec![0.0], sgd_factory(1.0), cfg);
        for _ in 0..20 {
            ps.update(&[-1.0]).unwrap();
        }
        assert!(ps.respawns() >= 1, "crash injection never fired a failover");
        let f = ps.fetch().unwrap();
        // At most one in-flight update may be lost per crash; with
        // snapshot_every=1 and a single client nothing is lost here.
        assert!(f.params[0] >= 19.0, "lost more than one update: {}", f.params[0]);
    }

    #[test]
    fn explicit_crash_recovers_from_snapshot() {
        let ps = SupervisedPs::spawn(vec![10.0], sgd_factory(1.0), SupervisorConfig::default());
        ps.update(&[1.0]).unwrap(); // 9.0, snapshot taken
        ps.crash();
        // Next op detects the death and fails over from the snapshot.
        let r = ps.update(&[1.0]).unwrap();
        assert_eq!(r.params, vec![8.0]);
        assert_eq!(r.version, 2, "versions must stay monotonic across failover");
        assert_eq!(ps.respawns(), 1);
    }

    #[test]
    fn repeated_crashes_still_make_progress() {
        let ps = Arc::new(SupervisedPs::spawn(
            vec![0.0],
            sgd_factory(1.0),
            SupervisorConfig::default(),
        ));
        for i in 0..30 {
            if i % 7 == 3 {
                ps.crash();
            }
            ps.update(&[-1.0]).unwrap();
        }
        let f = ps.fetch().unwrap();
        assert!(ps.respawns() >= 3);
        // Every update either applied or was lost to a crash it raced;
        // with one client the retry re-applies it, so none are lost.
        assert_eq!(f.params, vec![30.0]);
        assert_eq!(f.version, 30);
    }

    #[test]
    fn concurrent_clients_survive_crashes_without_double_respawn_storms() {
        let ps = Arc::new(SupervisedPs::spawn(
            vec![0.0],
            sgd_factory(1.0),
            SupervisorConfig::default(),
        ));
        let clients: Vec<_> = (0..4)
            .map(|c| {
                let ps = Arc::clone(&ps);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        if c == 0 && i == 10 {
                            ps.crash();
                        }
                        ps.update(&[-1.0]).unwrap();
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        let f = ps.fetch().unwrap();
        // 100 updates were issued; each crash can drop the handful that
        // were in flight. The run must complete and keep the vast
        // majority — conservation is checked exactly in the proptests.
        assert!(f.params[0] >= 90.0, "too many updates lost: {}", f.params[0]);
        assert!(f.params[0] <= 100.0);
        assert!(ps.respawns() >= 1);
    }

    #[test]
    fn exhausted_retries_surface_as_error() {
        // A factory whose servers die instantly: every respawn crashes
        // again before it can answer, so retries run out.
        let cfg = SupervisorConfig {
            max_retries: 2,
            backoff_base: Duration::from_micros(100),
            ..Default::default()
        };
        let ps = SupervisedPs::spawn(vec![0.0], sgd_factory(1.0), cfg);
        // Kill servers as fast as they appear.
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        // Simpler: crash, then make the *first* attempt fail and the
        // retry too by crashing again from another thread in a loop.
        let ps = Arc::new(ps);
        let killer = {
            let ps = Arc::clone(&ps);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    ps.crash();
                    std::thread::yield_now();
                }
            })
        };
        let mut saw_exhaustion = false;
        for _ in 0..200 {
            if let Err(CommError::RetriesExhausted { attempts, .. }) = ps.update(&[1.0]) {
                assert_eq!(attempts, 2);
                saw_exhaustion = true;
                break;
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        killer.join().unwrap();
        assert!(saw_exhaustion, "continuous crashing never exhausted retries");
    }

    #[test]
    fn bank_failover_and_counts() {
        let bank = SupervisedPsBank::spawn(
            vec![
                (vec![0.0], sgd_factory(1.0)),
                (vec![100.0], sgd_factory(1.0)),
            ],
            SupervisorConfig::default(),
        );
        bank.update_all(&[vec![-1.0], vec![1.0]]).unwrap();
        bank.server(1).crash();
        let replies = bank.update_all(&[vec![-1.0], vec![1.0]]).unwrap();
        assert_eq!(replies[0].params, vec![2.0]);
        assert_eq!(replies[1].params, vec![98.0]);
        assert_eq!(bank.total_respawns(), 1);
        let counts = bank.shutdown().unwrap();
        assert_eq!(counts[0], 2);
    }
}
