//! Bucketed, backward-overlapped gradient all-reduce.
//!
//! The paper's hardware efficiency at scale rests on overlapping
//! gradient communication with backward compute (Sec. V, via MLSL; the
//! technique is detailed in Das et al., *Distributed Deep Learning Using
//! Synchronous SGD*, arXiv:1602.06709): as soon as a layer's backward
//! pass has produced its parameter gradients, those gradients can start
//! their all-reduce while shallower layers are still backpropagating.
//! Tiny layers (biases, batch-norm scales) would drown in per-message
//! latency, so gradients are *bucketed*: a [`BucketPlan`] coalesces
//! parameter blocks — walked in readiness order, deepest first — into
//! buckets of roughly `target_bytes` each, and every bucket is one
//! [`ring_allreduce_mean_scratch`] on a dedicated per-rank comm thread
//! ([`OverlapContext`]).
//!
//! ## Determinism
//!
//! The whole design preserves the repo's bit-determinism guarantee:
//!
//! * every bucket is reduced by the deterministic ring algorithm over a
//!   fixed flat range, so the summation order inside a bucket is a pure
//!   function of the plan and the rank count;
//! * buckets are *shipped* in plan order on every rank (backward
//!   readiness order is the same everywhere) and the comm thread reduces
//!   them in arrival order, so the per-bucket rings pair up across ranks
//!   without deadlock;
//! * therefore an overlapped step is **bit-identical** to the sequential
//!   baseline [`bucketed_allreduce_mean`] — same plan, same rings, just
//!   scheduled concurrently with backward compute. The differential test
//!   battery in this module and `tests/integration_overlap.rs` proves it.
//!
//! A vanished ring neighbour mid-bucket surfaces as
//! [`CommError::ChannelClosed`] from [`BucketStream::finish`], never as
//! a panic or a hang: channel disconnection cascades around the ring, so
//! every surviving rank's reduce fails fast.

use crate::allreduce::{ring_allreduce_mean_scratch, RingEndpoint, RingScratch};
use crate::error::{CommError, CommResult};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::thread::JoinHandle;

/// Maps parameter blocks (in forward/flat order) onto gradient buckets
/// (in readiness order: deepest blocks first) and each bucket onto its
/// contiguous range of the flat gradient vector.
///
/// Blocks become ready back-to-front during backward, so walking blocks
/// last-to-first and cutting a new bucket whenever the running size
/// would exceed `target_bytes` yields buckets that are contiguous flat
/// ranges: bucket 0 covers the trailing blocks, the last bucket the
/// leading ones. A block larger than `target_bytes` gets a bucket of its
/// own — blocks are never split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketPlan {
    /// `block_bucket[b]` = bucket index of block `b` (blocks in flat order).
    block_bucket: Vec<usize>,
    /// `block_range[b]` = flat range `[lo, hi)` of block `b`.
    block_range: Vec<(usize, usize)>,
    /// `ranges[k]` = flat range `[lo, hi)` of bucket `k` (readiness order).
    ranges: Vec<(usize, usize)>,
    /// Total flat length (sum of block sizes).
    total: usize,
}

impl BucketPlan {
    /// Builds the plan for parameter blocks of the given sizes (flat
    /// order, i.e. the order of `Model::flat_grads`) with roughly
    /// `target_bytes` of f32 gradient per bucket. `target_bytes == 0`
    /// puts every block in its own bucket.
    pub fn new(block_sizes: &[usize], target_bytes: usize) -> Self {
        let total: usize = block_sizes.iter().sum();
        let mut block_range = Vec::with_capacity(block_sizes.len());
        let mut lo = 0usize;
        for &s in block_sizes {
            block_range.push((lo, lo + s));
            lo += s;
        }
        // Walk blocks in readiness order (last first), coalescing.
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let mut block_bucket = vec![0usize; block_sizes.len()];
        let mut acc_bytes = 0usize;
        for b in (0..block_sizes.len()).rev() {
            let bytes = block_sizes[b] * std::mem::size_of::<f32>();
            if ranges.is_empty() || acc_bytes + bytes > target_bytes {
                // Start a new bucket with this block (a block larger than
                // the target simply gets its own bucket).
                ranges.push(block_range[b]);
                acc_bytes = bytes;
            } else {
                // Extend the current bucket downwards.
                let last = ranges.last_mut().expect("bucket exists");
                last.0 = block_range[b].0;
                acc_bytes += bytes;
            }
            block_bucket[b] = ranges.len() - 1;
        }
        Self { block_bucket, block_range, ranges, total }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.ranges.len()
    }

    /// Number of parameter blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_bucket.len()
    }

    /// Bucket index of block `b` (blocks in flat order).
    pub fn bucket_of(&self, b: usize) -> usize {
        self.block_bucket[b]
    }

    /// Flat range `[lo, hi)` of bucket `k` (buckets in readiness order).
    pub fn bucket_range(&self, k: usize) -> (usize, usize) {
        self.ranges[k]
    }

    /// Flat range `[lo, hi)` of block `b`.
    pub fn block_flat_range(&self, b: usize) -> (usize, usize) {
        self.block_range[b]
    }

    /// Total flat gradient length the plan covers.
    pub fn total_len(&self) -> usize {
        self.total
    }
}

/// Where an overlapped backward pass delivers gradient blocks as they
/// become ready. Implemented by [`BucketStream`]; taken as `&mut dyn`
/// so gradient tasks stay object-safe and engine-agnostic.
pub trait BucketSink {
    /// Delivers the gradient of parameter block `block` (flat-order
    /// index). Blocks should arrive in readiness order — deepest layer
    /// first, and within a layer in reverse block order — but any order
    /// is *correct*; out-of-order pushes only delay bucket shipment.
    fn push_block(&mut self, block: usize, grad: &[f32]);

    /// Delivers a complete flat gradient by replaying its blocks in
    /// readiness order. This is the non-overlapping fallback for models
    /// without a layered backward: correct and bit-identical, it just
    /// hides no communication behind compute that has already finished.
    fn push_flat(&mut self, flat: &[f32]);
}

/// Message to the comm thread: one staged bucket to ring-reduce.
type BucketMsg = (usize, Vec<f32>);
/// Reply from the comm thread: the reduced bucket, or the first error.
type BucketReply = (usize, CommResult<Vec<f32>>);

/// A dedicated per-rank communication thread owning this rank's ring
/// endpoint and scratch. Mirrors MLSL's endpoint proxy threads
/// (Sec. III-D): the training thread stages gradient buckets and keeps
/// computing while the comm thread runs the ring all-reduces.
///
/// One context is created per rank per run; [`OverlapContext::stream`]
/// borrows it for one training step. After any bucket fails the context
/// is poisoned — subsequent reduces report the failure immediately —
/// which matches the engines' treatment of a dead rank as fatal for the
/// whole synchronous group.
pub struct OverlapContext {
    rank: usize,
    to_comm: Sender<BucketMsg>,
    from_comm: Receiver<BucketReply>,
    handle: Option<JoinHandle<()>>,
}

impl OverlapContext {
    /// Spawns the comm thread for `rank` of `n`, taking ownership of the
    /// rank's ring endpoint.
    pub fn spawn(rank: usize, n: usize, endpoint: RingEndpoint) -> Self {
        let (to_comm, work_rx) = unbounded::<BucketMsg>();
        let (reply_tx, from_comm) = unbounded::<BucketReply>();
        let handle = std::thread::Builder::new()
            .name(format!("overlap-comm-{rank}"))
            .spawn(move || {
                let (send_next, recv_prev) = endpoint;
                let mut scratch = RingScratch::new();
                let mut poisoned = false;
                while let Ok((idx, mut data)) = work_rx.recv() {
                    let res = if poisoned {
                        Err(CommError::ChannelClosed { context: "ring neighbour" })
                    } else {
                        ring_allreduce_mean_scratch(
                            rank, n, &mut data, &mut scratch, &send_next, &recv_prev,
                        )
                    };
                    let reply = match res {
                        Ok(()) => (idx, Ok(data)),
                        Err(e) => {
                            poisoned = true;
                            (idx, Err(e))
                        }
                    };
                    if reply_tx.send(reply).is_err() {
                        break; // training thread is gone
                    }
                }
            })
            .expect("spawn overlap comm thread");
        Self { rank, to_comm, from_comm, handle: Some(handle) }
    }

    /// Begins one overlapped training step over `plan`, borrowing the
    /// context until [`BucketStream::finish`].
    pub fn stream<'a>(&'a mut self, plan: &'a BucketPlan) -> BucketStream<'a> {
        let buckets = plan.num_buckets();
        BucketStream {
            ctx: self,
            plan,
            staging: (0..buckets).map(|_| Vec::new()).collect(),
            filled: vec![0; buckets],
            shipped: vec![false; buckets],
            next_to_ship: 0,
            t_first_ship: None,
        }
    }
}

impl Drop for OverlapContext {
    fn drop(&mut self) {
        // Disconnect the work channel so the comm thread's iterator ends.
        let (dead_tx, _) = unbounded::<BucketMsg>();
        let _ = std::mem::replace(&mut self.to_comm, dead_tx);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One training step's view of an [`OverlapContext`]: stages gradient
/// blocks into buckets, ships complete buckets to the comm thread in
/// plan order while backward continues, and gathers the reduced buckets
/// in [`finish`](Self::finish).
pub struct BucketStream<'a> {
    ctx: &'a mut OverlapContext,
    plan: &'a BucketPlan,
    /// Per-bucket staging buffers (lazily sized to the bucket range).
    staging: Vec<Vec<f32>>,
    /// Elements staged so far per bucket.
    filled: Vec<usize>,
    shipped: Vec<bool>,
    /// Buckets must ship in plan order so per-bucket rings pair up
    /// across ranks; complete-but-early buckets wait here.
    next_to_ship: usize,
    /// Trace timestamp of the first shipped bucket.
    t_first_ship: Option<f64>,
}

impl BucketStream<'_> {
    fn ship_ready(&mut self) {
        while self.next_to_ship < self.plan.num_buckets() {
            let k = self.next_to_ship;
            let (lo, hi) = self.plan.bucket_range(k);
            if self.filled[k] < hi - lo {
                break;
            }
            let data = std::mem::take(&mut self.staging[k]);
            debug_assert_eq!(data.len(), hi - lo);
            if self.t_first_ship.is_none() {
                self.t_first_ship = Some(scidl_trace::TraceHandle::current().now());
            }
            // A send failure means the comm thread died; the error will
            // surface from finish() when the replies come up short.
            let _ = self.ctx.to_comm.send((k, data));
            self.shipped[k] = true;
            self.next_to_ship += 1;
        }
    }

    /// Waits for every bucket's reduced result and scatters them into
    /// `out` (length [`BucketPlan::total_len`]). Returns the first
    /// communication error, e.g. a ring neighbour that died mid-bucket.
    /// Emits an [`scidl_trace::EventKind::Overlap`] span covering first
    /// ship → drain, with the backward-concurrent time as `hidden_s`.
    pub fn finish(self, out: &mut [f32]) -> CommResult<()> {
        assert_eq!(out.len(), self.plan.total_len(), "finish buffer length mismatch");
        let buckets = self.plan.num_buckets();
        assert_eq!(
            self.next_to_ship, buckets,
            "finish called with incomplete buckets: {} of {buckets} shipped",
            self.next_to_ship
        );
        let tr = scidl_trace::TraceHandle::current();
        let t_backward_done = tr.now();
        let mut first_err: Option<CommError> = None;
        for _ in 0..buckets {
            match self.ctx.from_comm.recv() {
                Ok((k, Ok(data))) => {
                    let (lo, hi) = self.plan.bucket_range(k);
                    out[lo..hi].copy_from_slice(&data);
                }
                Ok((_, Err(e))) => {
                    first_err = first_err.or(Some(e));
                }
                Err(_) => {
                    first_err = first_err
                        .or(Some(CommError::ChannelClosed { context: "overlap comm thread" }));
                    break;
                }
            }
        }
        let t0 = self.t_first_ship.unwrap_or(t_backward_done);
        let hidden_s = (t_backward_done - t0).max(0.0);
        tr.span(
            self.ctx.rank as u64,
            t0,
            scidl_trace::EventKind::Overlap { buckets: buckets as u64, hidden_s },
        );
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

impl BucketSink for BucketStream<'_> {
    fn push_block(&mut self, block: usize, grad: &[f32]) {
        let (blo, bhi) = self.plan.block_flat_range(block);
        assert_eq!(grad.len(), bhi - blo, "block {block} gradient length mismatch");
        let k = self.plan.bucket_of(block);
        let (lo, hi) = self.plan.bucket_range(k);
        let staging = &mut self.staging[k];
        if staging.is_empty() && hi > lo {
            staging.resize(hi - lo, 0.0);
        }
        staging[blo - lo..bhi - lo].copy_from_slice(grad);
        self.filled[k] += grad.len();
        self.ship_ready();
    }

    fn push_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.plan.total_len(), "flat gradient length mismatch");
        for b in (0..self.plan.num_blocks()).rev() {
            let (lo, hi) = self.plan.block_flat_range(b);
            self.push_block(b, &flat[lo..hi]);
        }
    }
}

/// Sequential baseline: bucketed ring all-reduce with **no** overlap —
/// the buckets of `plan` are reduced one after another on the calling
/// thread. Because the overlapped path ships buckets in exactly this
/// order and each bucket's ring arithmetic is deterministic, an
/// overlapped step is bit-identical to this function applied to the
/// same flat gradient. The differential tests pin that equivalence.
pub fn bucketed_allreduce_mean(
    plan: &BucketPlan,
    rank: usize,
    n: usize,
    data: &mut [f32],
    scratch: &mut RingScratch,
    send_next: &Sender<Vec<f32>>,
    recv_prev: &Receiver<Vec<f32>>,
) -> CommResult<()> {
    assert_eq!(data.len(), plan.total_len(), "flat gradient length mismatch");
    for k in 0..plan.num_buckets() {
        let (lo, hi) = plan.bucket_range(k);
        ring_allreduce_mean_scratch(rank, n, &mut data[lo..hi], scratch, send_next, recv_prev)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allreduce::RingFabric;
    use std::thread;

    fn plan_invariants(plan: &BucketPlan, block_sizes: &[usize]) {
        assert_eq!(plan.num_blocks(), block_sizes.len());
        let total: usize = block_sizes.iter().sum();
        assert_eq!(plan.total_len(), total);
        // Buckets tile the flat range back-to-front with no gaps.
        let mut hi = total;
        for k in 0..plan.num_buckets() {
            let (lo, khi) = plan.bucket_range(k);
            assert_eq!(khi, hi, "bucket {k} not contiguous");
            assert!(lo < khi || (lo == khi && total == 0), "bucket {k} empty");
            hi = lo;
        }
        assert_eq!(hi, 0, "buckets do not cover the flat range");
        // Every block maps into the bucket containing its flat range.
        for b in 0..block_sizes.len() {
            let (blo, bhi) = plan.block_flat_range(b);
            let (lo, khi) = plan.bucket_range(plan.bucket_of(b));
            assert!(lo <= blo && bhi <= khi, "block {b} escapes its bucket");
        }
    }

    #[test]
    fn plan_coalesces_small_blocks_and_isolates_large_ones() {
        // Sizes in elements; target 64 bytes = 16 f32.
        let sizes = [100usize, 4, 8, 2, 30, 3];
        let plan = BucketPlan::new(&sizes, 64);
        plan_invariants(&plan, &sizes);
        // Readiness walk: 3, 30, 2, 8, 4, 100.
        // Bucket 0: block 5 (3) + would 30 exceed 16? 3+30=33 > 16 → yes.
        assert_eq!(plan.bucket_of(5), 0);
        assert_eq!(plan.bucket_of(4), 1); // 30 alone (oversized)
        assert_eq!(plan.bucket_of(3), 2);
        assert_eq!(plan.bucket_of(2), 2); // 2+8=10 ≤ 16
        assert_eq!(plan.bucket_of(1), 2); // 2+8+4=14 ≤ 16
        assert_eq!(plan.bucket_of(0), 3); // 100 alone
        assert_eq!(plan.num_buckets(), 4);
    }

    #[test]
    fn zero_target_gives_one_bucket_per_block() {
        let sizes = [5usize, 7, 1];
        let plan = BucketPlan::new(&sizes, 0);
        plan_invariants(&plan, &sizes);
        assert_eq!(plan.num_buckets(), 3);
        assert_eq!(plan.bucket_of(2), 0);
        assert_eq!(plan.bucket_of(1), 1);
        assert_eq!(plan.bucket_of(0), 2);
    }

    #[test]
    fn huge_target_gives_single_bucket() {
        let sizes = [5usize, 7, 1];
        let plan = BucketPlan::new(&sizes, usize::MAX);
        plan_invariants(&plan, &sizes);
        assert_eq!(plan.num_buckets(), 1);
        assert_eq!(plan.bucket_range(0), (0, 13));
    }

    fn rank_grad(rank: usize, len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed)
                    ^ ((rank as u64) << 17);
                ((x % 2003) as f32 - 1001.0) * 1e-3
            })
            .collect()
    }

    /// Overlapped reduce (comm thread, blocks pushed in readiness order)
    /// vs sequential bucketed baseline: bit-identical on every rank.
    fn check_overlap_matches_sequential(n: usize, block_sizes: &[usize], target_bytes: usize) {
        let plan = BucketPlan::new(block_sizes, target_bytes);
        plan_invariants(&plan, block_sizes);
        let total = plan.total_len();

        // Overlapped path.
        let endpoints = RingFabric::new(n).into_endpoints();
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, ep)| {
                let plan = plan.clone();
                let sizes: Vec<usize> = block_sizes.to_vec();
                thread::spawn(move || {
                    let mut ctx = OverlapContext::spawn(rank, n, ep);
                    let flat = rank_grad(rank, total, 42);
                    let mut stream = ctx.stream(&plan);
                    for b in (0..sizes.len()).rev() {
                        let (lo, hi) = plan.block_flat_range(b);
                        stream.push_block(b, &flat[lo..hi]);
                    }
                    let mut out = vec![0.0f32; total];
                    stream.finish(&mut out).unwrap();
                    out
                })
            })
            .collect();
        let overlapped: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        // Sequential baseline.
        let endpoints = RingFabric::new(n).into_endpoints();
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, (tx, rx))| {
                let plan = plan.clone();
                thread::spawn(move || {
                    let mut data = rank_grad(rank, total, 42);
                    let mut scratch = RingScratch::new();
                    bucketed_allreduce_mean(&plan, rank, n, &mut data, &mut scratch, &tx, &rx)
                        .unwrap();
                    data
                })
            })
            .collect();
        let sequential: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        for rank in 0..n {
            assert_eq!(
                overlapped[rank], sequential[rank],
                "rank {rank} diverged (n={n}, sizes={block_sizes:?}, target={target_bytes})"
            );
        }
        // All ranks agree with each other too.
        for rank in 1..n {
            assert_eq!(overlapped[0], overlapped[rank]);
        }
    }

    #[test]
    fn overlap_matches_sequential_basic() {
        check_overlap_matches_sequential(4, &[100, 4, 8, 2, 30, 3], 64);
        check_overlap_matches_sequential(2, &[17, 5], 32);
        check_overlap_matches_sequential(1, &[9, 3], 16);
    }

    #[test]
    fn push_flat_equals_push_block_order() {
        let n = 3;
        let sizes = [11usize, 6, 2, 9];
        let plan = BucketPlan::new(&sizes, 40);
        let total = plan.total_len();

        let run = |use_flat: bool| -> Vec<Vec<f32>> {
            let endpoints = RingFabric::new(n).into_endpoints();
            let handles: Vec<_> = endpoints
                .into_iter()
                .enumerate()
                .map(|(rank, ep)| {
                    let plan = plan.clone();
                    thread::spawn(move || {
                        let mut ctx = OverlapContext::spawn(rank, n, ep);
                        let flat = rank_grad(rank, total, 7);
                        let mut stream = ctx.stream(&plan);
                        if use_flat {
                            stream.push_flat(&flat);
                        } else {
                            for b in (0..plan.num_blocks()).rev() {
                                let (lo, hi) = plan.block_flat_range(b);
                                stream.push_block(b, &flat[lo..hi]);
                            }
                        }
                        let mut out = vec![0.0f32; total];
                        stream.finish(&mut out).unwrap();
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn context_reuse_across_steps_is_bit_identical() {
        // The same context (warm scratch on the comm thread) must give
        // the same result every step for the same inputs.
        let n = 2;
        let sizes = [8usize, 8, 4];
        let plan = BucketPlan::new(&sizes, 32);
        let total = plan.total_len();
        let endpoints = RingFabric::new(n).into_endpoints();
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, ep)| {
                let plan = plan.clone();
                thread::spawn(move || {
                    let mut ctx = OverlapContext::spawn(rank, n, ep);
                    let mut outs = Vec::new();
                    for _ in 0..3 {
                        let flat = rank_grad(rank, total, 99);
                        let mut stream = ctx.stream(&plan);
                        stream.push_flat(&flat);
                        let mut out = vec![0.0f32; total];
                        stream.finish(&mut out).unwrap();
                        outs.push(out);
                    }
                    outs
                })
            })
            .collect();
        for outs in handles.into_iter().map(|h| h.join().unwrap()) {
            assert_eq!(outs[0], outs[1]);
            assert_eq!(outs[1], outs[2]);
        }
    }

    #[test]
    fn dead_neighbour_mid_bucket_is_comm_error_not_hang() {
        // Rank 1 of 2 vanishes after the first bucket: rank 0's stream
        // must report ChannelClosed from finish(), not panic or hang.
        let n = 2;
        let sizes = [6usize, 6, 6];
        let plan = BucketPlan::new(&sizes, 24); // one bucket per block
        assert_eq!(plan.num_buckets(), 3);
        let total = plan.total_len();
        let mut endpoints = RingFabric::new(n).into_endpoints();
        let ep1 = endpoints.pop().unwrap();
        let ep0 = endpoints.pop().unwrap();

        let vplan = plan.clone();
        let victim = thread::spawn(move || {
            // Participate in bucket 0 only (block 2 is readiness-first),
            // then die with buckets 1 and 2 outstanding.
            let (tx, rx) = ep1;
            let (lo, hi) = vplan.bucket_range(0);
            let mut data = rank_grad(1, total, 5)[lo..hi].to_vec();
            let mut scratch = RingScratch::new();
            ring_allreduce_mean_scratch(1, n, &mut data, &mut scratch, &tx, &rx).unwrap();
            drop((tx, rx));
        });

        let mut ctx = OverlapContext::spawn(0, n, ep0);
        let flat = rank_grad(0, total, 5);
        let mut stream = ctx.stream(&plan);
        for b in (0..plan.num_blocks()).rev() {
            let (lo, hi) = plan.block_flat_range(b);
            stream.push_block(b, &flat[lo..hi]);
        }
        let mut out = vec![0.0f32; total];
        let err = stream.finish(&mut out).unwrap_err();
        assert!(
            matches!(err, CommError::ChannelClosed { .. }),
            "expected ChannelClosed, got {err:?}"
        );
        victim.join().unwrap();
    }
}
