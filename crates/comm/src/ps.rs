//! Per-layer parameter servers (Sec. III-E(c)).
//!
//! Each trainable parameter block gets a dedicated server thread that
//! owns that shard of the model. Compute groups send gradient updates;
//! the server applies them *in arrival order* with its own solver state
//! and replies with the fresh shard plus a version counter, making
//! staleness directly measurable (`version_at_apply − version_sent_with`).
//!
//! The update rule is injected as a boxed closure so the same server
//! runs SGD-with-momentum, ADAM, or anything else the engines configure —
//! the server does not depend on `scidl-nn`.
//!
//! Every client-facing operation returns [`CommResult`]: a dead or hung
//! server surfaces as a [`CommError`] instead of a panic, which is what
//! lets the [`crate::supervisor`] respawn crashed shards mid-run
//! (Sec. VIII-A). [`PsServer::crash`] injects an abrupt server death for
//! fault-injection tests; [`PsServer::spawn_at`] restarts a shard from a
//! snapshot while keeping its version counter monotonic.

use crate::error::{CommError, CommResult};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::thread::JoinHandle;

/// Update rule applied by a PS: `(params, grad)` in, params mutated.
pub type UpdateFn = Box<dyn FnMut(&mut [f32], &[f32]) + Send>;

/// Reply to an update or fetch.
#[derive(Clone, Debug)]
pub struct PsReply {
    /// Fresh parameter shard after the update.
    pub params: Vec<f32>,
    /// Server version after applying (number of updates ever applied).
    pub version: u64,
}

enum PsRequest {
    Update { grad: Vec<f32>, reply: Sender<PsReply> },
    Fetch { reply: Sender<PsReply> },
    /// Fault injection: the server thread exits abruptly — no drain, no
    /// reply, pending requests lost (models a killed PS node).
    Crash,
    Shutdown,
}

/// Handle to one parameter-server thread owning one parameter block.
pub struct PsServer {
    tx: Sender<PsRequest>,
    handle: Option<JoinHandle<u64>>,
    param_len: usize,
}

impl PsServer {
    /// Spawns a server owning `params`, applying `update` to each
    /// arriving gradient.
    pub fn spawn(params: Vec<f32>, update: UpdateFn) -> Self {
        Self::spawn_at(params, 0, update)
    }

    /// Spawns a server from a snapshot taken at `initial_version` —
    /// the respawn path of the supervisor. Versions stay monotonic
    /// across the crash: the new incarnation continues counting from
    /// the snapshot, so staleness accounting survives a failover.
    pub fn spawn_at(params: Vec<f32>, initial_version: u64, update: UpdateFn) -> Self {
        Self::spawn_shard(params, initial_version, u32::MAX, update)
    }

    /// [`PsServer::spawn_at`] with a shard label for tracing: server-side
    /// update spans land on trace lane `shard` so per-layer PS service
    /// time is attributable in the timeline. `u32::MAX` = unlabelled.
    pub fn spawn_shard(
        params: Vec<f32>,
        initial_version: u64,
        shard: u32,
        mut update: UpdateFn,
    ) -> Self {
        let param_len = params.len();
        let track = if shard == u32::MAX { 0 } else { shard as u64 };
        let (tx, rx): (Sender<PsRequest>, Receiver<PsRequest>) = unbounded();
        let handle = std::thread::spawn(move || {
            let mut params = params;
            let mut version: u64 = initial_version;
            while let Ok(req) = rx.recv() {
                match req {
                    PsRequest::Update { grad, reply } => {
                        if grad.len() != params.len() {
                            // Defensive: the client validates before
                            // sending, so this only triggers on a raw
                            // misuse. Drop the reply sender — the client
                            // observes ChannelClosed — and keep serving.
                            continue;
                        }
                        let tr = scidl_trace::TraceHandle::current();
                        let t0 = tr.now();
                        update(&mut params, &grad);
                        version += 1;
                        tr.span(
                            track,
                            t0,
                            scidl_trace::EventKind::PsService { shard: shard as u64, version },
                        );
                        // The requester may have gone away; ignore send
                        // failures (a dead group, Sec. VIII-A).
                        let _ = reply.send(PsReply { params: params.clone(), version });
                    }
                    PsRequest::Fetch { reply } => {
                        let _ = reply.send(PsReply { params: params.clone(), version });
                    }
                    PsRequest::Crash => return version,
                    PsRequest::Shutdown => break,
                }
            }
            version
        });
        Self { tx, handle: Some(handle), param_len }
    }

    /// Length of the parameter shard this server owns.
    pub fn param_len(&self) -> usize {
        self.param_len
    }

    fn check_len(&self, grad: &[f32]) -> CommResult<()> {
        if grad.len() != self.param_len {
            return Err(CommError::SizeMismatch {
                context: "PS update",
                expected: self.param_len,
                got: grad.len(),
            });
        }
        Ok(())
    }

    /// Sends a gradient and blocks for the fresh parameters.
    pub fn update(&self, grad: Vec<f32>) -> CommResult<PsReply> {
        let rrx = self.update_async(grad)?;
        rrx.recv()
            .map_err(|_| CommError::ChannelClosed { context: "PS update reply" })
    }

    /// Sends a gradient without blocking; the reply arrives on the
    /// returned receiver (used by the endpoint overlap path).
    pub fn update_async(&self, grad: Vec<f32>) -> CommResult<Receiver<PsReply>> {
        self.check_len(&grad)?;
        let (rtx, rrx) = bounded(1);
        self.tx
            .send(PsRequest::Update { grad, reply: rtx })
            .map_err(|_| CommError::ChannelClosed { context: "PS update" })?;
        Ok(rrx)
    }

    /// Fetches the current parameters without updating.
    pub fn fetch(&self) -> CommResult<PsReply> {
        let rrx = self.fetch_async()?;
        rrx.recv()
            .map_err(|_| CommError::ChannelClosed { context: "PS fetch reply" })
    }

    /// Posts a fetch without blocking; the reply arrives on the returned
    /// receiver (lets the supervisor wait with a timeout).
    pub fn fetch_async(&self) -> CommResult<Receiver<PsReply>> {
        let (rtx, rrx) = bounded(1);
        self.tx
            .send(PsRequest::Fetch { reply: rtx })
            .map_err(|_| CommError::ChannelClosed { context: "PS fetch" })?;
        Ok(rrx)
    }

    /// Fault injection: makes the server thread die abruptly, losing any
    /// queued requests — the PS-node kill of Sec. VIII-A. Safe to call on
    /// an already-dead server.
    pub fn crash(&self) {
        let _ = self.tx.send(PsRequest::Crash);
    }

    /// Stops the server, returning the total number of updates applied.
    pub fn shutdown(mut self) -> CommResult<u64> {
        let _ = self.tx.send(PsRequest::Shutdown);
        self.handle
            .take()
            .ok_or(CommError::ChannelClosed { context: "PS shutdown" })?
            .join()
            .map_err(|_| CommError::ServerPanicked { context: "PS shutdown" })
    }

    /// Drops the handle without joining — used by the supervisor when it
    /// replaces a hung server whose thread can never be joined.
    pub fn abandon(mut self) {
        self.handle.take(); // detach
        // Dropping `tx` afterwards closes the request channel.
    }
}

impl Drop for PsServer {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = self.tx.send(PsRequest::Shutdown);
            let _ = handle.join();
        }
    }
}

/// A bank of per-block parameter servers — one per trainable layer block,
/// the paper's design for avoiding PS saturation (Fig. 4).
pub struct PsBank {
    servers: Vec<PsServer>,
}

impl PsBank {
    /// Spawns one server per `(initial params, update rule)` pair.
    pub fn spawn(blocks: Vec<(Vec<f32>, UpdateFn)>) -> Self {
        Self {
            servers: blocks
                .into_iter()
                .map(|(p, u)| PsServer::spawn(p, u))
                .collect(),
        }
    }

    /// Number of servers (= parameter blocks).
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True when the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Access to an individual server.
    pub fn server(&self, idx: usize) -> &PsServer {
        &self.servers[idx]
    }

    /// Synchronous update of every block; returns per-block replies.
    pub fn update_all(&self, grads: Vec<Vec<f32>>) -> CommResult<Vec<PsReply>> {
        if grads.len() != self.servers.len() {
            return Err(CommError::SizeMismatch {
                context: "PS bank update",
                expected: self.servers.len(),
                got: grads.len(),
            });
        }
        // Post everything first (the per-layer parallelism of Fig. 4),
        // then collect.
        let pending: Vec<_> = self
            .servers
            .iter()
            .zip(grads)
            .map(|(s, g)| s.update_async(g))
            .collect::<CommResult<_>>()?;
        pending
            .into_iter()
            .map(|rx| {
                rx.recv()
                    .map_err(|_| CommError::ChannelClosed { context: "PS bank update reply" })
            })
            .collect()
    }

    /// Fetches every block's current parameters.
    pub fn fetch_all(&self) -> CommResult<Vec<PsReply>> {
        self.servers.iter().map(|s| s.fetch()).collect()
    }

    /// Shuts every server down, returning per-server update counts.
    pub fn shutdown(self) -> CommResult<Vec<u64>> {
        self.servers.into_iter().map(|s| s.shutdown()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn sgd(lr: f32) -> UpdateFn {
        Box::new(move |p, g| {
            for (pi, gi) in p.iter_mut().zip(g) {
                *pi -= lr * gi;
            }
        })
    }

    #[test]
    fn update_applies_rule_and_bumps_version() {
        let ps = PsServer::spawn(vec![1.0, 2.0], sgd(0.5));
        let r = ps.update(vec![2.0, 2.0]).unwrap();
        assert_eq!(r.params, vec![0.0, 1.0]);
        assert_eq!(r.version, 1);
        let r2 = ps.update(vec![0.0, 2.0]).unwrap();
        assert_eq!(r2.params, vec![0.0, 0.0]);
        assert_eq!(r2.version, 2);
        assert_eq!(ps.shutdown().unwrap(), 2);
    }

    #[test]
    fn fetch_does_not_bump_version() {
        let ps = PsServer::spawn(vec![5.0], sgd(1.0));
        assert_eq!(ps.fetch().unwrap().version, 0);
        ps.update(vec![1.0]).unwrap();
        let f = ps.fetch().unwrap();
        assert_eq!(f.version, 1);
        assert_eq!(f.params, vec![4.0]);
    }

    #[test]
    fn updates_from_concurrent_groups_all_apply() {
        let ps = PsServer::spawn(vec![0.0], sgd(1.0));
        let ps = std::sync::Arc::new(ps);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let ps = std::sync::Arc::clone(&ps);
                thread::spawn(move || {
                    for _ in 0..50 {
                        ps.update(vec![-1.0]).unwrap(); // param += 1 each update
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let f = ps.fetch().unwrap();
        assert_eq!(f.version, 400);
        assert_eq!(f.params, vec![400.0]);
    }

    #[test]
    fn versions_measure_staleness() {
        let ps = PsServer::spawn(vec![0.0], sgd(1.0));
        let v0 = ps.fetch().unwrap().version;
        // Another "group" applies 3 updates behind our back.
        for _ in 0..3 {
            ps.update(vec![0.0]).unwrap();
        }
        let r = ps.update(vec![0.0]).unwrap();
        // Our update was computed against v0 but applied at r.version;
        // staleness = (version before our apply) − v0.
        let staleness = r.version - 1 - v0;
        assert_eq!(staleness, 3);
    }

    #[test]
    fn bank_updates_blocks_independently() {
        let bank = PsBank::spawn(vec![
            (vec![1.0], sgd(1.0)),
            (vec![10.0, 20.0], sgd(0.1)),
        ]);
        assert_eq!(bank.len(), 2);
        let replies = bank.update_all(vec![vec![1.0], vec![10.0, 10.0]]).unwrap();
        assert_eq!(replies[0].params, vec![0.0]);
        assert_eq!(replies[1].params, vec![9.0, 19.0]);
        let counts = bank.shutdown().unwrap();
        assert_eq!(counts, vec![1, 1]);
    }

    #[test]
    fn async_update_overlaps() {
        let ps = PsServer::spawn(vec![0.0], sgd(1.0));
        let rx = ps.update_async(vec![-5.0]).unwrap();
        // Do "compute" here, then collect.
        let r = rx.recv().unwrap();
        assert_eq!(r.params, vec![5.0]);
    }

    #[test]
    fn rejects_wrong_gradient_length() {
        let ps = PsServer::spawn(vec![0.0, 0.0], sgd(1.0));
        let err = ps.update(vec![1.0]).unwrap_err();
        assert_eq!(
            err,
            CommError::SizeMismatch { context: "PS update", expected: 2, got: 1 }
        );
        // The server is still alive and serving.
        assert_eq!(ps.update(vec![1.0, 1.0]).unwrap().version, 1);
    }

    #[test]
    fn crash_kills_the_server_without_panicking_clients() {
        let ps = PsServer::spawn(vec![0.0], sgd(1.0));
        ps.update(vec![-1.0]).unwrap();
        ps.crash();
        // Wait for the thread to actually exit, then every operation
        // reports a closed channel instead of aborting the process.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match ps.update(vec![-1.0]) {
                Err(CommError::ChannelClosed { .. }) => break,
                Ok(_) | Err(_) => {
                    assert!(std::time::Instant::now() < deadline, "crash never took effect");
                    std::thread::yield_now();
                }
            }
        }
        assert!(matches!(ps.fetch(), Err(CommError::ChannelClosed { .. })));
    }

    #[test]
    fn spawn_at_preserves_version_monotonicity() {
        let ps = PsServer::spawn_at(vec![7.0], 41, sgd(1.0));
        assert_eq!(ps.fetch().unwrap().version, 41);
        let r = ps.update(vec![1.0]).unwrap();
        assert_eq!(r.version, 42);
        assert_eq!(r.params, vec![6.0]);
    }
}
