//! Per-layer parameter servers (Sec. III-E(c)).
//!
//! Each trainable parameter block gets a dedicated server thread that
//! owns that shard of the model. Compute groups send gradient updates;
//! the server applies them *in arrival order* with its own solver state
//! and replies with the fresh shard plus a version counter, making
//! staleness directly measurable (`version_at_apply − version_sent_with`).
//!
//! The update rule is injected as a boxed closure so the same server
//! runs SGD-with-momentum, ADAM, or anything else the engines configure —
//! the server does not depend on `scidl-nn`.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::thread::JoinHandle;

/// Update rule applied by a PS: `(params, grad)` in, params mutated.
pub type UpdateFn = Box<dyn FnMut(&mut [f32], &[f32]) + Send>;

/// Reply to an update or fetch.
#[derive(Clone, Debug)]
pub struct PsReply {
    /// Fresh parameter shard after the update.
    pub params: Vec<f32>,
    /// Server version after applying (number of updates ever applied).
    pub version: u64,
}

enum PsRequest {
    Update { grad: Vec<f32>, reply: Sender<PsReply> },
    Fetch { reply: Sender<PsReply> },
    Shutdown,
}

/// Handle to one parameter-server thread owning one parameter block.
pub struct PsServer {
    tx: Sender<PsRequest>,
    handle: Option<JoinHandle<u64>>,
}

impl PsServer {
    /// Spawns a server owning `params`, applying `update` to each
    /// arriving gradient.
    pub fn spawn(params: Vec<f32>, mut update: UpdateFn) -> Self {
        let (tx, rx): (Sender<PsRequest>, Receiver<PsRequest>) = unbounded();
        let handle = std::thread::spawn(move || {
            let mut params = params;
            let mut version: u64 = 0;
            while let Ok(req) = rx.recv() {
                match req {
                    PsRequest::Update { grad, reply } => {
                        assert_eq!(grad.len(), params.len(), "PS gradient length mismatch");
                        update(&mut params, &grad);
                        version += 1;
                        // The requester may have gone away; ignore send
                        // failures (a dead group, Sec. VIII-A).
                        let _ = reply.send(PsReply { params: params.clone(), version });
                    }
                    PsRequest::Fetch { reply } => {
                        let _ = reply.send(PsReply { params: params.clone(), version });
                    }
                    PsRequest::Shutdown => break,
                }
            }
            version
        });
        Self { tx, handle: Some(handle) }
    }

    /// Sends a gradient and blocks for the fresh parameters.
    pub fn update(&self, grad: Vec<f32>) -> PsReply {
        let (rtx, rrx) = bounded(1);
        self.tx
            .send(PsRequest::Update { grad, reply: rtx })
            .expect("PS thread gone");
        rrx.recv().expect("PS reply channel closed")
    }

    /// Sends a gradient without blocking; the reply arrives on the
    /// returned receiver (used by the endpoint overlap path).
    pub fn update_async(&self, grad: Vec<f32>) -> Receiver<PsReply> {
        let (rtx, rrx) = bounded(1);
        self.tx
            .send(PsRequest::Update { grad, reply: rtx })
            .expect("PS thread gone");
        rrx
    }

    /// Fetches the current parameters without updating.
    pub fn fetch(&self) -> PsReply {
        let (rtx, rrx) = bounded(1);
        self.tx.send(PsRequest::Fetch { reply: rtx }).expect("PS thread gone");
        rrx.recv().expect("PS reply channel closed")
    }

    /// Stops the server, returning the total number of updates applied.
    pub fn shutdown(mut self) -> u64 {
        let _ = self.tx.send(PsRequest::Shutdown);
        self.handle
            .take()
            .expect("already shut down")
            .join()
            .expect("PS thread panicked")
    }
}

impl Drop for PsServer {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = self.tx.send(PsRequest::Shutdown);
            let _ = handle.join();
        }
    }
}

/// A bank of per-block parameter servers — one per trainable layer block,
/// the paper's design for avoiding PS saturation (Fig. 4).
pub struct PsBank {
    servers: Vec<PsServer>,
}

impl PsBank {
    /// Spawns one server per `(initial params, update rule)` pair.
    pub fn spawn(blocks: Vec<(Vec<f32>, UpdateFn)>) -> Self {
        Self {
            servers: blocks
                .into_iter()
                .map(|(p, u)| PsServer::spawn(p, u))
                .collect(),
        }
    }

    /// Number of servers (= parameter blocks).
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True when the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Access to an individual server.
    pub fn server(&self, idx: usize) -> &PsServer {
        &self.servers[idx]
    }

    /// Synchronous update of every block; returns per-block replies.
    pub fn update_all(&self, grads: Vec<Vec<f32>>) -> Vec<PsReply> {
        assert_eq!(grads.len(), self.servers.len(), "block count mismatch");
        // Post everything first (the per-layer parallelism of Fig. 4),
        // then collect.
        let pending: Vec<_> = self
            .servers
            .iter()
            .zip(grads)
            .map(|(s, g)| s.update_async(g))
            .collect();
        pending
            .into_iter()
            .map(|rx| rx.recv().expect("PS reply channel closed"))
            .collect()
    }

    /// Fetches every block's current parameters.
    pub fn fetch_all(&self) -> Vec<PsReply> {
        self.servers.iter().map(|s| s.fetch()).collect()
    }

    /// Shuts every server down, returning per-server update counts.
    pub fn shutdown(self) -> Vec<u64> {
        self.servers.into_iter().map(|s| s.shutdown()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn sgd(lr: f32) -> UpdateFn {
        Box::new(move |p, g| {
            for (pi, gi) in p.iter_mut().zip(g) {
                *pi -= lr * gi;
            }
        })
    }

    #[test]
    fn update_applies_rule_and_bumps_version() {
        let ps = PsServer::spawn(vec![1.0, 2.0], sgd(0.5));
        let r = ps.update(vec![2.0, 2.0]);
        assert_eq!(r.params, vec![0.0, 1.0]);
        assert_eq!(r.version, 1);
        let r2 = ps.update(vec![0.0, 2.0]);
        assert_eq!(r2.params, vec![0.0, 0.0]);
        assert_eq!(r2.version, 2);
        assert_eq!(ps.shutdown(), 2);
    }

    #[test]
    fn fetch_does_not_bump_version() {
        let ps = PsServer::spawn(vec![5.0], sgd(1.0));
        assert_eq!(ps.fetch().version, 0);
        ps.update(vec![1.0]);
        let f = ps.fetch();
        assert_eq!(f.version, 1);
        assert_eq!(f.params, vec![4.0]);
    }

    #[test]
    fn updates_from_concurrent_groups_all_apply() {
        let ps = PsServer::spawn(vec![0.0], sgd(1.0));
        let ps = std::sync::Arc::new(ps);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let ps = std::sync::Arc::clone(&ps);
                thread::spawn(move || {
                    for _ in 0..50 {
                        ps.update(vec![-1.0]); // param += 1 each update
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let f = ps.fetch();
        assert_eq!(f.version, 400);
        assert_eq!(f.params, vec![400.0]);
    }

    #[test]
    fn versions_measure_staleness() {
        let ps = PsServer::spawn(vec![0.0], sgd(1.0));
        let v0 = ps.fetch().version;
        // Another "group" applies 3 updates behind our back.
        for _ in 0..3 {
            ps.update(vec![0.0]);
        }
        let r = ps.update(vec![0.0]);
        // Our update was computed against v0 but applied at r.version;
        // staleness = (version before our apply) − v0.
        let staleness = r.version - 1 - v0;
        assert_eq!(staleness, 3);
    }

    #[test]
    fn bank_updates_blocks_independently() {
        let bank = PsBank::spawn(vec![
            (vec![1.0], sgd(1.0)),
            (vec![10.0, 20.0], sgd(0.1)),
        ]);
        assert_eq!(bank.len(), 2);
        let replies = bank.update_all(vec![vec![1.0], vec![10.0, 10.0]]);
        assert_eq!(replies[0].params, vec![0.0]);
        assert_eq!(replies[1].params, vec![9.0, 19.0]);
        let counts = bank.shutdown();
        assert_eq!(counts, vec![1, 1]);
    }

    #[test]
    fn async_update_overlaps() {
        let ps = PsServer::spawn(vec![0.0], sgd(1.0));
        let rx = ps.update_async(vec![-5.0]);
        // Do "compute" here, then collect.
        let r = rx.recv().unwrap();
        assert_eq!(r.params, vec![5.0]);
    }

    #[test]
    #[should_panic(expected = "PS reply channel closed")]
    fn rejects_wrong_gradient_length() {
        let ps = PsServer::spawn(vec![0.0, 0.0], sgd(1.0));
        // The length assert panics on the server thread, which closes the
        // reply channel; the client observes that as a closed channel.
        ps.update(vec![1.0]);
    }
}
