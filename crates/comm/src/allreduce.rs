//! True ring all-reduce over per-rank mailboxes.
//!
//! The shared-accumulator collective in [`crate::world`] is the simplest
//! correct implementation for threads; MLSL on the Aries network runs a
//! *ring*: a reduce-scatter phase (each rank ends up owning the fully
//! reduced sum of one chunk) followed by an all-gather phase (chunks
//! circulate until everyone has everything) — `2·(n−1)` steps moving
//! `bytes/n` each, which is where the `2·(n−1)/n · bytes/bw` cost model
//! in `scidl-cluster::aries` comes from. This module implements that
//! algorithm faithfully over crossbeam channels so the cost model's
//! step structure corresponds to real code.

use crate::error::{CommError, CommResult};
use crossbeam::channel::{unbounded, Receiver, Sender};

/// Mailbox fabric connecting `n` ranks in a ring.
pub struct RingFabric {
    /// `to_next[r]` sends to rank `(r+1) % n`.
    to_next: Vec<Sender<Vec<f32>>>,
    /// `from_prev[r]` receives from rank `(r-1+n) % n`.
    from_prev: Vec<Receiver<Vec<f32>>>,
}

impl RingFabric {
    /// Builds the ring for `n` ranks.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        // Sender r feeds receiver (r+1) % n: rotate receivers left by one.
        receivers.rotate_left(n - 1);
        Self { to_next: senders, from_prev: receivers }
    }

    /// Splits the fabric into per-rank endpoints `(send_next, recv_prev)`.
    pub fn into_endpoints(self) -> Vec<RingEndpoint> {
        self.to_next.into_iter().zip(self.from_prev).collect()
    }
}

/// One rank's pair of ring channels: `(send to next, receive from prev)`.
pub type RingEndpoint = (Sender<Vec<f32>>, Receiver<Vec<f32>>);

/// Reusable per-rank scratch state for ring all-reduces.
///
/// A bucketed-overlap training step runs one ring all-reduce *per
/// gradient bucket*, so the per-call costs of [`ring_allreduce_mean`] —
/// the chunk-boundary table and a fresh send buffer per step — would
/// grow linearly with bucket count. The scratch caches the boundary
/// table (keyed on `(n, len)`) and recycles received message buffers as
/// the next step's send buffers: messages circulate the ring, so in
/// steady state a reduce allocates nothing at all. Reuse never changes
/// arithmetic — results are bit-identical with or without scratch.
#[derive(Debug, Default)]
pub struct RingScratch {
    /// Cached chunk boundaries for `starts_key == (n, len)`.
    starts: Vec<usize>,
    starts_key: (usize, usize),
    /// Recycled message buffers (bounded pool).
    free: Vec<Vec<f32>>,
}

impl RingScratch {
    /// Empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn take_buf(&mut self, src: &[f32]) -> Vec<f32> {
        let mut buf = self.free.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(src);
        buf
    }

    fn recycle(&mut self, buf: Vec<f32>) {
        // At most a handful of messages are ever in flight per rank.
        if self.free.len() < 4 {
            self.free.push(buf);
        }
    }
}

/// Ring all-reduce (mean) for rank `rank` of `n`: reduce-scatter then
/// all-gather. All ranks must call this concurrently with equal-length
/// buffers; on success `data` holds the elementwise mean. A vanished
/// neighbour (dead rank, Sec. VIII-A) surfaces as
/// [`CommError::ChannelClosed`] — in a synchronous group that is fatal
/// for the whole group, but the *caller* decides that, not this crate.
///
/// Allocates working buffers per call; hot paths that reduce many
/// buckets per iteration should hold a [`RingScratch`] and call
/// [`ring_allreduce_mean_scratch`] instead.
pub fn ring_allreduce_mean(
    rank: usize,
    n: usize,
    data: &mut [f32],
    send_next: &Sender<Vec<f32>>,
    recv_prev: &Receiver<Vec<f32>>,
) -> CommResult<()> {
    let mut scratch = RingScratch::new();
    ring_allreduce_mean_scratch(rank, n, data, &mut scratch, send_next, recv_prev)
}

#[inline]
fn chunk_range(starts: &[usize], c: usize) -> std::ops::Range<usize> {
    starts[c]..starts[c + 1]
}

/// [`ring_allreduce_mean`] with caller-owned scratch: bit-identical
/// results, but the chunk table is cached and message buffers are
/// recycled across calls, so repeated reduces (one per gradient bucket)
/// stop allocating once the pool is warm.
pub fn ring_allreduce_mean_scratch(
    rank: usize,
    n: usize,
    data: &mut [f32],
    scratch: &mut RingScratch,
    send_next: &Sender<Vec<f32>>,
    recv_prev: &Receiver<Vec<f32>>,
) -> CommResult<()> {
    if n <= 1 {
        return Ok(());
    }
    // Attach to whichever trace run is in flight (one atomic load and
    // no-op timestamps when tracing is off).
    let tr = scidl_trace::TraceHandle::current();
    let t0 = tr.now();
    let len = data.len();
    // Chunk boundaries: chunk c covers [starts[c], starts[c+1]).
    if scratch.starts_key != (n, len) || scratch.starts.is_empty() {
        scratch.starts.clear();
        scratch.starts.extend((0..=n).map(|c| c * len / n));
        scratch.starts_key = (n, len);
    }
    let gone = || CommError::ChannelClosed { context: "ring neighbour" };

    // Reduce-scatter: in step s, send chunk (rank - s) and receive+add
    // chunk (rank - s - 1).
    for s in 0..n - 1 {
        let send_c = (rank + n - s) % n;
        let recv_c = (rank + n - s - 1) % n;
        let send_r = chunk_range(&scratch.starts, send_c);
        let recv_r = chunk_range(&scratch.starts, recv_c);
        let out = scratch.take_buf(&data[send_r]);
        send_next.send(out).map_err(|_| gone())?;
        let incoming = recv_prev.recv().map_err(|_| gone())?;
        for (d, v) in data[recv_r].iter_mut().zip(&incoming) {
            *d += v;
        }
        scratch.recycle(incoming);
    }
    // Rank now owns the full sum of chunk (rank + 1) % n; scale it.
    let own = (rank + 1) % n;
    let inv = 1.0 / n as f32;
    for d in &mut data[chunk_range(&scratch.starts, own)] {
        *d *= inv;
    }
    // All-gather: circulate finished chunks.
    for s in 0..n - 1 {
        let send_c = (rank + 1 + n - s) % n;
        let recv_c = (rank + n - s) % n;
        let send_r = chunk_range(&scratch.starts, send_c);
        let recv_r = chunk_range(&scratch.starts, recv_c);
        let out = scratch.take_buf(&data[send_r]);
        send_next.send(out).map_err(|_| gone())?;
        let incoming = recv_prev.recv().map_err(|_| gone())?;
        data[recv_r].copy_from_slice(&incoming);
        scratch.recycle(incoming);
    }
    tr.span(rank as u64, t0, scidl_trace::EventKind::Allreduce { elems: len as u64 });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_ring(n: usize, len: usize) -> Vec<Vec<f32>> {
        let endpoints = RingFabric::new(n).into_endpoints();
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, (tx, rx))| {
                thread::spawn(move || {
                    let mut data: Vec<f32> =
                        (0..len).map(|i| (rank * len + i) as f32).collect();
                    ring_allreduce_mean(rank, n, &mut data, &tx, &rx).unwrap();
                    data
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    fn expected(n: usize, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| {
                (0..n).map(|r| (r * len + i) as f32).sum::<f32>() / n as f32
            })
            .collect()
    }

    #[test]
    fn ring_matches_mean_small() {
        for n in [2, 3, 4, 5, 8] {
            let len = 12;
            let results = run_ring(n, len);
            let want = expected(n, len);
            for (r, got) in results.iter().enumerate() {
                for (a, b) in got.iter().zip(&want) {
                    assert!((a - b).abs() < 1e-4, "n={n} rank={r}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn ring_handles_len_not_divisible_by_n() {
        let results = run_ring(4, 10);
        let want = expected(4, 10);
        for got in results {
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn ring_handles_len_smaller_than_n() {
        // Some chunks are empty; the algorithm must still terminate.
        let results = run_ring(6, 3);
        let want = expected(6, 3);
        for got in results {
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn single_rank_is_identity() {
        let endpoints = RingFabric::new(1).into_endpoints();
        let (tx, rx) = &endpoints[0];
        let mut data = vec![1.0, 2.0];
        ring_allreduce_mean(0, 1, &mut data, tx, rx).unwrap();
        assert_eq!(data, vec![1.0, 2.0]);
    }

    #[test]
    fn dead_neighbour_is_an_error_not_a_panic() {
        // Rank 1 dies before participating: rank 0's reduce must fail
        // with ChannelClosed (the sync-group fatality of Sec. VIII-A)
        // instead of aborting the process.
        let mut endpoints = RingFabric::new(2).into_endpoints();
        let (tx1, rx1) = endpoints.pop().unwrap();
        let (tx0, rx0) = endpoints.pop().unwrap();
        drop((tx1, rx1)); // rank 1 is gone
        let mut data = vec![1.0, 2.0];
        let err = ring_allreduce_mean(0, 2, &mut data, &tx0, &rx0).unwrap_err();
        assert!(matches!(err, crate::error::CommError::ChannelClosed { .. }));
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_rounds_and_lengths() {
        // A warm scratch (recycled buffers, cached then invalidated chunk
        // tables) must produce bit-identical results to fresh per-call
        // state, including when consecutive calls change length.
        let n = 4;
        let lens = [13usize, 13, 7, 32, 7];
        let endpoints = RingFabric::new(n).into_endpoints();
        let scratch_out: Vec<Vec<Vec<f32>>> = {
            let handles: Vec<_> = endpoints
                .into_iter()
                .enumerate()
                .map(|(rank, (tx, rx))| {
                    thread::spawn(move || {
                        let mut scratch = RingScratch::new();
                        let mut rounds = Vec::new();
                        for (round, &len) in lens.iter().enumerate() {
                            let mut data: Vec<f32> = (0..len)
                                .map(|i| ((rank + 1) * (i + 1) * (round + 1)) as f32 * 0.37)
                                .collect();
                            ring_allreduce_mean_scratch(rank, n, &mut data, &mut scratch, &tx, &rx)
                                .unwrap();
                            rounds.push(data);
                        }
                        rounds
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        };
        // Reference: fresh allocating calls, one ring per round.
        for (round, &len) in lens.iter().enumerate() {
            let endpoints = RingFabric::new(n).into_endpoints();
            let handles: Vec<_> = endpoints
                .into_iter()
                .enumerate()
                .map(|(rank, (tx, rx))| {
                    thread::spawn(move || {
                        let mut data: Vec<f32> = (0..len)
                            .map(|i| ((rank + 1) * (i + 1) * (round + 1)) as f32 * 0.37)
                            .collect();
                        ring_allreduce_mean(rank, n, &mut data, &tx, &rx).unwrap();
                        data
                    })
                })
                .collect();
            let fresh: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for rank in 0..n {
                assert_eq!(scratch_out[rank][round], fresh[rank], "rank {rank} round {round}");
            }
        }
    }

    #[test]
    fn ring_agrees_with_tree_allreduce() {
        use crate::world::CommWorld;
        let n = 5;
        let len = 37;
        let ring = run_ring(n, len);

        let comms = CommWorld::new(n);
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(rank, c)| {
                thread::spawn(move || {
                    let mut data: Vec<f32> =
                        (0..len).map(|i| (rank * len + i) as f32).collect();
                    c.allreduce_mean(&mut data);
                    data
                })
            })
            .collect();
        let tree: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (a, b) in ring[0].iter().zip(&tree[0]) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
}
