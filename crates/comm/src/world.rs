//! Communicator: rank/size handles over a shared-memory fabric, with
//! tree all-reduce, broadcast and barrier collectives, and `split` for
//! forming disjoint compute groups.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// State shared by all ranks of one communicator.
struct Shared {
    n: usize,
    m: Mutex<State>,
    cv: Condvar,
}

struct State {
    /// Accumulator for the in-flight reduction.
    sum: Vec<f32>,
    /// Contributions received this round.
    count: usize,
    /// Completed round counter.
    generation: u64,
    /// Double-buffered results, indexed by `generation & 1` of the round
    /// that produced them.
    results: [Vec<f32>; 2],
    /// Broadcast buffer (root writes, others copy).
    bcast: Vec<f32>,
    /// Barrier arrival count and generation.
    barrier_count: usize,
    barrier_gen: u64,
}

/// A rank's handle on a communicator (clonable only via [`CommWorld`]).
pub struct Communicator {
    rank: usize,
    shared: Arc<Shared>,
}

/// Factory for the communicators of an `n`-rank world.
pub struct CommWorld;

impl CommWorld {
    /// Creates `n` communicator handles for one world.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(n: usize) -> Vec<Communicator> {
        assert!(n >= 1, "world must have at least one rank");
        let shared = Arc::new(Shared {
            n,
            m: Mutex::new(State {
                sum: Vec::new(),
                count: 0,
                generation: 0,
                results: [Vec::new(), Vec::new()],
                bcast: Vec::new(),
                barrier_count: 0,
                barrier_gen: 0,
            }),
            cv: Condvar::new(),
        });
        (0..n)
            .map(|rank| Communicator { rank, shared: Arc::clone(&shared) })
            .collect()
    }

    /// Splits `n` ranks into `groups` contiguous groups, returning for
    /// each global rank its `(group index, group communicator)`. This is
    /// the analogue of the MLSL extension the paper built for placing
    /// nodes into disjoint communication groups (Sec. III-E(b)).
    pub fn split(n: usize, groups: usize) -> Vec<(usize, Communicator)> {
        assert!(groups >= 1 && groups <= n, "invalid group count");
        let base = n / groups;
        let rem = n % groups;
        let mut out: Vec<(usize, Communicator)> = Vec::with_capacity(n);
        for g in 0..groups {
            let size = base + usize::from(g < rem);
            for comm in CommWorld::new(size) {
                out.push((g, comm));
            }
        }
        out
    }
}

impl Communicator {
    /// This rank's index in `[0, size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.shared.n
    }

    /// In-place all-reduce: on return every rank's `data` holds the
    /// elementwise **mean** of all contributions (data-parallel gradient
    /// averaging). All ranks must pass equal-length buffers.
    pub fn allreduce_mean(&self, data: &mut [f32]) {
        let sh = &*self.shared;
        if sh.n == 1 {
            return;
        }
        let mut st = sh.m.lock();
        // Wait for the previous round's writers to drain (sum cleared on
        // first contribution of each round).
        if st.count == 0 {
            st.sum.clear();
            st.sum.resize(data.len(), 0.0);
        }
        assert_eq!(st.sum.len(), data.len(), "allreduce length mismatch across ranks");
        for (s, &d) in st.sum.iter_mut().zip(data.iter()) {
            *s += d;
        }
        st.count += 1;
        let my_gen = st.generation;
        if st.count == sh.n {
            let inv = 1.0 / sh.n as f32;
            let mut result = std::mem::take(&mut st.sum);
            result.iter_mut().for_each(|v| *v *= inv);
            let slot = (my_gen & 1) as usize;
            st.results[slot] = result;
            st.count = 0;
            st.generation += 1;
            sh.cv.notify_all();
        } else {
            sh.cv.wait_while(&mut st, |st| st.generation == my_gen);
        }
        let slot = (my_gen & 1) as usize;
        data.copy_from_slice(&st.results[slot]);
    }

    /// Broadcast from `root`: after return every rank's `data` equals the
    /// root's. Piggybacks on the reduction machinery (contributions from
    /// non-roots are zeros, then scaled by `n`), which keeps a single
    /// code path exercised by every collective.
    pub fn broadcast(&self, root: usize, data: &mut [f32]) {
        let sh = &*self.shared;
        if sh.n == 1 {
            return;
        }
        assert!(root < sh.n, "broadcast root out of range");
        if self.rank == root {
            let mut st = sh.m.lock();
            st.bcast.clear();
            st.bcast.extend_from_slice(data);
            drop(st);
        }
        // Everyone synchronises; then non-roots copy.
        self.barrier();
        if self.rank != root {
            let st = sh.m.lock();
            assert_eq!(st.bcast.len(), data.len(), "broadcast length mismatch");
            data.copy_from_slice(&st.bcast);
        }
        // Second barrier so the root cannot start the next broadcast
        // while laggards are still copying.
        self.barrier();
    }

    /// Full barrier across the communicator.
    pub fn barrier(&self) {
        let sh = &*self.shared;
        if sh.n == 1 {
            return;
        }
        let mut st = sh.m.lock();
        let my_gen = st.barrier_gen;
        st.barrier_count += 1;
        if st.barrier_count == sh.n {
            st.barrier_count = 0;
            st.barrier_gen += 1;
            sh.cv.notify_all();
        } else {
            sh.cv.wait_while(&mut st, |st| st.barrier_gen == my_gen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_ranks<F>(n: usize, f: F) -> Vec<Vec<f32>>
    where
        F: Fn(Communicator) -> Vec<f32> + Send + Sync + Copy + 'static,
    {
        let comms = CommWorld::new(n);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| thread::spawn(move || f(c)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn allreduce_mean_of_ranks() {
        let results = run_ranks(4, |c| {
            let mut data = vec![c.rank() as f32, 10.0 * c.rank() as f32];
            c.allreduce_mean(&mut data);
            data
        });
        for r in results {
            assert_eq!(r, vec![1.5, 15.0]); // mean of 0..4 and 0,10,20,30
        }
    }

    #[test]
    fn allreduce_repeated_rounds_stay_consistent() {
        let results = run_ranks(3, |c| {
            let mut acc = Vec::new();
            for round in 0..20 {
                let mut data = vec![(c.rank() + round) as f32];
                c.allreduce_mean(&mut data);
                acc.push(data[0]);
            }
            acc
        });
        for r in &results {
            for (round, &v) in r.iter().enumerate() {
                let expect = round as f32 + 1.0; // mean of rank+round over ranks 0..3
                assert_eq!(v, expect, "round {round}");
            }
        }
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn single_rank_allreduce_is_identity() {
        let mut comms = CommWorld::new(1);
        let c = comms.pop().unwrap();
        let mut data = vec![3.0, 4.0];
        c.allreduce_mean(&mut data);
        assert_eq!(data, vec![3.0, 4.0]);
    }

    #[test]
    fn broadcast_distributes_root_data() {
        let results = run_ranks(4, |c| {
            let mut data = if c.rank() == 2 { vec![7.0, 8.0, 9.0] } else { vec![0.0; 3] };
            c.broadcast(2, &mut data);
            data
        });
        for r in results {
            assert_eq!(r, vec![7.0, 8.0, 9.0]);
        }
    }

    #[test]
    fn broadcast_rounds_do_not_bleed() {
        let results = run_ranks(3, |c| {
            let mut out = Vec::new();
            for round in 0..10 {
                let mut data = if c.rank() == 0 { vec![round as f32] } else { vec![-1.0] };
                c.broadcast(0, &mut data);
                out.push(data[0]);
            }
            out
        });
        for r in results {
            assert_eq!(r, (0..10).map(|x| x as f32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn split_forms_disjoint_groups_of_expected_size() {
        let members = CommWorld::split(10, 3);
        assert_eq!(members.len(), 10);
        let sizes: Vec<usize> = (0..3)
            .map(|g| members.iter().filter(|(gg, _)| *gg == g).count())
            .collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        for (g, c) in &members {
            assert_eq!(c.size(), sizes[*g]);
        }
    }

    #[test]
    fn group_allreduce_is_scoped_to_group() {
        let members = CommWorld::split(4, 2);
        let handles: Vec<_> = members
            .into_iter()
            .map(|(g, c)| {
                thread::spawn(move || {
                    let mut data = vec![(g * 100 + c.rank()) as f32];
                    c.allreduce_mean(&mut data);
                    (g, data[0])
                })
            })
            .collect();
        for h in handles {
            let (g, v) = h.join().unwrap();
            // Group 0: ranks {0,1} → mean 0.5; group 1: {100,101} → 100.5.
            let expect = g as f32 * 100.0 + 0.5;
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let flag = Arc::new(AtomicUsize::new(0));
        let comms = CommWorld::new(4);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let flag = Arc::clone(&flag);
                thread::spawn(move || {
                    flag.fetch_add(1, Ordering::SeqCst);
                    c.barrier();
                    // After the barrier every increment must be visible.
                    assert_eq!(flag.load(Ordering::SeqCst), 4);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
