//! Property-based tests for the communication layer: collective
//! correctness over arbitrary rank counts, buffer lengths and contents.

use proptest::prelude::*;
use scidl_comm::ps::UpdateFn;
use scidl_comm::{
    bucketed_allreduce_mean, ring_allreduce_mean, BucketPlan, BucketSink, CommWorld,
    OverlapContext, PsBank, RingFabric, RingScratch,
};
use std::thread;

fn expected_mean(contribs: &[Vec<f32>]) -> Vec<f32> {
    let n = contribs.len();
    let len = contribs[0].len();
    (0..len)
        .map(|i| contribs.iter().map(|c| c[i]).sum::<f32>() / n as f32)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tree all-reduce computes the exact mean for arbitrary inputs and
    /// every rank observes the same result.
    #[test]
    fn tree_allreduce_mean_correct(
        n in 1usize..7,
        len in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as i32 % 1000) as f32 / 100.0
        };
        let contribs: Vec<Vec<f32>> = (0..n).map(|_| (0..len).map(|_| next()).collect()).collect();
        let want = expected_mean(&contribs);

        let comms = CommWorld::new(n);
        let handles: Vec<_> = comms
            .into_iter()
            .zip(contribs)
            .map(|(c, mut data)| {
                thread::spawn(move || {
                    c.allreduce_mean(&mut data);
                    data
                })
            })
            .collect();
        let results: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results {
            for (a, b) in r.iter().zip(&want) {
                prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
            }
        }
    }

    /// Ring all-reduce agrees with the mean for arbitrary n/len,
    /// including len < n (empty chunks).
    #[test]
    fn ring_allreduce_mean_correct(
        n in 1usize..7,
        len in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut s = seed ^ 0xDEAD;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as i32 % 1000) as f32 / 100.0
        };
        let contribs: Vec<Vec<f32>> = (0..n).map(|_| (0..len).map(|_| next()).collect()).collect();
        let want = expected_mean(&contribs);

        let endpoints = RingFabric::new(n).into_endpoints();
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .zip(contribs)
            .map(|((rank, (tx, rx)), mut data)| {
                thread::spawn(move || {
                    ring_allreduce_mean(rank, n, &mut data, &tx, &rx).unwrap();
                    data
                })
            })
            .collect();
        let results: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results {
            for (a, b) in r.iter().zip(&want) {
                prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
            }
        }
    }

    /// The PS applies every update exactly once: after `k` concurrent
    /// decrement-updates of −1 each, the parameter equals `k` and the
    /// version equals `k`.
    #[test]
    fn ps_applies_every_update(threads in 1usize..6, per in 1usize..20) {
        let bank = PsBank::spawn(vec![(
            vec![0.0f32],
            Box::new(|p: &mut [f32], g: &[f32]| p[0] -= g[0]) as UpdateFn,
        )]);
        let bank = std::sync::Arc::new(bank);
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let bank = std::sync::Arc::clone(&bank);
                thread::spawn(move || {
                    for _ in 0..per {
                        bank.server(0).update(vec![-1.0]).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let f = bank.server(0).fetch().unwrap();
        prop_assert_eq!(f.version, (threads * per) as u64);
        prop_assert_eq!(f.params[0], (threads * per) as f32);
    }

    /// A supervised PS conserves the update count across an injected
    /// crash at an arbitrary point: with a single client retrying
    /// through the supervisor, every update lands exactly once, so the
    /// recovered parameter equals the number of updates sent.
    #[test]
    fn supervised_ps_conserves_updates_across_crashes(
        total in 5u64..40,
        crash_after in 1u64..20,
    ) {
        use scidl_comm::{SupervisedPs, SupervisorConfig, UpdateFactory};
        use std::time::Duration;
        let make: UpdateFactory =
            Box::new(|| Box::new(|p: &mut [f32], g: &[f32]| p[0] -= g[0]) as UpdateFn);
        let cfg = SupervisorConfig {
            reply_timeout: Duration::from_secs(5),
            inject_crash_after: Some(crash_after),
            ..SupervisorConfig::default()
        };
        let ps = SupervisedPs::spawn(vec![0.0f32], make, cfg);
        let mut last = 0.0f32;
        for _ in 0..total {
            last = ps.update(&[-1.0]).unwrap().params[0];
        }
        prop_assert_eq!(last, total as f32);
        let f = ps.fetch().unwrap();
        prop_assert_eq!(f.params[0], total as f32);
        if crash_after < total {
            prop_assert!(ps.respawns() >= 1);
        }
    }

    /// Differential battery for the overlap tentpole: the overlapped
    /// bucketed all-reduce (dedicated comm thread, blocks pushed in
    /// backward-readiness order) is **bit-identical** to the sequential
    /// bucketed baseline on every rank, for arbitrary seeded block
    /// shapes, rank counts 1/2/4 and bucket size targets.
    #[test]
    fn overlapped_bucketed_reduce_is_bit_identical_to_sequential(
        n_pick in 0usize..3,
        sizes in proptest::collection::vec(1usize..60, 1..8),
        target_bytes in 0usize..300,
        seed in any::<u64>(),
    ) {
        let n = [1usize, 2, 4][n_pick];
        let plan = BucketPlan::new(&sizes, target_bytes);
        let total = plan.total_len();
        let grad = |rank: usize| -> Vec<f32> {
            let mut s = seed ^ ((rank as u64) << 32) ^ 0xB0C7;
            (0..total)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((s >> 33) as i32 % 1000) as f32 / 64.0
                })
                .collect()
        };

        // Overlapped: comm thread per rank, blocks pushed deepest-first.
        let endpoints = RingFabric::new(n).into_endpoints();
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, ep)| {
                let plan = plan.clone();
                let flat = grad(rank);
                thread::spawn(move || {
                    let mut ctx = OverlapContext::spawn(rank, n, ep);
                    let mut stream = ctx.stream(&plan);
                    for b in (0..plan.num_blocks()).rev() {
                        let (lo, hi) = plan.block_flat_range(b);
                        stream.push_block(b, &flat[lo..hi]);
                    }
                    let mut out = vec![0.0f32; total];
                    stream.finish(&mut out).unwrap();
                    out
                })
            })
            .collect();
        let overlapped: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        // Sequential baseline: same plan, buckets reduced one by one.
        let endpoints = RingFabric::new(n).into_endpoints();
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, (tx, rx))| {
                let plan = plan.clone();
                let mut data = grad(rank);
                thread::spawn(move || {
                    let mut scratch = RingScratch::new();
                    bucketed_allreduce_mean(&plan, rank, n, &mut data, &mut scratch, &tx, &rx)
                        .unwrap();
                    data
                })
            })
            .collect();
        let sequential: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        let contribs: Vec<Vec<f32>> = (0..n).map(grad).collect();
        let want = expected_mean(&contribs);
        for rank in 0..n {
            // Bit identity with the sequential schedule...
            prop_assert_eq!(&overlapped[rank], &sequential[rank], "rank {} diverged", rank);
            // ...agreement across ranks...
            prop_assert_eq!(&overlapped[rank], &overlapped[0]);
            // ...and numerical correctness of the mean itself.
            for (a, b) in overlapped[rank].iter().zip(&want) {
                prop_assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
            }
        }
    }

    /// Broadcast delivers the root's data to every rank for any root.
    #[test]
    fn broadcast_from_any_root(n in 1usize..6, root_pick in any::<usize>(), len in 1usize..20) {
        let root = root_pick % n;
        let comms = CommWorld::new(n);
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(rank, c)| {
                thread::spawn(move || {
                    let mut data = if rank == root {
                        (0..len).map(|i| (i * 3 + 1) as f32).collect::<Vec<_>>()
                    } else {
                        vec![0.0; len]
                    };
                    c.broadcast(root, &mut data);
                    data
                })
            })
            .collect();
        let want: Vec<f32> = (0..len).map(|i| (i * 3 + 1) as f32).collect();
        for h in handles {
            prop_assert_eq!(h.join().unwrap(), want.clone());
        }
    }
}
