//! Steady-state allocation audit for the gemm/col hot path.
//!
//! A counting `#[global_allocator]` proves the Workspace pool keeps the
//! heap allocator off the training loop: after a warm-up iteration, a
//! bare packed GEMM performs **zero** allocations, and a full conv
//! forward+backward iteration allocates only its unavoidable outputs
//! (the output tensor, the cached-input clone, the input-gradient
//! tensor) — never gemm pack panels or im2col scratch.
//!
//! This file deliberately contains a single `#[test]`: the counter is
//! process-global, and a second test running on a sibling thread would
//! pollute the armed window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A pool buffer growing counts as an allocation — the steady
        // state must not resize its scratch either.
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with the counter armed and returns the number of heap
/// allocations (including reallocs) it performed.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (usize, R) {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let r = f();
    ARMED.store(false, Ordering::SeqCst);
    (ALLOCS.load(Ordering::SeqCst), r)
}

#[test]
fn second_iteration_allocates_nothing_on_the_gemm_path() {
    use scidl_nn::{Conv2d, Layer};
    use scidl_tensor::{gemm, Shape4, Tensor, TensorRng, Transpose, Workspace};

    // --- Part 1: a bare packed GEMM is allocation-free once warm. ---
    // Shape crosses the small-problem, parallel and KC thresholds, so the
    // full pack machinery (B slab + per-tile A panels) runs.
    let (m, n, k) = (64, 300, 288);
    let mut rng = TensorRng::new(42);
    let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_range(-1.0, 1.0) as f32).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.uniform_range(-1.0, 1.0) as f32).collect();
    let mut c = vec![0.0f32; m * n];

    Workspace::clear();
    // Warm-up: populates the thread-local pool with the pack panels.
    gemm(Transpose::No, Transpose::No, m, n, k, 1.0, &a, &b, 0.0, &mut c);
    let (gemm_allocs, _) = count_allocs(|| {
        gemm(Transpose::No, Transpose::No, m, n, k, 1.0, &a, &b, 0.0, &mut c);
    });
    assert_eq!(
        gemm_allocs, 0,
        "warm packed gemm performed {gemm_allocs} heap allocations; the pack workspace must be pooled"
    );

    // --- Part 2: a warm conv forward+backward allocates only tensors. ---
    let mut conv = Conv2d::new("c", 3, 16, 3, 1, 1, &mut rng);
    let x = rng.uniform_tensor(Shape4::new(2, 3, 14, 14), -1.0, 1.0);
    let dy_shape = conv.out_shape(x.shape());
    let dy = Tensor::filled(dy_shape, 1.0);

    // Two warm iterations: the first grows the pool, the second settles
    // best-fit reuse ordering.
    for _ in 0..2 {
        conv.forward(&x);
        conv.backward(&dy);
    }

    let (conv_allocs, _) = count_allocs(|| {
        let y = conv.forward(&x);
        let dx = conv.backward(&dy);
        (y, dx)
    });
    // Unavoidable steady-state allocations: the output tensor, the
    // cached-input clone, and the input-gradient tensor. Anything above
    // that means col/pack scratch leaked back onto the heap path.
    assert!(
        conv_allocs <= 3,
        "warm conv iteration performed {conv_allocs} heap allocations (expected ≤ 3: \
         output, cached input, input gradient)"
    );
}
