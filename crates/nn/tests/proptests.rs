//! Property-based tests for the nn crate: layer gradient identities,
//! loss invariants and solver behaviour under random configurations.

use proptest::prelude::*;
use scidl_nn::loss::mse_loss;
use scidl_nn::network::Model;
use scidl_nn::{
    Adam, Conv2d, Deconv2d, Dense, GlobalAvgPool, Layer, MaxPool2d, Network, Relu, Sgd,
    SoftmaxCrossEntropy, Solver,
};
use scidl_tensor::{Shape4, Tensor, TensorRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any conv configuration, the directional derivative computed by
    /// backward matches a finite-difference probe of sum(forward(x)).
    #[test]
    fn conv_backward_matches_directional_derivative(
        cin in 1usize..3,
        cout in 1usize..4,
        hw in 4usize..8,
        k in 1usize..4,
        stride in 1usize..3,
        seed in any::<u64>(),
    ) {
        prop_assume!(hw >= k);
        let mut rng = TensorRng::new(seed);
        let mut conv = Conv2d::new("c", cin, cout, k, stride, k / 2, &mut rng);
        let x = rng.uniform_tensor(Shape4::new(1, cin, hw, hw), -1.0, 1.0);
        let dir = rng.uniform_tensor(x.shape(), -1.0, 1.0);

        let y = conv.forward(&x);
        let dx = conv.backward(&Tensor::filled(y.shape(), 1.0));
        let analytic: f64 = dx.data().iter().zip(dir.data()).map(|(a, b)| *a as f64 * *b as f64).sum();

        let eps = 1e-3f32;
        let mut xp = x.clone();
        xp.axpy(eps, &dir);
        let mut xm = x.clone();
        xm.axpy(-eps, &dir);
        let lp = conv.forward(&xp).sum() as f64;
        let lm = conv.forward(&xm).sum() as f64;
        let numeric = (lp - lm) / (2.0 * eps as f64);
        prop_assert!(
            (analytic - numeric).abs() < 0.05 * (1.0 + analytic.abs()),
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    /// Conv followed by the matching deconv restores the input shape for
    /// stride-2 geometries (the decoder inverts the encoder's spatial
    /// downsampling exactly).
    #[test]
    fn deconv_inverts_conv_spatial_shape(
        c1 in 1usize..5,
        c2 in 1usize..5,
        hw_half in 2usize..9,
        seed in any::<u64>(),
    ) {
        let hw = hw_half * 2;
        let mut rng = TensorRng::new(seed);
        let mut conv = Conv2d::new("c", c1, c2, 5, 2, 2, &mut rng);
        let mut dec = Deconv2d::new("d", c2, c1, 4, 2, 1, &mut rng);
        let x = rng.uniform_tensor(Shape4::new(1, c1, hw, hw), -1.0, 1.0);
        let y = conv.forward(&x);
        let z = dec.forward(&y);
        prop_assert_eq!(z.shape(), x.shape());
    }

    /// Cross-entropy loss is non-negative and its gradient rows sum to 0.
    #[test]
    fn softmax_ce_invariants(
        n in 1usize..5,
        k in 2usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = TensorRng::new(seed);
        let logits = rng.uniform_tensor(Shape4::new(n, k, 1, 1), -3.0, 3.0);
        let labels: Vec<usize> = (0..n).map(|i| (seed as usize + i) % k).collect();
        let (loss, grad) = SoftmaxCrossEntropy::forward(&logits, &labels);
        prop_assert!(loss >= 0.0);
        for i in 0..n {
            let s: f32 = grad.item(i).iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    /// MSE is symmetric and zero iff the inputs coincide.
    #[test]
    fn mse_symmetry(len in 1usize..40, seed in any::<u64>()) {
        let mut rng = TensorRng::new(seed);
        let a = rng.uniform_tensor(Shape4::flat(len), -2.0, 2.0);
        let b = rng.uniform_tensor(Shape4::flat(len), -2.0, 2.0);
        let (lab, _) = mse_loss(&a, &b);
        let (lba, _) = mse_loss(&b, &a);
        prop_assert!((lab - lba).abs() < 1e-6);
        let (laa, _) = mse_loss(&a, &a);
        prop_assert_eq!(laa, 0.0);
    }

    /// One solver step along the true gradient reduces a convex quadratic
    /// for any small learning rate.
    #[test]
    fn solver_step_descends_quadratic(
        lr in 0.001f32..0.2,
        momentum in 0.0f32..0.95,
        start in -5.0f32..5.0,
        adam_flag in any::<bool>(),
    ) {
        let loss = |w: f32| 0.5 * (w - 1.0) * (w - 1.0);
        let mut w = vec![start];
        let mut solver: Box<dyn Solver> = if adam_flag {
            Box::new(Adam::new(lr * 0.5))
        } else {
            Box::new(Sgd::new(lr, momentum))
        };
        let mut best = loss(start);
        for _ in 0..300 {
            let g = vec![w[0] - 1.0];
            solver.step_block(0, &mut w, &g);
            best = best.min(loss(w[0]));
        }
        prop_assert!(best < loss(start).max(1e-9) + 1e-6, "no descent from {start}: best {best}");
    }

    /// flat-params roundtrip is the identity for arbitrary networks.
    #[test]
    fn flat_param_roundtrip(seed in any::<u64>()) {
        let mut rng = TensorRng::new(seed);
        let mut net = Network::new("n")
            .push(Conv2d::new("c1", 2, 3, 3, 1, 1, &mut rng))
            .push(Relu::new("r"))
            .push(MaxPool2d::new("p", 2, 2))
            .push(GlobalAvgPool::new("g"))
            .push(Dense::new("fc", 3, 2, &mut rng));
        let before = net.flat_params();
        net.set_flat_params(&before);
        prop_assert_eq!(net.flat_params(), before);
    }

    /// Winograd F(2x2,3x3) matches the im2col path for arbitrary shapes.
    #[test]
    fn winograd_matches_im2col(
        cin in 1usize..4,
        cout in 1usize..5,
        hw_half in 2usize..7,
        seed in any::<u64>(),
    ) {
        use scidl_nn::winograd::winograd_conv3x3;
        let hw = hw_half * 2;
        let mut rng = TensorRng::new(seed);
        let mut conv = Conv2d::new("c", cin, cout, 3, 1, 1, &mut rng);
        let x = rng.uniform_tensor(Shape4::new(1, cin, hw, hw), -1.0, 1.0);
        let want = conv.forward(&x);
        let got = winograd_conv3x3(&x, &conv.params()[0].value, conv.params()[1].value.data());
        prop_assert!(got.max_abs_diff(&want) < 1e-3);
    }

    /// FFT convolution matches the im2col path for arbitrary same-padded
    /// 3x3 shapes.
    #[test]
    fn fftconv_matches_im2col(
        cin in 1usize..4,
        cout in 1usize..4,
        hw in 4usize..10,
        seed in any::<u64>(),
    ) {
        use scidl_nn::fftconv::fft_conv;
        let mut rng = TensorRng::new(seed ^ 0xFF7);
        let mut conv = Conv2d::new("c", cin, cout, 3, 1, 1, &mut rng);
        let x = rng.uniform_tensor(Shape4::new(1, cin, hw, hw), -1.0, 1.0);
        let want = conv.forward(&x);
        let got = fft_conv(&x, &conv.params()[0].value, conv.params()[1].value.data(), 1);
        prop_assert!(got.max_abs_diff(&want) < 2e-3);
    }

    /// Stochastic rounding is unbiased for arbitrary values and steps.
    #[test]
    fn stochastic_rounding_unbiased(value in -10.0f32..10.0, step_q in 1u32..20, seed in any::<u64>()) {
        use scidl_nn::quant::stochastic_round;
        let step = step_q as f32 * 0.05;
        let mut rng = TensorRng::new(seed);
        let n = 4000;
        let mean: f64 = (0..n)
            .map(|_| stochastic_round(value, step, &mut rng) as f64)
            .sum::<f64>() / n as f64;
        prop_assert!((mean - value as f64).abs() < step as f64 * 0.1 + 0.02);
    }

    /// MaxPool backward distributes exactly the incoming gradient mass.
    #[test]
    fn maxpool_gradient_mass_conserved(
        c in 1usize..4,
        hw_half in 2usize..8,
        seed in any::<u64>(),
    ) {
        let hw = hw_half * 2;
        let mut rng = TensorRng::new(seed);
        let mut p = MaxPool2d::new("p", 2, 2);
        let x = rng.uniform_tensor(Shape4::new(1, c, hw, hw), -1.0, 1.0);
        let y = p.forward(&x);
        let g = rng.uniform_tensor(y.shape(), 0.0, 1.0);
        let gx = p.backward(&g);
        prop_assert!((gx.sum() - g.sum()).abs() < 1e-3);
    }
}
