//! Workspace reuse guarantees at the layer level: same-shape forwards
//! reuse their pooled col/pack scratch (pool size is stable, buffers are
//! pointer-stable), concurrent rayon workers never share a live buffer,
//! and pooled reuse never changes numerical results.

use scidl_nn::{Conv2d, Deconv2d, Layer, Lstm};
use scidl_tensor::{Shape4, Tensor, TensorRng, Workspace};

#[test]
fn same_shape_forwards_keep_the_pool_stable() {
    let mut rng = TensorRng::new(7);
    let mut conv = Conv2d::new("c", 3, 8, 3, 1, 1, &mut rng);
    let x = rng.uniform_tensor(Shape4::new(1, 3, 12, 12), -1.0, 1.0);

    Workspace::clear();
    conv.forward(&x); // warm-up populates the pool
    let warm = Workspace::pooled();
    assert!(warm >= 1, "forward should park its col/pack scratch");

    conv.forward(&x);
    assert_eq!(
        Workspace::pooled(),
        warm,
        "a same-shape forward must reuse pooled buffers, not grow the pool"
    );
    conv.forward(&x);
    assert_eq!(Workspace::pooled(), warm);
}

#[test]
fn pooled_scratch_is_pointer_stable_across_same_size_takes() {
    Workspace::clear();
    let len = 3 * 3 * 3 * 100; // a col-matrix-ish size
    let p1 = {
        let b = Workspace::take(len);
        b.as_ptr()
    };
    let p2 = {
        let b = Workspace::take(len);
        b.as_ptr()
    };
    assert_eq!(p1, p2, "same-size takes must hand back the same heap block");
}

#[test]
fn rayon_parallel_forward_never_aliases_live_buffers() {
    // The par_batch conv path takes one Workspace buffer per in-flight
    // item. Correctness under any rayon schedule requires live buffers
    // to be distinct; we verify through the result: the parallel batch
    // forward must equal per-item forwards exactly.
    let mut rng = TensorRng::new(11);
    let mut conv = Conv2d::new("c", 2, 4, 3, 1, 1, &mut rng);
    let x = rng.uniform_tensor(Shape4::new(8, 2, 10, 10), -1.0, 1.0);
    Workspace::clear();
    let batch = conv.forward(&x); // batch > 1 and small cols → par_batch path
    for i in 0..8 {
        let single = x.batch_slice(i, 1);
        let one = conv.forward(&single);
        assert_eq!(
            batch.item(i),
            one.item(0),
            "item {i}: parallel batch path diverged from sequential"
        );
    }
}

#[test]
fn reuse_never_changes_results_across_layers() {
    // Run conv, deconv and lstm twice each through a dirty pool; second
    // results must be bit-identical to the first (stale pooled contents
    // must never leak into outputs).
    let mut rng = TensorRng::new(23);
    let mut conv = Conv2d::new("c", 3, 6, 3, 1, 1, &mut rng);
    let mut dec = Deconv2d::new("d", 6, 3, 4, 2, 1, &mut rng);
    let mut lstm = Lstm::new("l", 4, 8, &mut rng);

    let x = rng.uniform_tensor(Shape4::new(2, 3, 8, 8), -1.0, 1.0);
    let xs: Vec<Tensor> = (0..3)
        .map(|_| rng.uniform_tensor(Shape4::new(2, 4, 1, 1), -1.0, 1.0))
        .collect();

    Workspace::clear();
    let y1 = conv.forward(&x);
    let d1 = dec.forward(&y1);
    let h1 = lstm.forward(&xs);

    // Dirty the pool with unrelated sizes, then repeat.
    drop(Workspace::take(17));
    drop(Workspace::take(4099));
    let y2 = conv.forward(&x);
    let d2 = dec.forward(&y1);
    let h2 = lstm.forward(&xs);

    assert_eq!(y1.data(), y2.data(), "conv output changed on pooled reuse");
    assert_eq!(d1.data(), d2.data(), "deconv output changed on pooled reuse");
    for (a, b) in h1.iter().zip(&h2) {
        assert_eq!(a.data(), b.data(), "lstm output changed on pooled reuse");
    }
}
