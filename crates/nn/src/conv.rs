//! 2-D convolution layer (im2col + GEMM lowering).

use crate::layer::{InferScratch, Layer, ParamBlock};
use scidl_tensor::{
    col2im, gemm, gemm_bias, im2col, ConvGeometry, Shape4, Tensor, TensorRng, Transpose, Workspace,
};

/// Forward-pass algorithm selection for [`Conv2d`] — the fast-convolution
/// families the paper names as future work (Sec. VIII-A) are first-class
/// options. Backward always uses the im2col/GEMM path (the fast
/// algorithms here implement forward only), which is valid because all
/// algorithms compute the same function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ConvAlgorithm {
    /// im2col lowering + blocked GEMM (the MKL-2017-style default).
    #[default]
    Im2colGemm,
    /// Winograd F(2x2, 3x3) — requires `k == 3`, `stride == 1`,
    /// `pad == 1` and even spatial dims; falls back to im2col otherwise.
    Winograd,
    /// FFT convolution — requires `stride == 1` and `pad < k`; falls
    /// back to im2col otherwise.
    Fft,
}

/// A 2-D convolution with square kernel, symmetric padding and uniform
/// stride, matching the layers of both paper networks (3x3/s1 for HEP,
/// 5x5 with strides 1–2 for the climate encoder, 3x3 scoring heads).
///
/// Weights are stored `(cout, cin, k, k)`; the default forward lowers
/// each batch item through [`im2col`] and a
/// `(cout) x (cin*k*k) x (oh*ow)` GEMM; Winograd/FFT forwards are
/// selectable via [`Conv2d::with_algorithm`].
pub struct Conv2d {
    name: String,
    cin: usize,
    cout: usize,
    k: usize,
    stride: usize,
    pad: usize,
    algorithm: ConvAlgorithm,
    weight: ParamBlock,
    bias: ParamBlock,
    /// Cached input from the last forward (needed for weight gradients).
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with He-initialised weights and zero bias.
    pub fn new(
        name: impl Into<String>,
        cin: usize,
        cout: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let name = name.into();
        let fan_in = cin * k * k;
        let weight = ParamBlock::new(
            format!("{name}.weight"),
            rng.he_tensor(Shape4::new(cout, cin, k, k), fan_in),
        );
        let bias = ParamBlock::new(format!("{name}.bias"), Tensor::zeros(Shape4::flat(cout)));
        Self {
            name,
            cin,
            cout,
            k,
            stride,
            pad,
            algorithm: ConvAlgorithm::default(),
            weight,
            bias,
            cached_input: None,
        }
    }

    /// Selects the forward algorithm (builder style). Incompatible
    /// geometries silently fall back to im2col at forward time.
    pub fn with_algorithm(mut self, algorithm: ConvAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// The algorithm the next forward will attempt.
    pub fn algorithm(&self) -> ConvAlgorithm {
        self.algorithm
    }

    /// Whether the configured fast algorithm applies to this input.
    fn fast_path(&self, ishape: Shape4) -> ConvAlgorithm {
        match self.algorithm {
            ConvAlgorithm::Winograd
                if self.k == 3
                    && self.stride == 1
                    && self.pad == 1
                    && ishape.h.is_multiple_of(2)
                    && ishape.w.is_multiple_of(2) =>
            {
                ConvAlgorithm::Winograd
            }
            ConvAlgorithm::Fft if self.stride == 1 && self.pad < self.k => ConvAlgorithm::Fft,
            _ => ConvAlgorithm::Im2colGemm,
        }
    }

    /// The geometry induced by an input of the given spatial size.
    pub fn geometry(&self, h: usize, w: usize) -> ConvGeometry {
        ConvGeometry::new(self.cin, self.cout, h, w, self.k, self.stride, self.pad)
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Output channels.
    pub fn cout(&self) -> usize {
        self.cout
    }

    /// Input channels.
    pub fn cin(&self) -> usize {
        self.cin
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn out_shape(&self, input: Shape4) -> Shape4 {
        assert_eq!(input.c, self.cin, "{}: expected {} input channels, got {}", self.name, self.cin, input.c);
        self.geometry(input.h, input.w).out_shape(input.n)
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let ishape = input.shape();

        // Fast-algorithm dispatch (Sec. VIII-A's Winograd/FFT kernels).
        match self.fast_path(ishape) {
            ConvAlgorithm::Winograd => {
                let out = crate::winograd::winograd_conv3x3(
                    input,
                    &self.weight.value,
                    self.bias.value.data(),
                );
                self.cached_input = Some(input.clone());
                return out;
            }
            ConvAlgorithm::Fft => {
                let out =
                    crate::fftconv::fft_conv(input, &self.weight.value, self.bias.value.data(), self.pad);
                self.cached_input = Some(input.clone());
                return out;
            }
            ConvAlgorithm::Im2colGemm => {}
        }

        let geo = self.geometry(ishape.h, ishape.w);
        let oshape = geo.out_shape(ishape.n);
        let mut out = Tensor::zeros(oshape);
        let (rows, cols) = (geo.col_rows(), geo.col_cols());

        // For small-to-medium col matrices, parallelise over batch items
        // (mirroring the per-node OpenMP parallelism of the paper's
        // kernels); huge cols (climate first layers) stay sequential with
        // a shared scratch buffer so the GEMM parallelises internally and
        // memory stays bounded.
        let par_batch = ishape.n > 1 && rows * cols <= (1 << 22);
        if par_batch {
            use rayon::prelude::*;
            let item_out = oshape.item_len();
            let weight = self.weight.value.data();
            let bias = self.bias.value.data();
            let cout = self.cout;
            out.data_mut()
                .par_chunks_mut(item_out)
                .enumerate()
                .for_each(|(n, item)| {
                    // Pooled per-worker scratch: the first item on each
                    // worker allocates, every later item (and iteration)
                    // reuses that worker's parked buffer. im2col writes
                    // every element, so stale contents are fine.
                    let mut col = Workspace::take(rows * cols);
                    im2col(&geo, input.item(n), &mut col);
                    // Bias broadcast fused into the GEMM epilogue: the
                    // output plane is written once.
                    gemm_bias(Transpose::No, Transpose::No, cout, cols, rows, weight, &col, bias, item);
                });
        } else {
            let mut col = Workspace::take(rows * cols);
            for n in 0..ishape.n {
                im2col(&geo, input.item(n), &mut col);
                // out_plane = bias ⊕ W (cout x rows) * col (rows x cols),
                // bias broadcast fused into the epilogue sweep.
                gemm_bias(
                    Transpose::No,
                    Transpose::No,
                    self.cout,
                    cols,
                    rows,
                    self.weight.value.data(),
                    &col,
                    self.bias.value.data(),
                    out.item_mut(n),
                );
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn infer(&self, input: &Tensor, scratch: &mut InferScratch) -> Tensor {
        let ishape = input.shape();

        match self.fast_path(ishape) {
            ConvAlgorithm::Winograd => {
                return crate::winograd::winograd_conv3x3(
                    input,
                    &self.weight.value,
                    self.bias.value.data(),
                );
            }
            ConvAlgorithm::Fft => {
                return crate::fftconv::fft_conv(input, &self.weight.value, self.bias.value.data(), self.pad);
            }
            ConvAlgorithm::Im2colGemm => {}
        }

        let geo = self.geometry(ishape.h, ishape.w);
        let oshape = geo.out_shape(ishape.n);
        let mut out = Tensor::zeros(oshape);
        let (rows, cols) = (geo.col_rows(), geo.col_cols());

        // Sequential per-item loop: the same per-item arithmetic as both
        // forward paths (the parallel path partitions over items without
        // changing any reduction order), so outputs are bit-identical.
        scratch.col.resize(rows * cols, 0.0);
        for n in 0..ishape.n {
            im2col(&geo, input.item(n), &mut scratch.col);
            // Same fused-bias GEMM as forward — required for the
            // bit-identity guarantee (fusing changes which sweep writes
            // the bias, so both paths must fuse identically).
            gemm_bias(
                Transpose::No,
                Transpose::No,
                self.cout,
                cols,
                rows,
                self.weight.value.data(),
                &scratch.col,
                self.bias.value.data(),
                out.item_mut(n),
            );
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("Conv2d::backward called before forward");
        let ishape = input.shape();
        let geo = self.geometry(ishape.h, ishape.w);
        let oshape = geo.out_shape(ishape.n);
        assert_eq!(grad_out.shape(), oshape, "{}: grad_out shape mismatch", self.name);

        let (rows, cols) = (geo.col_rows(), geo.col_cols());
        // Pooled scratch for both the re-lowered input and the col-space
        // gradient: zero steady-state allocations (im2col overwrites col
        // fully; dcol is fully written by the beta=0 GEMM below).
        let mut col = Workspace::take(rows * cols);
        let mut dcol = Workspace::take(rows * cols);
        let mut grad_in = Tensor::zeros(ishape);

        for n in 0..ishape.n {
            let dy = grad_out.item(n); // (cout x cols)

            // Weight gradient: dW += dY * col^T.
            im2col(&geo, input.item(n), &mut col);
            gemm(
                Transpose::No,
                Transpose::Yes,
                self.cout,
                rows,
                cols,
                1.0,
                dy,
                &col,
                1.0,
                self.weight.grad.data_mut(),
            );

            // Bias gradient: per-channel sum of dY.
            for c in 0..self.cout {
                let s: f32 = dy[c * cols..(c + 1) * cols].iter().sum();
                self.bias.grad.data_mut()[c] += s;
            }

            // Data gradient: dcol = W^T * dY, then scatter back.
            gemm(
                Transpose::Yes,
                Transpose::No,
                rows,
                cols,
                self.cout,
                1.0,
                self.weight.value.data(),
                dy,
                0.0,
                &mut dcol,
            );
            col2im(&geo, &dcol, grad_in.item_mut(n));
        }
        grad_in
    }

    fn params(&self) -> Vec<&ParamBlock> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut ParamBlock> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn forward_flops_per_image(&self, input: Shape4) -> u64 {
        2 * self.geometry(input.h, input.w).macs_per_image()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TensorRng {
        TensorRng::new(1234)
    }

    /// Direct (quadruple-loop) convolution reference.
    fn conv_ref(
        input: &Tensor,
        w: &Tensor,
        b: &[f32],
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        let is = input.shape();
        let cout = w.shape().n;
        let geo = ConvGeometry::new(is.c, cout, is.h, is.w, k, stride, pad);
        let os = geo.out_shape(is.n);
        let mut out = Tensor::zeros(os);
        for n in 0..is.n {
            for (co, &bias) in b.iter().enumerate().take(cout) {
                for oy in 0..os.h {
                    for ox in 0..os.w {
                        let mut acc = bias;
                        for ci in 0..is.c {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy = (oy * stride + ky) as isize - pad as isize;
                                    let ix = (ox * stride + kx) as isize - pad as isize;
                                    if iy >= 0 && ix >= 0 && (iy as usize) < is.h && (ix as usize) < is.w {
                                        acc += input.at(n, ci, iy as usize, ix as usize)
                                            * w.at(co, ci, ky, kx);
                                    }
                                }
                            }
                        }
                        *out.at_mut(n, co, oy, ox) = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_direct_reference() {
        let mut r = rng();
        for &(cin, cout, h, w, k, s, p) in
            &[(1, 1, 5, 5, 3, 1, 0), (2, 3, 6, 7, 3, 1, 1), (3, 4, 8, 8, 5, 2, 2), (2, 2, 4, 4, 1, 1, 0)]
        {
            let mut conv = Conv2d::new("c", cin, cout, k, s, p, &mut r);
            let x = r.uniform_tensor(Shape4::new(2, cin, h, w), -1.0, 1.0);
            let y = conv.forward(&x);
            let yref = conv_ref(&x, &conv.weight.value, conv.bias.value.data(), k, s, p);
            assert!(
                y.max_abs_diff(&yref) < 1e-4,
                "mismatch for cin={cin} cout={cout} k={k} s={s} p={p}"
            );
        }
    }

    #[test]
    fn out_shape_consistent_with_forward() {
        let mut r = rng();
        let mut conv = Conv2d::new("c", 3, 8, 3, 2, 1, &mut r);
        let x = r.uniform_tensor(Shape4::new(1, 3, 9, 9), -1.0, 1.0);
        let expect = conv.out_shape(x.shape());
        let y = conv.forward(&x);
        assert_eq!(y.shape(), expect);
        assert_eq!(expect, Shape4::new(1, 8, 5, 5));
    }

    /// Numerical gradient check on a tiny configuration.
    #[test]
    fn gradients_match_finite_differences() {
        let mut r = rng();
        let mut conv = Conv2d::new("c", 2, 2, 3, 1, 1, &mut r);
        let x = r.uniform_tensor(Shape4::new(1, 2, 4, 4), -1.0, 1.0);

        // Loss = sum(forward(x)); dL/dy = ones.
        let y = conv.forward(&x);
        let ones = Tensor::filled(y.shape(), 1.0);
        let dx = conv.backward(&ones);

        let eps = 1e-3f32;

        // Check a handful of input gradients.
        for &idx in &[0usize, 5, 13, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = conv.forward(&xp).sum();
            conv.cached_input = None;
            let lm = conv.forward(&xm).sum();
            conv.cached_input = None;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (dx.data()[idx] - num).abs() < 2e-2,
                "input grad {idx}: analytic {} vs numeric {num}",
                dx.data()[idx]
            );
        }

        // Check a handful of weight gradients.
        for &idx in &[0usize, 7, 17, 35] {
            let analytic = conv.weight.grad.data()[idx];
            let orig = conv.weight.value.data()[idx];
            conv.weight.value.data_mut()[idx] = orig + eps;
            let lp = conv.forward(&x).sum();
            conv.cached_input = None;
            conv.weight.value.data_mut()[idx] = orig - eps;
            let lm = conv.forward(&x).sum();
            conv.cached_input = None;
            conv.weight.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - num).abs() < 2e-2,
                "weight grad {idx}: analytic {analytic} vs numeric {num}"
            );
        }

        // Bias gradient for loss=sum is the number of output pixels.
        let per_chan = (4 * 4) as f32;
        for c in 0..2 {
            assert!((conv.bias.grad.data()[c] - per_chan).abs() < 1e-3);
        }
    }

    #[test]
    fn grad_accumulates_across_backward_calls() {
        let mut r = rng();
        let mut conv = Conv2d::new("c", 1, 1, 3, 1, 1, &mut r);
        let x = r.uniform_tensor(Shape4::new(1, 1, 4, 4), -1.0, 1.0);
        let y = conv.forward(&x);
        let g = Tensor::filled(y.shape(), 1.0);
        conv.backward(&g);
        let after_one = conv.weight.grad.clone();
        conv.forward(&x);
        conv.backward(&g);
        let mut expected = after_one.clone();
        expected.scale(2.0);
        assert!(conv.weight.grad.max_abs_diff(&expected) < 1e-4);
    }

    #[test]
    fn flop_count_formula() {
        let mut r = rng();
        let conv = Conv2d::new("c", 3, 128, 3, 1, 1, &mut r);
        let f = conv.forward_flops_per_image(Shape4::new(1, 3, 224, 224));
        assert_eq!(f, 2 * 128 * 3 * 9 * 224 * 224);
        assert_eq!(conv.backward_flops_per_image(Shape4::new(1, 3, 224, 224)), 2 * f);
    }

    #[test]
    fn all_algorithms_agree_and_train_identically() {
        let mut xr = TensorRng::new(5150);
        let x = xr.uniform_tensor(Shape4::new(2, 3, 8, 8), -1.0, 1.0);
        let mut r = rng();
        let mut reference = Conv2d::new("c", 3, 8, 3, 1, 1, &mut r);
        let flat: Vec<f32> = reference.weight.value.data().to_vec();
        let want = reference.forward(&x);
        let dref = reference.backward(&Tensor::filled(want.shape(), 1.0));
        let wgrad_ref = reference.weight.grad.clone();

        for alg in [ConvAlgorithm::Winograd, ConvAlgorithm::Fft] {
            let mut r2 = rng();
            let mut conv = Conv2d::new("c", 3, 8, 3, 1, 1, &mut r2).with_algorithm(alg);
            assert_eq!(conv.weight.value.data(), flat.as_slice(), "same init");
            let got = conv.forward(&x);
            assert!(got.max_abs_diff(&want) < 2e-3, "{alg:?} forward mismatch");
            // Backward (always im2col) produces the same gradients.
            let dgot = conv.backward(&Tensor::filled(want.shape(), 1.0));
            assert!(dgot.max_abs_diff(&dref) < 1e-4, "{alg:?} data-grad mismatch");
            assert!(conv.weight.grad.max_abs_diff(&wgrad_ref) < 1e-3, "{alg:?} weight-grad mismatch");
        }
    }

    #[test]
    fn incompatible_geometry_falls_back_to_im2col() {
        let mut xr = TensorRng::new(5151);
        let x = xr.uniform_tensor(Shape4::new(1, 2, 8, 8), -1.0, 1.0);
        // Stride 2 cannot use Winograd: must silently fall back.
        let mut r = rng();
        let mut conv = Conv2d::new("c", 2, 4, 3, 2, 1, &mut r).with_algorithm(ConvAlgorithm::Winograd);
        let y = conv.forward(&x);
        let mut r2 = rng();
        let mut plain = Conv2d::new("c", 2, 4, 3, 2, 1, &mut r2);
        let y_ref = plain.forward(&x);
        assert!(y.max_abs_diff(&y_ref) < 1e-5);
    }

    #[test]
    fn batch_parallel_path_matches_sequential_path() {
        // Force both paths on identical data: a big batch of small images
        // (parallel path) against per-item forwards (sequential path,
        // batch 1 never parallelises).
        let mut r = rng();
        let mut conv_par = Conv2d::new("c", 3, 8, 3, 1, 1, &mut r);
        let x = r.uniform_tensor(Shape4::new(6, 3, 12, 12), -1.0, 1.0);
        let y_par = conv_par.forward(&x);
        for n in 0..6 {
            let single = x.batch_slice(n, 1);
            let y_one = conv_par.forward(&single);
            let got = y_par.item(n);
            let want = y_one.item(0);
            let err = got
                .iter()
                .zip(want)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(err < 1e-5, "item {n}: max err {err}");
        }
    }

    #[test]
    fn infer_matches_forward_for_all_algorithms() {
        use crate::layer::InferScratch;
        let mut xr = TensorRng::new(6161);
        let x = xr.uniform_tensor(Shape4::new(3, 3, 8, 8), -1.0, 1.0);
        for alg in [ConvAlgorithm::Im2colGemm, ConvAlgorithm::Winograd, ConvAlgorithm::Fft] {
            let mut r = rng();
            let mut conv = Conv2d::new("c", 3, 8, 3, 1, 1, &mut r).with_algorithm(alg);
            let want = conv.forward(&x);
            let mut scratch = InferScratch::new();
            let got = conv.infer(&x, &mut scratch);
            assert_eq!(want.data(), got.data(), "{alg:?}: infer must be bit-identical");
        }
    }

    #[test]
    #[should_panic(expected = "expected 3 input channels")]
    fn rejects_wrong_channel_count() {
        let mut r = rng();
        let conv = Conv2d::new("c", 3, 8, 3, 1, 1, &mut r);
        conv.out_shape(Shape4::new(1, 4, 8, 8));
    }
}
