//! Fully connected (dense) layer.
//!
//! The HEP network's only dense layer is the tiny 128→2 projection after
//! global average pooling — the paper explicitly avoids large dense
//! layers ("to not use layers with large dense weights", Sec. I) so that
//! the model stays cheap to all-reduce at scale.

use crate::layer::{InferScratch, Layer, ParamBlock};
use scidl_tensor::{gemm, gemm_bias_cols, Shape4, Tensor, TensorRng, Transpose};

/// Dense layer `y = W x + b`, flattening each batch item.
///
/// Weights are stored `(out, in)` row-major; input items of any NCHW shape
/// are treated as flat vectors of length `item_len`.
pub struct Dense {
    name: String,
    input_len: usize,
    output_len: usize,
    weight: ParamBlock,
    bias: ParamBlock,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-initialised weights.
    pub fn new(name: impl Into<String>, input_len: usize, output_len: usize, rng: &mut TensorRng) -> Self {
        let name = name.into();
        let weight = ParamBlock::new(
            format!("{name}.weight"),
            rng.he_tensor(Shape4::new(output_len, input_len, 1, 1), input_len),
        );
        let bias = ParamBlock::new(format!("{name}.bias"), Tensor::zeros(Shape4::flat(output_len)));
        Self { name, input_len, output_len, weight, bias, cached_input: None }
    }
}

impl Layer for Dense {
    fn name(&self) -> &str {
        &self.name
    }

    fn out_shape(&self, input: Shape4) -> Shape4 {
        assert_eq!(
            input.item_len(),
            self.input_len,
            "{}: expected item length {}, got {}",
            self.name,
            self.input_len,
            input.item_len()
        );
        Shape4::new(input.n, self.output_len, 1, 1)
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let os = self.out_shape(input.shape());
        let n = input.shape().n;
        let mut out = Tensor::zeros(os);
        // Y (n x out) = b ⊕ X (n x in) * W^T (in x out); the per-column
        // bias broadcast is fused into the GEMM epilogue (one C sweep).
        gemm_bias_cols(
            Transpose::No,
            Transpose::Yes,
            n,
            self.output_len,
            self.input_len,
            input.data(),
            self.weight.value.data(),
            self.bias.value.data(),
            out.data_mut(),
        );
        self.cached_input = Some(input.clone());
        out
    }

    fn infer(&self, input: &Tensor, _scratch: &mut InferScratch) -> Tensor {
        let os = self.out_shape(input.shape());
        let n = input.shape().n;
        let mut out = Tensor::zeros(os);
        // Same fused path as forward, keeping infer bit-identical.
        gemm_bias_cols(
            Transpose::No,
            Transpose::Yes,
            n,
            self.output_len,
            self.input_len,
            input.data(),
            self.weight.value.data(),
            self.bias.value.data(),
            out.data_mut(),
        );
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("Dense::backward called before forward");
        let n = input.shape().n;
        assert_eq!(grad_out.shape(), Shape4::new(n, self.output_len, 1, 1));

        // dW (out x in) += dY^T (out x n) * X (n x in)
        gemm(
            Transpose::Yes,
            Transpose::No,
            self.output_len,
            self.input_len,
            n,
            1.0,
            grad_out.data(),
            input.data(),
            1.0,
            self.weight.grad.data_mut(),
        );
        // db += column sums of dY.
        for i in 0..n {
            let row = &grad_out.data()[i * self.output_len..(i + 1) * self.output_len];
            for (g, &d) in self.bias.grad.data_mut().iter_mut().zip(row) {
                *g += d;
            }
        }
        // dX (n x in) = dY (n x out) * W (out x in)
        let mut grad_in = Tensor::zeros(input.shape());
        gemm(
            Transpose::No,
            Transpose::No,
            n,
            self.input_len,
            self.output_len,
            1.0,
            grad_out.data(),
            self.weight.value.data(),
            0.0,
            grad_in.data_mut(),
        );
        grad_in
    }

    fn params(&self) -> Vec<&ParamBlock> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut ParamBlock> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn forward_flops_per_image(&self, _input: Shape4) -> u64 {
        2 * (self.input_len as u64) * (self.output_len as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_computes_affine_map() {
        let mut rng = TensorRng::new(5);
        let mut d = Dense::new("fc", 3, 2, &mut rng);
        // Overwrite with known weights.
        d.weight.value = Tensor::from_vec(
            Shape4::new(2, 3, 1, 1),
            vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.5],
        );
        d.bias.value = Tensor::from_flat(vec![0.5, -0.5]);
        let x = Tensor::from_vec(Shape4::new(2, 3, 1, 1), vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let y = d.forward(&x);
        // item0: [1-3+0.5, 2+2+1.5-0.5] = [-1.5, 5.0]
        // item1: [-1-1+0.5, -2+0.5-0.5] = [-1.5, -2.0]
        assert_eq!(y.data(), &[-1.5, 5.0, -1.5, -2.0]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = TensorRng::new(8);
        let mut d = Dense::new("fc", 4, 3, &mut rng);
        let x = rng.uniform_tensor(Shape4::new(2, 4, 1, 1), -1.0, 1.0);
        let y = d.forward(&x);
        let ones = Tensor::filled(y.shape(), 1.0);
        let dx = d.backward(&ones);
        let eps = 1e-3f32;

        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = d.forward(&xp).sum();
            d.cached_input = None;
            let lm = d.forward(&xm).sum();
            d.cached_input = None;
            let num = (lp - lm) / (2.0 * eps);
            assert!((dx.data()[idx] - num).abs() < 1e-2, "input grad {idx}");
        }
        for idx in 0..d.weight.value.len() {
            let analytic = d.weight.grad.data()[idx];
            let orig = d.weight.value.data()[idx];
            d.weight.value.data_mut()[idx] = orig + eps;
            let lp = d.forward(&x).sum();
            d.cached_input = None;
            d.weight.value.data_mut()[idx] = orig - eps;
            let lm = d.forward(&x).sum();
            d.cached_input = None;
            d.weight.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((analytic - num).abs() < 1e-2, "weight grad {idx}");
        }
        // Bias grad with loss=sum over 2 items is 2 per output.
        assert!(d.bias.grad.data().iter().all(|&g| (g - 2.0).abs() < 1e-4));
    }

    #[test]
    fn accepts_spatial_input_shapes() {
        let mut rng = TensorRng::new(2);
        let mut d = Dense::new("fc", 12, 5, &mut rng);
        let x = rng.uniform_tensor(Shape4::new(3, 3, 2, 2), -1.0, 1.0);
        let y = d.forward(&x);
        assert_eq!(y.shape(), Shape4::new(3, 5, 1, 1));
    }

    #[test]
    #[should_panic(expected = "expected item length")]
    fn rejects_wrong_input_len() {
        let mut rng = TensorRng::new(2);
        let d = Dense::new("fc", 12, 5, &mut rng);
        d.out_shape(Shape4::new(1, 13, 1, 1));
    }

    #[test]
    fn flops_formula() {
        let mut rng = TensorRng::new(2);
        let d = Dense::new("fc", 128, 2, &mut rng);
        assert_eq!(d.forward_flops_per_image(Shape4::flat(128)), 2 * 128 * 2);
    }
}
