//! LSTM (long short-term memory) recurrent layer.
//!
//! Sec. IX claims the paper's hybrid-training results "extend to other
//! kinds of models such as ResNets and LSTM [51], [52]". This module
//! supplies the LSTM: a batched cell with full backpropagation-through-
//! time, exposing its parameters as [`ParamBlock`]s so the same solvers,
//! all-reduce and parameter servers train it unchanged.
//!
//! Gate order in the packed weight matrices is `[input, forget,
//! candidate, output]`; the forget-gate bias is initialised to 1
//! (the classic "learning to forget" trick of Gers et al. [52]).

use crate::layer::ParamBlock;
use crate::network::Model;
use scidl_tensor::{gemm, gemm_bias_cols, Shape4, Tensor, TensorRng, Transpose, Workspace};

/// Per-timestep cache for BPTT.
struct StepCache {
    x: Tensor,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    tanh_c: Vec<f32>,
}

/// A single-layer LSTM over batched sequences.
///
/// Inputs are per-step tensors of shape `(n, input, 1, 1)`; outputs are
/// the per-step hidden states `(n, hidden, 1, 1)`.
pub struct Lstm {
    name: String,
    input: usize,
    hidden: usize,
    /// Input-to-gates weights, `(4*hidden, input)`.
    w_x: ParamBlock,
    /// Hidden-to-gates weights, `(4*hidden, hidden)`.
    w_h: ParamBlock,
    /// Gate biases, `4*hidden`.
    b: ParamBlock,
    caches: Vec<StepCache>,
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Lstm {
    /// Creates an LSTM with Xavier-ish init and forget bias 1.
    pub fn new(name: impl Into<String>, input: usize, hidden: usize, rng: &mut TensorRng) -> Self {
        let name = name.into();
        let w_x = ParamBlock::new(
            format!("{name}.w_x"),
            rng.he_tensor(Shape4::new(4 * hidden, input, 1, 1), input),
        );
        let w_h = ParamBlock::new(
            format!("{name}.w_h"),
            rng.he_tensor(Shape4::new(4 * hidden, hidden, 1, 1), hidden),
        );
        let mut bias = Tensor::zeros(Shape4::flat(4 * hidden));
        // Forget gate block is the second quarter.
        for v in &mut bias.data_mut()[hidden..2 * hidden] {
            *v = 1.0;
        }
        let b = ParamBlock::new(format!("{name}.b"), bias);
        Self { name, input, hidden, w_x, w_h, b, caches: Vec::new() }
    }

    /// Layer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Scalar parameter count: `4h(in + h + 1)`.
    pub fn param_count(&self) -> usize {
        4 * self.hidden * (self.input + self.hidden + 1)
    }

    /// Runs the sequence forward from zero initial state, returning the
    /// hidden state after every step.
    pub fn forward(&mut self, xs: &[Tensor]) -> Vec<Tensor> {
        assert!(!xs.is_empty(), "empty sequence");
        let n = xs[0].shape().n;
        let h4 = 4 * self.hidden;
        self.caches.clear();

        let mut h = vec![0.0f32; n * self.hidden];
        let mut c = vec![0.0f32; n * self.hidden];
        let mut outputs = Vec::with_capacity(xs.len());

        for x in xs {
            assert_eq!(x.shape().n, n, "batch size must be constant over the sequence");
            assert_eq!(x.shape().item_len(), self.input, "input width mismatch");

            // z (n x 4h) = b ⊕ x W_x^T + h W_h^T — the gate-bias broadcast
            // is fused into the first GEMM's epilogue; the pooled scratch
            // keeps per-step allocations off the steady-state path.
            let mut z = Workspace::take(n * h4);
            gemm_bias_cols(Transpose::No, Transpose::Yes, n, h4, self.input, x.data(), self.w_x.value.data(), self.b.value.data(), &mut z);
            gemm(Transpose::No, Transpose::Yes, n, h4, self.hidden, 1.0, &h, self.w_h.value.data(), 1.0, &mut z);

            let hsz = self.hidden;
            let mut gi = vec![0.0f32; n * hsz];
            let mut gf = vec![0.0f32; n * hsz];
            let mut gg = vec![0.0f32; n * hsz];
            let mut go = vec![0.0f32; n * hsz];
            let mut c_new = vec![0.0f32; n * hsz];
            let mut tanh_c = vec![0.0f32; n * hsz];
            let mut h_new = vec![0.0f32; n * hsz];
            for bi in 0..n {
                for j in 0..hsz {
                    let zi = z[bi * h4 + j];
                    let zf = z[bi * h4 + hsz + j];
                    let zg = z[bi * h4 + 2 * hsz + j];
                    let zo = z[bi * h4 + 3 * hsz + j];
                    let iv = sigmoid(zi);
                    let fv = sigmoid(zf);
                    let gv = zg.tanh();
                    let ov = sigmoid(zo);
                    let cv = fv * c[bi * hsz + j] + iv * gv;
                    let tc = cv.tanh();
                    gi[bi * hsz + j] = iv;
                    gf[bi * hsz + j] = fv;
                    gg[bi * hsz + j] = gv;
                    go[bi * hsz + j] = ov;
                    c_new[bi * hsz + j] = cv;
                    tanh_c[bi * hsz + j] = tc;
                    h_new[bi * hsz + j] = ov * tc;
                }
            }

            self.caches.push(StepCache {
                x: x.clone(),
                h_prev: h.clone(),
                c_prev: c.clone(),
                i: gi,
                f: gf,
                g: gg,
                o: go,
                tanh_c,
            });
            h = h_new;
            c = c_new;
            outputs.push(Tensor::from_vec(Shape4::new(n, self.hidden, 1, 1), h.clone()));
        }
        outputs
    }

    /// Backpropagation through time. `dhs[t]` is the loss gradient with
    /// respect to the step-`t` hidden output (zero tensors for unused
    /// steps). Accumulates parameter gradients; returns per-step input
    /// gradients.
    pub fn backward(&mut self, dhs: &[Tensor]) -> Vec<Tensor> {
        assert_eq!(dhs.len(), self.caches.len(), "backward before forward / length mismatch");
        let t_steps = self.caches.len();
        let n = self.caches[0].x.shape().n;
        let hsz = self.hidden;
        let h4 = 4 * hsz;

        let mut dh_next = Workspace::take_zeroed(n * hsz);
        let mut dc_next = Workspace::take_zeroed(n * hsz);
        let mut dxs = vec![Tensor::zeros(Shape4::new(0, 0, 0, 0)); t_steps];

        for t in (0..t_steps).rev() {
            let cache = &self.caches[t];
            // Fully written below (all four gate blocks, every batch row),
            // so stale pooled contents are fine.
            let mut dz = Workspace::take(n * h4);
            for bi in 0..n {
                for j in 0..hsz {
                    let idx = bi * hsz + j;
                    let dh = dhs[t].data()[idx] + dh_next[idx];
                    let o = cache.o[idx];
                    let tc = cache.tanh_c[idx];
                    let dzo = dh * tc * o * (1.0 - o);
                    let mut dc = dh * o * (1.0 - tc * tc) + dc_next[idx];
                    let i = cache.i[idx];
                    let f = cache.f[idx];
                    let g = cache.g[idx];
                    let dzi = dc * g * i * (1.0 - i);
                    let dzf = dc * cache.c_prev[idx] * f * (1.0 - f);
                    let dzg = dc * i * (1.0 - g * g);
                    dz[bi * h4 + j] = dzi;
                    dz[bi * h4 + hsz + j] = dzf;
                    dz[bi * h4 + 2 * hsz + j] = dzg;
                    dz[bi * h4 + 3 * hsz + j] = dzo;
                    dc *= f;
                    dc_next[idx] = dc;
                }
            }

            // dW_x (4h x in) += dz^T x ; dW_h += dz^T h_prev ; db += col sums.
            gemm(Transpose::Yes, Transpose::No, h4, self.input, n, 1.0, &dz, cache.x.data(), 1.0, self.w_x.grad.data_mut());
            gemm(Transpose::Yes, Transpose::No, h4, hsz, n, 1.0, &dz, &cache.h_prev, 1.0, self.w_h.grad.data_mut());
            for bi in 0..n {
                for (gb, &d) in self.b.grad.data_mut().iter_mut().zip(&dz[bi * h4..(bi + 1) * h4]) {
                    *gb += d;
                }
            }

            // dx (n x in) = dz W_x ; dh_prev (n x h) = dz W_h.
            let mut dx = vec![0.0f32; n * self.input];
            gemm(Transpose::No, Transpose::No, n, self.input, h4, 1.0, &dz, self.w_x.value.data(), 0.0, &mut dx);
            dxs[t] = Tensor::from_vec(Shape4::new(n, self.input, 1, 1), dx);
            // beta=0 fully overwrites the pooled buffer.
            let mut dh_prev = Workspace::take(n * hsz);
            gemm(Transpose::No, Transpose::No, n, hsz, h4, 1.0, &dz, self.w_h.value.data(), 0.0, &mut dh_prev);
            dh_next = dh_prev;
        }
        self.caches.clear();
        dxs
    }

    /// Training FLOPs per sequence step per batch item (the two GEMMs,
    /// forward and backward).
    pub fn flops_per_step_per_item(&self) -> u64 {
        let fwd = 2 * (4 * self.hidden) as u64 * (self.input + self.hidden) as u64;
        3 * fwd
    }
}

impl Model for Lstm {
    fn param_blocks(&self) -> Vec<&ParamBlock> {
        vec![&self.w_x, &self.w_h, &self.b]
    }

    fn param_blocks_mut(&mut self) -> Vec<&mut ParamBlock> {
        vec![&mut self.w_x, &mut self.w_h, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Adam, Solver};

    fn seq(rng: &mut TensorRng, n: usize, t: usize, d: usize) -> Vec<Tensor> {
        (0..t).map(|_| rng.uniform_tensor(Shape4::new(n, d, 1, 1), -1.0, 1.0)).collect()
    }

    #[test]
    fn output_shapes_and_param_count() {
        let mut rng = TensorRng::new(1);
        let mut lstm = Lstm::new("l", 3, 5, &mut rng);
        assert_eq!(lstm.param_count(), 4 * 5 * (3 + 5 + 1));
        assert_eq!(lstm.num_params(), lstm.param_count());
        let xs = seq(&mut rng, 2, 4, 3);
        let hs = lstm.forward(&xs);
        assert_eq!(hs.len(), 4);
        assert_eq!(hs[0].shape(), Shape4::new(2, 5, 1, 1));
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let mut rng = TensorRng::new(2);
        let lstm = Lstm::new("l", 2, 3, &mut rng);
        let b = lstm.b.value.data();
        assert!(b[..3].iter().all(|&x| x == 0.0));
        assert!(b[3..6].iter().all(|&x| x == 1.0));
        assert!(b[6..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn hidden_state_carries_information_across_steps() {
        let mut rng = TensorRng::new(3);
        let mut lstm = Lstm::new("l", 1, 4, &mut rng);
        // Same input at t=1; different inputs at t=0 ⇒ outputs at t=1
        // must differ (memory).
        let a = vec![
            Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![1.0]),
            Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![0.0]),
        ];
        let b = vec![
            Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![-1.0]),
            Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![0.0]),
        ];
        let ha = lstm.forward(&a);
        let hb = lstm.forward(&b);
        assert!(ha[1].max_abs_diff(&hb[1]) > 1e-4);
    }

    #[test]
    fn bptt_matches_finite_differences() {
        let mut rng = TensorRng::new(4);
        let mut lstm = Lstm::new("l", 2, 3, &mut rng);
        let xs = seq(&mut rng, 1, 3, 2);

        // Loss = sum of all hidden outputs.
        let hs = lstm.forward(&xs);
        let dhs: Vec<Tensor> = hs.iter().map(|h| Tensor::filled(h.shape(), 1.0)).collect();
        let dxs = lstm.backward(&dhs);

        let loss = |lstm: &mut Lstm, xs: &[Tensor]| -> f32 {
            let hs = lstm.forward(xs);
            lstm.caches.clear();
            hs.iter().map(|h| h.sum()).sum()
        };

        let eps = 1e-3f32;
        // Input gradients at every step.
        for t in 0..3 {
            for idx in 0..2 {
                let mut xsp = xs.clone();
                xsp[t].data_mut()[idx] += eps;
                let mut xsm = xs.clone();
                xsm[t].data_mut()[idx] -= eps;
                let num = (loss(&mut lstm, &xsp) - loss(&mut lstm, &xsm)) / (2.0 * eps);
                let analytic = dxs[t].data()[idx];
                assert!((analytic - num).abs() < 2e-2, "dx[{t}][{idx}]: {analytic} vs {num}");
            }
        }
        // Weight gradients (spot check each block).
        let grads: Vec<f32> = lstm.flat_grads();
        let sizes: Vec<usize> = lstm.param_blocks().iter().map(|b| b.len()).collect();
        let mut flat = lstm.flat_params();
        let probe = [0usize, sizes[0] + 1, sizes[0] + sizes[1] + 2];
        for &idx in &probe {
            let orig = flat[idx];
            flat[idx] = orig + eps;
            lstm.set_flat_params(&flat);
            let lp = loss(&mut lstm, &xs);
            flat[idx] = orig - eps;
            lstm.set_flat_params(&flat);
            let lm = loss(&mut lstm, &xs);
            flat[idx] = orig;
            lstm.set_flat_params(&flat);
            let num = (lp - lm) / (2.0 * eps);
            assert!((grads[idx] - num).abs() < 2e-2, "param {idx}: {} vs {num}", grads[idx]);
        }
    }

    #[test]
    fn learns_sign_of_sequence_sum() {
        // Toy task: classify whether the running sum of a ±1 sequence is
        // positive, read from the final hidden state through a fixed
        // readout of the first hidden unit.
        let mut rng = TensorRng::new(5);
        let mut lstm = Lstm::new("l", 1, 8, &mut rng);
        let mut solver = Adam::new(5e-3);
        let t = 6;
        let mut final_loss = 0.0f32;
        let mut first_loss = None;
        for step in 0..300 {
            // Generate a batch of 8 sequences.
            let n = 8;
            let mut xs: Vec<Tensor> = Vec::with_capacity(t);
            let mut sums = vec![0.0f32; n];
            let mut data: Vec<Vec<f32>> = vec![vec![0.0; n]; t];
            for bi in 0..n {
                for row in data.iter_mut() {
                    let v: f32 = if rng.bernoulli(0.5) { 1.0 } else { -1.0 };
                    row[bi] = v;
                    sums[bi] += v;
                }
            }
            for row in &data {
                xs.push(Tensor::from_vec(Shape4::new(n, 1, 1, 1), row.clone()));
            }
            let hs = lstm.forward(&xs);
            // Squared-error on unit 0 of the last hidden state vs sign.
            let last = &hs[t - 1];
            let mut loss = 0.0f32;
            let mut dh_last = Tensor::zeros(last.shape());
            for (bi, &s) in sums.iter().enumerate().take(n) {
                let target = if s > 0.0 { 0.5 } else { -0.5 };
                let pred = last.data()[bi * 8];
                let d = pred - target;
                loss += d * d / n as f32;
                dh_last.data_mut()[bi * 8] = 2.0 * d / n as f32;
            }
            let mut dhs: Vec<Tensor> = hs.iter().map(|h| Tensor::zeros(h.shape())).collect();
            dhs[t - 1] = dh_last;
            lstm.backward(&dhs);
            solver.step_model(&mut lstm);
            lstm.zero_grads();
            if step == 20 {
                first_loss = Some(loss);
            }
            final_loss = loss;
        }
        assert!(
            final_loss < first_loss.unwrap() * 0.7,
            "LSTM should learn the task: {first_loss:?} -> {final_loss}"
        );
    }

    #[test]
    fn flops_formula_positive() {
        let mut rng = TensorRng::new(6);
        let lstm = Lstm::new("l", 16, 32, &mut rng);
        assert_eq!(lstm.flops_per_step_per_item(), 3 * 2 * 128 * 48);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn rejects_empty_sequence() {
        let mut rng = TensorRng::new(7);
        let mut lstm = Lstm::new("l", 1, 1, &mut rng);
        let _ = lstm.forward(&[]);
    }
}
