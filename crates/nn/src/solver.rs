//! Solvers (optimisers).
//!
//! The paper uses ADAM for the HEP network (Sec. III-A — "requires less
//! parameter tuning than SGD") and SGD with momentum for the climate
//! network (Sec. III-B). Momentum is a first-class tuning knob here
//! because the hybrid engine tunes it jointly with the level of
//! asynchrony, following Mitliagkas et al. ("asynchrony begets
//! momentum", ref. [31] in the paper).

use crate::network::Model;

/// An optimiser that updates parameter blocks from their gradients.
///
/// Solvers are keyed by block index so the same instance can live on a
/// per-layer parameter server (each PS owns a subset of block indices) or
/// drive a whole local model.
pub trait Solver: Send {
    /// Applies one update to block `idx` given its gradient.
    fn step_block(&mut self, idx: usize, value: &mut [f32], grad: &[f32]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Sets the learning rate (schedules, hyper-parameter sweeps).
    fn set_learning_rate(&mut self, lr: f32);

    /// FLOPs consumed per scalar parameter per update — used by the
    /// single-node profile (Fig. 5 shows the HEP solver costing ~12.5% of
    /// runtime, dominated by history copies that contribute no FLOPs; we
    /// report the arithmetic part).
    fn flops_per_param(&self) -> u64;

    /// Convenience: steps every block of a model in order.
    fn step_model(&mut self, model: &mut dyn Model) {
        for (idx, block) in model.param_blocks_mut().into_iter().enumerate() {
            // Split borrow: value and grad are distinct tensors.
            let grad = block.grad.data().to_vec();
            self.step_block(idx, block.value.data_mut(), &grad);
        }
    }
}

/// Stochastic gradient descent with classical momentum and optional L2
/// weight decay: `v = mu*v - lr*(g + wd*w); w += v`.
pub struct Sgd {
    lr: f32,
    /// Momentum coefficient `mu` (paper tunes over {0.0, 0.4, 0.7, 0.9}).
    pub momentum: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD solver.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self { lr, momentum, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// Builder-style weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Solver for Sgd {
    fn step_block(&mut self, idx: usize, value: &mut [f32], grad: &[f32]) {
        assert_eq!(value.len(), grad.len(), "value/grad length mismatch");
        while self.velocity.len() <= idx {
            self.velocity.push(Vec::new());
        }
        let v = &mut self.velocity[idx];
        if v.len() != value.len() {
            v.clear();
            v.resize(value.len(), 0.0);
        }
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        for ((w, &g), vel) in value.iter_mut().zip(grad).zip(v.iter_mut()) {
            let g = g + wd * *w;
            *vel = mu * *vel - lr * g;
            *w += *vel;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn flops_per_param(&self) -> u64 {
        // g+wd*w (2), mu*v (1), -lr*g (2), w+=v (1)
        6
    }
}

/// ADAM (Kingma & Ba), the HEP solver.
pub struct Adam {
    lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Per-block step counters (bias correction).
    t: Vec<u64>,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an ADAM solver with the standard betas.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: Vec::new(), m: Vec::new(), v: Vec::new() }
    }
}

impl Solver for Adam {
    fn step_block(&mut self, idx: usize, value: &mut [f32], grad: &[f32]) {
        assert_eq!(value.len(), grad.len(), "value/grad length mismatch");
        while self.m.len() <= idx {
            self.m.push(Vec::new());
            self.v.push(Vec::new());
            self.t.push(0);
        }
        if self.m[idx].len() != value.len() {
            self.m[idx].clear();
            self.m[idx].resize(value.len(), 0.0);
            self.v[idx].clear();
            self.v[idx].resize(value.len(), 0.0);
            self.t[idx] = 0;
        }
        self.t[idx] += 1;
        let t = self.t[idx] as f32;
        let (b1, b2) = (self.beta1, self.beta2);
        let bc1 = 1.0 - b1.powf(t);
        let bc2 = 1.0 - b2.powf(t);
        let lr = self.lr;
        let eps = self.eps;
        let (m, v) = (&mut self.m[idx], &mut self.v[idx]);
        for ((w, &g), (mi, vi)) in value.iter_mut().zip(grad).zip(m.iter_mut().zip(v.iter_mut())) {
            *mi = b1 * *mi + (1.0 - b1) * g;
            *vi = b2 * *vi + (1.0 - b2) * g * g;
            let mhat = *mi / bc1;
            let vhat = *vi / bc2;
            *w -= lr * mhat / (vhat.sqrt() + eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn flops_per_param(&self) -> u64 {
        // Two EMAs (6), bias corrections (2), sqrt+div+update (4).
        12
    }
}

/// Effective-momentum correction for asynchronous training following
/// Mitliagkas et al. [31]: asynchrony with `groups` concurrent workers
/// contributes implicit momentum ≈ `1 - 1/groups`, so the explicit
/// momentum should be reduced to keep the total near `target`.
///
/// Returns the explicit momentum to configure (clamped to `[0, target]`).
pub fn asynchrony_adjusted_momentum(target: f32, groups: usize) -> f32 {
    assert!(groups >= 1);
    let implicit = 1.0 - 1.0 / groups as f32;
    ((target - implicit) / (1.0 - implicit).max(1e-6)).clamp(0.0, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(w) = 0.5*(w-3)^2 whose gradient is (w-3).
    fn quadratic_descent(solver: &mut dyn Solver, start: f32, steps: usize) -> f32 {
        let mut w = vec![start];
        for _ in 0..steps {
            let g = vec![w[0] - 3.0];
            solver.step_block(0, &mut w, &g);
        }
        w[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut s = Sgd::new(0.1, 0.0);
        let w = quadratic_descent(&mut s, 0.0, 200);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let mut plain = Sgd::new(0.01, 0.0);
        let mut mom = Sgd::new(0.01, 0.9);
        let w_plain = quadratic_descent(&mut plain, 0.0, 50);
        let w_mom = quadratic_descent(&mut mom, 0.0, 50);
        assert!((w_mom - 3.0).abs() < (w_plain - 3.0).abs(), "momentum should be closer: {w_mom} vs {w_plain}");
    }

    #[test]
    fn sgd_weight_decay_shrinks_solution() {
        let mut s = Sgd::new(0.1, 0.0).with_weight_decay(0.5);
        let w = quadratic_descent(&mut s, 0.0, 500);
        // Minimises 0.5(w-3)^2 + 0.25 w^2 → w* = 3/1.5 = 2.
        assert!((w - 2.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut a = Adam::new(0.05);
        let w = quadratic_descent(&mut a, 0.0, 500);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first ADAM step is ≈ lr regardless of
        // gradient magnitude.
        let mut a = Adam::new(0.1);
        let mut w = vec![0.0f32];
        a.step_block(0, &mut w, &[1000.0]);
        assert!((w[0] + 0.1).abs() < 1e-3, "w = {}", w[0]);
    }

    #[test]
    fn per_block_state_is_independent() {
        let mut s = Sgd::new(0.1, 0.9);
        let mut w0 = vec![0.0f32];
        let mut w1 = vec![0.0f32];
        s.step_block(0, &mut w0, &[1.0]);
        s.step_block(1, &mut w1, &[-1.0]);
        s.step_block(0, &mut w0, &[1.0]);
        // Block 1 velocity must be unaffected by block 0 steps.
        assert!(w1[0] > 0.0);
        assert!(w0[0] < 0.0);
    }

    #[test]
    fn learning_rate_roundtrip() {
        let mut a = Adam::new(0.1);
        a.set_learning_rate(0.02);
        assert_eq!(a.learning_rate(), 0.02);
    }

    #[test]
    fn momentum_correction_formula() {
        // Synchronous (1 group): no correction.
        assert_eq!(asynchrony_adjusted_momentum(0.9, 1), 0.9);
        // 2 groups: implicit 0.5 → explicit (0.9-0.5)/0.5 = 0.8.
        assert!((asynchrony_adjusted_momentum(0.9, 2) - 0.8).abs() < 1e-6);
        // Many groups: implicit exceeds target → clamp at 0.
        assert_eq!(asynchrony_adjusted_momentum(0.9, 100), 0.0);
    }

    #[test]
    fn solver_flop_estimates_nonzero() {
        assert!(Sgd::new(0.1, 0.9).flops_per_param() > 0);
        assert!(Adam::new(0.1).flops_per_param() > Sgd::new(0.1, 0.9).flops_per_param() / 2);
    }
}
