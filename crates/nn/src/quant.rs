//! Low-precision training utilities.
//!
//! Sec. VIII-A: "There has been a lot of discussion surrounding training
//! with quantized weights and activations [44], [45]. The statistical
//! implications of low precision training are still being explored [46],
//! [47], with various forms of *stochastic rounding* being of critical
//! importance in convergence." This module provides the ingredients that
//! discussion refers to:
//!
//! * bfloat16 emulation (truncate / round-to-nearest of the f32
//!   mantissa) — the numeric format later HPC systems adopted,
//! * stochastic rounding to an arbitrary fixed-point grid,
//! * linear 8-bit quantise/dequantise with per-buffer scale, used by the
//!   compressed all-reduce in `scidl-comm`.

use scidl_tensor::TensorRng;

/// Rounds an `f32` to bfloat16 precision (round-to-nearest-even on the
/// top 7 mantissa bits), returned as `f32`.
#[inline]
pub fn bf16_round(x: f32) -> f32 {
    let bits = x.to_bits();
    // Round to nearest even on bit 16.
    let lsb = (bits >> 16) & 1;
    let rounded = bits.wrapping_add(0x7FFF + lsb);
    f32::from_bits(rounded & 0xFFFF_0000)
}

/// Applies bf16 rounding to a whole buffer in place.
pub fn bf16_round_slice(data: &mut [f32]) {
    for v in data.iter_mut() {
        *v = bf16_round(*v);
    }
}

/// Stochastic rounding of `x` to the grid `step * k` (k integer): the
/// result is the *unbiased* randomised choice between the two
/// neighbouring grid points — `E[round(x)] == x` — which is the property
/// refs. [46]/[47] identify as critical for low-precision convergence.
#[inline]
pub fn stochastic_round(x: f32, step: f32, rng: &mut TensorRng) -> f32 {
    assert!(step > 0.0, "step must be positive");
    let scaled = x / step;
    let floor = scaled.floor();
    let frac = scaled - floor;
    let up = rng.uniform() < frac as f64;
    (floor + if up { 1.0 } else { 0.0 }) * step
}

/// Stochastically rounds a buffer in place.
pub fn stochastic_round_slice(data: &mut [f32], step: f32, rng: &mut TensorRng) {
    for v in data.iter_mut() {
        *v = stochastic_round(*v, step, rng);
    }
}

/// An 8-bit linearly quantised buffer with a per-buffer scale.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantizedBuffer {
    /// Quantised values, symmetric around zero (−127..=127).
    pub values: Vec<i8>,
    /// Dequantisation scale: `f32 = i8 as f32 * scale`.
    pub scale: f32,
}

impl QuantizedBuffer {
    /// Quantises with deterministic round-to-nearest (the shared wire
    /// codec from `scidl_tensor::ops`).
    pub fn quantize(data: &[f32]) -> Self {
        let (values, scale) = scidl_tensor::ops::quantize_i8(data);
        Self { values, scale }
    }

    /// Quantises with stochastic rounding (unbiased).
    pub fn quantize_stochastic(data: &[f32], rng: &mut TensorRng) -> Self {
        let max = data.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let scale = if max > 0.0 { max / 127.0 } else { 1.0 };
        let values = data
            .iter()
            .map(|&x| {
                let q = stochastic_round(x / scale, 1.0, rng);
                q.clamp(-127.0, 127.0) as i8
            })
            .collect();
        Self { values, scale }
    }

    /// Dequantises into a fresh buffer.
    pub fn dequantize(&self) -> Vec<f32> {
        self.values.iter().map(|&q| q as f32 * self.scale).collect()
    }

    /// Wire size in bytes (values + scale) — a 3.99x shrink vs f32 for
    /// large buffers, the saving Sec. VIII-B's "communicating high-order
    /// bits of weight updates" is after.
    pub fn wire_bytes(&self) -> usize {
        self.values.len() + std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf16_is_idempotent_and_close() {
        for &x in &[0.0f32, 1.0, -1.0, std::f32::consts::PI, 1e-8, 1e8, -123.456] {
            let r = bf16_round(x);
            assert_eq!(bf16_round(r), r, "idempotent at {x}");
            if x != 0.0 {
                let rel = ((r - x) / x).abs();
                assert!(rel < 0.01, "bf16({x}) = {r}, rel err {rel}");
            }
        }
    }

    #[test]
    fn bf16_exact_for_small_integers() {
        for i in -256i32..=256 {
            let x = i as f32;
            assert_eq!(bf16_round(x), x, "{x}");
        }
    }

    #[test]
    fn stochastic_rounding_is_unbiased() {
        let mut rng = TensorRng::new(3);
        let x = 0.3f32;
        let n = 40_000;
        let mean: f64 = (0..n)
            .map(|_| stochastic_round(x, 1.0, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.3).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn stochastic_rounding_lands_on_grid() {
        let mut rng = TensorRng::new(5);
        for _ in 0..200 {
            let x = rng.uniform_range(-10.0, 10.0) as f32;
            let r = stochastic_round(x, 0.25, &mut rng);
            let k = r / 0.25;
            assert!((k - k.round()).abs() < 1e-4, "{r} not on 0.25 grid");
            assert!((r - x).abs() <= 0.2501, "{r} too far from {x}");
        }
    }

    #[test]
    fn quantize_roundtrip_error_bounded() {
        let mut rng = TensorRng::new(7);
        let data: Vec<f32> = (0..1000).map(|_| rng.uniform_range(-2.0, 2.0) as f32).collect();
        let q = QuantizedBuffer::quantize(&data);
        let back = q.dequantize();
        let max = data.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let bound = max / 127.0 * 0.51;
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() <= bound, "{a} vs {b}");
        }
    }

    #[test]
    fn quantize_zero_buffer() {
        let q = QuantizedBuffer::quantize(&[0.0; 8]);
        assert!(q.dequantize().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn stochastic_quantize_mean_preserved() {
        let mut rng = TensorRng::new(11);
        let data = vec![0.013f32; 4096];
        let q = QuantizedBuffer::quantize_stochastic(&data, &mut rng);
        let back = q.dequantize();
        let mean: f64 = back.iter().map(|&x| x as f64).sum::<f64>() / back.len() as f64;
        assert!((mean - 0.013).abs() < 5e-4, "mean {mean}");
    }

    #[test]
    fn wire_bytes_are_one_quarter() {
        let q = QuantizedBuffer::quantize(&vec![1.0f32; 1024]);
        assert_eq!(q.wire_bytes(), 1024 + 4);
    }

    /// End-to-end: a real network trains when every gradient is rounded
    /// to bfloat16 — the numeric regime Sec. VIII-A anticipates for
    /// future low-precision hardware.
    #[test]
    fn bf16_gradients_train_a_real_network() {
        use crate::loss::SoftmaxCrossEntropy;
        use crate::network::Model;
        use crate::solver::{Adam, Solver};
        use scidl_tensor::{Shape4, Tensor};

        let mut rng = TensorRng::new(88);
        let mut net = crate::arch::hep_small(&mut rng);
        let n = 8;
        let mut x = Tensor::zeros(Shape4::new(n, 3, 32, 32));
        let mut labels = vec![0usize; n];
        for (i, label) in labels.iter_mut().enumerate().take(n) {
            *label = i % 2;
            let v = if i % 2 == 0 { 0.8 } else { -0.8 };
            x.item_mut(i).iter_mut().for_each(|p| *p = v);
        }
        let mut solver = Adam::new(1e-2);
        let sizes: Vec<usize> = net.param_blocks().iter().map(|b| b.len()).collect();
        let mut flat = net.flat_params();
        let mut first = None;
        let mut last = 0.0f32;
        for _ in 0..25 {
            net.set_flat_params(&flat);
            net.zero_grads();
            let logits = net.forward(&x);
            let (loss, grad) = SoftmaxCrossEntropy::forward(&logits, &labels);
            net.backward(&grad);
            let mut g = net.flat_grads();
            bf16_round_slice(&mut g); // the low-precision step
            let mut off = 0;
            for (i, &len) in sizes.iter().enumerate() {
                solver.step_block(i, &mut flat[off..off + len], &g[off..off + len]);
                off += len;
            }
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(
            last < first.unwrap() * 0.5,
            "bf16 gradients must still train: {first:?} -> {last}"
        );
    }

    /// End-to-end: SGD on a quadratic still converges when gradients are
    /// stochastically rounded to 8-bit — but diverges from the optimum
    /// when deterministic truncation kills small gradients.
    #[test]
    fn low_precision_sgd_converges_with_stochastic_rounding() {
        let mut rng = TensorRng::new(13);
        let mut w = 4.0f32;
        let lr = 0.05f32;
        for _ in 0..4000 {
            let g = w - 1.0; // minimise (w-1)^2/2
            let q = QuantizedBuffer::quantize_stochastic(&[g], &mut rng);
            let gq = q.dequantize()[0];
            w -= lr * gq;
        }
        assert!((w - 1.0).abs() < 0.1, "w = {w}");
    }
}
