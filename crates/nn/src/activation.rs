//! Activation layers. The paper's networks use ReLU throughout
//! (Sec. III-A); the detection head of the climate network additionally
//! uses an elementwise sigmoid on its confidence map, provided here as a
//! free function pair used by the loss.

use crate::layer::{InferScratch, Layer};
use scidl_tensor::{Shape4, Tensor};

/// Rectified linear unit, `y = max(0, x)`.
pub struct Relu {
    name: String,
    /// Mask of active (positive) inputs from the last forward.
    mask: Vec<bool>,
    in_shape: Shape4,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), mask: Vec::new(), in_shape: Shape4::new(0, 0, 0, 0) }
    }
}

impl Layer for Relu {
    fn name(&self) -> &str {
        &self.name
    }

    fn out_shape(&self, input: Shape4) -> Shape4 {
        input
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.in_shape = input.shape();
        self.mask.clear();
        self.mask.extend(input.data().iter().map(|&x| x > 0.0));
        let data = input.data().iter().map(|&x| x.max(0.0)).collect();
        Tensor::from_vec(input.shape(), data)
    }

    fn infer(&self, input: &Tensor, _scratch: &mut InferScratch) -> Tensor {
        let data = input.data().iter().map(|&x| x.max(0.0)).collect();
        Tensor::from_vec(input.shape(), data)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.len(), self.mask.len(), "{}: backward before forward", self.name);
        let data = grad_out
            .data()
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(self.in_shape, data)
    }

    fn forward_flops_per_image(&self, input: Shape4) -> u64 {
        input.item_len() as u64
    }

    fn backward_flops_per_image(&self, input: Shape4) -> u64 {
        input.item_len() as u64
    }
}

/// Elementwise logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Derivative of the sigmoid given its *output* `s = sigmoid(x)`.
#[inline]
pub fn sigmoid_grad_from_output(s: f32) -> f32 {
    s * (1.0 - s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_clamps_negatives() {
        let mut r = Relu::new("r");
        let x = Tensor::from_flat(vec![-2.0, -0.5, 0.0, 0.5, 2.0]);
        let y = r.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 0.0, 0.5, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut r = Relu::new("r");
        let x = Tensor::from_flat(vec![-1.0, 1.0, -3.0, 2.0]);
        r.forward(&x);
        let g = Tensor::from_flat(vec![10.0, 20.0, 30.0, 40.0]);
        let gx = r.backward(&g);
        assert_eq!(gx.data(), &[0.0, 20.0, 0.0, 40.0]);
    }

    #[test]
    fn relu_zero_input_blocks_gradient() {
        // The subgradient at exactly zero is taken as 0 (x > 0 test).
        let mut r = Relu::new("r");
        let x = Tensor::from_flat(vec![0.0]);
        r.forward(&x);
        let gx = r.backward(&Tensor::from_flat(vec![5.0]));
        assert_eq!(gx.data(), &[0.0]);
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        let s = sigmoid(1.3);
        assert!((s + sigmoid(-1.3) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_grad_matches_fd() {
        let eps = 1e-4f32;
        for &x in &[-2.0f32, -0.3, 0.0, 0.7, 3.0] {
            let s = sigmoid(x);
            let num = (sigmoid(x + eps) - sigmoid(x - eps)) / (2.0 * eps);
            assert!((sigmoid_grad_from_output(s) - num).abs() < 1e-3);
        }
    }
}
