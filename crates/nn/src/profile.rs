//! Wall-clock per-layer profiler — the "real kernels" side of Fig. 5.
//!
//! The paper's Fig. 5 breaks single-node runtime into per-layer
//! contributions and FLOP rates at batch size 8. This module measures the
//! same decomposition for our Rust kernels on the host machine; the
//! KNL-calibrated *simulated* version of the figure lives in
//! `scidl-cluster` (the two are printed side by side by the Fig. 5
//! harness).

use crate::network::Network;
use scidl_tensor::stats::Summary;
use scidl_tensor::{Shape4, Tensor, TensorRng};
use std::time::Instant;

/// Timing and FLOP-rate entry for one layer.
#[derive(Clone, Debug)]
pub struct LayerProfile {
    /// Layer name.
    pub name: String,
    /// Mean forward seconds per iteration (whole minibatch).
    pub forward_secs: f64,
    /// Mean backward seconds per iteration.
    pub backward_secs: f64,
    /// Forward FLOPs per iteration.
    pub forward_flops: u64,
    /// Backward FLOPs per iteration.
    pub backward_flops: u64,
    /// Per-repetition forward-time distribution (shared stats machinery
    /// from `scidl_tensor::stats`; `forward_secs` is its mean).
    pub forward_stats: Summary,
    /// Per-repetition backward-time distribution.
    pub backward_stats: Summary,
}

impl LayerProfile {
    /// Total seconds (forward + backward).
    pub fn total_secs(&self) -> f64 {
        self.forward_secs + self.backward_secs
    }

    /// Achieved FLOP rate over forward+backward, in FLOP/s.
    pub fn flop_rate(&self) -> f64 {
        let t = self.total_secs();
        if t <= 0.0 {
            0.0
        } else {
            (self.forward_flops + self.backward_flops) as f64 / t
        }
    }
}

/// Profiles every layer of `net` over `reps` training iterations at the
/// given input shape (batch included in `input.n`), after `warmup`
/// untimed iterations. Input data is random.
pub fn profile_network(net: &mut Network, input: Shape4, warmup: usize, reps: usize) -> Vec<LayerProfile> {
    assert!(reps > 0, "need at least one timed repetition");
    let mut rng = TensorRng::new(0xF165);
    let x = rng.uniform_tensor(input, -1.0, 1.0);

    let layer_count = net.layers().len();
    let mut fwd: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); layer_count];
    let mut bwd: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); layer_count];
    let mut shapes = Vec::with_capacity(layer_count);
    {
        let mut s = input;
        for l in net.layers() {
            shapes.push(s);
            s = l.out_shape(s);
        }
    }
    let out_shape = net.out_shape(input);

    for it in 0..warmup + reps {
        let timed = it >= warmup;
        // Forward, timing each layer.
        let mut act = x.clone();
        for (i, l) in net.layers_mut().iter_mut().enumerate() {
            let t0 = Instant::now();
            act = l.forward(&act);
            if timed {
                fwd[i].push(t0.elapsed().as_secs_f64());
            }
        }
        // Backward with a unit gradient.
        let mut g = Tensor::filled(out_shape, 1.0);
        for (i, l) in net.layers_mut().iter_mut().enumerate().rev() {
            let t0 = Instant::now();
            g = l.backward(&g);
            if timed {
                bwd[i].push(t0.elapsed().as_secs_f64());
            }
        }
        // Keep gradient buffers from growing unboundedly.
        use crate::network::Model;
        net.zero_grads();
    }

    let batch = input.n as u64;
    net.layers()
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let forward_stats = Summary::from_samples(&fwd[i]);
            let backward_stats = Summary::from_samples(&bwd[i]);
            LayerProfile {
                name: l.name().to_string(),
                forward_secs: forward_stats.mean,
                backward_secs: backward_stats.mean,
                forward_flops: batch * l.forward_flops_per_image(shapes[i]),
                backward_flops: batch * l.backward_flops_per_image(shapes[i]),
                forward_stats,
                backward_stats,
            }
        })
        .collect()
}

/// Aggregate throughput over a profile: total FLOPs / total seconds.
pub fn aggregate_flop_rate(profiles: &[LayerProfile]) -> f64 {
    let flops: u64 = profiles.iter().map(|p| p.forward_flops + p.backward_flops).sum();
    let secs: f64 = profiles.iter().map(|p| p.total_secs()).sum();
    if secs <= 0.0 {
        0.0
    } else {
        flops as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, MaxPool2d, Relu};

    fn small_net() -> Network {
        let mut rng = TensorRng::new(1);
        Network::new("p")
            .push(Conv2d::new("conv1", 1, 8, 3, 1, 1, &mut rng))
            .push(Relu::new("relu1"))
            .push(MaxPool2d::new("pool1", 2, 2))
            .push(Conv2d::new("conv2", 8, 8, 3, 1, 1, &mut rng))
    }

    #[test]
    fn profile_covers_all_layers_with_positive_times() {
        let mut net = small_net();
        let p = profile_network(&mut net, Shape4::new(2, 1, 16, 16), 1, 2);
        assert_eq!(p.len(), 4);
        for lp in &p {
            assert!(lp.forward_secs >= 0.0);
            assert!(lp.backward_secs >= 0.0);
            assert_eq!(lp.forward_stats.count, 2);
            assert!(lp.forward_stats.min <= lp.forward_secs && lp.forward_secs <= lp.forward_stats.max);
        }
        // Convolutions dominate FLOPs.
        assert!(p[0].forward_flops > p[1].forward_flops);
    }

    #[test]
    fn flop_rate_is_finite_and_positive_for_conv() {
        let mut net = small_net();
        let p = profile_network(&mut net, Shape4::new(4, 1, 32, 32), 1, 3);
        let conv = &p[0];
        assert!(conv.flop_rate() > 0.0);
        assert!(conv.flop_rate().is_finite());
        assert!(aggregate_flop_rate(&p) > 0.0);
    }

    #[test]
    fn flops_scale_with_batch() {
        let mut net = small_net();
        let p1 = profile_network(&mut net, Shape4::new(1, 1, 16, 16), 0, 1);
        let mut net2 = small_net();
        let p8 = profile_network(&mut net2, Shape4::new(8, 1, 16, 16), 0, 1);
        assert_eq!(p8[0].forward_flops, 8 * p1[0].forward_flops);
    }
}
