//! FFT-based convolution forward pass.
//!
//! Together with Winograd, "FFT based algorithms" are the fast-conv
//! family the paper names as future work (Sec. VIII-A). This module
//! computes a stride-1 convolution through the convolution theorem:
//! pad image and (flipped) kernel to a power-of-two grid, multiply
//! spectra accumulated over input channels, inverse-transform once per
//! output channel, and crop the `same`-padding window. Bit-compatible
//! (to float tolerance) with [`crate::Conv2d`], and asymptotically
//! cheaper than direct convolution for large kernels.

use scidl_tensor::fft::{accumulate_product, fft2_inplace, Complex};
use scidl_tensor::{Shape4, Tensor};

/// Spectrum grid side for an `h x w` image with a `k x k` kernel:
/// the next power of two covering the full linear convolution.
fn grid_size(h: usize, w: usize, k: usize) -> usize {
    (h.max(w) + k - 1).next_power_of_two()
}

/// FFT-based stride-1 convolution with symmetric padding `pad`.
/// `weight` is `(cout, cin, k, k)`, `bias` has `cout` entries.
pub fn fft_conv(input: &Tensor, weight: &Tensor, bias: &[f32], pad: usize) -> Tensor {
    let is = input.shape();
    let ws = weight.shape();
    assert_eq!(ws.c, is.c, "channel mismatch");
    assert_eq!(ws.h, ws.w, "square kernels only");
    assert_eq!(bias.len(), ws.n, "bias length mismatch");
    let k = ws.h;
    assert!(is.h + 2 * pad >= k, "kernel larger than padded input");
    let (cin, cout) = (is.c, ws.n);
    let oh = is.h + 2 * pad - k + 1;
    let ow = is.w + 2 * pad - k + 1;
    let p = grid_size(is.h, is.w, k);
    let plane = p * p;

    // Pre-transform all kernels, flipped (correlation → convolution).
    let mut wf: Vec<Vec<Complex>> = Vec::with_capacity(cout * cin);
    for co in 0..cout {
        for ci in 0..cin {
            let mut grid = vec![(0.0f32, 0.0f32); plane];
            for ky in 0..k {
                for kx in 0..k {
                    grid[(k - 1 - ky) * p + (k - 1 - kx)].0 = weight.at(co, ci, ky, kx);
                }
            }
            fft2_inplace(&mut grid, p, false);
            wf.push(grid);
        }
    }

    let mut out = Tensor::zeros(Shape4::new(is.n, cout, oh, ow));
    // Crop offset: output pixel (0,0) of the padded correlation sits at
    // linear-convolution index (k-1-pad).
    let off = k - 1 - pad.min(k - 1);
    assert!(pad < k, "pad >= k is not meaningful for `same`-style conv");

    for n in 0..is.n {
        // Transform every input channel once.
        let mut xf: Vec<Vec<Complex>> = Vec::with_capacity(cin);
        for ci in 0..cin {
            let mut grid = vec![(0.0f32, 0.0f32); plane];
            for y in 0..is.h {
                for x in 0..is.w {
                    grid[y * p + x].0 = input.at(n, ci, y, x);
                }
            }
            fft2_inplace(&mut grid, p, false);
            xf.push(grid);
        }
        for co in 0..cout {
            let mut acc = vec![(0.0f32, 0.0f32); plane];
            for ci in 0..cin {
                accumulate_product(&mut acc, &xf[ci], &wf[co * cin + ci]);
            }
            fft2_inplace(&mut acc, p, true);
            let inv = 1.0 / plane as f32;
            let b = bias[co];
            for y in 0..oh {
                for x in 0..ow {
                    *out.at_mut(n, co, y, x) = acc[(y + off) * p + (x + off)].0 * inv + b;
                }
            }
        }
    }
    out
}

/// Complex multiply-adds of the FFT approach per image (transforms +
/// spectral products), for comparison with direct convolution's MACs.
pub fn fft_conv_cmacs(cin: usize, cout: usize, h: usize, w: usize, k: usize) -> u64 {
    let p = grid_size(h, w, k) as u64;
    let plane = p * p;
    let log = (p as f64).log2() as u64 * 2;
    // Forward transforms of cin inputs + cout inverse transforms, plus
    // cin*cout spectral products.
    let transforms = (cin as u64 + cout as u64) * plane * log;
    transforms + (cin as u64 * cout as u64) * plane
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{Conv2d, ConvAlgorithm};
    use crate::layer::Layer;
    use scidl_tensor::TensorRng;

    #[test]
    fn matches_im2col_convolution_same_padding() {
        let mut rng = TensorRng::new(11);
        for &(cin, cout, hw, k) in &[(1usize, 1usize, 5usize, 3usize), (2, 4, 8, 3), (3, 2, 7, 5)] {
            let pad = k / 2;
            let mut conv = Conv2d::new("c", cin, cout, k, 1, pad, &mut rng);
            let x = rng.uniform_tensor(Shape4::new(2, cin, hw, hw), -1.0, 1.0);
            let want = conv.forward(&x);
            let got = fft_conv(&x, &conv.params()[0].value, conv.params()[1].value.data(), pad);
            assert_eq!(got.shape(), want.shape());
            let err = got.max_abs_diff(&want);
            assert!(err < 1e-3, "cin={cin} cout={cout} hw={hw} k={k}: err {err}");
        }
    }

    #[test]
    fn matches_valid_convolution_no_padding() {
        let mut rng = TensorRng::new(13);
        let mut conv = Conv2d::new("c", 2, 3, 3, 1, 0, &mut rng);
        let x = rng.uniform_tensor(Shape4::new(1, 2, 6, 6), -1.0, 1.0);
        let want = conv.forward(&x);
        let got = fft_conv(&x, &conv.params()[0].value, conv.params()[1].value.data(), 0);
        assert_eq!(got.shape(), want.shape());
        assert!(got.max_abs_diff(&want) < 1e-3);
    }

    #[test]
    fn identity_kernel_passes_through() {
        let mut w = Tensor::zeros(Shape4::new(1, 1, 3, 3));
        *w.at_mut(0, 0, 1, 1) = 1.0;
        let mut rng = TensorRng::new(17);
        let x = rng.uniform_tensor(Shape4::new(1, 1, 6, 6), -1.0, 1.0);
        let y = fft_conv(&x, &w, &[0.0], 1);
        assert!(y.max_abs_diff(&x) < 1e-4);
    }

    #[test]
    fn bias_is_added_everywhere() {
        let w = Tensor::zeros(Shape4::new(1, 2, 3, 3));
        let x = Tensor::zeros(Shape4::new(1, 2, 4, 4));
        let y = fft_conv(&x, &w, &[2.5], 1);
        assert!(y.data().iter().all(|&v| (v - 2.5).abs() < 1e-5));
    }

    #[test]
    fn fft_forward_backward_passes_finite_difference_check() {
        // The FFT forward pairs with the shared im2col backward; this
        // checks the *pair* end to end: d(sum(forward(x) ⊙ r))/dθ from
        // backward must match central differences of the FFT forward
        // itself, for weights, bias and the input.
        let (cin, cout, hw, k, pad) = (2usize, 3usize, 6usize, 3usize, 1usize);
        let mut rng = TensorRng::new(29);
        let mut conv =
            Conv2d::new("c", cin, cout, k, 1, pad, &mut rng).with_algorithm(ConvAlgorithm::Fft);
        assert_eq!(conv.algorithm(), ConvAlgorithm::Fft);
        let x = rng.uniform_tensor(Shape4::new(1, cin, hw, hw), -1.0, 1.0);
        let r = rng.uniform_tensor(Shape4::new(1, cout, hw, hw), -1.0, 1.0);

        // Scalar objective L = sum(y ⊙ r), so dL/dy = r.
        let loss = |conv: &mut Conv2d, x: &Tensor| -> f64 {
            let y = conv.forward(x);
            y.data().iter().zip(r.data()).map(|(a, b)| *a as f64 * *b as f64).sum()
        };

        for p in conv.params_mut() {
            p.zero_grad();
        }
        conv.forward(&x);
        let dx = conv.backward(&r);
        let wgrad: Vec<f32> = conv.params()[0].grad.data().to_vec();
        let bgrad: Vec<f32> = conv.params()[1].grad.data().to_vec();

        let eps = 5e-2f32;
        let check = |analytic: f32, numeric: f64, what: &str| {
            let tol = 3e-2 + 3e-2 * analytic.abs() as f64;
            assert!(
                (analytic as f64 - numeric).abs() < tol,
                "{what}: analytic {analytic} vs FD {numeric}"
            );
        };

        for idx in (0..wgrad.len()).step_by(5) {
            conv.params_mut()[0].value.data_mut()[idx] += eps;
            let lp = loss(&mut conv, &x);
            conv.params_mut()[0].value.data_mut()[idx] -= 2.0 * eps;
            let lm = loss(&mut conv, &x);
            conv.params_mut()[0].value.data_mut()[idx] += eps;
            check(wgrad[idx], (lp - lm) / (2.0 * eps as f64), &format!("weight {idx}"));
        }
        for (idx, &g) in bgrad.iter().enumerate() {
            conv.params_mut()[1].value.data_mut()[idx] += eps;
            let lp = loss(&mut conv, &x);
            conv.params_mut()[1].value.data_mut()[idx] -= 2.0 * eps;
            let lm = loss(&mut conv, &x);
            conv.params_mut()[1].value.data_mut()[idx] += eps;
            check(g, (lp - lm) / (2.0 * eps as f64), &format!("bias {idx}"));
        }
        for idx in (0..x.len()).step_by(7) {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let lp = loss(&mut conv, &xp);
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lm = loss(&mut conv, &xm);
            check(dx.data()[idx], (lp - lm) / (2.0 * eps as f64), &format!("input {idx}"));
        }
    }

    #[test]
    fn fft_wins_asymptotically_for_large_kernels() {
        // Direct MACs: cout*cin*k^2*oh*ow grows with k^2; FFT cost is
        // k-independent once the grid is fixed.
        let direct = |k: u64| 64u64 * 64 * k * k * 56 * 56;
        let fft9 = fft_conv_cmacs(64, 64, 56, 56, 9);
        let fft3 = fft_conv_cmacs(64, 64, 56, 56, 3);
        assert!(fft9 < direct(9), "FFT should beat direct at k=9: {fft9} vs {}", direct(9));
        // Identical FFT cost across kernel sizes on the same grid family.
        assert_eq!(fft9, fft3);
    }
}
