#![warn(missing_docs)]
//! # scidl-nn
//!
//! From-scratch deep-learning framework replacing the paper's
//! IntelCaffe + MKL 2017 stack. It provides:
//!
//! * the layer zoo used by both paper networks — [`Conv2d`], [`Deconv2d`]
//!   (implemented with the paper's Sec. III-C trick: deconv forward is conv
//!   backward-data and vice versa), [`MaxPool2d`], [`GlobalAvgPool`],
//!   [`Relu`], [`Dense`],
//! * loss heads — softmax cross-entropy for the supervised HEP classifier
//!   and the semi-supervised detection loss (confidence + class + bounding
//!   box + autoencoder reconstruction) for the climate network,
//! * solvers — [`Sgd`] with momentum and [`Adam`] (Sec. III-A/III-B),
//! * analytic per-layer FLOP accounting ([`flops`]) standing in for the
//!   Intel SDE instrumentation of Sec. V,
//! * the two reference architectures of Table II ([`arch::hep_network`],
//!   [`arch::climate_network`]) with parameter footprints matching the
//!   paper (≈2.3 MiB and ≈302 MiB),
//! * a wall-clock layer profiler ([`profile`]) regenerating Fig. 5 from
//!   the real Rust kernels.
//!
//! Gradient flow follows the classic Caffe model: layers are stateful,
//! `forward` caches what `backward` needs, and parameter gradients
//! accumulate into [`ParamBlock`]s that the distributed engines in
//! `scidl-core` flatten into communication buffers.
//!
//! ## Example
//!
//! ```
//! use scidl_nn::{Conv2d, Dense, GlobalAvgPool, Network, Relu, SoftmaxCrossEntropy};
//! use scidl_tensor::{Shape4, TensorRng};
//!
//! let mut rng = TensorRng::new(7);
//! let mut net = Network::new("demo")
//!     .push(Conv2d::new("conv", 1, 4, 3, 1, 1, &mut rng))
//!     .push(Relu::new("relu"))
//!     .push(GlobalAvgPool::new("gap"))
//!     .push(Dense::new("fc", 4, 2, &mut rng));
//! let x = rng.uniform_tensor(Shape4::new(2, 1, 8, 8), -1.0, 1.0);
//! let logits = net.forward(&x);
//! let (loss, grad) = SoftmaxCrossEntropy::forward(&logits, &[0, 1]);
//! net.backward(&grad);
//! assert!(loss > 0.0);
//! ```

pub mod activation;
pub mod arch;
pub mod conv;
pub mod deconv;
pub mod dense;
pub mod fftconv;
pub mod flops;
pub mod layer;
pub mod loss;
pub mod lstm;
pub mod network;
pub mod pool;
pub mod profile;
pub mod quant;
pub mod residual;
pub mod schedule;
pub mod solver;
pub mod winograd;

pub use activation::Relu;
pub use conv::Conv2d;
pub use deconv::Deconv2d;
pub use dense::Dense;
pub use layer::{InferScratch, Layer, ParamBlock};
pub use loss::{DetectionLoss, DetectionTargets, SoftmaxCrossEntropy};
pub use lstm::Lstm;
pub use network::Network;
pub use pool::{GlobalAvgPool, MaxPool2d};
pub use residual::Residual;
pub use solver::{Adam, Sgd, Solver};
