//! 2-D transposed convolution (deconvolution) layer.
//!
//! The paper's climate network needed optimised deconvolutions that MKL
//! 2017 did not provide; Sec. III-C describes the trick used: *the
//! backward-data pass of a convolution computes the forward pass of the
//! matching deconvolution, and vice versa*. We implement exactly that —
//! [`Deconv2d::forward`] is `col2im(W^T · x)` (a conv backward-data) and
//! [`Deconv2d::backward`]'s data path is `W · im2col(dy)` (a conv
//! forward), so the two layers share all their kernels.

use crate::layer::{InferScratch, Layer, ParamBlock};
use scidl_tensor::{
    col2im, gemm, im2col, ConvGeometry, Shape4, Tensor, TensorRng, Transpose, Workspace,
};

/// A 2-D transposed convolution with square kernel and uniform stride.
///
/// For input `(n, cin, h, w)` the output is `(n, cout, oh, ow)` with
/// `oh = (h-1)*stride + k - 2*pad` (the inverse of the convolution output
/// formula). Weights are stored `(cin, cout, k, k)` — the mirror of
/// [`crate::Conv2d`]'s layout, as in Caffe.
pub struct Deconv2d {
    name: String,
    cin: usize,
    cout: usize,
    k: usize,
    stride: usize,
    pad: usize,
    weight: ParamBlock,
    bias: ParamBlock,
    cached_input: Option<Tensor>,
}

impl Deconv2d {
    /// Creates a deconvolution with He-initialised weights and zero bias.
    pub fn new(
        name: impl Into<String>,
        cin: usize,
        cout: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let name = name.into();
        let fan_in = cin * k * k;
        let weight = ParamBlock::new(
            format!("{name}.weight"),
            rng.he_tensor(Shape4::new(cin, cout, k, k), fan_in),
        );
        let bias = ParamBlock::new(format!("{name}.bias"), Tensor::zeros(Shape4::flat(cout)));
        Self { name, cin, cout, k, stride, pad, weight, bias, cached_input: None }
    }

    /// Output spatial size for a given input spatial size.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            (h - 1) * self.stride + self.k >= 2 * self.pad,
            "{}: degenerate deconv geometry",
            self.name
        );
        (
            (h - 1) * self.stride + self.k - 2 * self.pad,
            (w - 1) * self.stride + self.k - 2 * self.pad,
        )
    }

    /// The *convolution* geometry whose backward pass is this layer's
    /// forward pass: a conv from the deconv's output plane back to its
    /// input plane.
    fn mirror_geometry(&self, h: usize, w: usize) -> ConvGeometry {
        let (oh, ow) = self.out_hw(h, w);
        let geo = ConvGeometry::new(self.cout, self.cin, oh, ow, self.k, self.stride, self.pad);
        debug_assert_eq!(geo.out_h(), h);
        debug_assert_eq!(geo.out_w(), w);
        geo
    }
}

impl Layer for Deconv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn out_shape(&self, input: Shape4) -> Shape4 {
        assert_eq!(input.c, self.cin, "{}: expected {} input channels, got {}", self.name, self.cin, input.c);
        let (oh, ow) = self.out_hw(input.h, input.w);
        Shape4::new(input.n, self.cout, oh, ow)
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let ishape = input.shape();
        let geo = self.mirror_geometry(ishape.h, ishape.w);
        let oshape = self.out_shape(ishape);
        let mut out = Tensor::zeros(oshape);
        let (rows, cols) = (geo.col_rows(), geo.col_cols()); // rows = cout*k*k, cols = h*w
        // Pooled scratch: the beta=0 GEMM overwrites every element, so the
        // stale pooled contents never leak into the output.
        let mut col = Workspace::take(rows * cols);

        for n in 0..ishape.n {
            // col = W^T (cout*k*k x cin) * x (cin x h*w)
            gemm(
                Transpose::Yes,
                Transpose::No,
                rows,
                cols,
                self.cin,
                1.0,
                self.weight.value.data(),
                input.item(n),
                0.0,
                &mut col,
            );
            // Scatter into the (zeroed) output plane.
            col2im(&geo, &col, out.item_mut(n));
            // Bias per output channel.
            let plane = oshape.plane_len();
            let item = out.item_mut(n);
            for c in 0..self.cout {
                let b = self.bias.value.data()[c];
                if b != 0.0 {
                    for v in &mut item[c * plane..(c + 1) * plane] {
                        *v += b;
                    }
                }
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn infer(&self, input: &Tensor, scratch: &mut InferScratch) -> Tensor {
        let ishape = input.shape();
        let geo = self.mirror_geometry(ishape.h, ishape.w);
        let oshape = self.out_shape(ishape);
        let mut out = Tensor::zeros(oshape);
        let (rows, cols) = (geo.col_rows(), geo.col_cols());
        scratch.col.resize(rows * cols, 0.0);

        for n in 0..ishape.n {
            gemm(
                Transpose::Yes,
                Transpose::No,
                rows,
                cols,
                self.cin,
                1.0,
                self.weight.value.data(),
                input.item(n),
                0.0,
                &mut scratch.col,
            );
            col2im(&geo, &scratch.col, out.item_mut(n));
            let plane = oshape.plane_len();
            let item = out.item_mut(n);
            for c in 0..self.cout {
                let b = self.bias.value.data()[c];
                if b != 0.0 {
                    for v in &mut item[c * plane..(c + 1) * plane] {
                        *v += b;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("Deconv2d::backward called before forward");
        let ishape = input.shape();
        let geo = self.mirror_geometry(ishape.h, ishape.w);
        let oshape = self.out_shape(ishape);
        assert_eq!(grad_out.shape(), oshape, "{}: grad_out shape mismatch", self.name);

        let (rows, cols) = (geo.col_rows(), geo.col_cols());
        // im2col overwrites the whole pooled buffer each item.
        let mut col = Workspace::take(rows * cols);
        let mut grad_in = Tensor::zeros(ishape);

        for n in 0..ishape.n {
            // The backward-data of a deconv is a plain convolution of dY.
            im2col(&geo, grad_out.item(n), &mut col);
            // dX = W (cin x cout*k*k) * col (cout*k*k x h*w)
            gemm(
                Transpose::No,
                Transpose::No,
                self.cin,
                cols,
                rows,
                1.0,
                self.weight.value.data(),
                &col,
                0.0,
                grad_in.item_mut(n),
            );
            // dW += x (cin x h*w) * col^T (h*w x cout*k*k)
            gemm(
                Transpose::No,
                Transpose::Yes,
                self.cin,
                rows,
                cols,
                1.0,
                input.item(n),
                &col,
                1.0,
                self.weight.grad.data_mut(),
            );
            // Bias gradient: per-output-channel sum of dY.
            let plane = oshape.plane_len();
            let dy = grad_out.item(n);
            for c in 0..self.cout {
                let s: f32 = dy[c * plane..(c + 1) * plane].iter().sum();
                self.bias.grad.data_mut()[c] += s;
            }
        }
        grad_in
    }

    fn params(&self) -> Vec<&ParamBlock> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut ParamBlock> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn forward_flops_per_image(&self, input: Shape4) -> u64 {
        // Same MAC count as the mirror convolution (the kernels are shared).
        2 * self.mirror_geometry(input.h, input.w).macs_per_image()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TensorRng {
        TensorRng::new(99)
    }

    /// Direct (scatter) transposed-convolution reference.
    fn deconv_ref(input: &Tensor, w: &Tensor, b: &[f32], k: usize, stride: usize, pad: usize) -> Tensor {
        let is = input.shape();
        let cout = w.shape().c; // weight stored (cin, cout, k, k)
        let oh = (is.h - 1) * stride + k - 2 * pad;
        let ow = (is.w - 1) * stride + k - 2 * pad;
        let mut out = Tensor::zeros(Shape4::new(is.n, cout, oh, ow));
        for n in 0..is.n {
            for (co, &bias) in b.iter().enumerate().take(cout) {
                for y in 0..oh {
                    for x in 0..ow {
                        *out.at_mut(n, co, y, x) = bias;
                    }
                }
            }
            for ci in 0..is.c {
                for iy in 0..is.h {
                    for ix in 0..is.w {
                        let v = input.at(n, ci, iy, ix);
                        for co in 0..cout {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let oy = (iy * stride + ky) as isize - pad as isize;
                                    let ox = (ix * stride + kx) as isize - pad as isize;
                                    if oy >= 0 && ox >= 0 && (oy as usize) < oh && (ox as usize) < ow {
                                        *out.at_mut(n, co, oy as usize, ox as usize) +=
                                            v * w.at(ci, co, ky, kx);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_direct_reference() {
        let mut r = rng();
        for &(cin, cout, h, w, k, s, p) in
            &[(1, 1, 3, 3, 2, 2, 0), (2, 3, 4, 5, 4, 2, 1), (3, 2, 3, 3, 3, 1, 1)]
        {
            let mut d = Deconv2d::new("d", cin, cout, k, s, p, &mut r);
            let x = r.uniform_tensor(Shape4::new(2, cin, h, w), -1.0, 1.0);
            let y = d.forward(&x);
            let yref = deconv_ref(&x, &d.weight.value, d.bias.value.data(), k, s, p);
            assert_eq!(y.shape(), yref.shape());
            assert!(
                y.max_abs_diff(&yref) < 1e-4,
                "mismatch for cin={cin} cout={cout} k={k} s={s} p={p}"
            );
        }
    }

    #[test]
    fn stride2_doubles_resolution_with_k4_p1() {
        let mut r = rng();
        let d = Deconv2d::new("d", 8, 4, 4, 2, 1, &mut r);
        assert_eq!(d.out_shape(Shape4::new(1, 8, 24, 24)), Shape4::new(1, 4, 48, 48));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut r = rng();
        let mut d = Deconv2d::new("d", 2, 2, 3, 2, 1, &mut r);
        let x = r.uniform_tensor(Shape4::new(1, 2, 3, 3), -1.0, 1.0);
        let y = d.forward(&x);
        let ones = Tensor::filled(y.shape(), 1.0);
        let dx = d.backward(&ones);
        let eps = 1e-3f32;

        for &idx in &[0usize, 4, 9, 17] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = d.forward(&xp).sum();
            d.cached_input = None;
            let lm = d.forward(&xm).sum();
            d.cached_input = None;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (dx.data()[idx] - num).abs() < 2e-2,
                "input grad {idx}: analytic {} vs numeric {num}",
                dx.data()[idx]
            );
        }

        for &idx in &[0usize, 5, 11, 23] {
            let analytic = d.weight.grad.data()[idx];
            let orig = d.weight.value.data()[idx];
            d.weight.value.data_mut()[idx] = orig + eps;
            let lp = d.forward(&x).sum();
            d.cached_input = None;
            d.weight.value.data_mut()[idx] = orig - eps;
            let lm = d.forward(&x).sum();
            d.cached_input = None;
            d.weight.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - num).abs() < 2e-2,
                "weight grad {idx}: analytic {analytic} vs numeric {num}"
            );
        }
    }

    /// Deconv must be the exact adjoint of the matching conv (zero bias):
    /// <conv(x), y> == <x, deconv(y)> when they share the same weights.
    #[test]
    fn deconv_is_adjoint_of_conv() {
        use crate::conv::Conv2d;
        let mut r = rng();
        let k = 3;
        let (s, p) = (2, 1);
        let (cin, cout) = (3, 5);
        let mut conv = Conv2d::new("c", cin, cout, k, s, p, &mut r);
        let mut dec = Deconv2d::new("d", cout, cin, k, s, p, &mut r);
        // Share weights: conv weight (cout, cin, k, k) == deconv weight
        // layout (cin_dec=cout, cout_dec=cin, k, k) — identical buffers.
        dec.weight.value = Tensor::from_vec(dec.weight.value.shape(), conv.params()[0].value.data().to_vec());

        let x = r.uniform_tensor(Shape4::new(1, cin, 7, 7), -1.0, 1.0);
        let cx = conv.forward(&x);
        let y = r.uniform_tensor(cx.shape(), -1.0, 1.0);
        let dy = dec.forward(&y);

        let lhs: f64 = cx.data().iter().zip(y.data()).map(|(a, b)| *a as f64 * *b as f64).sum();
        let rhs: f64 = x.data().iter().zip(dy.data()).map(|(a, b)| *a as f64 * *b as f64).sum();
        assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn infer_matches_forward_bit_identically() {
        use crate::layer::InferScratch;
        let mut r = rng();
        let mut d = Deconv2d::new("d", 3, 2, 4, 2, 1, &mut r);
        let x = r.uniform_tensor(Shape4::new(2, 3, 5, 5), -1.0, 1.0);
        let want = d.forward(&x);
        let got = d.infer(&x, &mut InferScratch::new());
        assert_eq!(want.data(), got.data());
    }

    #[test]
    fn flops_symmetric_with_mirror_conv() {
        let mut r = rng();
        let d = Deconv2d::new("d", 16, 8, 4, 2, 1, &mut r);
        let f = d.forward_flops_per_image(Shape4::new(1, 16, 12, 12));
        // Mirror conv: 24x24 input, 16 out-ch... macs = cin_mirror(8)*k*k*cout_mirror(16)*12*12
        assert_eq!(f, 2 * (8 * 16 * 16 * 144));
    }
}
