//! Pooling layers: max pooling and global average pooling.
//!
//! The HEP network (Sec. III-A) uses 2x2/stride-2 max pooling after the
//! first four convolutions and global average pooling after the fifth —
//! a deliberate design choice of the paper (no large dense layers) that
//! keeps the model small enough to all-reduce cheaply at scale.

use crate::layer::{InferScratch, Layer};
use scidl_tensor::{Shape4, Tensor};

/// Max pooling with square kernel and uniform stride (no padding).
pub struct MaxPool2d {
    name: String,
    k: usize,
    stride: usize,
    /// Flat input index of the argmax for every output element, recorded
    /// during forward for the backward scatter.
    argmax: Vec<usize>,
    in_shape: Shape4,
}

impl MaxPool2d {
    /// Creates a max-pool layer; the paper uses `k = stride = 2`.
    pub fn new(name: impl Into<String>, k: usize, stride: usize) -> Self {
        assert!(k > 0 && stride > 0);
        Self { name: name.into(), k, stride, argmax: Vec::new(), in_shape: Shape4::new(0, 0, 0, 0) }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn out_shape(&self, input: Shape4) -> Shape4 {
        assert!(input.h >= self.k && input.w >= self.k, "{}: input smaller than kernel", self.name);
        Shape4::new(
            input.n,
            input.c,
            (input.h - self.k) / self.stride + 1,
            (input.w - self.k) / self.stride + 1,
        )
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let is = input.shape();
        let os = self.out_shape(is);
        let mut out = Tensor::zeros(os);
        self.argmax.resize(os.len(), 0);
        self.in_shape = is;

        let data = input.data();
        let odata = out.data_mut();
        let mut oi = 0usize;
        for n in 0..is.n {
            for c in 0..is.c {
                let base = (n * is.c + c) * is.plane_len();
                for oy in 0..os.h {
                    for ox in 0..os.w {
                        let y0 = oy * self.stride;
                        let x0 = ox * self.stride;
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = base + y0 * is.w + x0;
                        for ky in 0..self.k {
                            let row = base + (y0 + ky) * is.w + x0;
                            for kx in 0..self.k {
                                let v = data[row + kx];
                                if v > best {
                                    best = v;
                                    best_idx = row + kx;
                                }
                            }
                        }
                        odata[oi] = best;
                        self.argmax[oi] = best_idx;
                        oi += 1;
                    }
                }
            }
        }
        out
    }

    fn infer(&self, input: &Tensor, _scratch: &mut InferScratch) -> Tensor {
        let is = input.shape();
        let os = self.out_shape(is);
        let mut out = Tensor::zeros(os);

        let data = input.data();
        let odata = out.data_mut();
        let mut oi = 0usize;
        for n in 0..is.n {
            for c in 0..is.c {
                let base = (n * is.c + c) * is.plane_len();
                for oy in 0..os.h {
                    for ox in 0..os.w {
                        let y0 = oy * self.stride;
                        let x0 = ox * self.stride;
                        let mut best = f32::NEG_INFINITY;
                        for ky in 0..self.k {
                            let row = base + (y0 + ky) * is.w + x0;
                            for kx in 0..self.k {
                                let v = data[row + kx];
                                if v > best {
                                    best = v;
                                }
                            }
                        }
                        odata[oi] = best;
                        oi += 1;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.len(), self.argmax.len(), "{}: backward before forward", self.name);
        let mut grad_in = Tensor::zeros(self.in_shape);
        let gi = grad_in.data_mut();
        for (g, &idx) in grad_out.data().iter().zip(&self.argmax) {
            gi[idx] += g;
        }
        grad_in
    }

    fn forward_flops_per_image(&self, input: Shape4) -> u64 {
        // One compare per kernel tap per output element.
        let os = self.out_shape(input.with_n(1));
        (os.len() * self.k * self.k) as u64
    }

    fn backward_flops_per_image(&self, input: Shape4) -> u64 {
        self.out_shape(input.with_n(1)).len() as u64
    }
}

/// Global average pooling: `(n, c, h, w) → (n, c, 1, 1)`.
pub struct GlobalAvgPool {
    name: String,
    in_shape: Shape4,
}

impl GlobalAvgPool {
    /// Creates a global-average-pool layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), in_shape: Shape4::new(0, 0, 0, 0) }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &str {
        &self.name
    }

    fn out_shape(&self, input: Shape4) -> Shape4 {
        Shape4::new(input.n, input.c, 1, 1)
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let is = input.shape();
        self.in_shape = is;
        let mut out = Tensor::zeros(self.out_shape(is));
        let plane = is.plane_len();
        let inv = 1.0 / plane as f32;
        for n in 0..is.n {
            for c in 0..is.c {
                let base = (n * is.c + c) * plane;
                let s: f32 = input.data()[base..base + plane].iter().sum();
                out.data_mut()[n * is.c + c] = s * inv;
            }
        }
        out
    }

    fn infer(&self, input: &Tensor, _scratch: &mut InferScratch) -> Tensor {
        let is = input.shape();
        let mut out = Tensor::zeros(self.out_shape(is));
        let plane = is.plane_len();
        let inv = 1.0 / plane as f32;
        for n in 0..is.n {
            for c in 0..is.c {
                let base = (n * is.c + c) * plane;
                let s: f32 = input.data()[base..base + plane].iter().sum();
                out.data_mut()[n * is.c + c] = s * inv;
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let is = self.in_shape;
        assert_eq!(grad_out.shape(), self.out_shape(is), "{}: grad shape mismatch", self.name);
        let mut grad_in = Tensor::zeros(is);
        let plane = is.plane_len();
        let inv = 1.0 / plane as f32;
        for n in 0..is.n {
            for c in 0..is.c {
                let g = grad_out.data()[n * is.c + c] * inv;
                let base = (n * is.c + c) * plane;
                for v in &mut grad_in.data_mut()[base..base + plane] {
                    *v = g;
                }
            }
        }
        grad_in
    }

    fn forward_flops_per_image(&self, input: Shape4) -> u64 {
        input.item_len() as u64
    }

    fn backward_flops_per_image(&self, input: Shape4) -> u64 {
        input.item_len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidl_tensor::TensorRng;

    #[test]
    fn maxpool_2x2_basic() {
        let mut p = MaxPool2d::new("p", 2, 2);
        let x = Tensor::from_vec(
            Shape4::new(1, 1, 4, 4),
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.5, //
                -3.0, -4.0, 0.25, 0.75,
            ],
        );
        let y = p.forward(&x);
        assert_eq!(y.shape(), Shape4::new(1, 1, 2, 2));
        assert_eq!(y.data(), &[4.0, 8.0, -1.0, 0.75]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut p = MaxPool2d::new("p", 2, 2);
        let x = Tensor::from_vec(
            Shape4::new(1, 1, 2, 2),
            vec![1.0, 9.0, 3.0, 4.0],
        );
        p.forward(&x);
        let g = Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![5.0]);
        let gx = p.backward(&g);
        assert_eq!(gx.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_gradient_check() {
        let mut rng = TensorRng::new(7);
        let mut p = MaxPool2d::new("p", 2, 2);
        let x = rng.uniform_tensor(Shape4::new(2, 3, 6, 6), -1.0, 1.0);
        let y = p.forward(&x);
        let ones = Tensor::filled(y.shape(), 1.0);
        let gx = p.backward(&ones);
        // Sum of input grads equals number of output elements (each output
        // routes exactly one unit of gradient).
        assert!((gx.sum() - y.len() as f32).abs() < 1e-3);
    }

    #[test]
    fn maxpool_odd_input_truncates() {
        let p = MaxPool2d::new("p", 2, 2);
        assert_eq!(p.out_shape(Shape4::new(1, 1, 5, 5)), Shape4::new(1, 1, 2, 2));
    }

    #[test]
    fn gap_averages_planes() {
        let mut g = GlobalAvgPool::new("gap");
        let x = Tensor::from_vec(
            Shape4::new(1, 2, 2, 2),
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
        );
        let y = g.forward(&x);
        assert_eq!(y.shape(), Shape4::new(1, 2, 1, 1));
        assert_eq!(y.data(), &[2.5, 25.0]);
    }

    #[test]
    fn gap_backward_spreads_uniformly() {
        let mut g = GlobalAvgPool::new("gap");
        let x = Tensor::filled(Shape4::new(1, 1, 2, 2), 3.0);
        g.forward(&x);
        let dy = Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![8.0]);
        let dx = g.backward(&dy);
        assert_eq!(dx.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn gap_finite_difference() {
        let mut rng = TensorRng::new(3);
        let mut g = GlobalAvgPool::new("gap");
        let x = rng.uniform_tensor(Shape4::new(1, 2, 3, 3), -1.0, 1.0);
        let y = g.forward(&x);
        let ones = Tensor::filled(y.shape(), 1.0);
        let dx = g.backward(&ones);
        let eps = 1e-3f32;
        for idx in [0usize, 8, 17] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = g.forward(&xp).sum();
            let lm = g.forward(&xm).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((dx.data()[idx] - num).abs() < 1e-2);
        }
    }
}
