//! Winograd fast convolution, F(2x2, 3x3).
//!
//! Sec. VIII-A lists Winograd-style algorithms (Lavin & Gray [43]) as the
//! rapidly evolving state of the art the paper did *not* yet use:
//! "studying the impact on per-node performance and scale out behaviour
//! of these algorithms is a direction for future research". This module
//! implements the classic F(2x2, 3x3) transform — 2.25x fewer
//! multiplications per output than direct convolution — as an alternate
//! forward path for 3x3/stride-1 convolutions, bit-compatible (within
//! floating-point tolerance) with [`crate::Conv2d`].
//!
//! Transforms (Lavin & Gray, 2015):
//!
//! ```text
//! Y = A^T [ (G g G^T) ⊙ (B^T d B) ] A
//! ```
//!
//! with 4x4 input tiles `d`, 3x3 filters `g`, and
//!
//! ```text
//! B^T = [1  0 -1  0;  0 1 1 0;  0 -1 1 0;  0 1 0 -1]
//! G   = [1 0 0;  ½ ½ ½;  ½ -½ ½;  0 0 1]
//! A^T = [1 1 1 0;  0 1 -1 -1]
//! ```

use scidl_tensor::{Shape4, Tensor};

/// Transforms one 3x3 filter into the 4x4 Winograd domain: `G g G^T`.
fn filter_transform(g: &[f32; 9]) -> [f32; 16] {
    // Gg (4x3)
    let mut gg = [0.0f32; 12];
    for col in 0..3 {
        let (a, b, c) = (g[col], g[3 + col], g[6 + col]);
        gg[col] = a;
        gg[3 + col] = 0.5 * (a + b + c);
        gg[6 + col] = 0.5 * (a - b + c);
        gg[9 + col] = c;
    }
    // (Gg) G^T (4x4)
    let mut out = [0.0f32; 16];
    for row in 0..4 {
        let (a, b, c) = (gg[row * 3], gg[row * 3 + 1], gg[row * 3 + 2]);
        out[row * 4] = a;
        out[row * 4 + 1] = 0.5 * (a + b + c);
        out[row * 4 + 2] = 0.5 * (a - b + c);
        out[row * 4 + 3] = c;
    }
    out
}

/// Transforms one 4x4 input tile: `B^T d B`.
#[inline]
fn input_transform(d: &[f32; 16]) -> [f32; 16] {
    // B^T d (rows)
    let mut t = [0.0f32; 16];
    for col in 0..4 {
        let (d0, d1, d2, d3) = (d[col], d[4 + col], d[8 + col], d[12 + col]);
        t[col] = d0 - d2;
        t[4 + col] = d1 + d2;
        t[8 + col] = d2 - d1;
        t[12 + col] = d1 - d3;
    }
    // (B^T d) B (cols)
    let mut out = [0.0f32; 16];
    for row in 0..4 {
        let (t0, t1, t2, t3) = (t[row * 4], t[row * 4 + 1], t[row * 4 + 2], t[row * 4 + 3]);
        out[row * 4] = t0 - t2;
        out[row * 4 + 1] = t1 + t2;
        out[row * 4 + 2] = t2 - t1;
        out[row * 4 + 3] = t1 - t3;
    }
    out
}

/// Output transform: `A^T m A`, 4x4 → 2x2.
#[inline]
fn output_transform(m: &[f32; 16]) -> [f32; 4] {
    // A^T m (2x4)
    let mut t = [0.0f32; 8];
    for col in 0..4 {
        let (m0, m1, m2, m3) = (m[col], m[4 + col], m[8 + col], m[12 + col]);
        t[col] = m0 + m1 + m2;
        t[4 + col] = m1 - m2 - m3;
    }
    // (A^T m) A (2x2)
    [
        t[0] + t[1] + t[2],
        t[1] - t[2] - t[3],
        t[4] + t[5] + t[6],
        t[5] - t[6] - t[7],
    ]
}

/// Winograd F(2x2, 3x3) forward convolution for stride-1, pad-1 3x3
/// kernels (the HEP network's shape). `weight` is `(cout, cin, 3, 3)`,
/// `bias` has `cout` entries, input is NCHW with even `h`, `w`.
///
/// Returns the same result as the im2col+GEMM path up to floating-point
/// reassociation.
pub fn winograd_conv3x3(input: &Tensor, weight: &Tensor, bias: &[f32]) -> Tensor {
    let is = input.shape();
    let ws = weight.shape();
    assert_eq!(ws.h, 3, "winograd path requires 3x3 kernels");
    assert_eq!(ws.w, 3);
    assert_eq!(ws.c, is.c, "channel mismatch");
    assert_eq!(bias.len(), ws.n, "bias length mismatch");
    assert!(
        is.h.is_multiple_of(2) && is.w.is_multiple_of(2),
        "even spatial dims required for 2x2 tiles"
    );
    let (cin, cout) = (is.c, ws.n);
    let (h, w) = (is.h, is.w);

    // Pre-transform all filters.
    let mut uf = vec![0.0f32; cout * cin * 16];
    for co in 0..cout {
        for ci in 0..cin {
            let mut g = [0.0f32; 9];
            g.copy_from_slice(&weight.data()[(co * cin + ci) * 9..(co * cin + ci) * 9 + 9]);
            let u = filter_transform(&g);
            uf[(co * cin + ci) * 16..(co * cin + ci) * 16 + 16].copy_from_slice(&u);
        }
    }

    let tiles_y = h / 2;
    let tiles_x = w / 2;
    let mut out = Tensor::zeros(Shape4::new(is.n, cout, h, w));

    for n in 0..is.n {
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                // Gather the padded 4x4 input tile per channel and
                // transform it once; accumulate over channels in the
                // Winograd domain per output channel.
                let mut m = vec![[0.0f32; 16]; cout];
                for ci in 0..cin {
                    let mut d = [0.0f32; 16];
                    for dy in 0..4usize {
                        let iy = (2 * ty + dy) as isize - 1;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for dx in 0..4usize {
                            let ix = (2 * tx + dx) as isize - 1;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            d[dy * 4 + dx] = input.at(n, ci, iy as usize, ix as usize);
                        }
                    }
                    let v = input_transform(&d);
                    for co in 0..cout {
                        let u = &uf[(co * cin + ci) * 16..(co * cin + ci) * 16 + 16];
                        let acc = &mut m[co];
                        for i in 0..16 {
                            acc[i] += u[i] * v[i];
                        }
                    }
                }
                for co in 0..cout {
                    let y = output_transform(&m[co]);
                    let b = bias[co];
                    *out.at_mut(n, co, 2 * ty, 2 * tx) = y[0] + b;
                    *out.at_mut(n, co, 2 * ty, 2 * tx + 1) = y[1] + b;
                    *out.at_mut(n, co, 2 * ty + 1, 2 * tx) = y[2] + b;
                    *out.at_mut(n, co, 2 * ty + 1, 2 * tx + 1) = y[3] + b;
                }
            }
        }
    }
    out
}

/// Multiplication count per 2x2 output tile per channel pair: 16 for
/// Winograd vs 36 for direct 3x3 — the 2.25x reduction of [43].
pub const WINOGRAD_MULS_PER_TILE: usize = 16;
/// Direct-convolution multiplications per 2x2 output tile.
pub const DIRECT_MULS_PER_TILE: usize = 36;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::Conv2d;
    use crate::layer::Layer;
    use scidl_tensor::TensorRng;

    #[test]
    fn matches_im2col_convolution() {
        let mut rng = TensorRng::new(42);
        for &(cin, cout, hw) in &[(1usize, 1usize, 4usize), (3, 8, 8), (8, 16, 6)] {
            let mut conv = Conv2d::new("c", cin, cout, 3, 1, 1, &mut rng);
            let x = rng.uniform_tensor(Shape4::new(2, cin, hw, hw), -1.0, 1.0);
            let reference = conv.forward(&x);
            let weight = &conv.params()[0].value;
            let bias: Vec<f32> = conv.params()[1].value.data().to_vec();
            let wout = winograd_conv3x3(&x, weight, &bias);
            assert_eq!(wout.shape(), reference.shape());
            let err = wout.max_abs_diff(&reference);
            assert!(err < 1e-4, "cin={cin} cout={cout} hw={hw}: max err {err}");
        }
    }

    #[test]
    fn identity_filter_passes_input_through() {
        // Filter with 1 at the centre ⇒ output == input (pad 1, stride 1).
        let mut w = Tensor::zeros(Shape4::new(1, 1, 3, 3));
        *w.at_mut(0, 0, 1, 1) = 1.0;
        let mut rng = TensorRng::new(7);
        let x = rng.uniform_tensor(Shape4::new(1, 1, 6, 6), -1.0, 1.0);
        let y = winograd_conv3x3(&x, &w, &[0.0]);
        assert!(y.max_abs_diff(&x) < 1e-5);
    }

    #[test]
    fn bias_is_added() {
        let w = Tensor::zeros(Shape4::new(2, 1, 3, 3));
        let x = Tensor::zeros(Shape4::new(1, 1, 4, 4));
        let y = winograd_conv3x3(&x, &w, &[1.5, -2.0]);
        assert!(y.data()[..16].iter().all(|&v| v == 1.5));
        assert!(y.data()[16..].iter().all(|&v| v == -2.0));
    }

    #[test]
    fn multiplication_saving_is_2_25x() {
        assert_eq!(DIRECT_MULS_PER_TILE as f64 / WINOGRAD_MULS_PER_TILE as f64, 2.25);
    }

    #[test]
    #[should_panic(expected = "even spatial dims")]
    fn rejects_odd_inputs() {
        let w = Tensor::zeros(Shape4::new(1, 1, 3, 3));
        let x = Tensor::zeros(Shape4::new(1, 1, 5, 5));
        let _ = winograd_conv3x3(&x, &w, &[0.0]);
    }
}
