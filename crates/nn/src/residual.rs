//! Residual blocks (ResNet support).
//!
//! Sec. IX: "Our results are not limited to the specific applications
//! mentioned in this paper, but they extend to other kinds of models
//! such as ResNets and LSTM." This module provides the building block
//! that claim needs: a [`Residual`] layer computing `y = F(x) + P(x)`,
//! where `F` is an inner layer stack and `P` is identity or a 1x1
//! projection when shapes change — trainable by the same engines because
//! it exposes the standard [`Layer`] interface.

use crate::conv::Conv2d;
use crate::layer::{InferScratch, Layer, ParamBlock};
use crate::network::{Model, Network};
use scidl_tensor::{Shape4, Tensor, TensorRng};

/// A residual block: inner path plus skip connection.
pub struct Residual {
    name: String,
    inner: Network,
    /// 1x1 (possibly strided) projection for the skip path when the inner
    /// path changes shape; `None` for the identity skip.
    projection: Option<Conv2d>,
}

impl Residual {
    /// Wraps `inner` with an identity skip. The inner stack must preserve
    /// its input shape (checked at `out_shape`/`forward` time).
    pub fn identity(name: impl Into<String>, inner: Network) -> Self {
        Self { name: name.into(), inner, projection: None }
    }

    /// Wraps `inner` with a 1x1 projection skip of the given channel/
    /// stride change, for blocks that downsample or widen.
    pub fn projected(
        name: impl Into<String>,
        inner: Network,
        cin: usize,
        cout: usize,
        stride: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let name = name.into();
        let projection = Conv2d::new(format!("{name}.proj"), cin, cout, 1, stride, 0, rng);
        Self { name, inner, projection: Some(projection) }
    }

    fn skip_shape(&self, input: Shape4) -> Shape4 {
        match &self.projection {
            Some(p) => p.out_shape(input),
            None => input,
        }
    }
}

impl Layer for Residual {
    fn name(&self) -> &str {
        &self.name
    }

    fn out_shape(&self, input: Shape4) -> Shape4 {
        let inner = self.inner.out_shape(input);
        let skip = self.skip_shape(input);
        assert_eq!(
            inner, skip,
            "{}: inner path {inner:?} and skip path {skip:?} disagree",
            self.name
        );
        inner
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut y = self.inner.forward(input);
        match &mut self.projection {
            Some(p) => y.add_assign(&p.forward(input)),
            None => y.add_assign(input),
        }
        y
    }

    fn infer(&self, input: &Tensor, scratch: &mut InferScratch) -> Tensor {
        let mut y = self.inner.infer_with(input, scratch);
        match &self.projection {
            Some(p) => y.add_assign(&p.infer(input, scratch)),
            None => y.add_assign(input),
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut dx = self.inner.backward(grad_out);
        match &mut self.projection {
            Some(p) => dx.add_assign(&p.backward(grad_out)),
            None => dx.add_assign(grad_out),
        }
        dx
    }

    fn params(&self) -> Vec<&ParamBlock> {
        let mut blocks = self.inner.param_blocks();
        if let Some(p) = &self.projection {
            blocks.extend(p.params());
        }
        blocks
    }

    fn params_mut(&mut self) -> Vec<&mut ParamBlock> {
        let mut blocks = self.inner.param_blocks_mut();
        if let Some(p) = &mut self.projection {
            blocks.extend(p.params_mut());
        }
        blocks
    }

    fn forward_flops_per_image(&self, input: Shape4) -> u64 {
        let mut f = self.inner.forward_flops_per_image(input);
        if let Some(p) = &self.projection {
            f += p.forward_flops_per_image(input);
        }
        // The elementwise add.
        f + self.out_shape(input).item_len() as u64
    }
}

/// Builds a small ResNet-style classifier (for the Sec. IX claim): stem
/// conv, two residual blocks (one identity, one projected/downsampling),
/// global pooling and a dense head.
pub fn resnet_small(input_channels: usize, classes: usize, rng: &mut TensorRng) -> Network {
    use crate::pool::GlobalAvgPool;
    use crate::Relu;

    let block1 = Network::new("res1.inner")
        .push(Conv2d::new("res1.conv1", 16, 16, 3, 1, 1, rng))
        .push(Relu::new("res1.relu1"))
        .push(Conv2d::new("res1.conv2", 16, 16, 3, 1, 1, rng));
    let block2 = Network::new("res2.inner")
        .push(Conv2d::new("res2.conv1", 16, 32, 3, 2, 1, rng))
        .push(Relu::new("res2.relu1"))
        .push(Conv2d::new("res2.conv2", 32, 32, 3, 1, 1, rng));

    Network::new("resnet-small")
        .push(Conv2d::new("stem", input_channels, 16, 3, 1, 1, rng))
        .push(Relu::new("stem.relu"))
        .push(Residual::identity("res1", block1))
        .push(Relu::new("res1.out_relu"))
        .push(Residual::projected("res2", block2, 16, 32, 2, rng))
        .push(Relu::new("res2.out_relu"))
        .push(GlobalAvgPool::new("gap"))
        .push(crate::Dense::new("fc", 32, classes, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Relu;

    #[test]
    fn identity_block_with_zero_inner_is_identity() {
        let mut rng = TensorRng::new(1);
        let mut inner = Network::new("inner");
        let mut conv = Conv2d::new("c", 2, 2, 3, 1, 1, &mut rng);
        // Zero the conv so the inner path contributes nothing.
        for b in conv.params_mut() {
            b.value.zero_();
        }
        inner.add(Box::new(conv));
        let mut res = Residual::identity("r", inner);
        let x = rng.uniform_tensor(Shape4::new(1, 2, 4, 4), -1.0, 1.0);
        let y = res.forward(&x);
        assert!(y.max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn identity_skip_passes_gradient_through() {
        let mut rng = TensorRng::new(2);
        let inner = Network::new("inner")
            .push(Conv2d::new("c", 2, 2, 3, 1, 1, &mut rng))
            .push(Relu::new("r"));
        let mut res = Residual::identity("r", inner);
        let x = rng.uniform_tensor(Shape4::new(1, 2, 4, 4), -1.0, 1.0);
        let _ = res.forward(&x);
        let g = Tensor::filled(Shape4::new(1, 2, 4, 4), 1.0);
        let dx = res.backward(&g);
        // The skip contributes at least the incoming gradient everywhere.
        // ReLU can only add non-negative conv-path gradient on top when
        // conv weights are positive, so check the skip floor via a zeroed
        // inner gradient sanity: dx - g must be the conv path's gradient.
        assert_eq!(dx.shape(), x.shape());
        assert!(dx.all_finite());
    }

    #[test]
    fn gradient_check_identity_block() {
        let mut rng = TensorRng::new(3);
        let inner = Network::new("inner").push(Conv2d::new("c", 1, 1, 3, 1, 1, &mut rng));
        let mut res = Residual::identity("r", inner);
        let x = rng.uniform_tensor(Shape4::new(1, 1, 4, 4), -1.0, 1.0);
        let y = res.forward(&x);
        let dx = res.backward(&Tensor::filled(y.shape(), 1.0));
        let eps = 1e-3f32;
        for idx in [0usize, 7, 15] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = res.forward(&xp).sum();
            let lm = res.forward(&xm).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((dx.data()[idx] - num).abs() < 2e-2, "grad {idx}");
        }
    }

    #[test]
    fn projected_block_changes_shape_consistently() {
        let mut rng = TensorRng::new(4);
        let inner = Network::new("inner").push(Conv2d::new("c", 4, 8, 3, 2, 1, &mut rng));
        let mut res = Residual::projected("r", inner, 4, 8, 2, &mut rng);
        let x = rng.uniform_tensor(Shape4::new(2, 4, 8, 8), -1.0, 1.0);
        assert_eq!(res.out_shape(x.shape()), Shape4::new(2, 8, 4, 4));
        let y = res.forward(&x);
        assert_eq!(y.shape(), Shape4::new(2, 8, 4, 4));
        let dx = res.backward(&Tensor::filled(y.shape(), 1.0));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn mismatched_skip_is_rejected() {
        let mut rng = TensorRng::new(5);
        let inner = Network::new("inner").push(Conv2d::new("c", 4, 8, 3, 2, 1, &mut rng));
        let res = Residual::identity("r", inner);
        res.out_shape(Shape4::new(1, 4, 8, 8));
    }

    #[test]
    fn resnet_small_trains_on_toy_task() {
        use crate::loss::SoftmaxCrossEntropy;
        use crate::solver::{Adam, Solver};
        let mut rng = TensorRng::new(6);
        let mut net = resnet_small(1, 2, &mut rng);
        let n = 8;
        let mut x = Tensor::zeros(Shape4::new(n, 1, 16, 16));
        let mut labels = vec![0usize; n];
        for (i, label) in labels.iter_mut().enumerate().take(n) {
            *label = i % 2;
            let v = if i % 2 == 0 { 1.0 } else { -1.0 };
            x.item_mut(i).iter_mut().for_each(|p| *p = v);
        }
        let mut solver = Adam::new(1e-2);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..25 {
            let logits = net.forward(&x);
            let (loss, grad) = SoftmaxCrossEntropy::forward(&logits, &labels);
            net.backward(&grad);
            solver.step_model(&mut net);
            net.zero_grads();
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(last < first.unwrap() * 0.5, "{first:?} -> {last}");
    }

    #[test]
    fn residual_flops_include_skip_and_add() {
        let mut rng = TensorRng::new(7);
        let inner = Network::new("inner").push(Conv2d::new("c", 4, 8, 3, 2, 1, &mut rng));
        let res = Residual::projected("r", inner, 4, 8, 2, &mut rng);
        let s = Shape4::new(1, 4, 8, 8);
        let inner_only = 2 * (8 * 4 * 9 * 16) as u64;
        let proj = 2 * ((8 * 4) * 16) as u64;
        let add = (8 * 4 * 4) as u64;
        assert_eq!(res.forward_flops_per_image(s), inner_only + proj + add);
    }
}
