//! Learning-rate schedules and automatic momentum tuning.
//!
//! Sec. VIII-B: hybrid schemes "add an extra parameter to be tuned, which
//! stresses the need for principled momentum tuning approaches, an active
//! area of research (eg. [25] and recently [48])". This module provides:
//!
//! * classic learning-rate schedules (constant, step decay, linear
//!   warmup) that wrap any [`Solver`](crate::Solver),
//! * [`AutoMomentum`] — a simplified YellowFin-style tuner (Zhang,
//!   Mitliagkas & Ré [48]) that tracks the gradient's variance and range
//!   online and derives momentum/learning-rate from the noisy-quadratic
//!   model, optionally composed with the asynchrony correction of [31].

use crate::solver::asynchrony_adjusted_momentum;

/// A learning-rate schedule: maps the iteration counter to a multiplier
/// of the base learning rate.
#[derive(Clone, Debug, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiply by `gamma` every `every` iterations.
    StepDecay {
        /// Iterations between decays.
        every: usize,
        /// Decay factor per step.
        gamma: f32,
    },
    /// Linear warmup from `start_factor` to 1 over `steps` iterations,
    /// constant afterwards (the standard large-batch warmup recipe).
    Warmup {
        /// Warmup length in iterations.
        steps: usize,
        /// Initial multiplier.
        start_factor: f32,
    },
}

impl LrSchedule {
    /// Learning-rate multiplier at iteration `t` (0-based).
    pub fn factor(&self, t: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::StepDecay { every, gamma } => {
                assert!(every > 0, "decay period must be positive");
                gamma.powi((t / every) as i32)
            }
            LrSchedule::Warmup { steps, start_factor } => {
                if steps == 0 || t >= steps {
                    1.0
                } else {
                    start_factor + (1.0 - start_factor) * (t as f32 / steps as f32)
                }
            }
        }
    }
}

/// Online statistics driving the YellowFin-style tuner: exponential
/// moving estimates of the squared gradient norm and its extremes.
#[derive(Clone, Debug)]
pub struct AutoMomentum {
    /// EMA decay for the statistics.
    pub beta: f64,
    /// Number of asynchronous groups (for the implicit-momentum
    /// correction of [31]; 1 = synchronous).
    pub groups: usize,
    h_min: f64,
    h_max: f64,
    grad_sq: f64,
    steps: u64,
}

impl AutoMomentum {
    /// Creates a tuner; `groups` enables the asynchrony correction.
    pub fn new(groups: usize) -> Self {
        Self { beta: 0.9, groups: groups.max(1), h_min: f64::MAX, h_max: 0.0, grad_sq: 0.0, steps: 0 }
    }

    /// Feeds one iteration's gradient; returns `(momentum, lr_factor)` —
    /// the explicit momentum to configure and a multiplier for the base
    /// learning rate.
    ///
    /// The derivation follows YellowFin's noisy-quadratic argument: with
    /// curvature range `[h_min, h_max]`, the momentum that equalises the
    /// convergence rate across the spectrum is
    /// `μ* = ((√(h_max/h_min) − 1)/(√(h_max/h_min) + 1))²`, and the
    /// gradient-norm EMA scales the step. We proxy the curvature range by
    /// the observed squared-gradient-norm range — exact for quadratics
    /// sampled at stationary distance, a usable heuristic elsewhere.
    pub fn observe(&mut self, grad: &[f32]) -> (f32, f32) {
        let sq: f64 = grad.iter().map(|&g| g as f64 * g as f64).sum();
        self.steps += 1;
        let b = self.beta;
        self.grad_sq = if self.steps == 1 { sq } else { b * self.grad_sq + (1.0 - b) * sq };
        self.h_min = self.h_min.min(sq.max(1e-24));
        self.h_max = self.h_max.max(sq);

        let ratio = (self.h_max / self.h_min.max(1e-24)).max(1.0);
        let sqrt_r = ratio.sqrt();
        let mu_star = ((sqrt_r - 1.0) / (sqrt_r + 1.0)).powi(2);
        // Cap at the usual 0.9 and correct for asynchrony-induced
        // implicit momentum.
        let target = (mu_star as f32).min(0.9);
        let momentum = asynchrony_adjusted_momentum(target, self.groups);
        // LR factor: damp steps when the gradient is noisy relative to
        // its smoothed norm.
        let lr_factor = if self.grad_sq > 0.0 {
            ((self.grad_sq / (sq + 1e-24)).sqrt() as f32).clamp(0.25, 4.0)
        } else {
            1.0
        };
        (momentum, lr_factor)
    }

    /// Observed squared-gradient-norm range `(min, max)`.
    pub fn range(&self) -> (f64, f64) {
        (self.h_min, self.h_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_is_one() {
        for t in [0usize, 10, 1000] {
            assert_eq!(LrSchedule::Constant.factor(t), 1.0);
        }
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay { every: 10, gamma: 0.5 };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(9), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(25), 0.25);
    }

    #[test]
    fn warmup_ramps_linearly_then_holds() {
        let s = LrSchedule::Warmup { steps: 10, start_factor: 0.1 };
        assert_eq!(s.factor(0), 0.1);
        assert!((s.factor(5) - 0.55).abs() < 1e-6);
        assert_eq!(s.factor(10), 1.0);
        assert_eq!(s.factor(100), 1.0);
    }

    #[test]
    fn auto_momentum_is_zero_for_uniform_gradients() {
        let mut t = AutoMomentum::new(1);
        // Identical gradient norms → curvature ratio 1 → momentum 0.
        for _ in 0..20 {
            let (mu, _) = t.observe(&[1.0, 1.0]);
            assert!(mu < 1e-6, "mu {mu}");
        }
    }

    #[test]
    fn auto_momentum_grows_with_gradient_range() {
        let mut t = AutoMomentum::new(1);
        t.observe(&[0.1]);
        let (mu, _) = t.observe(&[10.0]);
        assert!(mu > 0.5, "wide range should imply high momentum: {mu}");
        assert!(mu <= 0.9);
    }

    #[test]
    fn asynchrony_correction_lowers_momentum() {
        let mut sync = AutoMomentum::new(1);
        let mut hybrid = AutoMomentum::new(8);
        sync.observe(&[0.1]);
        hybrid.observe(&[0.1]);
        let (mu_s, _) = sync.observe(&[10.0]);
        let (mu_h, _) = hybrid.observe(&[10.0]);
        assert!(mu_h < mu_s, "8 groups must get less explicit momentum: {mu_h} vs {mu_s}");
    }

    #[test]
    fn lr_factor_damps_noisy_steps() {
        let mut t = AutoMomentum::new(1);
        for _ in 0..50 {
            t.observe(&[1.0]);
        }
        // A sudden huge gradient: factor < 1 (damped).
        let (_, f) = t.observe(&[100.0]);
        assert!(f < 1.0, "noisy spike should be damped: {f}");
        assert!(f >= 0.25);
    }

    #[test]
    fn range_tracks_extremes() {
        let mut t = AutoMomentum::new(1);
        t.observe(&[2.0]); // sq 4
        t.observe(&[1.0]); // sq 1
        t.observe(&[3.0]); // sq 9
        let (lo, hi) = t.range();
        assert_eq!(lo, 1.0);
        assert_eq!(hi, 9.0);
    }
}
