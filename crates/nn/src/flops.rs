//! Analytic FLOP accounting — the stand-in for the paper's Intel SDE
//! instrumentation (Sec. V).
//!
//! The paper counts executed single-precision FLOPs of the network layers
//! on one node with SDE, then multiplies by node count (all nodes run the
//! same layers on the same problem size). We count the same mathematical
//! FLOPs analytically per layer; throughput numbers everywhere in the
//! harness are `counted FLOPs / (simulated or measured) time`, exactly
//! mirroring Sec. V's methodology.

use crate::network::Network;
use scidl_tensor::Shape4;

/// Per-layer FLOP entry of a [`FlopReport`].
#[derive(Clone, Debug)]
pub struct LayerFlops {
    /// Layer name.
    pub name: String,
    /// Forward FLOPs per image.
    pub forward: u64,
    /// Backward FLOPs per image.
    pub backward: u64,
}

impl LayerFlops {
    /// Forward + backward FLOPs per image.
    pub fn training(&self) -> u64 {
        self.forward + self.backward
    }
}

/// FLOP accounting for a network at a fixed input shape.
#[derive(Clone, Debug)]
pub struct FlopReport {
    /// Per-layer counts, in layer order.
    pub layers: Vec<LayerFlops>,
    /// FLOPs per parameter spent in the solver update, if accounted.
    pub solver_flops_per_param: u64,
    /// Scalar parameter count (for solver totals).
    pub params: u64,
}

impl FlopReport {
    /// Builds a report for `net` at input shape `input` (per single
    /// image; multiply by the minibatch for per-iteration numbers).
    pub fn for_network(net: &Network, input: Shape4, solver_flops_per_param: u64) -> Self {
        use crate::network::Model;
        let mut s = input.with_n(1);
        let mut layers = Vec::with_capacity(net.layers().len());
        for l in net.layers() {
            layers.push(LayerFlops {
                name: l.name().to_string(),
                forward: l.forward_flops_per_image(s),
                backward: l.backward_flops_per_image(s),
            });
            s = l.out_shape(s);
        }
        Self { layers, solver_flops_per_param, params: net.num_params() as u64 }
    }

    /// Total forward FLOPs per image.
    pub fn total_forward(&self) -> u64 {
        self.layers.iter().map(|l| l.forward).sum()
    }

    /// Total backward FLOPs per image.
    pub fn total_backward(&self) -> u64 {
        self.layers.iter().map(|l| l.backward).sum()
    }

    /// Total training (fwd+bwd) FLOPs per image.
    pub fn total_training(&self) -> u64 {
        self.total_forward() + self.total_backward()
    }

    /// Solver FLOPs per iteration (independent of minibatch size).
    pub fn solver_total(&self) -> u64 {
        self.solver_flops_per_param * self.params
    }

    /// FLOPs of one whole training iteration at the given minibatch size.
    pub fn iteration_flops(&self, minibatch: usize) -> u64 {
        self.total_training() * minibatch as u64 + self.solver_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Network, Relu};
    use scidl_tensor::TensorRng;

    fn two_conv_net() -> Network {
        let mut rng = TensorRng::new(1);
        Network::new("n")
            .push(Conv2d::new("c1", 1, 2, 3, 1, 1, &mut rng))
            .push(Relu::new("r1"))
            .push(Conv2d::new("c2", 2, 4, 3, 1, 1, &mut rng))
    }

    #[test]
    fn report_tracks_shapes_through_layers() {
        let net = two_conv_net();
        let r = FlopReport::for_network(&net, Shape4::new(1, 1, 8, 8), 6);
        assert_eq!(r.layers.len(), 3);
        // c1: 2 * (2*1*9*64) = 2304; c2 sees 2 channels: 2*(4*2*9*64) = 9216.
        assert_eq!(r.layers[0].forward, 2304);
        assert_eq!(r.layers[2].forward, 9216);
        assert_eq!(r.total_forward(), 2304 + 128 + 9216);
    }

    #[test]
    fn iteration_flops_scale_with_batch() {
        let net = two_conv_net();
        let r = FlopReport::for_network(&net, Shape4::new(1, 1, 8, 8), 6);
        let f1 = r.iteration_flops(1);
        let f8 = r.iteration_flops(8);
        assert_eq!(f8 - r.solver_total(), 8 * (f1 - r.solver_total()));
    }

    #[test]
    fn backward_roughly_double_forward_for_convs() {
        let net = two_conv_net();
        let r = FlopReport::for_network(&net, Shape4::new(1, 1, 8, 8), 0);
        assert_eq!(r.layers[0].backward, 2 * r.layers[0].forward);
    }
}
