//! Loss heads.
//!
//! * [`SoftmaxCrossEntropy`] — the HEP classifier's loss (Sec. III-A:
//!   "softmax with cross-entropy as the loss function").
//! * [`DetectionLoss`] — the climate network's semi-supervised objective
//!   (Sec. III-B): at every coarse-grid location the network predicts a
//!   confidence, class scores and a bounding box; the loss "attempts to
//!   simultaneously minimize the confidence of areas without a box,
//!   maximize those with a box, maximize the probability of the correct
//!   class for areas with a box, minimize the scale and location offset of
//!   the predicted box" — plus the autoencoder reconstruction error,
//!   provided here as [`mse_loss`].

use crate::activation::{sigmoid, sigmoid_grad_from_output};
use scidl_tensor::ops::softmax_inplace;
use scidl_tensor::{Shape4, Tensor};

/// Mean softmax cross-entropy over a batch of logits `(n, classes, 1, 1)`.
///
/// Returns the scalar loss and the gradient w.r.t. the logits (already
/// divided by the batch size, so solvers apply it directly).
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Computes loss and logit gradient for integer labels.
    pub fn forward(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        let s = logits.shape();
        let classes = s.item_len();
        assert_eq!(s.n, labels.len(), "label count must match batch size");
        assert!(classes >= 2, "need at least two classes");

        let mut grad = logits.clone();
        let mut loss = 0.0f64;
        let inv_n = 1.0 / s.n as f32;
        for (i, &label) in labels.iter().enumerate() {
            assert!(label < classes, "label {label} out of range {classes}");
            let row = grad.item_mut(i);
            softmax_inplace(row);
            // Clamp to avoid log(0) for confidently wrong predictions.
            loss -= (row[label].max(1e-12) as f64).ln();
            row[label] -= 1.0;
            for v in row.iter_mut() {
                *v *= inv_n;
            }
        }
        ((loss / s.n as f64) as f32, grad)
    }

    /// Class probabilities (softmax of logits), for evaluation.
    pub fn probabilities(logits: &Tensor) -> Tensor {
        let mut p = logits.clone();
        for i in 0..p.shape().n {
            softmax_inplace(p.item_mut(i));
        }
        p
    }
}

/// Mean-squared-error loss `mean((pred - target)^2)` with gradient.
/// Used for the autoencoder reconstruction path of the climate network.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len().max(1) as f32;
    let mut grad = Tensor::zeros(pred.shape());
    let mut loss = 0.0f64;
    for ((g, &p), &t) in grad.data_mut().iter_mut().zip(pred.data()).zip(target.data()) {
        let d = p - t;
        loss += (d as f64) * (d as f64);
        *g = 2.0 * d / n;
    }
    ((loss / n as f64) as f32, grad)
}

/// Ground-truth grid targets for the detection head.
///
/// The coarse grid is `grid_h x grid_w` (24x24 for the paper's 768-pixel
/// inputs after five stride-2 encodings). For each batch item and cell:
/// `conf` is 1 when an object's box centre falls in the cell; `class` is
/// the object class at positive cells; `bbox` holds `(x, y, w, h)` —
/// centre offsets within the cell in `[0,1]` and box size normalised by
/// the image size.
#[derive(Clone, Debug)]
pub struct DetectionTargets {
    /// Batch size.
    pub n: usize,
    /// Grid height.
    pub grid_h: usize,
    /// Grid width.
    pub grid_w: usize,
    /// Number of object classes.
    pub classes: usize,
    /// Objectness target per cell, `n * grid_h * grid_w`, values 0/1.
    pub conf: Vec<f32>,
    /// Class index per cell (only meaningful where `conf == 1`).
    pub class: Vec<usize>,
    /// Box regression targets, layout `n * 4 * grid_h * grid_w` (planar,
    /// matching the head's NCHW output).
    pub bbox: Vec<f32>,
}

impl DetectionTargets {
    /// An empty (all-negative) target grid.
    pub fn empty(n: usize, grid_h: usize, grid_w: usize, classes: usize) -> Self {
        let cells = n * grid_h * grid_w;
        Self {
            n,
            grid_h,
            grid_w,
            classes,
            conf: vec![0.0; cells],
            class: vec![0; cells],
            bbox: vec![0.0; n * 4 * grid_h * grid_w],
        }
    }

    /// Marks a ground-truth object for batch item `i` at cell `(gy, gx)`.
    ///
    /// `(ox, oy)` are the centre offsets within the cell in `[0,1]`;
    /// `(w, h)` the box size normalised to the image.
    #[allow(clippy::too_many_arguments)]
    pub fn add_object(&mut self, i: usize, gy: usize, gx: usize, class: usize, ox: f32, oy: f32, w: f32, h: f32) {
        assert!(i < self.n && gy < self.grid_h && gx < self.grid_w, "cell out of range");
        assert!(class < self.classes, "class out of range");
        let cells = self.grid_h * self.grid_w;
        let cell = gy * self.grid_w + gx;
        self.conf[i * cells + cell] = 1.0;
        self.class[i * cells + cell] = class;
        let base = i * 4 * cells;
        self.bbox[base + cell] = ox;
        self.bbox[base + cells + cell] = oy;
        self.bbox[base + 2 * cells + cell] = w;
        self.bbox[base + 3 * cells + cell] = h;
    }

    /// Number of positive (object-bearing) cells.
    pub fn positives(&self) -> usize {
        self.conf.iter().filter(|&&c| c > 0.5).count()
    }
}

/// Scalar components of the detection objective.
#[derive(Clone, Copy, Debug, Default)]
pub struct DetectionLossParts {
    /// Binary cross-entropy of the confidence map.
    pub conf: f32,
    /// Softmax cross-entropy of the class map at positive cells.
    pub class: f32,
    /// Squared-error of the box regression at positive cells.
    pub bbox: f32,
}

impl DetectionLossParts {
    /// Sum of the supervised components.
    pub fn total(&self) -> f32 {
        self.conf + self.class + self.bbox
    }
}

/// The supervised half of the climate objective, YOLO-style
/// (Sec. III-B / [36]-[39]).
pub struct DetectionLoss {
    /// Weight of the object-bearing confidence term (up-weighted because
    /// positive cells are rare on the coarse grid).
    pub lambda_obj: f32,
    /// Weight of the no-object confidence term (down-weighted because the
    /// vast majority of cells are negative).
    pub lambda_noobj: f32,
    /// Weight of the box-regression term.
    pub lambda_bbox: f32,
}

impl Default for DetectionLoss {
    fn default() -> Self {
        Self { lambda_obj: 1.0, lambda_noobj: 0.5, lambda_bbox: 5.0 }
    }
}

impl DetectionLoss {
    /// Computes the loss and head gradients.
    ///
    /// `conf_map` is `(n, 1, gh, gw)` logits; `class_map` is
    /// `(n, classes, gh, gw)` logits; `bbox_map` is `(n, 4, gh, gw)` raw
    /// regressions (x, y squashed through sigmoid internally; w, h linear).
    /// Returns the loss parts and the three gradients.
    pub fn forward(
        &self,
        conf_map: &Tensor,
        class_map: &Tensor,
        bbox_map: &Tensor,
        targets: &DetectionTargets,
    ) -> (DetectionLossParts, Tensor, Tensor, Tensor) {
        let (n, gh, gw, k) = (targets.n, targets.grid_h, targets.grid_w, targets.classes);
        assert_eq!(conf_map.shape(), Shape4::new(n, 1, gh, gw), "conf map shape");
        assert_eq!(class_map.shape(), Shape4::new(n, k, gh, gw), "class map shape");
        assert_eq!(bbox_map.shape(), Shape4::new(n, 4, gh, gw), "bbox map shape");

        let cells = gh * gw;
        let total_cells = (n * cells) as f32;
        let positives = targets.positives().max(1) as f32;

        let mut parts = DetectionLossParts::default();
        let mut dconf = Tensor::zeros(conf_map.shape());
        let mut dclass = Tensor::zeros(class_map.shape());
        let mut dbbox = Tensor::zeros(bbox_map.shape());

        // Confidence: BCE with logits over every cell, normalised by the
        // total cell count; negatives are down-weighted by lambda_noobj.
        let mut conf_loss = 0.0f64;
        for idx in 0..n * cells {
            let t = targets.conf[idx];
            let logit = conf_map.data()[idx];
            let p = sigmoid(logit).clamp(1e-7, 1.0 - 1e-7);
            let w = if t > 0.5 { self.lambda_obj } else { self.lambda_noobj };
            conf_loss -= w as f64 * (t as f64 * (p as f64).ln() + (1.0 - t as f64) * (1.0 - p as f64).ln());
            dconf.data_mut()[idx] = w * (p - t) / total_cells;
        }
        parts.conf = (conf_loss / total_cells as f64) as f32;

        // Class: softmax CE at positive cells only, normalised by the
        // number of positives. Class channels are planar in NCHW, so we
        // gather a logit column per cell.
        let mut class_loss = 0.0f64;
        let mut col = vec![0.0f32; k];
        for i in 0..n {
            for cell in 0..cells {
                let t_idx = i * cells + cell;
                if targets.conf[t_idx] <= 0.5 {
                    continue;
                }
                let label = targets.class[t_idx];
                for (c, v) in col.iter_mut().enumerate() {
                    *v = class_map.data()[(i * k + c) * cells + cell];
                }
                softmax_inplace(&mut col);
                class_loss -= (col[label].max(1e-12) as f64).ln();
                col[label] -= 1.0;
                for (c, &v) in col.iter().enumerate() {
                    dclass.data_mut()[(i * k + c) * cells + cell] = v / positives;
                }
            }
        }
        parts.class = (class_loss / positives as f64) as f32;

        // BBox: squared error at positive cells; x, y pass through a
        // sigmoid (cell-relative offsets), w, h are linear.
        let mut bbox_loss = 0.0f64;
        for i in 0..n {
            for cell in 0..cells {
                let t_idx = i * cells + cell;
                if targets.conf[t_idx] <= 0.5 {
                    continue;
                }
                let tbase = i * 4 * cells;
                for ch in 0..4 {
                    let pidx = (i * 4 + ch) * cells + cell;
                    let raw = bbox_map.data()[pidx];
                    let t = targets.bbox[tbase + ch * cells + cell];
                    let (pred, dpred_draw) = if ch < 2 {
                        let s = sigmoid(raw);
                        (s, sigmoid_grad_from_output(s))
                    } else {
                        (raw, 1.0)
                    };
                    let d = pred - t;
                    bbox_loss += (d as f64) * (d as f64);
                    dbbox.data_mut()[pidx] =
                        self.lambda_bbox * 2.0 * d * dpred_draw / positives;
                }
            }
        }
        parts.bbox = self.lambda_bbox * (bbox_loss / positives as f64) as f32;

        (parts, dconf, dclass, dbbox)
    }
}

/// A decoded detection: grid cell, class, confidence and image-normalised
/// box, produced by [`decode_detections`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Detection {
    /// Batch item index.
    pub item: usize,
    /// Predicted class.
    pub class: usize,
    /// Confidence in `[0, 1]`.
    pub confidence: f32,
    /// Box centre x in `[0, 1]` image coordinates.
    pub cx: f32,
    /// Box centre y in `[0, 1]` image coordinates.
    pub cy: f32,
    /// Box width, image-normalised.
    pub w: f32,
    /// Box height, image-normalised.
    pub h: f32,
}

/// Decodes head outputs into detections above a confidence threshold (the
/// paper keeps boxes with confidence > 0.8 at inference, > 0.95 for the
/// Fig. 9 plot).
pub fn decode_detections(
    conf_map: &Tensor,
    class_map: &Tensor,
    bbox_map: &Tensor,
    threshold: f32,
) -> Vec<Detection> {
    let s = conf_map.shape();
    let (n, gh, gw) = (s.n, s.h, s.w);
    let k = class_map.shape().c;
    let cells = gh * gw;
    let mut out = Vec::new();
    let mut col = vec![0.0f32; k];
    for i in 0..n {
        for gy in 0..gh {
            for gx in 0..gw {
                let cell = gy * gw + gx;
                let conf = sigmoid(conf_map.data()[i * cells + cell]);
                if conf < threshold {
                    continue;
                }
                for (c, v) in col.iter_mut().enumerate() {
                    *v = class_map.data()[(i * k + c) * cells + cell];
                }
                let class = scidl_tensor::ops::argmax(&col);
                let bbase = i * 4 * cells;
                let ox = sigmoid(bbox_map.data()[bbase + cell]);
                let oy = sigmoid(bbox_map.data()[bbase + cells + cell]);
                let w = bbox_map.data()[bbase + 2 * cells + cell].max(0.0);
                let h = bbox_map.data()[bbase + 3 * cells + cell].max(0.0);
                out.push(Detection {
                    item: i,
                    class,
                    confidence: conf,
                    cx: (gx as f32 + ox) / gw as f32,
                    cy: (gy as f32 + oy) / gh as f32,
                    w,
                    h,
                });
            }
        }
    }
    out
}

/// Intersection-over-union of two centre-format boxes in the same
/// normalised coordinate system.
pub fn iou(a: &Detection, b: &Detection) -> f32 {
    let ax0 = a.cx - a.w / 2.0;
    let ax1 = a.cx + a.w / 2.0;
    let ay0 = a.cy - a.h / 2.0;
    let ay1 = a.cy + a.h / 2.0;
    let bx0 = b.cx - b.w / 2.0;
    let bx1 = b.cx + b.w / 2.0;
    let by0 = b.cy - b.h / 2.0;
    let by1 = b.cy + b.h / 2.0;
    let ix = (ax1.min(bx1) - ax0.max(bx0)).max(0.0);
    let iy = (ay1.min(by1) - ay0.max(by0)).max(0.0);
    let inter = ix * iy;
    let union = a.w * a.h + b.w * b.h - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidl_tensor::TensorRng;

    #[test]
    fn softmax_ce_perfect_prediction_near_zero_loss() {
        let logits = Tensor::from_vec(Shape4::new(1, 2, 1, 1), vec![20.0, -20.0]);
        let (loss, grad) = SoftmaxCrossEntropy::forward(&logits, &[0]);
        assert!(loss < 1e-6);
        assert!(grad.data()[0].abs() < 1e-6);
    }

    #[test]
    fn softmax_ce_uniform_logits_is_log_k() {
        let logits = Tensor::from_vec(Shape4::new(1, 4, 1, 1), vec![1.0; 4]);
        let (loss, _) = SoftmaxCrossEntropy::forward(&logits, &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn softmax_ce_gradient_matches_fd() {
        let mut rng = TensorRng::new(4);
        let logits = rng.uniform_tensor(Shape4::new(3, 4, 1, 1), -1.0, 1.0);
        let labels = [1usize, 3, 0];
        let (_, grad) = SoftmaxCrossEntropy::forward(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (lossp, _) = SoftmaxCrossEntropy::forward(&lp, &labels);
            let (lossm, _) = SoftmaxCrossEntropy::forward(&lm, &labels);
            let num = (lossp - lossm) / (2.0 * eps);
            assert!((grad.data()[idx] - num).abs() < 1e-2, "logit grad {idx}");
        }
    }

    #[test]
    fn softmax_ce_grad_sums_to_zero_per_item() {
        let mut rng = TensorRng::new(6);
        let logits = rng.uniform_tensor(Shape4::new(2, 3, 1, 1), -2.0, 2.0);
        let (_, grad) = SoftmaxCrossEntropy::forward(&logits, &[0, 2]);
        for i in 0..2 {
            let s: f32 = grad.item(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn mse_zero_for_identical() {
        let t = Tensor::from_flat(vec![1.0, 2.0, 3.0]);
        let (loss, grad) = mse_loss(&t, &t);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mse_gradient_matches_fd() {
        let mut rng = TensorRng::new(11);
        let pred = rng.uniform_tensor(Shape4::flat(6), -1.0, 1.0);
        let target = rng.uniform_tensor(Shape4::flat(6), -1.0, 1.0);
        let (_, grad) = mse_loss(&pred, &target);
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut pp = pred.clone();
            pp.data_mut()[idx] += eps;
            let mut pm = pred.clone();
            pm.data_mut()[idx] -= eps;
            let num = (mse_loss(&pp, &target).0 - mse_loss(&pm, &target).0) / (2.0 * eps);
            assert!((grad.data()[idx] - num).abs() < 1e-3);
        }
    }

    fn tiny_targets() -> DetectionTargets {
        let mut t = DetectionTargets::empty(1, 3, 3, 2);
        t.add_object(0, 1, 2, 1, 0.5, 0.25, 0.3, 0.4);
        t
    }

    #[test]
    fn detection_targets_bookkeeping() {
        let t = tiny_targets();
        assert_eq!(t.positives(), 1);
        assert_eq!(t.conf[3 + 2], 1.0);
        assert_eq!(t.class[3 + 2], 1);
        // bbox planar layout: x plane then y plane then w then h.
        let cells = 9;
        assert_eq!(t.bbox[cells + 5], 0.25); // y plane, cell (1,2)=idx5
    }

    #[test]
    fn detection_loss_gradients_match_fd() {
        let mut rng = TensorRng::new(21);
        let targets = tiny_targets();
        let conf = rng.uniform_tensor(Shape4::new(1, 1, 3, 3), -1.0, 1.0);
        let class = rng.uniform_tensor(Shape4::new(1, 2, 3, 3), -1.0, 1.0);
        let bbox = rng.uniform_tensor(Shape4::new(1, 4, 3, 3), -1.0, 1.0);
        let loss = DetectionLoss::default();
        let (parts, dconf, dclass, dbbox) = loss.forward(&conf, &class, &bbox, &targets);
        assert!(parts.total().is_finite());

        let eps = 1e-3f32;
        let eval = |c: &Tensor, k: &Tensor, b: &Tensor| loss.forward(c, k, b, &targets).0.total();

        for idx in 0..conf.len() {
            let mut cp = conf.clone();
            cp.data_mut()[idx] += eps;
            let mut cm = conf.clone();
            cm.data_mut()[idx] -= eps;
            let num = (eval(&cp, &class, &bbox) - eval(&cm, &class, &bbox)) / (2.0 * eps);
            assert!((dconf.data()[idx] - num).abs() < 1e-2, "conf grad {idx}");
        }
        for idx in 0..class.len() {
            let mut kp = class.clone();
            kp.data_mut()[idx] += eps;
            let mut km = class.clone();
            km.data_mut()[idx] -= eps;
            let num = (eval(&conf, &kp, &bbox) - eval(&conf, &km, &bbox)) / (2.0 * eps);
            assert!((dclass.data()[idx] - num).abs() < 1e-2, "class grad {idx}");
        }
        for idx in 0..bbox.len() {
            let mut bp = bbox.clone();
            bp.data_mut()[idx] += eps;
            let mut bm = bbox.clone();
            bm.data_mut()[idx] -= eps;
            let num = (eval(&conf, &class, &bp) - eval(&conf, &class, &bm)) / (2.0 * eps);
            assert!((dbbox.data()[idx] - num).abs() < 5e-2, "bbox grad {idx}");
        }
    }

    #[test]
    fn bbox_regression_gradient_matches_fd_in_isolation() {
        // The bbox term alone, FD-checked against `parts.bbox` (not the
        // total): multiple positives across batch items exercise the
        // 1/positives normalisation, a non-default lambda the weighting,
        // and channels 0/1 vs 2/3 the sigmoid-vs-linear split.
        let mut targets = DetectionTargets::empty(2, 3, 3, 2);
        targets.add_object(0, 0, 1, 0, 0.2, 0.7, 0.5, 0.1);
        targets.add_object(0, 2, 2, 1, 0.9, 0.4, 0.2, 0.6);
        targets.add_object(1, 1, 0, 1, 0.5, 0.5, 0.8, 0.3);
        assert_eq!(targets.positives(), 3);

        let mut rng = TensorRng::new(33);
        let conf = rng.uniform_tensor(Shape4::new(2, 1, 3, 3), -1.0, 1.0);
        let class = rng.uniform_tensor(Shape4::new(2, 2, 3, 3), -1.0, 1.0);
        let bbox = rng.uniform_tensor(Shape4::new(2, 4, 3, 3), -1.5, 1.5);
        let loss = DetectionLoss { lambda_bbox: 2.5, ..DetectionLoss::default() };
        let (_, _, _, dbbox) = loss.forward(&conf, &class, &bbox, &targets);

        let bbox_term = |b: &Tensor| loss.forward(&conf, &class, b, &targets).0.bbox;
        let eps = 1e-3f32;
        let cells = 9;
        let mut nonzero = 0usize;
        for idx in 0..bbox.len() {
            let mut bp = bbox.clone();
            bp.data_mut()[idx] += eps;
            let mut bm = bbox.clone();
            bm.data_mut()[idx] -= eps;
            let num = (bbox_term(&bp) - bbox_term(&bm)) / (2.0 * eps);
            assert!(
                (dbbox.data()[idx] - num).abs() < 5e-3,
                "bbox grad {idx}: analytic {} vs FD {num}",
                dbbox.data()[idx]
            );
            // Perturbing the other heads must not move the bbox term.
            let i = idx / (4 * cells);
            let cell = idx % cells;
            if targets.conf[i * cells + cell] <= 0.5 {
                assert_eq!(dbbox.data()[idx], 0.0, "negative cell {idx} must not regress");
            } else if dbbox.data()[idx] != 0.0 {
                nonzero += 1;
            }
        }
        // All 4 channels of all 3 positive cells carry gradient.
        assert_eq!(nonzero, 12);
    }

    #[test]
    fn detection_loss_zero_gradient_at_perfect_prediction() {
        let targets = tiny_targets();
        // Perfect: conf logit huge at the positive cell, hugely negative
        // elsewhere; correct class; exact bbox.
        let mut conf = Tensor::filled(Shape4::new(1, 1, 3, 3), -30.0);
        conf.data_mut()[5] = 30.0;
        let mut class = Tensor::zeros(Shape4::new(1, 2, 3, 3));
        class.data_mut()[9 + 5] = 30.0; // class 1 plane
        class.data_mut()[5] = -30.0;
        let mut bbox = Tensor::zeros(Shape4::new(1, 4, 3, 3));
        bbox.data_mut()[5] = 0.0; // sigmoid(0)=0.5 == target x
        // target y 0.25 → logit ln(0.25/0.75)
        bbox.data_mut()[9 + 5] = (0.25f32 / 0.75).ln();
        bbox.data_mut()[18 + 5] = 0.3;
        bbox.data_mut()[27 + 5] = 0.4;
        let loss = DetectionLoss::default();
        let (parts, dconf, dclass, dbbox) = loss.forward(&conf, &class, &bbox, &targets);
        assert!(parts.total() < 1e-4, "loss {}", parts.total());
        assert!(dconf.norm() < 1e-4);
        assert!(dclass.norm() < 1e-4);
        assert!(dbbox.norm() < 1e-4);
    }

    #[test]
    fn decode_recovers_planted_box() {
        let mut conf = Tensor::filled(Shape4::new(1, 1, 4, 4), -10.0);
        conf.data_mut()[2 * 4 + 1] = 10.0; // cell (2,1)
        let mut class = Tensor::zeros(Shape4::new(1, 3, 4, 4));
        class.data_mut()[16 + 2 * 4 + 1] = 5.0; // class 1
        let mut bbox = Tensor::zeros(Shape4::new(1, 4, 4, 4));
        bbox.data_mut()[32 + 2 * 4 + 1] = 0.25; // w plane
        bbox.data_mut()[48 + 2 * 4 + 1] = 0.5; // h plane
        let dets = decode_detections(&conf, &class, &bbox, 0.8);
        assert_eq!(dets.len(), 1);
        let d = dets[0];
        assert_eq!(d.class, 1);
        assert!((d.cx - (1.0 + 0.5) / 4.0).abs() < 1e-5);
        assert!((d.cy - (2.0 + 0.5) / 4.0).abs() < 1e-5);
        assert!((d.w - 0.25).abs() < 1e-6);
        assert!((d.h - 0.5).abs() < 1e-6);
    }

    #[test]
    fn iou_identity_and_disjoint() {
        let a = Detection { item: 0, class: 0, confidence: 1.0, cx: 0.5, cy: 0.5, w: 0.2, h: 0.2 };
        assert!((iou(&a, &a) - 1.0).abs() < 1e-6);
        let b = Detection { cx: 0.1, cy: 0.1, ..a };
        assert_eq!(iou(&a, &b), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        let a = Detection { item: 0, class: 0, confidence: 1.0, cx: 0.5, cy: 0.5, w: 0.2, h: 0.2 };
        let b = Detection { cx: 0.6, ..a };
        // Overlap is 0.1x0.2, union is 2*0.04 - 0.02 = 0.06 → IoU = 1/3.
        assert!((iou(&a, &b) - 1.0 / 3.0).abs() < 1e-5);
    }
}
