//! The two reference architectures of Table II, plus scaled-down variants
//! used for fast tests and the simulated-time convergence runs.

use crate::conv::Conv2d;
use crate::deconv::Deconv2d;
use crate::dense::Dense;
use crate::layer::{Layer, ParamBlock};
use crate::loss::{mse_loss, DetectionLoss, DetectionLossParts, DetectionTargets};
use crate::network::{Model, Network};
use crate::pool::{GlobalAvgPool, MaxPool2d};
use crate::Relu;
use scidl_tensor::{Shape4, Tensor, TensorRng};

/// HEP input: 224x224 pixels, 3 channels (ECAL energy, HCAL energy, track
/// count) — Table II.
pub const HEP_INPUT: Shape4 = Shape4::new(1, 3, 224, 224);
/// HEP classes: signal vs background.
pub const HEP_CLASSES: usize = 2;

/// Climate input: 768x768 pixels, 16 channels — Tables I/II.
pub const CLIMATE_INPUT: Shape4 = Shape4::new(1, 16, 768, 768);
/// Climate object classes: tropical cyclone, extra-tropical cyclone,
/// atmospheric river (Sec. VII-B).
pub const CLIMATE_CLASSES: usize = 3;
/// Coarse detection grid after five stride-2 encoder convolutions.
pub const CLIMATE_GRID: usize = 24;

/// Builds the supervised HEP network of Sec. III-A / Table II:
/// five 3x3/s1 convolutions with 128 filters, ReLU, 2x2/s2 max pooling
/// after the first four, global average pooling after the fifth, and a
/// single 128→2 dense layer. ≈594k parameters ≈ 2.27 MiB (paper: 2.3 MiB,
/// "~590 KB model" in Sec. VI-B2).
pub fn hep_network(rng: &mut TensorRng) -> Network {
    let mut net = Network::new("hep");
    let mut cin = HEP_INPUT.c;
    for i in 1..=5 {
        net.add(Box::new(Conv2d::new(format!("conv{i}"), cin, 128, 3, 1, 1, rng)));
        net.add(Box::new(Relu::new(format!("relu{i}"))));
        if i < 5 {
            net.add(Box::new(MaxPool2d::new(format!("pool{i}"), 2, 2)));
        }
        cin = 128;
    }
    net.add(Box::new(GlobalAvgPool::new("gap")));
    net.add(Box::new(Dense::new("fc", 128, HEP_CLASSES, rng)));
    net
}

/// Scaled-down HEP-style classifier for 32x32 inputs — used by fast tests
/// and the real-gradient simulated-time convergence runs (Fig. 8), where
/// training thousands of simulated nodes on full 224px images would be
/// prohibitive on a laptop-class host. Same topology (conv+pool units,
/// global pooling, tiny dense head), ≈6k parameters.
pub fn hep_small(rng: &mut TensorRng) -> Network {
    Network::new("hep-small")
        .push(Conv2d::new("conv1", 3, 8, 3, 1, 1, rng))
        .push(Relu::new("relu1"))
        .push(MaxPool2d::new("pool1", 2, 2))
        .push(Conv2d::new("conv2", 8, 16, 3, 1, 1, rng))
        .push(Relu::new("relu2"))
        .push(MaxPool2d::new("pool2", 2, 2))
        .push(Conv2d::new("conv3", 16, 32, 3, 1, 1, rng))
        .push(Relu::new("relu3"))
        .push(GlobalAvgPool::new("gap"))
        .push(Dense::new("fc", 32, HEP_CLASSES, rng))
}

/// Counterfactual HEP network for the paper's design-rule ablation
/// (Sec. I: "to not use layers with large dense weights such as batch
/// normalization or fully connected units"): the same conv stack, but a
/// VGG-style flattened dense head (14·14·128 → 4096 → 2) instead of
/// global average pooling. ≈103M parameters vs 594k — the model the
/// all-reduce and parameter servers would have to move at every
/// iteration had the paper not followed its own rule.
pub fn hep_dense_variant(rng: &mut TensorRng) -> Network {
    let mut net = Network::new("hep-dense-variant");
    let mut cin = HEP_INPUT.c;
    for i in 1..=5 {
        net.add(Box::new(Conv2d::new(format!("conv{i}"), cin, 128, 3, 1, 1, rng)));
        net.add(Box::new(Relu::new(format!("relu{i}"))));
        if i < 5 {
            net.add(Box::new(MaxPool2d::new(format!("pool{i}"), 2, 2)));
        }
        cin = 128;
    }
    net.add(Box::new(Dense::new("fc1", 14 * 14 * 128, 4096, rng)));
    net.add(Box::new(Relu::new("fc1_relu")));
    net.add(Box::new(Dense::new("fc2", 4096, HEP_CLASSES, rng)));
    net
}

/// Channel plan of the climate encoder: `(cout, stride)` per 5x5 conv.
/// Five stride-2 stages take 768 → 24 (the detection grid).
const CLIMATE_ENCODER_PLAN: [(usize, usize); 9] = [
    (64, 2),
    (128, 2),
    (256, 2),
    (384, 1),
    (512, 2),
    (640, 1),
    (768, 2),
    (896, 1),
    (1024, 1),
];

/// Channel plan of the climate decoder: five 4x4/s2/p1 deconvolutions
/// doubling resolution back from 24 to 768.
const CLIMATE_DECODER_PLAN: [usize; 5] = [512, 256, 128, 64, 16];

/// Output of one [`ClimateNet`] forward pass.
pub struct ClimateOutput {
    /// Confidence logits `(n, 1, g, g)`.
    pub conf: Tensor,
    /// Class logits `(n, classes, g, g)`.
    pub class: Tensor,
    /// Box regressions `(n, 4, g, g)`.
    pub bbox: Tensor,
    /// Autoencoder reconstruction `(n, cin, H, W)`.
    pub recon: Tensor,
}

/// The semi-supervised climate architecture of Sec. III-B / Table II:
/// a strided-convolution encoder shared by (a) three small convolutional
/// scoring heads (confidence / class / bounding box) and (b) a
/// deconvolutional decoder that reconstructs the input. The unlabelled
/// data path trains the encoder through the reconstruction loss only.
pub struct ClimateNet {
    /// Shared encoder (9 convolutions).
    pub encoder: Network,
    /// Reconstruction decoder (5 deconvolutions).
    pub decoder: Network,
    conf_head: Conv2d,
    class_head: Conv2d,
    bbox_head: Conv2d,
    /// Loss weighting of the reconstruction term.
    pub lambda_recon: f32,
    /// The supervised detection objective.
    pub det_loss: DetectionLoss,
    cached_input: Option<Tensor>,
    cached_features: Option<Tensor>,
}

impl ClimateNet {
    /// Builds the full-scale network (Table II: 9 conv + 5 deconv,
    /// ≈80.3M parameters ≈ 306 MiB; paper reports 302.1 MiB).
    pub fn full(rng: &mut TensorRng) -> Self {
        Self::build(CLIMATE_INPUT.c, &CLIMATE_ENCODER_PLAN, &CLIMATE_DECODER_PLAN, CLIMATE_CLASSES, rng)
    }

    /// Scaled-down variant for 64x64, 4-channel inputs (tests and
    /// laptop-scale training): 3 encoder convs to an 8x8 grid, 3 decoder
    /// deconvs, same head structure.
    pub fn small(rng: &mut TensorRng) -> Self {
        Self::build(4, &[(8, 2), (16, 2), (32, 2)], &[16, 8, 4], CLIMATE_CLASSES, rng)
    }

    fn build(
        cin: usize,
        encoder_plan: &[(usize, usize)],
        decoder_plan: &[usize],
        classes: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let mut encoder = Network::new("climate-encoder");
        let mut c = cin;
        for (i, &(cout, stride)) in encoder_plan.iter().enumerate() {
            encoder.add(Box::new(Conv2d::new(format!("enc{}", i + 1), c, cout, 5, stride, 2, rng)));
            encoder.add(Box::new(Relu::new(format!("enc_relu{}", i + 1))));
            c = cout;
        }
        let feat_c = c;

        let mut decoder = Network::new("climate-decoder");
        for (i, &cout) in decoder_plan.iter().enumerate() {
            decoder.add(Box::new(Deconv2d::new(format!("dec{}", i + 1), c, cout, 4, 2, 1, rng)));
            if i + 1 < decoder_plan.len() {
                decoder.add(Box::new(Relu::new(format!("dec_relu{}", i + 1))));
            }
            c = cout;
        }

        Self {
            encoder,
            decoder,
            conf_head: Conv2d::new("head_conf", feat_c, 1, 3, 1, 1, rng),
            class_head: Conv2d::new("head_class", feat_c, classes, 3, 1, 1, rng),
            bbox_head: Conv2d::new("head_bbox", feat_c, 4, 3, 1, 1, rng),
            lambda_recon: 1.0,
            det_loss: DetectionLoss::default(),
            cached_input: None,
            cached_features: None,
        }
    }

    /// Number of object classes predicted by the class head.
    pub fn classes(&self) -> usize {
        self.class_head.cout()
    }

    /// Detection grid side for a given input size.
    pub fn grid_for(&self, input: Shape4) -> Shape4 {
        let f = self.encoder.out_shape(input);
        Shape4::new(input.n, 1, f.h, f.w)
    }

    /// Forward pass through encoder, heads and decoder.
    pub fn forward(&mut self, input: &Tensor) -> ClimateOutput {
        let features = self.encoder.forward(input);
        let conf = self.conf_head.forward(&features);
        let class = self.class_head.forward(&features);
        let bbox = self.bbox_head.forward(&features);
        let recon = self.decoder.forward(&features);
        self.cached_input = Some(input.clone());
        self.cached_features = Some(features);
        ClimateOutput { conf, class, bbox, recon }
    }

    /// Combined semi-supervised training step for one batch: forward,
    /// loss (detection on labelled cells + weighted reconstruction) and
    /// full backward. Pass `targets = None` for unlabelled batches, which
    /// train through the autoencoder path alone — the mechanism by which
    /// the paper's architecture can "discover new weather patterns that
    /// might have few/no labeled examples". Returns
    /// `(detection parts, reconstruction loss)`.
    pub fn forward_backward(
        &mut self,
        input: &Tensor,
        targets: Option<&DetectionTargets>,
    ) -> (DetectionLossParts, f32) {
        let out = self.forward(input);
        let features = self.cached_features.take().expect("forward just ran");

        let (recon_loss, mut drecon) = mse_loss(&out.recon, input);
        drecon.scale(self.lambda_recon);
        let mut dfeat = self.decoder.backward(&drecon);

        let parts = if let Some(t) = targets {
            let (parts, dconf, dclass, dbbox) = self.det_loss.forward(&out.conf, &out.class, &out.bbox, t);
            dfeat.add_assign(&self.conf_head.backward(&dconf));
            dfeat.add_assign(&self.class_head.backward(&dclass));
            dfeat.add_assign(&self.bbox_head.backward(&dbbox));
            parts
        } else {
            // Unlabelled batch: heads still cached a forward; drop state
            // by running a zero backward so gradient accumulation stays
            // well-defined without contributing to head gradients.
            let zero_c = Tensor::zeros(out.conf.shape());
            let zero_k = Tensor::zeros(out.class.shape());
            let zero_b = Tensor::zeros(out.bbox.shape());
            self.conf_head.backward(&zero_c);
            self.class_head.backward(&zero_k);
            self.bbox_head.backward(&zero_b);
            DetectionLossParts::default()
        };

        let _ = features; // features were cloned into layer caches already
        self.encoder.backward(&dfeat);
        (parts, recon_loss * self.lambda_recon)
    }

    /// Total FLOPs per image for one training iteration (forward +
    /// backward over encoder, heads and decoder).
    pub fn training_flops_per_image(&self, input: Shape4) -> u64 {
        let feat = self.encoder.out_shape(input.with_n(1));
        let enc = self.encoder.forward_flops_per_image(input.with_n(1))
            + self.encoder.backward_flops_per_image(input.with_n(1));
        let dec = self.decoder.forward_flops_per_image(feat)
            + self.decoder.backward_flops_per_image(feat);
        let heads = [
            &self.conf_head as &dyn Layer,
            &self.class_head as &dyn Layer,
            &self.bbox_head as &dyn Layer,
        ]
        .iter()
        .map(|h| h.forward_flops_per_image(feat) + h.backward_flops_per_image(feat))
        .sum::<u64>();
        enc + dec + heads
    }
}

impl Model for ClimateNet {
    fn param_blocks(&self) -> Vec<&ParamBlock> {
        let mut blocks = self.encoder.param_blocks();
        blocks.extend(self.conf_head.params());
        blocks.extend(self.class_head.params());
        blocks.extend(self.bbox_head.params());
        blocks.extend(self.decoder.param_blocks());
        blocks
    }

    fn param_blocks_mut(&mut self) -> Vec<&mut ParamBlock> {
        let mut blocks = self.encoder.param_blocks_mut();
        blocks.extend(self.conf_head.params_mut());
        blocks.extend(self.class_head.params_mut());
        blocks.extend(self.bbox_head.params_mut());
        blocks.extend(self.decoder.param_blocks_mut());
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hep_parameter_count_matches_paper() {
        let mut rng = TensorRng::new(1);
        let net = hep_network(&mut rng);
        // conv1: 3*128*9+128; conv2..5: 128*128*9+128 each; fc: 128*2+2.
        let expect = (3 * 128 * 9 + 128) + 4 * (128 * 128 * 9 + 128) + (128 * 2 + 2);
        assert_eq!(net.num_params(), expect);
        assert_eq!(net.num_params(), 594_178);
        // Table II: 2.3 MiB. Ours: 594178*4 bytes = 2.27 MiB.
        let mib = net.param_bytes() as f64 / (1024.0 * 1024.0);
        assert!((mib - 2.3).abs() < 0.1, "HEP model is {mib:.2} MiB");
    }

    #[test]
    fn hep_shapes_flow_to_two_logits() {
        let mut rng = TensorRng::new(1);
        let net = hep_network(&mut rng);
        assert_eq!(net.out_shape(HEP_INPUT.with_n(4)), Shape4::new(4, 2, 1, 1));
    }

    #[test]
    fn hep_model_is_allreduce_sized() {
        // Sec. VI-B2: "a small model of ~590 KB" is what each all-reduce
        // moves; our parameter count divided by 1024 gives KiB.
        let mut rng = TensorRng::new(1);
        let net = hep_network(&mut rng);
        let kib = net.param_bytes() as f64 / 1024.0;
        assert!((2200.0..2400.0).contains(&kib));
        // (590 KB in the paper counts one f32 per parameter / 4 bytes
        // ambiguity aside: 594k params * 1B? The paper's number is the
        // parameter count in thousands; our count matches at 594k.)
        assert_eq!(net.num_params() / 1000, 594);
    }

    #[test]
    fn climate_parameter_budget_matches_table2() {
        let mut rng = TensorRng::new(2);
        let net = ClimateNet::full(&mut rng);
        let mib = net.param_bytes() as f64 / (1024.0 * 1024.0);
        // Paper: 302.1 MiB. Our channel plan lands within 2%.
        assert!((mib - 302.1).abs() < 6.0, "climate model is {mib:.1} MiB");
    }

    #[test]
    fn climate_grid_is_24_for_full_input() {
        let mut rng = TensorRng::new(2);
        let net = ClimateNet::full(&mut rng);
        let g = net.grid_for(CLIMATE_INPUT);
        assert_eq!((g.h, g.w), (CLIMATE_GRID, CLIMATE_GRID));
    }

    #[test]
    fn climate_small_forward_shapes() {
        let mut rng = TensorRng::new(3);
        let mut net = ClimateNet::small(&mut rng);
        let x = rng.uniform_tensor(Shape4::new(2, 4, 64, 64), -1.0, 1.0);
        let out = net.forward(&x);
        assert_eq!(out.conf.shape(), Shape4::new(2, 1, 8, 8));
        assert_eq!(out.class.shape(), Shape4::new(2, CLIMATE_CLASSES, 8, 8));
        assert_eq!(out.bbox.shape(), Shape4::new(2, 4, 8, 8));
        assert_eq!(out.recon.shape(), x.shape());
    }

    #[test]
    fn climate_small_supervised_step_produces_gradients() {
        let mut rng = TensorRng::new(4);
        let mut net = ClimateNet::small(&mut rng);
        let x = rng.uniform_tensor(Shape4::new(1, 4, 64, 64), -1.0, 1.0);
        let mut t = DetectionTargets::empty(1, 8, 8, CLIMATE_CLASSES);
        t.add_object(0, 3, 4, 1, 0.5, 0.5, 0.2, 0.2);
        let (parts, recon) = net.forward_backward(&x, Some(&t));
        assert!(parts.total().is_finite() && parts.total() > 0.0);
        assert!(recon > 0.0);
        let grads = net.flat_grads();
        assert!(grads.iter().any(|&g| g != 0.0));
        // Head gradients must be nonzero in supervised mode.
        let conf_grad_norm: f32 = net.conf_head.params()[0].grad.data().iter().map(|g| g.abs()).sum();
        assert!(conf_grad_norm > 0.0);
    }

    #[test]
    fn climate_unlabelled_step_trains_encoder_but_not_heads() {
        let mut rng = TensorRng::new(5);
        let mut net = ClimateNet::small(&mut rng);
        let x = rng.uniform_tensor(Shape4::new(1, 4, 64, 64), -1.0, 1.0);
        let (parts, recon) = net.forward_backward(&x, None);
        assert_eq!(parts.total(), 0.0);
        assert!(recon > 0.0);
        let head_grad: f32 = net.conf_head.params()[0].grad.data().iter().map(|g| g.abs()).sum();
        assert_eq!(head_grad, 0.0);
        let enc_grad: f32 = net.encoder.flat_grads().iter().map(|g| g.abs()).sum();
        assert!(enc_grad > 0.0);
    }

    #[test]
    fn climate_autoencoder_reduces_reconstruction_loss() {
        use crate::solver::{Sgd, Solver};
        let mut rng = TensorRng::new(6);
        let mut net = ClimateNet::small(&mut rng);
        net.lambda_recon = 1.0;
        let x = rng.uniform_tensor(Shape4::new(2, 4, 64, 64), 0.0, 1.0);
        let mut solver = Sgd::new(0.01, 0.9);
        let (_, first) = net.forward_backward(&x, None);
        solver.step_model(&mut net);
        net.zero_grads();
        let mut last = first;
        for _ in 0..15 {
            let (_, l) = net.forward_backward(&x, None);
            solver.step_model(&mut net);
            net.zero_grads();
            last = l;
        }
        assert!(last < first, "reconstruction loss should fall: {first} → {last}");
    }

    #[test]
    fn hep_small_trains_on_separable_toy_data() {
        use crate::loss::SoftmaxCrossEntropy;
        use crate::solver::{Adam, Solver};
        let mut rng = TensorRng::new(7);
        let mut net = hep_small(&mut rng);
        // Two trivially separable classes: bright vs dark images.
        let n = 8;
        let mut x = Tensor::zeros(Shape4::new(n, 3, 32, 32));
        let mut labels = vec![0usize; n];
        for (i, label) in labels.iter_mut().enumerate().take(n) {
            let v = if i % 2 == 0 { 1.0 } else { -1.0 };
            *label = i % 2;
            x.item_mut(i).iter_mut().for_each(|p| *p = v);
        }
        let mut solver = Adam::new(1e-2);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..30 {
            let logits = net.forward(&x);
            let (loss, grad) = SoftmaxCrossEntropy::forward(&logits, &labels);
            net.backward(&grad);
            solver.step_model(&mut net);
            net.zero_grads();
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        assert!(last_loss < first_loss.unwrap() * 0.5, "{first_loss:?} → {last_loss}");
    }

    #[test]
    fn climate_flops_dominated_by_encoder() {
        let mut rng = TensorRng::new(8);
        let net = ClimateNet::small(&mut rng);
        let input = Shape4::new(1, 4, 64, 64);
        let total = net.training_flops_per_image(input);
        let enc = net.encoder.forward_flops_per_image(input)
            + net.encoder.backward_flops_per_image(input);
        assert!(total > enc);
        assert!(enc as f64 / total as f64 > 0.25);
    }
}
