//! Sequential network container and the `Model` abstraction used by the
//! distributed engines.

use crate::layer::{InferScratch, Layer, ParamBlock};
use scidl_tensor::{Shape4, Tensor};

/// Anything with trainable parameters that the distributed engines in
/// `scidl-core` can train: a plain [`Network`] or a composite like the
/// climate encoder/decoder model.
///
/// The engines only ever see parameters as an ordered list of
/// [`ParamBlock`]s; flattened copies of values/gradients are what travels
/// over all-reduce and to the parameter servers.
pub trait Model: Send {
    /// Ordered list of parameter blocks.
    fn param_blocks(&self) -> Vec<&ParamBlock>;

    /// Ordered mutable list of parameter blocks (same order).
    fn param_blocks_mut(&mut self) -> Vec<&mut ParamBlock>;

    /// Zeroes every accumulated gradient.
    fn zero_grads(&mut self) {
        for b in self.param_blocks_mut() {
            b.zero_grad();
        }
    }

    /// Total scalar parameter count.
    fn num_params(&self) -> usize {
        self.param_blocks().iter().map(|b| b.len()).sum()
    }

    /// Model size in bytes (f32 parameters) — the quantity Table II
    /// reports per architecture.
    fn param_bytes(&self) -> usize {
        self.num_params() * std::mem::size_of::<f32>()
    }

    /// Copies all parameter values into one flat vector (block order).
    fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for b in self.param_blocks() {
            out.extend_from_slice(b.value.data());
        }
        out
    }

    /// Overwrites all parameter values from a flat vector (block order).
    fn set_flat_params(&mut self, flat: &[f32]) {
        let mut off = 0;
        for b in self.param_blocks_mut() {
            let len = b.len();
            b.value.data_mut().copy_from_slice(&flat[off..off + len]);
            off += len;
        }
        assert_eq!(off, flat.len(), "flat parameter length mismatch");
    }

    /// Copies all gradients into one flat vector (block order).
    fn flat_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for b in self.param_blocks() {
            out.extend_from_slice(b.grad.data());
        }
        out
    }

    /// Overwrites all gradients from a flat vector (block order).
    fn set_flat_grads(&mut self, flat: &[f32]) {
        let mut off = 0;
        for b in self.param_blocks_mut() {
            let len = b.len();
            b.grad.data_mut().copy_from_slice(&flat[off..off + len]);
            off += len;
        }
        assert_eq!(off, flat.len(), "flat gradient length mismatch");
    }
}

/// A plain sequential stack of layers (the HEP network's shape, and the
/// building block of the climate model's encoder and decoder).
pub struct Network {
    name: String,
    layers: Vec<Box<dyn Layer>>,
}

impl Network {
    /// Creates an empty network.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), layers: Vec::new() }
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn add(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the layers (used by the profiler).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Shape produced by running an input of shape `input` through every
    /// layer.
    pub fn out_shape(&self, input: Shape4) -> Shape4 {
        self.layers.iter().fold(input, |s, l| l.out_shape(s))
    }

    /// Full forward pass.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for l in &mut self.layers {
            x = l.forward(&x);
        }
        x
    }

    /// Inference-only forward pass: same function as [`Network::forward`]
    /// bit-for-bit, but `&self` — no activation caching, no layer-state
    /// mutation — so one network instance can serve many readers.
    /// Allocates its own scratch; serving hot paths should hold an
    /// [`InferScratch`] per worker and call [`Network::infer_with`].
    pub fn infer(&self, input: &Tensor) -> Tensor {
        let mut scratch = InferScratch::new();
        self.infer_with(input, &mut scratch)
    }

    /// Inference forward reusing caller-provided scratch buffers (one per
    /// serving worker keeps steady-state allocation bounded).
    pub fn infer_with(&self, input: &Tensor, scratch: &mut InferScratch) -> Tensor {
        let mut x = input.clone();
        for l in &self.layers {
            x = l.infer(&x, scratch);
        }
        x
    }

    /// Full backward pass; returns the gradient w.r.t. the network input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    /// Backward pass that reports each layer as its gradients become
    /// ready — deepest (output-side) layer first, the order backward
    /// visits them. `on_ready(i, layer)` fires right after layer `i`'s
    /// `backward` completes, so its parameter gradients are final and a
    /// caller can start communicating them while shallower layers are
    /// still backpropagating (the MLSL-style overlap of Sec. V). The
    /// arithmetic is exactly [`Network::backward`]'s: gradients are
    /// bit-identical whether or not a callback is attached.
    pub fn backward_layered<F>(&mut self, grad_out: &Tensor, mut on_ready: F) -> Tensor
    where
        F: FnMut(usize, &dyn Layer),
    {
        let mut g = grad_out.clone();
        for (i, l) in self.layers.iter_mut().enumerate().rev() {
            g = l.backward(&g);
            on_ready(i, &**l);
        }
        g
    }

    /// Forward FLOPs per image for a given input shape (sum over layers).
    pub fn forward_flops_per_image(&self, input: Shape4) -> u64 {
        let mut s = input;
        let mut total = 0u64;
        for l in &self.layers {
            total += l.forward_flops_per_image(s);
            s = l.out_shape(s);
        }
        total
    }

    /// Backward FLOPs per image.
    pub fn backward_flops_per_image(&self, input: Shape4) -> u64 {
        let mut s = input;
        let mut total = 0u64;
        for l in &self.layers {
            total += l.backward_flops_per_image(s);
            s = l.out_shape(s);
        }
        total
    }

    /// Training FLOPs per image (forward + backward), the quantity the
    /// paper's throughput numbers are computed from.
    pub fn training_flops_per_image(&self, input: Shape4) -> u64 {
        self.forward_flops_per_image(input) + self.backward_flops_per_image(input)
    }

    /// Human-readable layer-by-layer summary for a given input shape:
    /// name, output shape, parameter count and training GFLOPs per image.
    pub fn summary(&self, input: Shape4) -> String {
        use crate::network::Model;
        let mut s = input.with_n(1);
        let mut out = format!("{} (input {s})\n", self.name);
        out.push_str(&format!(
            "{:<14} {:>16} {:>12} {:>12}\n",
            "layer", "output", "params", "GF/img"
        ));
        for l in &self.layers {
            let o = l.out_shape(s);
            let params: usize = l.params().iter().map(|b| b.len()).sum();
            let gf = (l.forward_flops_per_image(s) + l.backward_flops_per_image(s)) as f64 / 1e9;
            out.push_str(&format!(
                "{:<14} {:>16} {:>12} {:>12.3}\n",
                l.name(),
                format!("{o}"),
                params,
                gf
            ));
            s = o;
        }
        out.push_str(&format!(
            "total: {} params ({:.2} MiB), {:.2} GF/img training\n",
            self.num_params(),
            self.param_bytes() as f64 / (1024.0 * 1024.0),
            self.training_flops_per_image(input) as f64 / 1e9
        ));
        out
    }
}

impl Model for Network {
    fn param_blocks(&self) -> Vec<&ParamBlock> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn param_blocks_mut(&mut self) -> Vec<&mut ParamBlock> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Dense, GlobalAvgPool, MaxPool2d, Relu};
    use scidl_tensor::TensorRng;

    fn tiny_net(rng: &mut TensorRng) -> Network {
        Network::new("tiny")
            .push(Conv2d::new("conv1", 1, 4, 3, 1, 1, rng))
            .push(Relu::new("relu1"))
            .push(MaxPool2d::new("pool1", 2, 2))
            .push(GlobalAvgPool::new("gap"))
            .push(Dense::new("fc", 4, 2, rng))
    }

    #[test]
    fn out_shape_chains_layers() {
        let mut rng = TensorRng::new(1);
        let net = tiny_net(&mut rng);
        assert_eq!(net.out_shape(Shape4::new(5, 1, 8, 8)), Shape4::new(5, 2, 1, 1));
    }

    #[test]
    fn forward_backward_shapes() {
        let mut rng = TensorRng::new(1);
        let mut net = tiny_net(&mut rng);
        let x = rng.uniform_tensor(Shape4::new(2, 1, 8, 8), -1.0, 1.0);
        let y = net.forward(&x);
        assert_eq!(y.shape(), Shape4::new(2, 2, 1, 1));
        let g = net.backward(&Tensor::filled(y.shape(), 1.0));
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn param_roundtrip_via_flat_vectors() {
        let mut rng = TensorRng::new(1);
        let mut net = tiny_net(&mut rng);
        let flat = net.flat_params();
        assert_eq!(flat.len(), net.num_params());
        let mut doubled: Vec<f32> = flat.iter().map(|x| x * 2.0).collect();
        net.set_flat_params(&doubled);
        doubled.iter_mut().for_each(|x| *x *= 0.5);
        net.set_flat_params(&doubled);
        assert_eq!(net.flat_params(), flat);
    }

    #[test]
    fn zero_grads_clears_all_blocks() {
        let mut rng = TensorRng::new(1);
        let mut net = tiny_net(&mut rng);
        let x = rng.uniform_tensor(Shape4::new(1, 1, 8, 8), -1.0, 1.0);
        let y = net.forward(&x);
        net.backward(&Tensor::filled(y.shape(), 1.0));
        assert!(net.flat_grads().iter().any(|&g| g != 0.0));
        net.zero_grads();
        assert!(net.flat_grads().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn param_block_names_are_qualified() {
        let mut rng = TensorRng::new(1);
        let net = tiny_net(&mut rng);
        let names: Vec<_> = net.param_blocks().iter().map(|b| b.name.clone()).collect();
        assert_eq!(names, vec!["conv1.weight", "conv1.bias", "fc.weight", "fc.bias"]);
    }

    #[test]
    fn whole_network_gradient_check() {
        let mut rng = TensorRng::new(77);
        let mut net = tiny_net(&mut rng);
        let x = rng.uniform_tensor(Shape4::new(1, 1, 6, 6), -1.0, 1.0);

        let y = net.forward(&x);
        net.backward(&Tensor::filled(y.shape(), 1.0));
        let analytic = net.flat_grads();

        let eps = 1e-2f32;
        let flat = net.flat_params();
        // Spot-check a few parameters across the blocks.
        for idx in [0usize, 3, 17, flat.len() - 1] {
            let mut p = flat.clone();
            p[idx] += eps;
            net.set_flat_params(&p);
            let lp = net.forward(&x).sum();
            p[idx] -= 2.0 * eps;
            net.set_flat_params(&p);
            let lm = net.forward(&x).sum();
            p[idx] += eps;
            net.set_flat_params(&p);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic[idx] - num).abs() < 3e-2,
                "param {idx}: analytic {} vs numeric {num}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn backward_layered_is_bit_identical_and_deepest_first() {
        let mut rng = TensorRng::new(21);
        let mut net = tiny_net(&mut rng);
        let x = rng.uniform_tensor(Shape4::new(2, 1, 8, 8), -1.0, 1.0);

        // Reference: plain backward.
        let y = net.forward(&x);
        let dy = Tensor::filled(y.shape(), 0.5);
        let gin_ref = net.backward(&dy);
        let grads_ref = net.flat_grads();

        // Layered backward must produce bit-identical gradients, visit
        // every layer exactly once in reverse order, and expose each
        // layer's *final* parameter gradients at callback time.
        net.zero_grads();
        let _ = net.forward(&x);
        let mut order = Vec::new();
        let mut seen_grads: Vec<(String, Vec<f32>)> = Vec::new();
        let gin = net.backward_layered(&dy, |i, layer| {
            order.push(i);
            for b in layer.params() {
                seen_grads.push((b.name.clone(), b.grad.data().to_vec()));
            }
        });
        assert_eq!(gin.data(), gin_ref.data());
        assert_eq!(net.flat_grads(), grads_ref);
        let want_order: Vec<usize> = (0..net.layers().len()).rev().collect();
        assert_eq!(order, want_order, "layers must be reported deepest first");
        // Callback-time gradients equal the post-backward ones (they were
        // final when reported); blocks arrive in reverse layer order.
        let final_blocks: Vec<(String, Vec<f32>)> = net
            .param_blocks()
            .iter()
            .map(|b| (b.name.clone(), b.grad.data().to_vec()))
            .collect();
        for (name, g) in &seen_grads {
            let f = final_blocks.iter().find(|(n, _)| n == name).unwrap();
            assert_eq!(g, &f.1, "block {name} changed after its ready callback");
        }
        assert_eq!(seen_grads.len(), final_blocks.len());
        assert_eq!(seen_grads.first().unwrap().0, "fc.weight");
        assert_eq!(seen_grads.last().unwrap().0, "conv1.bias");
    }

    #[test]
    fn infer_is_bit_identical_to_forward() {
        // Batch 6 exercises Conv2d's batch-parallel forward path against
        // infer's sequential loop; equality must be exact, not approximate.
        let mut rng = TensorRng::new(42);
        let mut net = tiny_net(&mut rng);
        let x = rng.uniform_tensor(Shape4::new(6, 1, 8, 8), -1.0, 1.0);
        let y_train = net.forward(&x);
        let y_infer = net.infer(&x);
        assert_eq!(y_train.shape(), y_infer.shape());
        assert_eq!(y_train.data(), y_infer.data());
    }

    #[test]
    fn infer_bit_identical_for_residual_nets() {
        let mut rng = TensorRng::new(43);
        let mut net = crate::residual::resnet_small(1, 2, &mut rng);
        let x = rng.uniform_tensor(Shape4::new(3, 1, 16, 16), -1.0, 1.0);
        let y_train = net.forward(&x);
        let mut scratch = InferScratch::new();
        let y_infer = net.infer_with(&x, &mut scratch);
        assert_eq!(y_train.data(), y_infer.data());
        // Scratch reuse across calls must not change results.
        let again = net.infer_with(&x, &mut scratch);
        assert_eq!(y_infer.data(), again.data());
    }

    #[test]
    fn infer_does_not_disturb_training_state() {
        let mut rng = TensorRng::new(44);
        let mut net = tiny_net(&mut rng);
        let x = rng.uniform_tensor(Shape4::new(2, 1, 8, 8), -1.0, 1.0);
        // Reference gradients with no infer interleaved.
        let y = net.forward(&x);
        net.backward(&Tensor::filled(y.shape(), 1.0));
        let want = net.flat_grads();
        net.zero_grads();
        // forward → infer → backward: infer must not clobber the caches
        // backward depends on.
        let y2 = net.forward(&x);
        let _ = net.infer(&x);
        net.backward(&Tensor::filled(y2.shape(), 1.0));
        assert_eq!(net.flat_grads(), want);
    }

    #[test]
    fn summary_lists_layers_and_totals() {
        let mut rng = TensorRng::new(1);
        let net = tiny_net(&mut rng);
        let s = net.summary(Shape4::new(1, 1, 8, 8));
        assert!(s.contains("conv1"));
        assert!(s.contains("fc"));
        assert!(s.contains("total:"));
        assert!(s.contains(&net.num_params().to_string()));
        assert_eq!(s.lines().count(), 2 + net.layers().len() + 1);
    }

    #[test]
    fn flop_counts_accumulate_over_layers() {
        let mut rng = TensorRng::new(1);
        let net = tiny_net(&mut rng);
        let s = Shape4::new(1, 1, 8, 8);
        let fwd = net.forward_flops_per_image(s);
        // conv: 2*4*1*9*64 = 4608; relu: 256; pool: 64 (4x4 out,k2) -> 4*4*4*4=... recompute:
        // conv out 4x8x8=256 relu 256 flops; pool out 4x4x4, 4 taps each = 256; gap 64; fc 2*4*2=16.
        assert_eq!(fwd, 4608 + 256 + 256 + 64 + 16);
        assert!(net.backward_flops_per_image(s) > fwd);
        assert_eq!(
            net.training_flops_per_image(s),
            fwd + net.backward_flops_per_image(s)
        );
    }
}
