//! The `Layer` trait and trainable-parameter blocks.

use scidl_tensor::{Shape4, Tensor};

/// A named block of trainable parameters together with its accumulated
/// gradient. Each layer owns zero or more blocks (e.g. a convolution owns
/// `weight` and `bias`).
///
/// The distributed engines treat the list of blocks across a network as
/// the *model*: all-reduce averages the `grad` tensors, parameter servers
/// exchange the `value` tensors — the per-layer parameter-server design of
/// Sec. III-E(c) maps one PS to each block's owning layer.
#[derive(Clone, Debug)]
pub struct ParamBlock {
    /// Human-readable name, e.g. `"conv1.weight"`.
    pub name: String,
    /// Current parameter values.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`). Zeroed by
    /// [`ParamBlock::zero_grad`]; layers *add* into it during backward so
    /// gradient accumulation across micro-batches works naturally.
    pub grad: Tensor,
}

impl ParamBlock {
    /// Creates a block with the given initial values and a zero gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self { name: name.into(), value, grad }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the block is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.zero_();
    }
}

/// Caller-owned scratch buffers for the inference-only forward path
/// ([`Layer::infer`]). Serving workers keep one instance each: layers
/// borrow what they need (the im2col lowering buffer) instead of
/// allocating per call or mutating layer-owned caches, so a shared
/// `&Network` can run concurrent inference.
#[derive(Debug, Default)]
pub struct InferScratch {
    /// im2col/col2im lowering buffer shared by the convolution-family
    /// layers; grown on demand, reused across layers and requests.
    pub col: Vec<f32>,
}

impl InferScratch {
    /// Creates an empty scratch pad.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A stateful neural-network layer (Caffe execution model).
///
/// `forward` caches whatever activations `backward` will need; `backward`
/// consumes the cached state, accumulates parameter gradients into its
/// [`ParamBlock`]s and returns the gradient with respect to the input.
/// [`Layer::infer`] is the stateless counterpart used at serving time.
pub trait Layer: Send + Sync {
    /// Layer instance name (unique within a network), e.g. `"conv3"`.
    fn name(&self) -> &str;

    /// Output shape for a given input shape. Panics if the input shape is
    /// incompatible with the layer configuration.
    fn out_shape(&self, input: Shape4) -> Shape4;

    /// Forward pass.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Backward pass: gradient w.r.t. output in, gradient w.r.t. input
    /// out. Must be called after `forward` with a matching shape.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Inference-only forward pass: computes *exactly* the same function
    /// as [`Layer::forward`] — bit-identical output — without caching
    /// activations or touching any mutable layer state. Takes `&self` so
    /// one model can be shared read-only across serving workers; per-call
    /// buffers come from the caller's [`InferScratch`].
    fn infer(&self, input: &Tensor, scratch: &mut InferScratch) -> Tensor;

    /// Immutable access to the parameter blocks (empty for stateless
    /// layers).
    fn params(&self) -> Vec<&ParamBlock> {
        Vec::new()
    }

    /// Mutable access to the parameter blocks.
    fn params_mut(&mut self) -> Vec<&mut ParamBlock> {
        Vec::new()
    }

    /// Forward FLOPs per single image for the given input shape (the
    /// `2*macs` convention the paper's SDE counting reports). Stateless
    /// cheap layers may return small or zero values.
    fn forward_flops_per_image(&self, input: Shape4) -> u64;

    /// Backward FLOPs per single image. Defaults to `2x` forward (one
    /// pass each for data- and weight-gradients), the standard convention;
    /// stateless layers override to `1x`.
    fn backward_flops_per_image(&self, input: Shape4) -> u64 {
        2 * self.forward_flops_per_image(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_block_zero_grad() {
        let mut b = ParamBlock::new("w", Tensor::filled(Shape4::flat(4), 1.0));
        b.grad.data_mut()[2] = 5.0;
        b.zero_grad();
        assert!(b.grad.data().iter().all(|&x| x == 0.0));
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
    }
}
