//! Thread-local scratch-buffer pool (the kernel *workspace*).
//!
//! The packed GEMM, the im2col lowering and the layer backward passes all
//! need large `f32` scratch buffers whose sizes repeat every iteration
//! (pack panels, col matrices, gate pre-activations). Allocating them per
//! call puts the heap allocator on the steady-state training path — the
//! exact overhead MKL-class kernels avoid with persistent workspaces.
//! [`Workspace`] keeps a small per-thread pool of reusable buffers
//! instead: after a one-iteration warm-up, every later training or
//! inference iteration performs **zero heap allocations** for gemm/col
//! scratch (asserted by a counting-allocator test in `scidl-nn`).
//!
//! The pool is `thread_local!`, so it is trivially safe under rayon: each
//! worker thread owns its own free list, there is no locking on the hot
//! path, and buffers never migrate between threads (a buffer dropped on a
//! worker parks in *that worker's* pool, where the same worker's next
//! tile finds it).

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Maximum buffers parked per thread. Dropping a buffer into a full pool
/// frees it instead — bounds worst-case memory at roughly
/// `MAX_POOLED x largest-scratch` per thread.
const MAX_POOLED: usize = 16;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Handle to the calling thread's scratch-buffer pool.
///
/// All methods are associated functions — the pool itself lives in
/// thread-local storage, so there is nothing to construct or thread
/// through call sites.
pub struct Workspace;

impl Workspace {
    /// Borrows a scratch buffer of exactly `len` elements from the
    /// calling thread's pool, allocating only when no pooled buffer has
    /// sufficient capacity. **Contents are unspecified** (typically stale
    /// data from a previous use) — callers must fully overwrite the
    /// buffer or use [`Workspace::take_zeroed`]. The buffer returns to
    /// the pool when the guard drops.
    pub fn take(len: usize) -> WsBuf {
        let mut buf = POOL.with(|p| {
            let mut pool = p.borrow_mut();
            // Best fit: the smallest buffer whose capacity suffices;
            // otherwise the largest available (its grow realloc is the
            // cheapest of the options).
            let mut best: Option<(usize, usize, bool)> = None; // (idx, cap, fits)
            for (i, b) in pool.iter().enumerate() {
                let cap = b.capacity();
                let fits = cap >= len;
                let better = match best {
                    None => true,
                    Some((_, bcap, bfits)) => {
                        if fits != bfits {
                            fits
                        } else if fits {
                            cap < bcap
                        } else {
                            cap > bcap
                        }
                    }
                };
                if better {
                    best = Some((i, cap, fits));
                }
            }
            match best {
                Some((i, _, _)) => pool.swap_remove(i),
                None => Vec::with_capacity(len),
            }
        });
        // Truncate-then-resize touches only the zero-filled tail beyond
        // the buffer's previous length — no full memset on reuse.
        buf.truncate(len);
        buf.resize(len, 0.0);
        WsBuf { buf }
    }

    /// Like [`Workspace::take`] but with every element zeroed.
    pub fn take_zeroed(len: usize) -> WsBuf {
        let mut b = Self::take(len);
        b.fill(0.0);
        b
    }

    /// Number of buffers currently parked in this thread's pool. Test
    /// hook: steady-state code should neither grow nor shrink this
    /// between identical iterations.
    pub fn pooled() -> usize {
        POOL.with(|p| p.borrow().len())
    }

    /// Frees every buffer parked in this thread's pool.
    pub fn clear() {
        POOL.with(|p| p.borrow_mut().clear());
    }
}

/// RAII guard over a pooled scratch buffer; derefs to `[f32]` and returns
/// the buffer to the owning thread's pool on drop.
pub struct WsBuf {
    buf: Vec<f32>,
}

impl Deref for WsBuf {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl DerefMut for WsBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for WsBuf {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        if buf.capacity() == 0 {
            return;
        }
        // `try_with` so drops racing thread teardown are silently leaked
        // instead of panicking.
        let _ = POOL.try_with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < MAX_POOLED {
                pool.push(buf);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_length_never_undersized() {
        Workspace::clear();
        for &len in &[0usize, 1, 7, 1000, 5, 1000, 64] {
            let b = Workspace::take(len);
            assert_eq!(b.len(), len, "take({len}) returned {} elements", b.len());
        }
        let z = Workspace::take_zeroed(513);
        assert_eq!(z.len(), 513);
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn buffer_is_pointer_stable_across_reuse() {
        Workspace::clear();
        let p1 = {
            let b = Workspace::take(4096);
            b.as_ptr()
        };
        // Same-size request immediately after: must get the same heap
        // block back (this is what makes same-shape forwards reuse their
        // col/pack scratch instead of reallocating).
        let p2 = {
            let b = Workspace::take(4096);
            b.as_ptr()
        };
        assert_eq!(p1, p2, "pool failed to reuse the parked buffer");
        // A smaller request also reuses it (truncate, no realloc).
        let p3 = {
            let b = Workspace::take(128);
            b.as_ptr()
        };
        assert_eq!(p1, p3);
    }

    #[test]
    fn concurrent_takes_get_distinct_buffers() {
        Workspace::clear();
        let a = Workspace::take(256);
        let b = Workspace::take(256);
        assert_ne!(a.as_ptr(), b.as_ptr(), "live buffers must never alias");
        drop(a);
        drop(b);
        assert_eq!(Workspace::pooled(), 2);
    }

    #[test]
    fn stale_contents_are_truncated_to_len() {
        Workspace::clear();
        {
            let mut b = Workspace::take(100);
            b.fill(7.0);
        }
        // Shorter reuse: stale prefix allowed, but length must be exact.
        let b = Workspace::take(10);
        assert_eq!(b.len(), 10);
        // Longer reuse: tail beyond the stale region is zero-filled
        // (Vec::resize semantics), never uninitialised.
        drop(b);
        let b = Workspace::take(200);
        assert_eq!(b.len(), 200);
        assert!(b[100..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pool_is_bounded() {
        Workspace::clear();
        let bufs: Vec<WsBuf> = (0..40).map(|_| Workspace::take(8)).collect();
        drop(bufs);
        assert!(Workspace::pooled() <= MAX_POOLED);
    }

    #[test]
    fn pools_are_per_thread() {
        Workspace::clear();
        drop(Workspace::take(1024)); // park one buffer here
        let here = Workspace::pooled();
        assert!(here >= 1);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    // Fresh thread: empty pool, takes allocate cleanly.
                    assert_eq!(Workspace::pooled(), 0);
                    for i in 0..8 {
                        let mut b = Workspace::take(64 * (i + 1));
                        b.fill(t as f32);
                        assert!(b.iter().all(|&v| v == t as f32));
                    }
                    Workspace::pooled()
                })
            })
            .collect();
        for h in handles {
            let other = h.join().unwrap();
            assert!(other >= 1);
        }
        // This thread's pool is untouched by the workers.
        assert_eq!(Workspace::pooled(), here);
    }
}
