//! Deterministic random tensor initialisation.
//!
//! Every stochastic component in the stack takes an explicit seed so that
//! simulated-scale experiments are bit-reproducible. `TensorRng` wraps a
//! small, fast xoshiro-style generator with the handful of distributions
//! the stack needs (uniform, Gaussian via Box–Muller, Bernoulli, Poisson
//! via Knuth for small lambda).

use crate::{Shape4, Tensor};

/// SplitMix64-seeded xoshiro256** generator with tensor-filling helpers.
///
/// We implement the generator directly (≈30 lines) instead of pulling the
/// full `rand` trait machinery into the hot paths; `rand` remains a dev/
/// workload dependency elsewhere.
#[derive(Clone, Debug)]
pub struct TensorRng {
    s: [u64; 4],
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }

    /// Derives an independent child generator; used to give each simulated
    /// node / worker / dataset shard its own stream.
    pub fn fork(&mut self, stream: u64) -> TensorRng {
        TensorRng::new(self.next_u64() ^ stream.wrapping_mul(0xA24BAED4963EE407))
    }

    /// Next raw 64-bit value (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics when `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        loop {
            let u1 = self.uniform();
            if u1 > 1e-300 {
                let u2 = self.uniform();
                return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        }
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn normal_ms(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Lognormal with the given underlying mu/sigma.
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal_ms(mu, sigma).exp()
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Poisson sample (Knuth's method; adequate for the small lambdas used
    /// by the HEP generator, falls back to a normal approximation above 30).
    pub fn poisson(&mut self, lambda: f64) -> usize {
        assert!(lambda >= 0.0, "negative lambda");
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            return self.normal_ms(lambda, lambda.sqrt()).round().max(0.0) as usize;
        }
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Tensor filled with `N(0, std^2)` samples.
    pub fn normal_tensor(&mut self, shape: Shape4, std: f32) -> Tensor {
        let data = (0..shape.len())
            .map(|_| (self.normal() as f32) * std)
            .collect();
        Tensor::from_vec(shape, data)
    }

    /// Tensor filled with uniform samples in `[lo, hi)`.
    pub fn uniform_tensor(&mut self, shape: Shape4, lo: f32, hi: f32) -> Tensor {
        let data = (0..shape.len())
            .map(|_| self.uniform_range(lo as f64, hi as f64) as f32)
            .collect();
        Tensor::from_vec(shape, data)
    }

    /// He/Kaiming initialisation for a layer with `fan_in` inputs — the
    /// standard choice for ReLU networks like the paper's HEP CNN.
    pub fn he_tensor(&mut self, shape: Shape4, fan_in: usize) -> Tensor {
        let std = (2.0 / fan_in.max(1) as f64).sqrt() as f32;
        self.normal_tensor(shape, std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = TensorRng::new(42);
        let mut b = TensorRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TensorRng::new(1);
        let mut b = TensorRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = TensorRng::new(7);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut r = TensorRng::new(3);
        for _ in 0..1000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = TensorRng::new(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn poisson_mean_close_to_lambda() {
        let mut r = TensorRng::new(5);
        let lambda = 4.5;
        let n = 10_000;
        let mean = (0..n).map(|_| r.poisson(lambda) as f64).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_uses_normal_path() {
        let mut r = TensorRng::new(6);
        let mean = (0..5000).map(|_| r.poisson(100.0) as f64).sum::<f64>() / 5000.0;
        assert!((mean - 100.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn he_tensor_std_scales_with_fan_in() {
        let mut r = TensorRng::new(9);
        let t = r.he_tensor(Shape4::flat(20_000), 8);
        let std_expected = (2.0f64 / 8.0).sqrt();
        let var = t.data().iter().map(|&x| x as f64 * x as f64).sum::<f64>() / t.len() as f64;
        assert!((var.sqrt() - std_expected).abs() < 0.05);
    }

    #[test]
    fn bernoulli_rate() {
        let mut r = TensorRng::new(13);
        let hits = (0..10_000).filter(|_| r.bernoulli(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
