//! Radix-2 complex FFT and 2-D helpers.
//!
//! Substrate for FFT-based convolution (`scidl-nn::fftconv`) — together
//! with Winograd, one of the two fast-convolution algorithm families the
//! paper names as future work (Sec. VIII-A, ref. [43]). Iterative
//! in-place Cooley–Tukey over interleaved `(re, im)` pairs; sizes must
//! be powers of two.

/// A complex value as `(re, im)`.
pub type Complex = (f32, f32);

#[inline]
fn c_mul(a: Complex, b: Complex) -> Complex {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

#[inline]
fn c_add(a: Complex, b: Complex) -> Complex {
    (a.0 + b.0, a.1 + b.1)
}

#[inline]
fn c_sub(a: Complex, b: Complex) -> Complex {
    (a.0 - b.0, a.1 - b.1)
}

/// In-place iterative radix-2 FFT. `data.len()` must be a power of two.
/// `inverse` computes the unscaled inverse transform (callers divide by
/// `n` once, which [`ifft`] does).
pub fn fft_inplace(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0f64 } else { -1.0f64 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = (ang.cos() as f32, ang.sin() as f32);
        for start in (0..n).step_by(len) {
            let mut w: Complex = (1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = c_mul(data[start + k + len / 2], w);
                data[start + k] = c_add(u, v);
                data[start + k + len / 2] = c_sub(u, v);
                w = c_mul(w, wlen);
            }
        }
        len <<= 1;
    }
}

/// Forward FFT of a real signal into a fresh complex buffer.
pub fn fft_real(data: &[f32]) -> Vec<Complex> {
    let mut c: Vec<Complex> = data.iter().map(|&x| (x, 0.0)).collect();
    fft_inplace(&mut c, false);
    c
}

/// Inverse FFT returning the real parts, scaled by `1/n`.
pub fn ifft(mut data: Vec<Complex>) -> Vec<f32> {
    let n = data.len();
    fft_inplace(&mut data, true);
    let inv = 1.0 / n as f32;
    data.into_iter().map(|(re, _)| re * inv).collect()
}

/// 2-D FFT of a row-major `size x size` complex grid, in place
/// (rows, then columns).
pub fn fft2_inplace(grid: &mut [Complex], size: usize, inverse: bool) {
    assert_eq!(grid.len(), size * size, "grid must be size^2");
    // Rows.
    for row in grid.chunks_mut(size) {
        fft_inplace(row, inverse);
    }
    // Columns via transpose-free strided gather/scatter.
    let mut col = vec![(0.0f32, 0.0f32); size];
    for c in 0..size {
        for r in 0..size {
            col[r] = grid[r * size + c];
        }
        fft_inplace(&mut col, inverse);
        for r in 0..size {
            grid[r * size + c] = col[r];
        }
    }
}

/// Elementwise complex product `a ⊙ b` accumulated into `acc`.
pub fn accumulate_product(acc: &mut [Complex], a: &[Complex], b: &[Complex]) {
    assert_eq!(acc.len(), a.len());
    assert_eq!(a.len(), b.len());
    for ((dst, &x), &y) in acc.iter_mut().zip(a).zip(b) {
        let p = c_mul(x, y);
        *dst = c_add(*dst, p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![(0.0, 0.0); 8];
        data[0] = (1.0, 0.0);
        fft_inplace(&mut data, false);
        for &(re, im) in &data {
            assert!((re - 1.0).abs() < 1e-6 && im.abs() < 1e-6);
        }
    }

    #[test]
    fn roundtrip_recovers_signal() {
        let signal: Vec<f32> = (0..16).map(|i| (i as f32 * 0.7).sin()).collect();
        let spectrum = fft_real(&signal);
        let back = ifft(spectrum);
        for (a, b) in signal.iter().zip(&back) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let signal: Vec<f32> = (0..32).map(|i| ((i * 7 + 3) % 11) as f32 - 5.0).collect();
        let time_energy: f64 = signal.iter().map(|&x| x as f64 * x as f64).sum();
        let spectrum = fft_real(&signal);
        let freq_energy: f64 = spectrum
            .iter()
            .map(|&(re, im)| (re as f64).powi(2) + (im as f64).powi(2))
            .sum::<f64>()
            / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-3 * time_energy);
    }

    #[test]
    fn convolution_theorem_1d() {
        // Circular convolution via FFT equals the direct computation.
        let n = 8;
        let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let h: Vec<f32> = (0..n).map(|i| if i < 3 { 1.0 } else { 0.0 }).collect();
        let mut direct = vec![0.0f32; n];
        for i in 0..n {
            for j in 0..n {
                direct[(i + j) % n] += x[i] * h[j];
            }
        }
        let fx = fft_real(&x);
        let fh = fft_real(&h);
        let mut prod = vec![(0.0, 0.0); n];
        accumulate_product(&mut prod, &fx, &fh);
        let via_fft = ifft(prod);
        for (a, b) in direct.iter().zip(&via_fft) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn fft2_roundtrip() {
        let size = 8;
        let mut grid: Vec<Complex> = (0..size * size)
            .map(|i| (((i * 13 + 5) % 17) as f32 - 8.0, 0.0))
            .collect();
        let original = grid.clone();
        fft2_inplace(&mut grid, size, false);
        fft2_inplace(&mut grid, size, true);
        let inv = 1.0 / (size * size) as f32;
        for (a, b) in grid.iter().zip(&original) {
            assert!((a.0 * inv - b.0).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut data = vec![(0.0, 0.0); 6];
        fft_inplace(&mut data, false);
    }
}
