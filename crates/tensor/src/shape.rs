//! 4-D NCHW shape type and index arithmetic.

use std::fmt;

/// Shape of a 4-D tensor in NCHW layout: `(batch, channels, height, width)`.
///
/// All tensors in scidl are logically 4-D; vectors and matrices are
/// represented with singleton trailing dimensions (e.g. a weight matrix of
/// a dense layer is `(out, in, 1, 1)`), which is the same convention Caffe
/// blobs used.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape4 {
    /// Batch (N) dimension.
    pub n: usize,
    /// Channel (C) dimension.
    pub c: usize,
    /// Height (H) dimension.
    pub h: usize,
    /// Width (W) dimension.
    pub w: usize,
}

impl Shape4 {
    /// Creates a new shape. Any dimension may be 1 but none may be 0 for a
    /// usable tensor; zero-sized shapes are permitted so empty datasets can
    /// be represented, but most kernels will simply do no work on them.
    #[inline]
    pub const fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self { n, c, h, w }
    }

    /// A flat 1-D shape `(1, len, 1, 1)`.
    #[inline]
    pub const fn flat(len: usize) -> Self {
        Self::new(1, len, 1, 1)
    }

    /// Total number of elements.
    #[inline]
    pub const fn len(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// True when the shape holds no elements.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Elements per batch item (C*H*W).
    #[inline]
    pub const fn item_len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Elements per channel plane (H*W).
    #[inline]
    pub const fn plane_len(&self) -> usize {
        self.h * self.w
    }

    /// Flat offset of element `(n, c, h, w)` in row-major NCHW order.
    #[inline]
    pub const fn offset(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Inverse of [`offset`](Self::offset): decompose a flat index.
    #[inline]
    pub const fn coords(&self, idx: usize) -> (usize, usize, usize, usize) {
        let w = idx % self.w;
        let rest = idx / self.w;
        let h = rest % self.h;
        let rest = rest / self.h;
        let c = rest % self.c;
        let n = rest / self.c;
        (n, c, h, w)
    }

    /// Returns the same shape with a different batch dimension. Used when
    /// carving minibatches out of datasets.
    #[inline]
    pub const fn with_n(&self, n: usize) -> Self {
        Self::new(n, self.c, self.h, self.w)
    }

    /// Size in bytes of an f32 tensor of this shape.
    #[inline]
    pub const fn bytes(&self) -> usize {
        self.len() * std::mem::size_of::<f32>()
    }
}

impl fmt::Debug for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}x{}x{}x{}]", self.n, self.c, self.h, self.w)
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_item_len() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.len(), 120);
        assert_eq!(s.item_len(), 60);
        assert_eq!(s.plane_len(), 20);
        assert_eq!(s.bytes(), 480);
    }

    #[test]
    fn offset_is_row_major() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.offset(0, 0, 0, 0), 0);
        assert_eq!(s.offset(0, 0, 0, 1), 1);
        assert_eq!(s.offset(0, 0, 1, 0), 5);
        assert_eq!(s.offset(0, 1, 0, 0), 20);
        assert_eq!(s.offset(1, 0, 0, 0), 60);
        assert_eq!(s.offset(1, 2, 3, 4), 119);
    }

    #[test]
    fn coords_roundtrip() {
        let s = Shape4::new(3, 2, 5, 7);
        for idx in 0..s.len() {
            let (n, c, h, w) = s.coords(idx);
            assert_eq!(s.offset(n, c, h, w), idx);
        }
    }

    #[test]
    fn flat_shape() {
        let s = Shape4::flat(17);
        assert_eq!(s.len(), 17);
        assert_eq!(s.n, 1);
        assert_eq!(s.c, 17);
    }

    #[test]
    fn with_n_changes_only_batch() {
        let s = Shape4::new(8, 3, 224, 224).with_n(2);
        assert_eq!(s, Shape4::new(2, 3, 224, 224));
    }

    #[test]
    fn empty_shape() {
        assert!(Shape4::new(0, 3, 4, 4).is_empty());
        assert!(!Shape4::new(1, 1, 1, 1).is_empty());
    }
}
