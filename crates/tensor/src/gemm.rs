//! Packed, register-tiled, cache-blocked parallel single-precision GEMM.
//!
//! Deep-learning workloads lower convolutions onto GEMM with tall-skinny
//! operands; the paper's ≈2 TFLOP/s-per-node numbers (Table 2) come from
//! MKL-2017-style packed, register-blocked kernels (Das et al.,
//! arXiv:1602.06709 describe the recipe). This module implements that
//! recipe in Rust:
//!
//! * **Packing absorbs transposition.** A panels (`MR x KC`) and B panels
//!   (`KC x NR`) are copied into contiguous, cache-resident scratch from
//!   the thread-local [`Workspace`] pool. All four transpose combinations
//!   differ *only* in the pack copy loops — `TN`/`TT` are no longer
//!   strided-read slow paths, because the microkernel always streams the
//!   same packed layout.
//! * **Register-tiled microkernel.** An unrolled `MR x NR` (4×16)
//!   accumulator block held in registers, updated with `KC` fused
//!   multiply-adds per lane; the compiler auto-vectorises the fixed-size
//!   inner loops (the 4×16 shape empirically maximises SSE2 throughput —
//!   four rows of four 128-bit accumulator vectors).
//! * **Cache-blocked loop nest.** `KC`-deep slices of the k dimension are
//!   packed once and reused across the whole `C` sweep; `C` is tiled into
//!   `MC x NC` blocks and the tile grid is partitioned 2-D (M × N) across
//!   rayon workers, so parallelism survives both short-`m` (backward-data)
//!   and short-`n` (weight-gradient) shapes.
//! * **Fused bias epilogue.** [`gemm_bias`] / [`gemm_bias_cols`] write the
//!   broadcast bias as the accumulator initialisation, so `C` is swept
//!   once instead of a second full pass after the product.
//!
//! No value-dependent skips anywhere: `0 · NaN` must stay `NaN` (PR 3's
//! no-laundering rule), so zeros in either operand are multiplied like any
//! other value. Pack padding (rows/cols beyond `m`/`n` rounded up to
//! `MR`/`NR`) only feeds accumulator lanes that are never written back.
//!
//! The pre-packing axpy kernel is retained as [`gemm_unpacked`]: it is
//! the differential-testing baseline and the "seed" side of the
//! faster-or-equal assertion in the criterion kernel bench.

use crate::workspace::Workspace;
use rayon::prelude::*;

/// Whether an operand is used as stored or transposed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Transpose {
    /// Use the matrix as stored (row-major `rows x cols`).
    No,
    /// Use the transpose of the stored matrix.
    Yes,
}

/// Microkernel register-tile rows.
const MR: usize = 4;
/// Microkernel register-tile columns.
const NR: usize = 16;
/// k-dimension cache block: one packed A panel is `MR x KC` (4 KiB),
/// resident in L1 across the whole B sweep.
const KC: usize = 256;
/// m-dimension cache block (multiple of `MR`): one packed A block is
/// `MC x KC` (64 KiB), resident in L2.
const MC: usize = 64;
/// n-dimension cache block (multiple of `NR`): bounds the per-tile sweep
/// so a `KC x NC` B slab (512 KiB) stays cache-resident.
const NC: usize = 512;
/// Work (m*n*k FLOPs/2) above which the tile grid is partitioned across
/// rayon workers.
const PAR_WORK: usize = 1 << 16;
/// Work below which packing overhead loses to plain nested loops; tiny
/// products (e.g. the 128→2 HEP head) stay on the unpacked path.
const SMALL_WORK: usize = 1 << 12;

/// Row block size the seed kernel used for parallel partitioning of C
/// (kept for [`gemm_unpacked`]).
const SEED_MC: usize = 64;

/// Accumulator initialisation applied in one sweep before the product is
/// accumulated — beta-scaling or a fused broadcast bias.
#[derive(Clone, Copy)]
enum Init<'a> {
    /// `C = beta * C` (the classic BLAS prologue).
    Beta(f32),
    /// `C[i, :] = bias[i]` — per-row bias, conv-style (`bias.len() == m`).
    RowBias(&'a [f32]),
    /// `C[i, j] = bias[j]` — per-column bias, dense/LSTM-style
    /// (`bias.len() == n`).
    ColBias(&'a [f32]),
}

/// Computes `C = alpha * op(A) * op(B) + beta * C`.
///
/// `A`, `B`, `C` are dense row-major buffers. Logical dimensions:
/// `op(A)` is `m x k`, `op(B)` is `k x n`, `C` is `m x n`. When
/// `ta == Transpose::Yes`, `A` is stored `k x m`; when
/// `tb == Transpose::Yes`, `B` is stored `n x k`.
///
/// Panics if any buffer is too small for its logical dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    check_dims(m, n, k, a, b, c);
    if m == 0 || n == 0 {
        return;
    }
    gemm_init(ta, tb, m, n, k, alpha, a, b, Init::Beta(beta), &mut c[..m * n]);
}

/// `C = op(A) * op(B)` with a per-row bias fused into the epilogue:
/// `C[i, :] = bias[i] + sum_p ...` — `C` is written in one sweep instead
/// of a product pass plus a broadcast pass. Used by the conv family
/// (`m` = output channels).
#[allow(clippy::too_many_arguments)]
pub fn gemm_bias(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    c: &mut [f32],
) {
    assert_eq!(bias.len(), m, "bias length must equal m");
    check_dims(m, n, k, a, b, c);
    if m == 0 || n == 0 {
        return;
    }
    gemm_init(ta, tb, m, n, k, 1.0, a, b, Init::RowBias(bias), &mut c[..m * n]);
}

/// `C = op(A) * op(B)` with a per-column bias fused into the epilogue:
/// `C[i, j] = bias[j] + sum_p ...`. Used by dense and LSTM layers, where
/// rows are batch items and columns are output features.
#[allow(clippy::too_many_arguments)]
pub fn gemm_bias_cols(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    c: &mut [f32],
) {
    assert_eq!(bias.len(), n, "bias length must equal n");
    check_dims(m, n, k, a, b, c);
    if m == 0 || n == 0 {
        return;
    }
    gemm_init(ta, tb, m, n, k, 1.0, a, b, Init::ColBias(bias), &mut c[..m * n]);
}

fn check_dims(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &[f32]) {
    assert!(a.len() >= m * k, "A buffer too small: {} < {}", a.len(), m * k);
    assert!(b.len() >= k * n, "B buffer too small: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "C buffer too small: {} < {}", c.len(), m * n);
}

/// Shared driver: applies the accumulator initialisation, then adds
/// `alpha * op(A) * op(B)`. `c` is exactly `m x n`.
#[allow(clippy::too_many_arguments)]
fn gemm_init(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    init: Init<'_>,
    c: &mut [f32],
) {
    apply_init(init, n, c);
    if k == 0 {
        return;
    }
    if m * n * k < SMALL_WORK {
        accumulate_unpacked(ta, tb, 0, m, m, n, k, alpha, a, b, c);
    } else {
        packed_accumulate(ta, tb, m, n, k, alpha, a, b, c);
    }
}

/// One sweep over C writing the accumulator initial value.
fn apply_init(init: Init<'_>, n: usize, c: &mut [f32]) {
    let par = c.len() >= PAR_WORK;
    match init {
        Init::Beta(beta) => {
            if beta == 0.0 {
                if par {
                    c.par_iter_mut().for_each(|x| *x = 0.0);
                } else {
                    c.fill(0.0);
                }
            } else if beta != 1.0 {
                if par {
                    c.par_iter_mut().for_each(|x| *x *= beta);
                } else {
                    c.iter_mut().for_each(|x| *x *= beta);
                }
            }
        }
        Init::RowBias(bias) => {
            if par {
                c.par_chunks_mut(n)
                    .enumerate()
                    .for_each(|(i, row)| row.fill(bias[i]));
            } else {
                for (row, &b) in c.chunks_mut(n).zip(bias) {
                    row.fill(b);
                }
            }
        }
        Init::ColBias(bias) => {
            if par {
                c.par_chunks_mut(n).for_each(|row| row.copy_from_slice(bias));
            } else {
                for row in c.chunks_mut(n) {
                    row.copy_from_slice(bias);
                }
            }
        }
    }
}

/// Raw pointer to `C` shared across tile tasks. Tiles partition `C` into
/// disjoint row/column blocks, so no element is written by two tasks.
#[derive(Clone, Copy)]
struct CPtr(*mut f32);
unsafe impl Send for CPtr {}
unsafe impl Sync for CPtr {}

/// The packed path: `C += alpha * op(A) * op(B)` (initialisation already
/// applied). Deterministic regardless of worker count: every C element
/// accumulates its `KC` blocks in the same (sequential) order, and tiles
/// never share elements.
#[allow(clippy::too_many_arguments)]
fn packed_accumulate(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    let n_panels = n.div_ceil(NR);
    let mt = m.div_ceil(MC);
    let nt = n.div_ceil(NC);
    let parallel = m * n * k >= PAR_WORK && mt * nt > 1;
    let cp = CPtr(c.as_mut_ptr());

    for p0 in (0..k).step_by(KC) {
        let kc = KC.min(k - p0);
        // Pack the full-width B slab for this k block once; every tile
        // reads from it. Panel pj holds columns [pj*NR, pj*NR + NR).
        let mut bpack = Workspace::take(n_panels * NR * kc);
        pack_b(tb, b, n, k, p0, kc, &mut bpack);
        let bpack = &*bpack;

        let tile = |t: usize| {
            let (ti, tj) = (t / nt, t % nt);
            let i0 = ti * MC;
            let mc = MC.min(m - i0);
            let j0 = tj * NC;
            let nc = NC.min(n - j0);
            let a_panels = mc.div_ceil(MR);
            // Thread-local A block: packed once per (tile, k-block),
            // streamed a_panels x (nc/NR) times.
            let mut apack = Workspace::take(a_panels * MR * kc);
            pack_a(ta, a, m, k, i0, mc, p0, kc, &mut apack);
            for pj in (j0 / NR)..(j0 + nc).div_ceil(NR) {
                let col0 = pj * NR;
                let nr_eff = NR.min(n - col0);
                let bp = &bpack[pj * NR * kc..][..NR * kc];
                for pi in 0..a_panels {
                    let row0 = i0 + pi * MR;
                    let mr_eff = MR.min(m - row0);
                    let ap = &apack[pi * MR * kc..][..MR * kc];
                    microkernel(kc, ap, bp, alpha, cp, n, row0, col0, mr_eff, nr_eff);
                }
            }
        };

        if parallel {
            (0..mt * nt).into_par_iter().for_each(tile);
        } else {
            (0..mt * nt).for_each(tile);
        }
    }
}

/// Packs `op(A)[i0..i0+mc, p0..p0+kc]` into `MR`-row panels: panel `pi`,
/// depth `p`, row `r` lands at `apack[pi*MR*kc + p*MR + r]`. Rows past
/// `mc` are zero (their accumulator lanes are never written back).
#[allow(clippy::too_many_arguments)]
fn pack_a(
    ta: Transpose,
    a: &[f32],
    m: usize,
    k: usize,
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
    apack: &mut [f32],
) {
    let panels = mc.div_ceil(MR);
    for pi in 0..panels {
        let dst = &mut apack[pi * MR * kc..][..MR * kc];
        let rbase = i0 + pi * MR;
        let rows = MR.min(mc - pi * MR);
        match ta {
            Transpose::No => {
                // A row-major m x k: op(A)[i, p] = a[i*k + p]; each
                // source row is contiguous, scattered to stride MR.
                for r in 0..MR {
                    if r < rows {
                        let src = &a[(rbase + r) * k + p0..][..kc];
                        for (p, &v) in src.iter().enumerate() {
                            dst[p * MR + r] = v;
                        }
                    } else {
                        dst.iter_mut().skip(r).step_by(MR).for_each(|v| *v = 0.0);
                    }
                }
            }
            Transpose::Yes => {
                // A stored k x m: op(A)[i, p] = a[p*m + i]; rows of a
                // panel slice are contiguous in the source — the former
                // TN slow path becomes a straight memcpy per depth.
                for p in 0..kc {
                    let src = &a[(p0 + p) * m + rbase..][..rows];
                    let d = &mut dst[p * MR..(p + 1) * MR];
                    d[..rows].copy_from_slice(src);
                    d[rows..].fill(0.0);
                }
            }
        }
    }
}

/// Packs `op(B)[p0..p0+kc, :]` into `NR`-column panels: panel `pj`,
/// depth `p`, column `c` lands at `bpack[pj*NR*kc + p*NR + c]`. Columns
/// past `n` are zero.
fn pack_b(tb: Transpose, b: &[f32], n: usize, k: usize, p0: usize, kc: usize, bpack: &mut [f32]) {
    let panels = n.div_ceil(NR);
    for pj in 0..panels {
        let jbase = pj * NR;
        let cols = NR.min(n - jbase);
        let dst = &mut bpack[pj * NR * kc..][..NR * kc];
        match tb {
            Transpose::No => {
                // B stored k x n: contiguous in j — memcpy per depth.
                for p in 0..kc {
                    let src = &b[(p0 + p) * n + jbase..][..cols];
                    let d = &mut dst[p * NR..(p + 1) * NR];
                    d[..cols].copy_from_slice(src);
                    d[cols..].fill(0.0);
                }
            }
            Transpose::Yes => {
                // B stored n x k: op(B)[p, j] = b[j*k + p]; each column
                // is contiguous in the source — the former NT/TT strided
                // inner loops collapse into this pack copy.
                for cidx in 0..NR {
                    if cidx < cols {
                        let src = &b[(jbase + cidx) * k + p0..][..kc];
                        for (p, &v) in src.iter().enumerate() {
                            dst[p * NR + cidx] = v;
                        }
                    } else {
                        dst.iter_mut().skip(cidx).step_by(NR).for_each(|v| *v = 0.0);
                    }
                }
            }
        }
    }
}

/// The `MR x NR` register-tile microkernel: accumulates
/// `sum_p ap[p, :] (outer) bp[p, :]` in an unrolled 4×16 block, then adds
/// `alpha *` the block into `C[row0.., col0..]` (top-left corner), writing
/// only the `mr_eff x nr_eff` valid region.
#[allow(clippy::too_many_arguments)]
#[inline]
fn microkernel(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    alpha: f32,
    c: CPtr,
    ldc: usize,
    row0: usize,
    col0: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc {
        // Fixed-size views let the compiler keep the tile in registers
        // and vectorise the NR lane without bounds checks.
        let av: &[f32; MR] = ap[p * MR..(p + 1) * MR].try_into().unwrap();
        let bv: &[f32; NR] = bp[p * NR..(p + 1) * NR].try_into().unwrap();
        for (accr, &ai) in acc.iter_mut().zip(av) {
            for (accv, &bj) in accr.iter_mut().zip(bv) {
                *accv += ai * bj;
            }
        }
    }
    for (i, accr) in acc.iter().enumerate().take(mr_eff) {
        // SAFETY: tiles partition C into disjoint (row, col) blocks and
        // panels partition tiles, so exactly one microkernel call writes
        // each element; `row0 + i < m` and `col0 + nr_eff <= n` by
        // construction, keeping the slice in bounds.
        let dst = unsafe { std::slice::from_raw_parts_mut(c.0.add((row0 + i) * ldc + col0), nr_eff) };
        for (d, &v) in dst.iter_mut().zip(accr.iter()) {
            *d += alpha * v;
        }
    }
}

/// The pre-packing kernel (axpy inner loops, strided `TN`/`TT` reads),
/// kept as the differential-testing baseline and the "seed" side of the
/// packed-vs-seed criterion assertion. Semantics identical to [`gemm`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_unpacked(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    check_dims(m, n, k, a, b, c);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        apply_init(Init::Beta(beta), n, &mut c[..m * n]);
        return;
    }

    if m * n * k < PAR_WORK {
        apply_init(Init::Beta(beta), n, &mut c[..m * n]);
        accumulate_unpacked(ta, tb, 0, m, m, n, k, alpha, a, b, &mut c[..m * n]);
        return;
    }

    c[..m * n]
        .par_chunks_mut(SEED_MC * n)
        .enumerate()
        .for_each(|(blk, c_blk)| {
            let i0 = blk * SEED_MC;
            let rows = c_blk.len() / n;
            apply_init(Init::Beta(beta), n, c_blk);
            accumulate_unpacked(ta, tb, i0, rows, m, n, k, alpha, a, b, c_blk);
        });
}

/// Accumulates `alpha * op(A)[i0..i0+rows, :] * op(B)` into the row block
/// `c_blk` (no prologue — callers scale/fill first). `m` is the full
/// logical row count, needed to index transposed A.
#[allow(clippy::too_many_arguments)]
fn accumulate_unpacked(
    ta: Transpose,
    tb: Transpose,
    i0: usize,
    rows: usize,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    c_blk: &mut [f32],
) {
    match (ta, tb) {
        (Transpose::No, Transpose::No) => {
            // C[i,j] += alpha * sum_p A[i,p] * B[p,j]; axpy over rows of B.
            for p0 in (0..k).step_by(KC) {
                let pend = (p0 + KC).min(k);
                for i in 0..rows {
                    let arow = &a[(i0 + i) * k..(i0 + i) * k + k];
                    let crow = &mut c_blk[i * n..(i + 1) * n];
                    for p in p0..pend {
                        // No zero-skip here: 0·NaN must stay NaN, matching
                        // gemm_ref. Skipping `av == 0.0` would silently mask
                        // non-finite values in B.
                        let av = alpha * arow[p];
                        let brow = &b[p * n..p * n + n];
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv += av * bv;
                        }
                    }
                }
            }
        }
        (Transpose::No, Transpose::Yes) => {
            // B stored n x k; dot products of contiguous rows.
            for i in 0..rows {
                let arow = &a[(i0 + i) * k..(i0 + i) * k + k];
                let crow = &mut c_blk[i * n..(i + 1) * n];
                for (j, cv) in crow.iter_mut().enumerate() {
                    let brow = &b[j * k..j * k + k];
                    let mut acc = 0.0f32;
                    for (av, bv) in arow.iter().zip(brow) {
                        acc += av * bv;
                    }
                    *cv += alpha * acc;
                }
            }
        }
        (Transpose::Yes, Transpose::No) => {
            // A stored k x m; op(A)[i,p] = A[p, i].
            for p in 0..k {
                let arow = &a[p * m..p * m + m];
                let brow = &b[p * n..p * n + n];
                for i in 0..rows {
                    // As in the NN kernel: no zero-skip, 0·NaN must be NaN.
                    let av = alpha * arow[i0 + i];
                    let crow = &mut c_blk[i * n..(i + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
        }
        (Transpose::Yes, Transpose::Yes) => {
            for i in 0..rows {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += a[p * m + i0 + i] * b[j * k + p];
                    }
                    c_blk[i * n + j] += alpha * acc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference implementation with f64 accumulation.
    #[allow(clippy::too_many_arguments)]
    fn gemm_ref(
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        beta: f32,
        c: &mut [f32],
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    let av = match ta {
                        Transpose::No => a[i * k + p],
                        Transpose::Yes => a[p * m + i],
                    };
                    let bv = match tb {
                        Transpose::No => b[p * n + j],
                        Transpose::Yes => b[j * k + p],
                    };
                    acc += av as f64 * bv as f64;
                }
                c[i * n + j] = alpha * acc as f32 + beta * c[i * n + j];
            }
        }
    }

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s % 2000) as f32 - 1000.0) / 500.0
            })
            .collect()
    }

    fn check(ta: Transpose, tb: Transpose, m: usize, n: usize, k: usize, alpha: f32, beta: f32) {
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let mut c = fill(m * n, 3);
        let mut c_ref = c.clone();
        gemm(ta, tb, m, n, k, alpha, &a, &b, beta, &mut c);
        gemm_ref(ta, tb, m, n, k, alpha, &a, &b, beta, &mut c_ref);
        let max_err = c
            .iter()
            .zip(&c_ref)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        // f32 accumulation over k terms; tolerance scales with k.
        let tol = 1e-4 * (k as f32).sqrt() * 16.0;
        assert!(
            max_err < tol,
            "gemm {ta:?}{tb:?} m={m} n={n} k={k}: max err {max_err} > {tol}"
        );
    }

    #[test]
    fn small_all_transposes() {
        for ta in [Transpose::No, Transpose::Yes] {
            for tb in [Transpose::No, Transpose::Yes] {
                check(ta, tb, 3, 4, 5, 1.0, 0.0);
                check(ta, tb, 1, 1, 1, 1.0, 0.0);
                check(ta, tb, 5, 1, 7, 1.0, 0.0);
            }
        }
    }

    #[test]
    fn alpha_beta_combinations() {
        check(Transpose::No, Transpose::No, 7, 9, 11, 0.5, 2.0);
        check(Transpose::No, Transpose::Yes, 7, 9, 11, -1.0, 1.0);
        check(Transpose::Yes, Transpose::No, 7, 9, 11, 2.0, 0.5);
        check(Transpose::Yes, Transpose::Yes, 7, 9, 11, 1.5, -0.5);
    }

    #[test]
    fn large_parallel_paths() {
        // Cross the parallel threshold and the MC block boundary, with a
        // ragged final block (130 = 2*64 + 2).
        for ta in [Transpose::No, Transpose::Yes] {
            for tb in [Transpose::No, Transpose::Yes] {
                check(ta, tb, 130, 70, 33, 1.0, 0.0);
            }
        }
    }

    #[test]
    fn ragged_register_tiles_all_transposes() {
        // m, n deliberately not multiples of MR (4) / NR (16), k not a multiple
        // of KC, exercising every pack-padding branch; alpha/beta mixed.
        for ta in [Transpose::No, Transpose::Yes] {
            for tb in [Transpose::No, Transpose::Yes] {
                check(ta, tb, 9, 13, 17, 1.0, 0.0);
                check(ta, tb, 15, 23, 29, 0.5, 1.0);
                check(ta, tb, 65, 71, 37, 1.0, 0.0); // ragged MC block
            }
        }
    }

    #[test]
    fn kc_block_boundary_all_transposes() {
        // k crossing the KC=256 cache block forces multi-slab
        // accumulation through the packed path.
        for ta in [Transpose::No, Transpose::Yes] {
            for tb in [Transpose::No, Transpose::Yes] {
                check(ta, tb, 17, 19, 260, 1.0, 0.5);
            }
        }
    }

    #[test]
    fn packed_matches_unpacked_baseline() {
        // The retained seed kernel and the packed kernel agree to f32
        // rounding on a shape crossing every blocking boundary.
        let (m, n, k) = (70, 530, 300);
        for ta in [Transpose::No, Transpose::Yes] {
            for tb in [Transpose::No, Transpose::Yes] {
                let a = fill(m * k, 11);
                let b = fill(k * n, 12);
                let mut c_packed = fill(m * n, 13);
                let mut c_seed = c_packed.clone();
                gemm(ta, tb, m, n, k, 1.0, &a, &b, 0.5, &mut c_packed);
                gemm_unpacked(ta, tb, m, n, k, 1.0, &a, &b, 0.5, &mut c_seed);
                let max_err = c_packed
                    .iter()
                    .zip(&c_seed)
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0f32, f32::max);
                let tol = 1e-4 * (k as f32).sqrt() * 16.0;
                assert!(max_err < tol, "{ta:?}{tb:?}: packed vs seed err {max_err}");
            }
        }
    }

    #[test]
    fn tall_skinny_conv_shapes() {
        // Typical im2col shape: m = out_channels, k = cin*kh*kw, n = oh*ow.
        check(Transpose::No, Transpose::No, 128, 196, 1152, 1.0, 0.0);
        // Weight-gradient shape: m = cout, n = cin*kh*kw, k = oh*ow.
        check(Transpose::No, Transpose::Yes, 128, 1152, 196, 1.0, 1.0);
        // Backward-data shape: (cin*kh*kw) x (oh*ow) = W^T * dY.
        check(Transpose::Yes, Transpose::No, 1152, 196, 128, 1.0, 0.0);
    }

    #[test]
    fn k_zero_scales_c() {
        let mut c = vec![2.0f32; 6];
        gemm(Transpose::No, Transpose::No, 2, 3, 0, 1.0, &[], &[], 0.5, &mut c);
        assert!(c.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn m_zero_is_noop() {
        let mut c: Vec<f32> = vec![];
        gemm(Transpose::No, Transpose::No, 0, 0, 5, 1.0, &[], &[], 0.0, &mut c);
    }

    #[test]
    fn gemm_bias_adds_rowwise() {
        // 2x2 identity times [[1,2],[3,4]] plus bias [10, 20].
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let bias = vec![10.0, 20.0];
        let mut c = vec![0.0; 4];
        gemm_bias(Transpose::No, Transpose::No, 2, 2, 2, &a, &b, &bias, &mut c);
        assert_eq!(c, vec![11.0, 12.0, 23.0, 24.0]);
    }

    #[test]
    fn gemm_bias_cols_adds_columnwise() {
        // 2x2 identity times [[1,2],[3,4]] plus per-column bias [10, 20].
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let bias = vec![10.0, 20.0];
        let mut c = vec![0.0; 4];
        gemm_bias_cols(Transpose::No, Transpose::No, 2, 2, 2, &a, &b, &bias, &mut c);
        assert_eq!(c, vec![11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn fused_bias_matches_separate_sweep_on_large_shapes() {
        // Fused row-bias epilogue vs gemm + manual broadcast, on a shape
        // taking the packed parallel path. Identical accumulation order
        // (bias is the init value either way C starts at bias), so the
        // comparison is exact.
        let (m, n, k) = (64, 300, 288);
        let a = fill(m * k, 21);
        let b = fill(k * n, 22);
        let bias = fill(m, 23);
        let mut fused = vec![0.0f32; m * n];
        gemm_bias(Transpose::No, Transpose::No, m, n, k, &a, &b, &bias, &mut fused);
        let mut two_pass = vec![0.0f32; m * n];
        for (row, &bv) in two_pass.chunks_mut(n).zip(&bias) {
            row.fill(bv);
        }
        gemm(Transpose::No, Transpose::No, m, n, k, 1.0, &a, &b, 1.0, &mut two_pass);
        assert_eq!(fused, two_pass);
    }

    #[test]
    #[should_panic(expected = "A buffer too small")]
    fn rejects_short_a() {
        let mut c = vec![0.0; 4];
        gemm(Transpose::No, Transpose::No, 2, 2, 2, 1.0, &[1.0; 3], &[1.0; 4], 0.0, &mut c);
    }

    /// NaN-aware comparison against the reference: got must be NaN iff
    /// the reference is NaN, match the sign of infinities, and be close
    /// otherwise.
    fn check_nonfinite(ta: Transpose, tb: Transpose, m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) {
        let mut c = vec![0.0f32; m * n];
        let mut c_ref = vec![0.0f32; m * n];
        gemm(ta, tb, m, n, k, 1.0, a, b, 0.0, &mut c);
        gemm_ref(ta, tb, m, n, k, 1.0, a, b, 0.0, &mut c_ref);
        for (idx, (&x, &y)) in c.iter().zip(&c_ref).enumerate() {
            if y.is_nan() {
                assert!(x.is_nan(), "{ta:?}{tb:?} c[{idx}]: expected NaN, got {x}");
            } else if y.is_infinite() {
                assert_eq!(x, y, "{ta:?}{tb:?} c[{idx}]: expected {y}, got {x}");
            } else {
                assert!((x - y).abs() < 1e-3, "{ta:?}{tb:?} c[{idx}]: {x} vs {y}");
            }
        }
    }

    #[test]
    fn zero_times_nan_propagates_all_transposes() {
        // op(A)[0, 1] = 0 and op(B)[1, 2] = NaN: the 0·NaN product must
        // poison C[0, 2]. The old zero-skip in the NN/TN kernels masked
        // exactly this.
        let (m, n, k) = (3, 4, 5);
        for ta in [Transpose::No, Transpose::Yes] {
            for tb in [Transpose::No, Transpose::Yes] {
                let mut a = fill(m * k, 4);
                let mut b = fill(k * n, 5);
                match ta {
                    Transpose::No => a[1] = 0.0,          // op(A)[0, 1]
                    Transpose::Yes => a[m] = 0.0,         // A[1, 0] → op(A)[0, 1]
                }
                match tb {
                    Transpose::No => b[n + 2] = f32::NAN, // B[1, 2] → op(B)[1, 2]
                    Transpose::Yes => b[2 * k + 1] = f32::NAN, // B[2, 1] → op(B)[1, 2]
                }
                let mut c = vec![0.0f32; m * n];
                gemm(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut c);
                assert!(c[2].is_nan(), "{ta:?}{tb:?}: 0·NaN was masked, c[0,2] = {}", c[2]);
                check_nonfinite(ta, tb, m, n, k, &a, &b);
            }
        }
    }

    #[test]
    fn inf_and_nan_mixtures_match_reference() {
        // Scatter zeros, NaN and ±Inf through both operands (including
        // an Inf−Inf cancellation producing NaN) and compare NaN-aware
        // against the reference for every transpose pair.
        let (m, n, k) = (4, 5, 6);
        for ta in [Transpose::No, Transpose::Yes] {
            for tb in [Transpose::No, Transpose::Yes] {
                let mut a = fill(m * k, 6);
                let mut b = fill(k * n, 7);
                a[0] = 0.0;
                a[3] = f32::INFINITY;
                a[7] = f32::NEG_INFINITY;
                b[2] = f32::NAN;
                b[5] = f32::INFINITY;
                b[11] = 0.0;
                check_nonfinite(ta, tb, m, n, k, &a, &b);
            }
        }
    }

    #[test]
    fn nonfinite_survives_blocked_parallel_path() {
        // Large enough to cross the MC row-blocking and the parallel
        // work threshold; one zero-masked NaN deep in the k range.
        let (m, n, k) = (130, 70, 33);
        let mut a = fill(m * k, 8);
        let mut b = fill(k * n, 9);
        a[129 * k + 20] = 0.0; // op(A)[129, 20] (last ragged block)
        b[20 * n + 69] = f32::NAN; // op(B)[20, 69]
        let mut c = vec![0.0f32; m * n];
        gemm(Transpose::No, Transpose::No, m, n, k, 1.0, &a, &b, 0.0, &mut c);
        assert!(c[129 * n + 69].is_nan());
        check_nonfinite(Transpose::No, Transpose::No, m, n, k, &a, &b);
    }

    #[test]
    fn nonfinite_survives_packed_kc_blocks() {
        // NaN in the second KC slab, zero partner in the first — the
        // multi-slab accumulation must not launder either.
        let (m, n, k) = (20, 30, 300);
        for ta in [Transpose::No, Transpose::Yes] {
            for tb in [Transpose::No, Transpose::Yes] {
                let mut a = fill(m * k, 14);
                let mut b = fill(k * n, 15);
                // op(A)[3, 270] = 0, op(B)[270, 7] = NaN.
                match ta {
                    Transpose::No => a[3 * k + 270] = 0.0,
                    Transpose::Yes => a[270 * m + 3] = 0.0,
                }
                match tb {
                    Transpose::No => b[270 * n + 7] = f32::NAN,
                    Transpose::Yes => b[7 * k + 270] = f32::NAN,
                }
                let mut c = vec![0.0f32; m * n];
                gemm(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut c);
                assert!(c[3 * n + 7].is_nan(), "{ta:?}{tb:?}: NaN laundered across KC blocks");
                check_nonfinite(ta, tb, m, n, k, &a, &b);
            }
        }
    }
}
