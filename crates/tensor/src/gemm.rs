//! Blocked, parallel single-precision GEMM.
//!
//! Deep-learning workloads lower convolutions onto GEMM with tall-skinny
//! operands (the paper relies on MKL 2017's DNN primitives for this; we
//! build our own). The implementation uses:
//!
//! * rayon parallelism over blocks of rows of `C` (mirroring the 66-core
//!   OpenMP parallelism of a KNL node),
//! * a cache-blocked `k` loop for the `NN` case,
//! * inner loops written so the compiler auto-vectorises them (contiguous
//!   traversal of the innermost dimension).
//!
//! All four transpose combinations are supported; the `NN` and `NT` cases
//! used by conv forward/backward are the fast paths.

use rayon::prelude::*;

/// Whether an operand is used as stored or transposed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Transpose {
    /// Use the matrix as stored (row-major `rows x cols`).
    No,
    /// Use the transpose of the stored matrix.
    Yes,
}

/// Row block size for parallel partitioning of C.
const MC: usize = 64;
/// K-dimension cache block for the NN kernel.
const KC: usize = 256;
/// Work (m*n*k) below which the sequential kernel is used.
const PAR_WORK: usize = 1 << 16;

/// Computes `C = alpha * op(A) * op(B) + beta * C`.
///
/// `A`, `B`, `C` are dense row-major buffers. Logical dimensions:
/// `op(A)` is `m x k`, `op(B)` is `k x n`, `C` is `m x n`. When
/// `ta == Transpose::Yes`, `A` is stored `k x m`; when
/// `tb == Transpose::Yes`, `B` is stored `n x k`.
///
/// Panics if any buffer is too small for its logical dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    assert!(a.len() >= m * k, "A buffer too small: {} < {}", a.len(), m * k);
    assert!(b.len() >= k * n, "B buffer too small: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "C buffer too small: {} < {}", c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // Degenerate product is the zero matrix; only beta-scaling remains.
        scale_c(&mut c[..m * n], beta);
        return;
    }

    if m * n * k < PAR_WORK {
        block_kernel(ta, tb, 0, m, m, n, k, alpha, a, b, beta, &mut c[..m * n]);
        return;
    }

    c[..m * n]
        .par_chunks_mut(MC * n)
        .enumerate()
        .for_each(|(blk, c_blk)| {
            let i0 = blk * MC;
            let rows = c_blk.len() / n;
            block_kernel(ta, tb, i0, rows, m, n, k, alpha, a, b, beta, c_blk);
        });
}

#[inline]
fn scale_c(c: &mut [f32], beta: f32) {
    if beta == 0.0 {
        c.iter_mut().for_each(|x| *x = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|x| *x *= beta);
    }
}

/// Computes the row block `C[i0..i0+rows, :]` (`c_blk` is that slice).
/// `m` is the full logical row count, needed to index transposed A.
#[allow(clippy::too_many_arguments)]
fn block_kernel(
    ta: Transpose,
    tb: Transpose,
    i0: usize,
    rows: usize,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c_blk: &mut [f32],
) {
    scale_c(c_blk, beta);

    match (ta, tb) {
        (Transpose::No, Transpose::No) => {
            // C[i,j] += alpha * sum_p A[i,p] * B[p,j]; axpy over rows of B.
            for p0 in (0..k).step_by(KC) {
                let pend = (p0 + KC).min(k);
                for i in 0..rows {
                    let arow = &a[(i0 + i) * k..(i0 + i) * k + k];
                    let crow = &mut c_blk[i * n..(i + 1) * n];
                    for p in p0..pend {
                        // No zero-skip here: 0·NaN must stay NaN, matching
                        // gemm_ref. Skipping `av == 0.0` would silently mask
                        // non-finite values in B.
                        let av = alpha * arow[p];
                        let brow = &b[p * n..p * n + n];
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv += av * bv;
                        }
                    }
                }
            }
        }
        (Transpose::No, Transpose::Yes) => {
            // B stored n x k; dot products of contiguous rows.
            for i in 0..rows {
                let arow = &a[(i0 + i) * k..(i0 + i) * k + k];
                let crow = &mut c_blk[i * n..(i + 1) * n];
                for (j, cv) in crow.iter_mut().enumerate() {
                    let brow = &b[j * k..j * k + k];
                    let mut acc = 0.0f32;
                    for (av, bv) in arow.iter().zip(brow) {
                        acc += av * bv;
                    }
                    *cv += alpha * acc;
                }
            }
        }
        (Transpose::Yes, Transpose::No) => {
            // A stored k x m; op(A)[i,p] = A[p, i].
            for p in 0..k {
                let arow = &a[p * m..p * m + m];
                let brow = &b[p * n..p * n + n];
                for i in 0..rows {
                    // As in the NN kernel: no zero-skip, 0·NaN must be NaN.
                    let av = alpha * arow[i0 + i];
                    let crow = &mut c_blk[i * n..(i + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
        }
        (Transpose::Yes, Transpose::Yes) => {
            for i in 0..rows {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += a[p * m + i0 + i] * b[j * k + p];
                    }
                    c_blk[i * n + j] += alpha * acc;
                }
            }
        }
    }
}

/// Convenience wrapper: `C = op(A) * op(B)` with a per-row bias added, i.e.
/// `C[i, :] += bias[i]`. Used by dense layers.
#[allow(clippy::too_many_arguments)]
pub fn gemm_bias(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    c: &mut [f32],
) {
    assert_eq!(bias.len(), m, "bias length must equal m");
    gemm(ta, tb, m, n, k, 1.0, a, b, 0.0, c);
    for i in 0..m {
        let bi = bias[i];
        for cv in &mut c[i * n..(i + 1) * n] {
            *cv += bi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference implementation with f64 accumulation.
    #[allow(clippy::too_many_arguments)]
    fn gemm_ref(
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        beta: f32,
        c: &mut [f32],
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    let av = match ta {
                        Transpose::No => a[i * k + p],
                        Transpose::Yes => a[p * m + i],
                    };
                    let bv = match tb {
                        Transpose::No => b[p * n + j],
                        Transpose::Yes => b[j * k + p],
                    };
                    acc += av as f64 * bv as f64;
                }
                c[i * n + j] = alpha * acc as f32 + beta * c[i * n + j];
            }
        }
    }

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s % 2000) as f32 - 1000.0) / 500.0
            })
            .collect()
    }

    fn check(ta: Transpose, tb: Transpose, m: usize, n: usize, k: usize, alpha: f32, beta: f32) {
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let mut c = fill(m * n, 3);
        let mut c_ref = c.clone();
        gemm(ta, tb, m, n, k, alpha, &a, &b, beta, &mut c);
        gemm_ref(ta, tb, m, n, k, alpha, &a, &b, beta, &mut c_ref);
        let max_err = c
            .iter()
            .zip(&c_ref)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        // f32 accumulation over k terms; tolerance scales with k.
        let tol = 1e-4 * (k as f32).sqrt() * 16.0;
        assert!(
            max_err < tol,
            "gemm {ta:?}{tb:?} m={m} n={n} k={k}: max err {max_err} > {tol}"
        );
    }

    #[test]
    fn small_all_transposes() {
        for ta in [Transpose::No, Transpose::Yes] {
            for tb in [Transpose::No, Transpose::Yes] {
                check(ta, tb, 3, 4, 5, 1.0, 0.0);
                check(ta, tb, 1, 1, 1, 1.0, 0.0);
                check(ta, tb, 5, 1, 7, 1.0, 0.0);
            }
        }
    }

    #[test]
    fn alpha_beta_combinations() {
        check(Transpose::No, Transpose::No, 7, 9, 11, 0.5, 2.0);
        check(Transpose::No, Transpose::Yes, 7, 9, 11, -1.0, 1.0);
        check(Transpose::Yes, Transpose::No, 7, 9, 11, 2.0, 0.5);
        check(Transpose::Yes, Transpose::Yes, 7, 9, 11, 1.5, -0.5);
    }

    #[test]
    fn large_parallel_paths() {
        // Cross the parallel threshold and the MC block boundary, with a
        // ragged final block (130 = 2*64 + 2).
        for ta in [Transpose::No, Transpose::Yes] {
            for tb in [Transpose::No, Transpose::Yes] {
                check(ta, tb, 130, 70, 33, 1.0, 0.0);
            }
        }
    }

    #[test]
    fn tall_skinny_conv_shapes() {
        // Typical im2col shape: m = out_channels, k = cin*kh*kw, n = oh*ow.
        check(Transpose::No, Transpose::No, 128, 196, 1152, 1.0, 0.0);
        // Weight-gradient shape: m = cout, n = cin*kh*kw, k = oh*ow.
        check(Transpose::No, Transpose::Yes, 128, 1152, 196, 1.0, 1.0);
        // Backward-data shape: (cin*kh*kw) x (oh*ow) = W^T * dY.
        check(Transpose::Yes, Transpose::No, 1152, 196, 128, 1.0, 0.0);
    }

    #[test]
    fn k_zero_scales_c() {
        let mut c = vec![2.0f32; 6];
        gemm(Transpose::No, Transpose::No, 2, 3, 0, 1.0, &[], &[], 0.5, &mut c);
        assert!(c.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn m_zero_is_noop() {
        let mut c: Vec<f32> = vec![];
        gemm(Transpose::No, Transpose::No, 0, 0, 5, 1.0, &[], &[], 0.0, &mut c);
    }

    #[test]
    fn gemm_bias_adds_rowwise() {
        // 2x2 identity times [[1,2],[3,4]] plus bias [10, 20].
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let bias = vec![10.0, 20.0];
        let mut c = vec![0.0; 4];
        gemm_bias(Transpose::No, Transpose::No, 2, 2, 2, &a, &b, &bias, &mut c);
        assert_eq!(c, vec![11.0, 12.0, 23.0, 24.0]);
    }

    #[test]
    #[should_panic(expected = "A buffer too small")]
    fn rejects_short_a() {
        let mut c = vec![0.0; 4];
        gemm(Transpose::No, Transpose::No, 2, 2, 2, 1.0, &[1.0; 3], &[1.0; 4], 0.0, &mut c);
    }

    /// NaN-aware comparison against the reference: got must be NaN iff
    /// the reference is NaN, match the sign of infinities, and be close
    /// otherwise.
    fn check_nonfinite(ta: Transpose, tb: Transpose, m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) {
        let mut c = vec![0.0f32; m * n];
        let mut c_ref = vec![0.0f32; m * n];
        gemm(ta, tb, m, n, k, 1.0, a, b, 0.0, &mut c);
        gemm_ref(ta, tb, m, n, k, 1.0, a, b, 0.0, &mut c_ref);
        for (idx, (&x, &y)) in c.iter().zip(&c_ref).enumerate() {
            if y.is_nan() {
                assert!(x.is_nan(), "{ta:?}{tb:?} c[{idx}]: expected NaN, got {x}");
            } else if y.is_infinite() {
                assert_eq!(x, y, "{ta:?}{tb:?} c[{idx}]: expected {y}, got {x}");
            } else {
                assert!((x - y).abs() < 1e-3, "{ta:?}{tb:?} c[{idx}]: {x} vs {y}");
            }
        }
    }

    #[test]
    fn zero_times_nan_propagates_all_transposes() {
        // op(A)[0, 1] = 0 and op(B)[1, 2] = NaN: the 0·NaN product must
        // poison C[0, 2]. The old zero-skip in the NN/TN kernels masked
        // exactly this.
        let (m, n, k) = (3, 4, 5);
        for ta in [Transpose::No, Transpose::Yes] {
            for tb in [Transpose::No, Transpose::Yes] {
                let mut a = fill(m * k, 4);
                let mut b = fill(k * n, 5);
                match ta {
                    Transpose::No => a[1] = 0.0,          // op(A)[0, 1]
                    Transpose::Yes => a[m] = 0.0,         // A[1, 0] → op(A)[0, 1]
                }
                match tb {
                    Transpose::No => b[n + 2] = f32::NAN, // B[1, 2] → op(B)[1, 2]
                    Transpose::Yes => b[2 * k + 1] = f32::NAN, // B[2, 1] → op(B)[1, 2]
                }
                let mut c = vec![0.0f32; m * n];
                gemm(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut c);
                assert!(c[2].is_nan(), "{ta:?}{tb:?}: 0·NaN was masked, c[0,2] = {}", c[2]);
                check_nonfinite(ta, tb, m, n, k, &a, &b);
            }
        }
    }

    #[test]
    fn inf_and_nan_mixtures_match_reference() {
        // Scatter zeros, NaN and ±Inf through both operands (including
        // an Inf−Inf cancellation producing NaN) and compare NaN-aware
        // against the reference for every transpose pair.
        let (m, n, k) = (4, 5, 6);
        for ta in [Transpose::No, Transpose::Yes] {
            for tb in [Transpose::No, Transpose::Yes] {
                let mut a = fill(m * k, 6);
                let mut b = fill(k * n, 7);
                a[0] = 0.0;
                a[3] = f32::INFINITY;
                a[7] = f32::NEG_INFINITY;
                b[2] = f32::NAN;
                b[5] = f32::INFINITY;
                b[11] = 0.0;
                check_nonfinite(ta, tb, m, n, k, &a, &b);
            }
        }
    }

    #[test]
    fn nonfinite_survives_blocked_parallel_path() {
        // Large enough to cross the MC row-blocking and the parallel
        // work threshold; one zero-masked NaN deep in the k range.
        let (m, n, k) = (130, 70, 33);
        let mut a = fill(m * k, 8);
        let mut b = fill(k * n, 9);
        a[129 * k + 20] = 0.0; // op(A)[129, 20] (last ragged block)
        b[20 * n + 69] = f32::NAN; // op(B)[20, 69]
        let mut c = vec![0.0f32; m * n];
        gemm(Transpose::No, Transpose::No, m, n, k, 1.0, &a, &b, 0.0, &mut c);
        assert!(c[129 * n + 69].is_nan());
        check_nonfinite(Transpose::No, Transpose::No, m, n, k, &a, &b);
    }
}
