//! im2col / col2im lowering for convolution and deconvolution.
//!
//! A convolution over an NCHW image is lowered to a GEMM by unrolling every
//! receptive field into a column: the `(C*KH*KW) x (OH*OW)` "col" matrix,
//! multiplied by the `(COUT) x (C*KH*KW)` filter matrix. `col2im` is the
//! adjoint scatter-add used by backward-data — and, per the paper's trick
//! (Sec. III-C), by the *forward* pass of deconvolution layers.

use crate::shape::Shape4;

/// Geometry of a 2-D convolution: input plane, kernel, stride and padding.
///
/// The same geometry object describes the matching deconvolution (whose
/// forward pass is this convolution's backward-data pass).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels.
    pub cin: usize,
    /// Output channels.
    pub cout: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Vertical and horizontal stride.
    pub stride: usize,
    /// Symmetric zero padding on each border.
    pub pad: usize,
}

impl ConvGeometry {
    /// Creates a square-kernel geometry.
    pub fn new(cin: usize, cout: usize, h: usize, w: usize, k: usize, stride: usize, pad: usize) -> Self {
        assert!(k > 0 && stride > 0, "kernel and stride must be positive");
        Self { cin, cout, h, w, kh: k, kw: k, stride, pad }
    }

    /// Output height: `(h + 2*pad - kh) / stride + 1`.
    #[inline]
    pub fn out_h(&self) -> usize {
        assert!(
            self.h + 2 * self.pad >= self.kh,
            "kernel {}x{} larger than padded input {}x{}",
            self.kh,
            self.kw,
            self.h + 2 * self.pad,
            self.w + 2 * self.pad
        );
        (self.h + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output width.
    #[inline]
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.kw) / self.stride + 1
    }

    /// Shape of a single input item `(1, cin, h, w)`.
    pub fn in_shape(&self, n: usize) -> Shape4 {
        Shape4::new(n, self.cin, self.h, self.w)
    }

    /// Shape of a single output item `(1, cout, out_h, out_w)`.
    pub fn out_shape(&self, n: usize) -> Shape4 {
        Shape4::new(n, self.cout, self.out_h(), self.out_w())
    }

    /// Rows of the col matrix: `cin * kh * kw`.
    #[inline]
    pub fn col_rows(&self) -> usize {
        self.cin * self.kh * self.kw
    }

    /// Columns of the col matrix: `out_h * out_w`.
    #[inline]
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Number of filter weights: `cout * cin * kh * kw`.
    #[inline]
    pub fn weight_len(&self) -> usize {
        self.cout * self.col_rows()
    }

    /// Multiply-accumulate count of the convolution forward pass for a
    /// single image. FLOPs are conventionally `2 *` this (mul + add), which
    /// is what the paper's SDE-based counting reports for these kernels.
    #[inline]
    pub fn macs_per_image(&self) -> u64 {
        (self.cout as u64) * (self.col_rows() as u64) * (self.col_cols() as u64)
    }
}

/// Unrolls one image (`cin * h * w`, NCHW item) into the col matrix
/// (`col_rows() x col_cols()`, row-major). `col` must be exactly that size.
/// Out-of-bounds (padding) taps are written as zero.
pub fn im2col(geo: &ConvGeometry, image: &[f32], col: &mut [f32]) {
    assert_eq!(image.len(), geo.cin * geo.h * geo.w, "image length mismatch");
    assert_eq!(col.len(), geo.col_rows() * geo.col_cols(), "col length mismatch");
    let (oh, ow) = (geo.out_h(), geo.out_w());
    let (h, w) = (geo.h as isize, geo.w as isize);
    let pad = geo.pad as isize;
    let stride = geo.stride as isize;

    let mut row = 0usize;
    for c in 0..geo.cin {
        let plane = &image[c * geo.h * geo.w..(c + 1) * geo.h * geo.w];
        for ky in 0..geo.kh as isize {
            for kx in 0..geo.kw as isize {
                let out_row = &mut col[row * oh * ow..(row + 1) * oh * ow];
                let mut idx = 0usize;
                for oy in 0..oh as isize {
                    let iy = oy * stride + ky - pad;
                    if iy < 0 || iy >= h {
                        out_row[idx..idx + ow].iter_mut().for_each(|v| *v = 0.0);
                        idx += ow;
                        continue;
                    }
                    let base = (iy as usize) * geo.w;
                    for ox in 0..ow as isize {
                        let ix = ox * stride + kx - pad;
                        out_row[idx] = if ix < 0 || ix >= w {
                            0.0
                        } else {
                            plane[base + ix as usize]
                        };
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatter-adds a col matrix back into an image
/// buffer (`cin * h * w`). The image buffer is *accumulated into*, not
/// overwritten — callers zero it first when appropriate.
pub fn col2im(geo: &ConvGeometry, col: &[f32], image: &mut [f32]) {
    assert_eq!(image.len(), geo.cin * geo.h * geo.w, "image length mismatch");
    assert_eq!(col.len(), geo.col_rows() * geo.col_cols(), "col length mismatch");
    let (oh, ow) = (geo.out_h(), geo.out_w());
    let (h, w) = (geo.h as isize, geo.w as isize);
    let pad = geo.pad as isize;
    let stride = geo.stride as isize;

    let mut row = 0usize;
    for c in 0..geo.cin {
        let plane = &mut image[c * geo.h * geo.w..(c + 1) * geo.h * geo.w];
        for ky in 0..geo.kh as isize {
            for kx in 0..geo.kw as isize {
                let in_row = &col[row * oh * ow..(row + 1) * oh * ow];
                let mut idx = 0usize;
                for oy in 0..oh as isize {
                    let iy = oy * stride + ky - pad;
                    if iy < 0 || iy >= h {
                        idx += ow;
                        continue;
                    }
                    let base = (iy as usize) * geo.w;
                    for ox in 0..ow as isize {
                        let ix = ox * stride + kx - pad;
                        if ix >= 0 && ix < w {
                            plane[base + ix as usize] += in_row[idx];
                        }
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dims() {
        let g = ConvGeometry::new(3, 128, 224, 224, 3, 1, 1);
        assert_eq!((g.out_h(), g.out_w()), (224, 224));
        let g2 = ConvGeometry::new(16, 64, 768, 768, 5, 2, 2);
        assert_eq!((g2.out_h(), g2.out_w()), (384, 384));
        let g3 = ConvGeometry::new(1, 1, 5, 5, 3, 1, 0);
        assert_eq!((g3.out_h(), g3.out_w()), (3, 3));
    }

    #[test]
    fn macs_match_formula() {
        let g = ConvGeometry::new(3, 128, 224, 224, 3, 1, 1);
        assert_eq!(g.macs_per_image(), 128 * 3 * 9 * 224 * 224);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: col matrix equals the image.
        let g = ConvGeometry::new(2, 1, 3, 3, 1, 1, 0);
        let image: Vec<f32> = (0..18).map(|i| i as f32).collect();
        let mut col = vec![0.0; g.col_rows() * g.col_cols()];
        im2col(&g, &image, &mut col);
        assert_eq!(col, image);
    }

    #[test]
    fn im2col_3x3_no_pad() {
        // Single channel 3x3 image, 3x3 kernel, output 1x1: the col matrix
        // is the image flattened.
        let g = ConvGeometry::new(1, 1, 3, 3, 3, 1, 0);
        let image: Vec<f32> = (1..=9).map(|i| i as f32).collect();
        let mut col = vec![0.0; 9];
        im2col(&g, &image, &mut col);
        assert_eq!(col, image);
    }

    #[test]
    fn im2col_padding_zeroes_border() {
        // 1x1 image, 3x3 kernel, pad 1: only the centre tap is non-zero.
        let g = ConvGeometry::new(1, 1, 1, 1, 3, 1, 1);
        let image = vec![5.0];
        let mut col = vec![-1.0; 9];
        im2col(&g, &image, &mut col);
        let expect = vec![0.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 0.0];
        assert_eq!(col, expect);
    }

    #[test]
    fn im2col_stride2() {
        let g = ConvGeometry::new(1, 1, 4, 4, 2, 2, 0);
        let image: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let mut col = vec![0.0; g.col_rows() * g.col_cols()];
        im2col(&g, &image, &mut col);
        // Rows = 4 kernel taps, cols = 4 output positions.
        // Tap (0,0) sees image[0], image[2], image[8], image[10].
        assert_eq!(&col[0..4], &[0.0, 2.0, 8.0, 10.0]);
        // Tap (1,1) sees image[5], image[7], image[13], image[15].
        assert_eq!(&col[12..16], &[5.0, 7.0, 13.0, 15.0]);
    }

    /// col2im(im2col(x)) multiplies each pixel by the number of receptive
    /// fields it participates in; for a 1x1 kernel that count is 1.
    #[test]
    fn col2im_is_adjoint_of_im2col_1x1() {
        let g = ConvGeometry::new(2, 1, 4, 4, 1, 1, 0);
        let image: Vec<f32> = (0..32).map(|i| i as f32 * 0.5).collect();
        let mut col = vec![0.0; g.col_rows() * g.col_cols()];
        im2col(&g, &image, &mut col);
        let mut back = vec![0.0; image.len()];
        col2im(&g, &col, &mut back);
        assert_eq!(back, image);
    }

    /// Adjoint property: <im2col(x), y> == <x, col2im(y)> for all x, y.
    #[test]
    fn adjoint_inner_product_identity() {
        let g = ConvGeometry::new(2, 3, 5, 6, 3, 2, 1);
        let ilen = g.cin * g.h * g.w;
        let clen = g.col_rows() * g.col_cols();
        let x: Vec<f32> = (0..ilen).map(|i| ((i * 37 + 11) % 17) as f32 - 8.0).collect();
        let y: Vec<f32> = (0..clen).map(|i| ((i * 53 + 3) % 13) as f32 - 6.0).collect();

        let mut cx = vec![0.0; clen];
        im2col(&g, &x, &mut cx);
        let lhs: f64 = cx.iter().zip(&y).map(|(a, b)| (*a as f64) * (*b as f64)).sum();

        let mut xy = vec![0.0; ilen];
        col2im(&g, &y, &mut xy);
        let rhs: f64 = x.iter().zip(&xy).map(|(a, b)| (*a as f64) * (*b as f64)).sum();

        assert!((lhs - rhs).abs() < 1e-6, "adjoint violated: {lhs} vs {rhs}");
    }

    #[test]
    #[should_panic(expected = "image length mismatch")]
    fn im2col_rejects_bad_image() {
        let g = ConvGeometry::new(1, 1, 3, 3, 3, 1, 0);
        let mut col = vec![0.0; 9];
        im2col(&g, &[0.0; 8], &mut col);
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn oversized_kernel_panics() {
        let g = ConvGeometry::new(1, 1, 2, 2, 5, 1, 0);
        let _ = g.out_h();
    }
}
