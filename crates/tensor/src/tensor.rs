//! The contiguous NCHW `f32` tensor type.

use crate::shape::Shape4;
use crate::PAR_THRESHOLD;
use rayon::prelude::*;
use std::fmt;

/// A dense, contiguous, row-major NCHW tensor of `f32` values.
///
/// This is the single data currency of the scidl stack: layer activations,
/// weights, gradients and communication buffers are all `Tensor`s (or raw
/// `&[f32]` views of them). The type is intentionally simple — no strides,
/// no views, no reference counting — because the workloads in the paper are
/// all dense and contiguous, and simplicity keeps the hot kernels easy for
/// the compiler to vectorise.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape4,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(shape: Shape4) -> Self {
        Self { shape, data: vec![0.0; shape.len()] }
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(shape: Shape4, value: f32) -> Self {
        Self { shape, data: vec![value; shape.len()] }
    }

    /// Wraps an existing buffer. Panics if the buffer length does not match
    /// the shape.
    pub fn from_vec(shape: Shape4, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer length {} does not match shape {shape:?}",
            data.len()
        );
        Self { shape, data }
    }

    /// A flat 1-D tensor from a vector.
    pub fn from_flat(data: Vec<f32>) -> Self {
        let shape = Shape4::flat(data.len());
        Self { shape, data }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor by 4-D coordinates (bounds-checked).
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.offset(n, c, h, w)]
    }

    /// Mutable element accessor by 4-D coordinates (bounds-checked).
    #[inline]
    pub fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let off = self.shape.offset(n, c, h, w);
        &mut self.data[off]
    }

    /// Reinterprets the tensor with a new shape of identical length.
    pub fn reshape(&mut self, shape: Shape4) {
        assert_eq!(shape.len(), self.data.len(), "reshape must preserve length");
        self.shape = shape;
    }

    /// Returns the sub-tensor for batch items `[start, start+count)` as a
    /// fresh tensor (copy). Used for carving per-node minibatch chunks.
    pub fn batch_slice(&self, start: usize, count: usize) -> Tensor {
        assert!(start + count <= self.shape.n, "batch slice out of range");
        let item = self.shape.item_len();
        let data = self.data[start * item..(start + count) * item].to_vec();
        Tensor::from_vec(self.shape.with_n(count), data)
    }

    /// Borrowed view of one batch item's data.
    #[inline]
    pub fn item(&self, n: usize) -> &[f32] {
        let item = self.shape.item_len();
        &self.data[n * item..(n + 1) * item]
    }

    /// Mutable view of one batch item's data.
    #[inline]
    pub fn item_mut(&mut self, n: usize) -> &mut [f32] {
        let item = self.shape.item_len();
        &mut self.data[n * item..(n + 1) * item]
    }

    /// Sets every element to zero, reusing the allocation.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// `self += other`, elementwise. Parallel for large tensors.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        binary_inplace(&mut self.data, &other.data, |a, b| a + b);
    }

    /// `self -= other`, elementwise.
    pub fn sub_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "sub_assign shape mismatch");
        binary_inplace(&mut self.data, &other.data, |a, b| a - b);
    }

    /// `self *= scalar`.
    pub fn scale(&mut self, s: f32) {
        unary_inplace(&mut self.data, |a| a * s);
    }

    /// `self += alpha * other` (BLAS axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        binary_inplace(&mut self.data, &other.data, move |a, b| a + alpha * b);
    }

    /// Sum of all elements (pairwise within chunks for accuracy, parallel
    /// across chunks for speed).
    pub fn sum(&self) -> f32 {
        if self.data.len() >= PAR_THRESHOLD {
            self.data
                .par_chunks(4096)
                .map(|c| c.iter().sum::<f32>() as f64)
                .sum::<f64>() as f32
        } else {
            self.data.iter().map(|&x| x as f64).sum::<f64>() as f32
        }
    }

    /// Mean of all elements; 0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element; `f32::NEG_INFINITY` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element; `f32::INFINITY` for an empty tensor.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Squared L2 norm, accumulated in f64 for stability.
    pub fn norm_sq(&self) -> f64 {
        if self.data.len() >= PAR_THRESHOLD {
            self.data
                .par_chunks(4096)
                .map(|c| c.iter().map(|&x| x as f64 * x as f64).sum::<f64>())
                .sum()
        } else {
            self.data.iter().map(|&x| x as f64 * x as f64).sum()
        }
    }

    /// L2 norm.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Maximum absolute difference against another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// True when every element is finite (no NaN/Inf). Cheap sanity check
    /// used by the training engines to detect divergence.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync + Send) {
        unary_inplace(&mut self.data, f);
    }
}

/// In-place unary elementwise op, parallel above [`PAR_THRESHOLD`].
fn unary_inplace(data: &mut [f32], f: impl Fn(f32) -> f32 + Sync + Send) {
    if data.len() >= PAR_THRESHOLD {
        data.par_iter_mut().for_each(|x| *x = f(*x));
    } else {
        data.iter_mut().for_each(|x| *x = f(*x));
    }
}

/// In-place binary elementwise op, parallel above [`PAR_THRESHOLD`].
fn binary_inplace(dst: &mut [f32], src: &[f32], f: impl Fn(f32, f32) -> f32 + Sync + Send) {
    debug_assert_eq!(dst.len(), src.len());
    if dst.len() >= PAR_THRESHOLD {
        dst.par_iter_mut()
            .zip(src.par_iter())
            .for_each(|(a, &b)| *a = f(*a, b));
    } else {
        dst.iter_mut().zip(src.iter()).for_each(|(a, &b)| *a = f(*a, b));
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}(", self.shape)?;
        let preview: Vec<String> = self.data.iter().take(6).map(|x| format!("{x:.4}")).collect();
        write!(f, "{}", preview.join(", "))?;
        if self.data.len() > 6 {
            write!(f, ", …")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[f32]) -> Tensor {
        Tensor::from_flat(vals.to_vec())
    }

    #[test]
    fn zeros_and_filled() {
        let z = Tensor::zeros(Shape4::new(2, 2, 2, 2));
        assert_eq!(z.len(), 16);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::filled(Shape4::flat(3), 7.5);
        assert_eq!(f.data(), &[7.5, 7.5, 7.5]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_len() {
        let _ = Tensor::from_vec(Shape4::flat(4), vec![1.0; 3]);
    }

    #[test]
    fn elementwise_ops() {
        let mut a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[10.0, 20.0, 30.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[11.0, 22.0, 33.0]);
        a.sub_assign(&b);
        assert_eq!(a.data(), &[1.0, 2.0, 3.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[2.0, 4.0, 6.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[7.0, 14.0, 21.0]);
    }

    #[test]
    fn reductions() {
        let a = t(&[1.0, -2.0, 3.0, -4.0]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -4.0);
        assert!((a.norm_sq() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn large_parallel_sum_matches_sequential() {
        let n = PAR_THRESHOLD * 2 + 17;
        let vals: Vec<f32> = (0..n).map(|i| (i % 7) as f32 * 0.25).collect();
        let seq: f64 = vals.iter().map(|&x| x as f64).sum();
        let a = Tensor::from_flat(vals);
        assert!((a.sum() as f64 - seq).abs() < 1e-3 * seq.abs().max(1.0));
    }

    #[test]
    fn batch_slice_and_item() {
        let shape = Shape4::new(3, 1, 2, 2);
        let vals: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let a = Tensor::from_vec(shape, vals);
        let s = a.batch_slice(1, 2);
        assert_eq!(s.shape(), Shape4::new(2, 1, 2, 2));
        assert_eq!(s.data()[0], 4.0);
        assert_eq!(a.item(2), &[8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn at_and_reshape() {
        let mut a = Tensor::zeros(Shape4::new(1, 2, 2, 2));
        *a.at_mut(0, 1, 1, 0) = 9.0;
        assert_eq!(a.at(0, 1, 1, 0), 9.0);
        a.reshape(Shape4::flat(8));
        assert_eq!(a.at(0, 6, 0, 0), 9.0);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut a = t(&[1.0, 2.0]);
        assert!(a.all_finite());
        a.data_mut()[1] = f32::NAN;
        assert!(!a.all_finite());
    }

    #[test]
    fn max_abs_diff_works() {
        let a = t(&[1.0, 5.0, -3.0]);
        let b = t(&[1.5, 4.0, -3.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    fn map_inplace_applies() {
        let mut a = t(&[-1.0, 2.0, -3.0]);
        a.map_inplace(|x| x.max(0.0));
        assert_eq!(a.data(), &[0.0, 2.0, 0.0]);
    }
}
