//! Shared summary statistics: percentiles and sample summaries.
//!
//! One implementation of quantile math for the whole workspace — the
//! wall-clock profiler (`scidl-nn::profile`), the convergence experiments
//! and the serving latency accounting (`scidl-core::metrics`,
//! `scidl-serve`) all report percentiles, and they must agree on the
//! definition. We use linear interpolation between closest ranks (the
//! "type 7" estimator of Hyndman & Fan, numpy's default), which is exact
//! at q = 0/1 and at sample points.

/// Quantile `q ∈ [0, 1]` of an **ascending-sorted** slice by linear
/// interpolation between closest ranks. Panics on an empty slice or a
/// `q` outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile_sorted requires ascending input"
    );
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Quantile of an unsorted sample (sorts a copy). Panics on empty input.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    percentile_sorted(&sorted, q)
}

/// Median of an unsorted sample.
pub fn median(samples: &[f64]) -> f64 {
    percentile(samples, 0.5)
}

/// Five-number-plus summary of a sample: count, mean, min/max and the
/// latency-reporting percentiles p50/p95/p99.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarises a sample (sorts a copy). Panics on empty input.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Self {
            count: sorted.len(),
            mean,
            min: sorted[0],
            max: *sorted.last().unwrap(),
            p50: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
            p99: percentile_sorted(&sorted, 0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_endpoints_and_median() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 1.0), 5.0);
        assert_eq!(percentile(&s, 0.5), 3.0);
        // Interpolated: pos = 0.95*4 = 3.8 → 4*0.2 + 5*0.8.
        assert!((percentile(&s, 0.95) - 4.8).abs() < 1e-12);
    }

    #[test]
    fn percentile_is_order_independent() {
        let shuffled = [3.0, 1.0, 5.0, 2.0, 4.0];
        assert_eq!(percentile(&shuffled, 0.5), 3.0);
        assert_eq!(median(&shuffled), 3.0);
    }

    #[test]
    fn even_sample_median_interpolates() {
        assert!((median(&[1.0, 2.0, 3.0, 4.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_summary_is_degenerate() {
        let s = Summary::from_samples(&[7.0]);
        assert_eq!((s.count, s.mean, s.min, s.max, s.p50, s.p95, s.p99), (1, 7.0, 7.0, 7.0, 7.0, 7.0, 7.0));
    }

    #[test]
    fn summary_orders_percentiles() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s = Summary::from_samples(&samples);
        assert_eq!(s.count, 1000);
        assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!((s.mean - 499.5).abs() < 1e-9);
        assert!((s.p99 - 989.01).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        percentile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_quantile_panics() {
        percentile(&[1.0], 1.5);
    }
}
