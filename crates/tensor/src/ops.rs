//! Free-standing numerical kernels shared across the stack: stable softmax,
//! argmax, one-hot encoding and slice-level vector helpers used by the
//! solvers and communication buffers.

use rayon::prelude::*;

/// Numerically stable softmax over a contiguous row, in place.
pub fn softmax_inplace(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - m).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// Index of the maximum element; ties resolve to the first. Panics on an
/// empty slice.
pub fn argmax(row: &[f32]) -> usize {
    assert!(!row.is_empty(), "argmax of empty slice");
    let mut best = 0;
    let mut bv = row[0];
    for (i, &v) in row.iter().enumerate().skip(1) {
        if v > bv {
            bv = v;
            best = i;
        }
    }
    best
}

/// Writes a one-hot row of length `classes` for label `label` into `out`.
pub fn one_hot(label: usize, classes: usize, out: &mut [f32]) {
    assert!(label < classes, "label {label} out of range {classes}");
    assert_eq!(out.len(), classes);
    out.iter_mut().for_each(|v| *v = 0.0);
    out[label] = 1.0;
}

/// `dst += src` over raw slices (gradient accumulation in comm buffers).
pub fn slice_add(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "slice_add length mismatch");
    if dst.len() >= crate::PAR_THRESHOLD {
        dst.par_iter_mut().zip(src.par_iter()).for_each(|(a, &b)| *a += b);
    } else {
        dst.iter_mut().zip(src.iter()).for_each(|(a, &b)| *a += b);
    }
}

/// `dst *= s` over a raw slice.
pub fn slice_scale(dst: &mut [f32], s: f32) {
    if dst.len() >= crate::PAR_THRESHOLD {
        dst.par_iter_mut().for_each(|a| *a *= s);
    } else {
        dst.iter_mut().for_each(|a| *a *= s);
    }
}

/// Dot product with f64 accumulation.
pub fn slice_dot(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "slice_dot length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
}

/// Symmetric linear 8-bit quantisation of a buffer: returns `(values,
/// scale)` with `f32 ≈ i8 as f32 * scale`. The shared wire codec used by
/// both the low-precision training utilities (`scidl-nn::quant`) and the
/// compressed all-reduce (`scidl-comm::compress`).
///
/// Non-finite input is *surfaced*, not laundered: a NaN would otherwise
/// saturating-cast to 0 and silently vanish from the compressed
/// all-reduce. When any element is NaN/±Inf the returned scale is NaN
/// (so `dequantize_i8` poisons the whole buffer instead of zeroing it)
/// and the numeric-health sentinel is notified.
pub fn quantize_i8(data: &[f32]) -> (Vec<i8>, f32) {
    if let Some((first, count, value)) = scidl_trace::scan_nonfinite(data) {
        scidl_trace::nonfinite_hook("quantize_i8", first, count, value);
        return (vec![0; data.len()], f32::NAN);
    }
    let max = data.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    let scale = if max > 0.0 { max / 127.0 } else { 1.0 };
    let values = data
        .iter()
        .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    (values, scale)
}

/// Inverse of [`quantize_i8`], writing into `out` (must match length).
pub fn dequantize_i8(values: &[i8], scale: f32, out: &mut [f32]) {
    assert_eq!(values.len(), out.len(), "dequantize length mismatch");
    for (o, &q) in out.iter_mut().zip(values) {
        *o = q as f32 * scale;
    }
}

/// Clips every element of `g` so the slice's L2 norm is at most
/// `max_norm`; returns the pre-clip norm. A no-op when already within
/// bounds or when `max_norm` is non-positive.
///
/// A poisoned gradient yields a non-finite norm, which `norm > max_norm`
/// can never clip (`NaN > x` is false) — instead of silently returning
/// it, the non-finite norm is reported to the numeric-health sentinel
/// and `g` is left untouched for inspection. Callers should treat a
/// non-finite return as "this gradient is corrupt", not "large".
pub fn clip_norm(g: &mut [f32], max_norm: f64) -> f64 {
    let norm: f64 = g.iter().map(|&x| x as f64 * x as f64).sum::<f64>().sqrt();
    if !norm.is_finite() {
        let (first, count, value) =
            scidl_trace::scan_nonfinite(g).unwrap_or((0, 0, norm as f32));
        scidl_trace::nonfinite_hook("clip_norm", first, count, value);
        return norm;
    }
    if max_norm > 0.0 && norm > max_norm {
        let s = (max_norm / norm) as f32;
        slice_scale(g, s);
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let mut r = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut r);
        let s: f32 = r.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(r[2] > r[1] && r[1] > r[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = vec![1000.0, 1001.0];
        softmax_inplace(&mut a);
        let mut b = vec![0.0, 1.0];
        softmax_inplace(&mut b);
        assert!((a[0] - b[0]).abs() < 1e-6);
        assert!(a.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn softmax_empty_is_noop() {
        let mut r: Vec<f32> = vec![];
        softmax_inplace(&mut r);
    }

    #[test]
    fn argmax_ties_to_first() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn one_hot_sets_single_bit() {
        let mut out = vec![9.0; 4];
        one_hot(2, 4, &mut out);
        assert_eq!(out, vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_rejects_bad_label() {
        let mut out = vec![0.0; 2];
        one_hot(2, 2, &mut out);
    }

    #[test]
    fn slice_ops() {
        let mut a = vec![1.0, 2.0];
        slice_add(&mut a, &[10.0, 20.0]);
        assert_eq!(a, vec![11.0, 22.0]);
        slice_scale(&mut a, 0.5);
        assert_eq!(a, vec![5.5, 11.0]);
        assert_eq!(slice_dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn clip_norm_caps_large_gradients() {
        let mut g = vec![3.0, 4.0]; // norm 5
        let pre = clip_norm(&mut g, 1.0);
        assert!((pre - 5.0).abs() < 1e-9);
        let post: f64 = g.iter().map(|&x| x as f64 * x as f64).sum::<f64>().sqrt();
        assert!((post - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clip_norm_noop_when_small() {
        let mut g = vec![0.3, 0.4];
        clip_norm(&mut g, 1.0);
        assert_eq!(g, vec![0.3, 0.4]);
    }

    #[test]
    fn quantize_i8_roundtrip_error_bounded() {
        let data: Vec<f32> = (-100..100).map(|i| i as f32 * 0.017).collect();
        let (q, scale) = quantize_i8(&data);
        let mut back = vec![0.0; data.len()];
        dequantize_i8(&q, scale, &mut back);
        let max = data.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() <= max / 127.0 * 0.51, "{a} vs {b}");
        }
    }

    #[test]
    fn quantize_i8_preserves_extremes() {
        let (q, scale) = quantize_i8(&[-3.0, 0.0, 3.0]);
        assert_eq!(q, vec![-127, 0, 127]);
        let mut back = vec![0.0; 3];
        dequantize_i8(&q, scale, &mut back);
        assert!((back[2] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn quantize_i8_zero_buffer_is_stable() {
        let (q, scale) = quantize_i8(&[0.0; 5]);
        assert!(q.iter().all(|&v| v == 0));
        assert_eq!(scale, 1.0);
    }

    #[test]
    fn quantize_i8_surfaces_nan_instead_of_laundering() {
        // A NaN used to saturating-cast to 0 and vanish from the wire;
        // now the scale itself is poisoned so dequantize propagates it.
        let (q, scale) = quantize_i8(&[1.0, f32::NAN, 2.0]);
        assert!(scale.is_nan(), "scale must signal corruption");
        let mut back = vec![0.0; 3];
        dequantize_i8(&q, scale, &mut back);
        assert!(
            back.iter().all(|x| x.is_nan()),
            "corruption must propagate through the codec, got {back:?}"
        );
    }

    #[test]
    fn quantize_i8_surfaces_inf() {
        let (_, scale) = quantize_i8(&[f32::INFINITY, 1.0]);
        assert!(scale.is_nan());
        let (_, scale) = quantize_i8(&[f32::NEG_INFINITY]);
        assert!(scale.is_nan());
    }

    #[test]
    fn clip_norm_reports_poisoned_gradient() {
        // NaN norm: `norm > max_norm` is false for NaN, so the old code
        // silently skipped clipping and returned NaN with no signal.
        let mut g = vec![3.0, f32::NAN, 4.0];
        let norm = clip_norm(&mut g, 1.0);
        assert!(norm.is_nan(), "poisoned gradient must report a NaN norm");
        assert_eq!(g[0], 3.0, "poisoned gradient left untouched for inspection");
        assert!(g[1].is_nan());
        assert_eq!(g[2], 4.0);
    }

    #[test]
    fn clip_norm_inf_norm_not_scaled() {
        let mut g = vec![f32::INFINITY, 1.0];
        let norm = clip_norm(&mut g, 1.0);
        assert!(norm.is_infinite() && norm > 0.0);
        assert_eq!(g[1], 1.0);
    }
}
