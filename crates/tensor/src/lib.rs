#![warn(missing_docs)]
//! # scidl-tensor
//!
//! Minimal, fast NCHW tensor library underpinning the scidl deep-learning
//! stack. It provides exactly the dense-linear-algebra substrate that the
//! paper's IntelCaffe + MKL 2017 combination provided on Xeon Phi:
//!
//! * a contiguous, `f32`, NCHW [`Tensor`] type with shape/stride machinery,
//! * rayon-parallel elementwise and reduction kernels,
//! * a packed, register-tiled, cache-blocked parallel SGEMM ([`gemm`])
//!   tuned for the tall-skinny shapes produced by `im2col` convolution
//!   lowering, with fused bias epilogues ([`gemm_bias`],
//!   [`gemm_bias_cols`]) and the pre-packing kernel retained as a
//!   baseline ([`gemm_unpacked`]),
//! * a thread-local scratch-buffer pool ([`Workspace`]) that keeps the
//!   heap allocator off the steady-state training path,
//! * [`im2col`]/[`col2im`] lowering used by the convolution and
//!   deconvolution layers in `scidl-nn`.
//!
//! The crate is deliberately free of `unsafe` except for a few
//! bounds-check-free inner loops in the GEMM micro-kernel; every such use
//! is covered by unit and property tests against a naive reference.
//!
//! ## Example
//!
//! ```
//! use scidl_tensor::{Tensor, Shape4};
//!
//! let a = Tensor::filled(Shape4::new(1, 3, 4, 4), 2.0);
//! let b = Tensor::filled(Shape4::new(1, 3, 4, 4), 3.0);
//! let mut c = a.clone();
//! c.add_assign(&b);
//! assert_eq!(c.data()[0], 5.0);
//! ```

pub mod fft;
pub mod gemm;
pub mod im2col;
pub mod ops;
pub mod rng;
pub mod shape;
pub mod stats;
pub mod tensor;
pub mod workspace;

pub use gemm::{gemm, gemm_bias, gemm_bias_cols, gemm_unpacked, Transpose};
pub use workspace::{Workspace, WsBuf};
pub use im2col::{col2im, im2col, ConvGeometry};
pub use rng::TensorRng;
pub use shape::Shape4;
pub use tensor::Tensor;

/// Threshold (in elements) above which elementwise kernels switch from a
/// plain sequential loop to a rayon-parallel one. Small tensors are not
/// worth the fork-join overhead.
pub(crate) const PAR_THRESHOLD: usize = 1 << 14;
