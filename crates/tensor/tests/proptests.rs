//! Property-based tests for the tensor substrate: GEMM against a naive
//! reference, im2col/col2im adjointness, and algebraic identities of the
//! elementwise kernels.

use proptest::prelude::*;
use scidl_tensor::{
    col2im, gemm, gemm_bias, gemm_bias_cols, gemm_unpacked, im2col, ConvGeometry, Shape4, Tensor,
    Transpose,
};

fn small_f32() -> impl Strategy<Value = f32> {
    (-100i32..100).prop_map(|v| v as f32 / 8.0)
}

fn vec_of(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(small_f32(), len)
}

#[allow(clippy::too_many_arguments)]
fn gemm_ref(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                let av = match ta {
                    Transpose::No => a[i * k + p],
                    Transpose::Yes => a[p * m + i],
                };
                let bv = match tb {
                    Transpose::No => b[p * n + j],
                    Transpose::Yes => b[j * k + p],
                };
                acc += av as f64 * bv as f64;
            }
            c[i * n + j] = acc as f32;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_matches_reference(
        m in 1usize..20,
        n in 1usize..20,
        k in 1usize..20,
        seed in any::<u64>(),
        ta_flag in any::<bool>(),
        tb_flag in any::<bool>(),
    ) {
        let ta = if ta_flag { Transpose::Yes } else { Transpose::No };
        let tb = if tb_flag { Transpose::Yes } else { Transpose::No };
        let mut rng = scidl_tensor::TensorRng::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_range(-2.0, 2.0) as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform_range(-2.0, 2.0) as f32).collect();
        let mut c = vec![0.0f32; m * n];
        let mut c_ref = vec![0.0f32; m * n];
        gemm(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut c);
        gemm_ref(ta, tb, m, n, k, &a, &b, &mut c_ref);
        for (x, y) in c.iter().zip(&c_ref) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn gemm_nonfinite_matches_reference(
        m in 1usize..12,
        n in 1usize..12,
        k in 1usize..10,
        seed in any::<u64>(),
        ta_flag in any::<bool>(),
        tb_flag in any::<bool>(),
    ) {
        // IEEE-754 edge-case palette: zeros must not mask NaN/Inf in the
        // other operand (0·NaN = NaN, 0·Inf = NaN), infinities must keep
        // their sign, and Inf − Inf must cancel to NaN — exactly as the
        // f64 reference computes. Finite values stay small so f32 vs f64
        // accumulation cannot overflow apart.
        let ta = if ta_flag { Transpose::Yes } else { Transpose::No };
        let tb = if tb_flag { Transpose::Yes } else { Transpose::No };
        let palette = [
            0.0f32, -0.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY,
            1.0, -1.0, 0.5, -2.0, 1.5,
        ];
        let mut s = seed | 1;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            palette[(s % palette.len() as u64) as usize]
        };
        let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
        let mut c = vec![0.0f32; m * n];
        let mut c_ref = vec![0.0f32; m * n];
        gemm(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut c);
        gemm_ref(ta, tb, m, n, k, &a, &b, &mut c_ref);
        for (i, (x, y)) in c.iter().zip(&c_ref).enumerate() {
            if y.is_nan() {
                prop_assert!(x.is_nan(), "{ta:?}{tb:?} c[{i}]: expected NaN, got {x}");
            } else if y.is_infinite() {
                prop_assert!(*x == *y, "{ta:?}{tb:?} c[{i}]: expected {y}, got {x}");
            } else {
                prop_assert!((x - y).abs() < 1e-3, "{ta:?}{tb:?} c[{i}]: {x} vs {y}");
            }
        }
    }

    #[test]
    fn packed_gemm_matches_reference_on_ragged_blocked_shapes(
        m in 9usize..48,
        n in 9usize..48,
        k in 200usize..280,
        seed in any::<u64>(),
        ta_flag in any::<bool>(),
        tb_flag in any::<bool>(),
    ) {
        // m, n are rarely multiples of the 8×8 register tile and k
        // straddles the KC=256 cache block, so every pack-padding branch
        // and the multi-slab accumulation of the packed path are
        // exercised (m*n*k ≥ 9·9·200 is far above the small-problem
        // fallback threshold).
        let ta = if ta_flag { Transpose::Yes } else { Transpose::No };
        let tb = if tb_flag { Transpose::Yes } else { Transpose::No };
        let mut rng = scidl_tensor::TensorRng::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_range(-2.0, 2.0) as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform_range(-2.0, 2.0) as f32).collect();
        let mut c = vec![0.0f32; m * n];
        let mut c_ref = vec![0.0f32; m * n];
        gemm(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut c);
        gemm_ref(ta, tb, m, n, k, &a, &b, &mut c_ref);
        let tol = 1e-4 * (k as f32).sqrt() * 16.0;
        for (x, y) in c.iter().zip(&c_ref) {
            prop_assert!((x - y).abs() < tol, "{ta:?}{tb:?} m={m} n={n} k={k}: {x} vs {y}");
        }
    }

    #[test]
    fn packed_gemm_nonfinite_matches_reference_on_ragged_shapes(
        m in 9usize..24,
        n in 9usize..24,
        k in 60usize..90,
        seed in any::<u64>(),
        ta_flag in any::<bool>(),
        tb_flag in any::<bool>(),
    ) {
        // Same IEEE-754 palette as the small-shape property, but sized to
        // take the packed register-tiled path with ragged tiles: pack
        // zero-padding must never launder a NaN/Inf, and zeros in either
        // operand must not mask non-finite partners (no-zero-skip rule).
        let ta = if ta_flag { Transpose::Yes } else { Transpose::No };
        let tb = if tb_flag { Transpose::Yes } else { Transpose::No };
        let palette = [
            0.0f32, -0.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY,
            1.0, -1.0, 0.5, -2.0, 1.5,
        ];
        let mut s = seed | 1;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            palette[(s % palette.len() as u64) as usize]
        };
        let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
        let mut c = vec![0.0f32; m * n];
        let mut c_ref = vec![0.0f32; m * n];
        gemm(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut c);
        gemm_ref(ta, tb, m, n, k, &a, &b, &mut c_ref);
        for (i, (x, y)) in c.iter().zip(&c_ref).enumerate() {
            if y.is_nan() {
                prop_assert!(x.is_nan(), "{ta:?}{tb:?} c[{i}]: expected NaN, got {x}");
            } else if y.is_infinite() {
                prop_assert!(*x == *y, "{ta:?}{tb:?} c[{i}]: expected {y}, got {x}");
            } else {
                prop_assert!((x - y).abs() < 1e-3, "{ta:?}{tb:?} c[{i}]: {x} vs {y}");
            }
        }
    }

    #[test]
    fn packed_gemm_agrees_with_unpacked_seed_kernel(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..200,
        seed in any::<u64>(),
        ta_flag in any::<bool>(),
        tb_flag in any::<bool>(),
    ) {
        // Differential guard: the packed kernel and the retained
        // pre-packing baseline must agree to f32 rounding over the whole
        // shape space, including shapes that fall back to the unpacked
        // small-problem path (where they are identical code).
        let ta = if ta_flag { Transpose::Yes } else { Transpose::No };
        let tb = if tb_flag { Transpose::Yes } else { Transpose::No };
        let mut rng = scidl_tensor::TensorRng::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_range(-2.0, 2.0) as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform_range(-2.0, 2.0) as f32).collect();
        let c0: Vec<f32> = (0..m * n).map(|_| rng.uniform_range(-1.0, 1.0) as f32).collect();
        let mut c = c0.clone();
        let mut c_seed = c0;
        gemm(ta, tb, m, n, k, 0.5, &a, &b, 1.5, &mut c);
        gemm_unpacked(ta, tb, m, n, k, 0.5, &a, &b, 1.5, &mut c_seed);
        let tol = 1e-4 * (k as f32).sqrt() * 16.0;
        for (x, y) in c.iter().zip(&c_seed) {
            prop_assert!((x - y).abs() < tol, "{ta:?}{tb:?} m={m} n={n} k={k}: {x} vs {y}");
        }
    }

    #[test]
    fn fused_bias_epilogues_match_two_pass(
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..64,
        seed in any::<u64>(),
    ) {
        // gemm_bias / gemm_bias_cols must equal "fill C with the
        // broadcast bias, then gemm with beta=1" bit-for-bit: the fused
        // epilogue only changes *who* writes the init sweep, never the
        // accumulation order.
        let mut rng = scidl_tensor::TensorRng::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_range(-2.0, 2.0) as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform_range(-2.0, 2.0) as f32).collect();

        let row_bias: Vec<f32> = (0..m).map(|_| rng.uniform_range(-1.0, 1.0) as f32).collect();
        let mut fused = vec![0.0f32; m * n];
        gemm_bias(Transpose::No, Transpose::No, m, n, k, &a, &b, &row_bias, &mut fused);
        let mut two_pass = vec![0.0f32; m * n];
        for (row, &bv) in two_pass.chunks_mut(n).zip(&row_bias) {
            row.fill(bv);
        }
        gemm(Transpose::No, Transpose::No, m, n, k, 1.0, &a, &b, 1.0, &mut two_pass);
        prop_assert_eq!(&fused, &two_pass);

        let col_bias: Vec<f32> = (0..n).map(|_| rng.uniform_range(-1.0, 1.0) as f32).collect();
        let mut fused = vec![0.0f32; m * n];
        gemm_bias_cols(Transpose::No, Transpose::Yes, m, n, k, &a, &b, &col_bias, &mut fused);
        let mut two_pass = vec![0.0f32; m * n];
        for row in two_pass.chunks_mut(n) {
            row.copy_from_slice(&col_bias);
        }
        gemm(Transpose::No, Transpose::Yes, m, n, k, 1.0, &a, &b, 1.0, &mut two_pass);
        prop_assert_eq!(&fused, &two_pass);
    }

    #[test]
    fn im2col_col2im_adjoint(
        cin in 1usize..4,
        h in 3usize..10,
        w in 3usize..10,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in any::<u64>(),
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let geo = ConvGeometry::new(cin, 1, h, w, k, stride, pad);
        let ilen = cin * h * w;
        let clen = geo.col_rows() * geo.col_cols();
        let mut rng = scidl_tensor::TensorRng::new(seed);
        let x: Vec<f32> = (0..ilen).map(|_| rng.uniform_range(-1.0, 1.0) as f32).collect();
        let y: Vec<f32> = (0..clen).map(|_| rng.uniform_range(-1.0, 1.0) as f32).collect();

        let mut cx = vec![0.0; clen];
        im2col(&geo, &x, &mut cx);
        let lhs: f64 = cx.iter().zip(&y).map(|(a, b)| *a as f64 * *b as f64).sum();

        let mut xy = vec![0.0; ilen];
        col2im(&geo, &y, &mut xy);
        let rhs: f64 = x.iter().zip(&xy).map(|(a, b)| *a as f64 * *b as f64).sum();

        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn add_sub_roundtrip(v in vec_of(32), w in vec_of(32)) {
        let a0 = Tensor::from_flat(v);
        let b = Tensor::from_flat(w);
        let mut a = a0.clone();
        a.add_assign(&b);
        a.sub_assign(&b);
        prop_assert!(a.max_abs_diff(&a0) < 1e-4);
    }

    #[test]
    fn axpy_matches_scale_add(alpha in small_f32(), v in vec_of(16), w in vec_of(16)) {
        let mut a = Tensor::from_flat(v.clone());
        a.axpy(alpha, &Tensor::from_flat(w.clone()));
        for i in 0..16 {
            let expect = v[i] + alpha * w[i];
            prop_assert!((a.data()[i] - expect).abs() < 1e-3);
        }
    }

    #[test]
    fn batch_slice_preserves_items(n in 1usize..6, chw in 1usize..20, seed in any::<u64>()) {
        let mut rng = scidl_tensor::TensorRng::new(seed);
        let t = rng.uniform_tensor(Shape4::new(n, chw, 1, 1), -1.0, 1.0);
        for i in 0..n {
            let s = t.batch_slice(i, 1);
            prop_assert_eq!(s.data(), t.item(i));
        }
    }

    #[test]
    fn softmax_rows_sum_to_one(v in vec_of(9)) {
        let mut row = v;
        scidl_tensor::ops::softmax_inplace(&mut row);
        let s: f32 = row.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-4);
        prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}
