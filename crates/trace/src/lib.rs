#![warn(missing_docs)]
//! # scidl-trace
//!
//! Structured tracing and numeric-health telemetry for the scidl stack.
//!
//! The paper's evaluation is built on *measurements* — per-layer time
//! profiles (Fig. 5), peak vs sustained windows (Sec. VI-B3), straggler
//! and staleness effects (Figs. 6–8). This crate is the substrate those
//! measurements flow through: a [`TraceSink`] collects typed spans and
//! events ([`EventKind`]) from the engines, the communication layer and
//! the serving stack, plus numeric-health alerts ([`HealthAlert`]) from
//! non-finite sentinels, and exports them as
//!
//! * Chrome `trace_event` JSON ([`TraceSink::chrome_json`]) — load the
//!   file in `chrome://tracing` / Perfetto for a zoomable timeline, and
//! * a per-iteration CSV ([`TraceSink::iteration_csv`]) with the
//!   compute/comm/PS/queue split, staleness and loss of every iteration.
//!
//! ## Design
//!
//! * **Lock-cheap.** The disabled fast path is a single relaxed atomic
//!   load ([`is_enabled`]); no allocation, no lock. When enabled, events
//!   are appended under a short-lived mutex at span granularity (one
//!   push per span, not per sample), which is far off every hot loop's
//!   critical path.
//! * **Deterministic.** Virtual-time producers (the simulation engine,
//!   the serving simulator) record explicit timestamps via
//!   [`TraceHandle::event_at`], so a seeded run emits a bit-identical
//!   trace. Wall-clock producers stamp real elapsed time since the sink
//!   was created.
//! * **Global install.** Engines and kernels discover the sink through
//!   [`install`]/[`active`]; the [`TraceHandle`] wrapper makes call
//!   sites one-liners that compile to no-ops when tracing is off.
//! * **Bounded.** The sink caps its event buffer and counts drops
//!   instead of growing without bound on long runs.
//!
//! This crate is a dependency *leaf* (std only) so that every layer —
//! `scidl-tensor`, `scidl-comm`, `scidl-core`, `scidl-serve` — can feed
//! it. `scidl-core` re-exports it as `scidl_core::trace`.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default cap on buffered events before the sink starts dropping (and
/// counting) instead of growing without bound.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

// ---------------------------------------------------------------------------
// Event model
// ---------------------------------------------------------------------------

/// What a span or instant event describes. Durations live on the
/// enclosing [`TraceEvent`]; the kind carries the typed payload.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// One full engine iteration of a compute group.
    Iteration {
        /// Compute-group id.
        group: u64,
        /// Iteration number within the run.
        iter: u64,
    },
    /// Forward+backward gradient computation within an iteration.
    Compute {
        /// Compute-group id.
        group: u64,
        /// Iteration number within the run.
        iter: u64,
    },
    /// An all-reduce collective over `elems` f32 elements.
    Allreduce {
        /// Number of f32 elements reduced.
        elems: u64,
    },
    /// Parameter-server exchange (update + fetch) as seen by a group,
    /// with the gradient staleness the reply revealed.
    PsExchange {
        /// Compute-group id.
        group: u64,
        /// Updates applied between this group's fetch and its gradient.
        staleness: u64,
    },
    /// Server-side application of one PS update on a shard.
    PsService {
        /// Shard index (`u32::MAX` → unlabelled server).
        shard: u64,
        /// Parameter version after the update.
        version: u64,
    },
    /// A parameter-server shard respawn after a failure (instant).
    PsRespawn {
        /// Shard index.
        shard: u64,
    },
    /// An injected straggler window stretching this group's iteration.
    Straggler {
        /// Compute-group id.
        group: u64,
        /// Slowdown factor applied to the compute phase.
        factor: f64,
    },
    /// A checkpoint write.
    Checkpoint {
        /// Iteration the checkpoint captures.
        iter: u64,
        /// Serialized size in bytes.
        bytes: u64,
    },
    /// A dispatched inference batch with its queue/compute split.
    BatchDispatch {
        /// Worker id that ran the batch.
        worker: u64,
        /// Number of requests in the batch.
        batch: u64,
        /// Mean time the batch's requests waited in the queue (s).
        queue_s: f64,
        /// Model compute time for the batch (s).
        compute_s: f64,
    },
    /// One backward pass with bucketed gradient communication overlapped
    /// behind it (the MLSL-style overlap of Sec. V / Das et al.). Span
    /// duration is the backward+drain window; `hidden_s` is the part of
    /// the communication that ran concurrently with backward compute.
    Overlap {
        /// Number of gradient buckets the flat gradient was split into.
        buckets: u64,
        /// Communication time hidden behind backward compute (s).
        hidden_s: f64,
    },
    /// Requests shed by serving admission control or deadline expiry
    /// (instant).
    Shed {
        /// Worker (expiry) or client lane (admission) the shed happened on.
        worker: u64,
        /// Number of requests shed in this event.
        count: u64,
        /// Queue depth at the moment of the shed.
        depth: u64,
        /// `"watermark"`, `"queue_full"`, `"deadline"` or `"closed"`.
        reason: &'static str,
    },
    /// A client-side retry after a shed or lost worker (instant).
    Retry {
        /// 1-based retry attempt number.
        attempt: u64,
        /// Backoff the client slept before this attempt (s).
        backoff_s: f64,
    },
    /// A serving worker slot respawned by the supervisor after a crash
    /// or hang (instant).
    WorkerRespawn {
        /// Worker slot that was respawned.
        worker: u64,
        /// Incarnation number of the replacement (1 = first respawn).
        incarnation: u64,
        /// Exponential backoff the supervisor waited before respawning (s).
        backoff_s: f64,
        /// In-flight requests recovered and re-queued from the dead body.
        requeued: u64,
    },
    /// A hot-swap attempt rejected before publication (instant).
    SwapReject {
        /// `"checksum"`, `"roundtrip"`, `"nonfinite"` or `"breaker_open"`.
        reason: &'static str,
        /// Consecutive rejected swaps so far (the breaker's counter).
        failures: u64,
    },
    /// The hot-swap circuit breaker changing state (instant).
    Breaker {
        /// True when the breaker opened, false when it closed.
        open: bool,
        /// Consecutive failures at the transition.
        failures: u64,
    },
    /// A fleet router dispatch decision (instant).
    Route {
        /// Replica id the request was sent to.
        replica: u64,
        /// Queue depth of the chosen replica at dispatch time.
        depth: u64,
        /// `"round-robin"`, `"least-loaded"`, `"p2c"` or `"canary"`.
        policy: &'static str,
    },
    /// The autoscaler adding a replica (instant).
    ScaleUp {
        /// Live replica count *after* the scale-up.
        replicas: u64,
        /// Total fleet backlog that triggered the decision.
        backlog: u64,
    },
    /// The autoscaler draining and retiring a replica (instant).
    ScaleDown {
        /// Live replica count *after* the scale-down.
        replicas: u64,
        /// Total fleet backlog at the decision.
        backlog: u64,
    },
    /// A canary rollout transition (instant).
    Canary {
        /// `"begin"`, `"promote"` or `"rollback"`.
        action: &'static str,
        /// Canary replica id.
        replica: u64,
        /// Traffic fraction routed to the canary.
        fraction: f64,
    },
    /// A numeric-health alert (instant).
    Health(HealthAlert),
}

impl EventKind {
    /// Chrome trace-event `name` for this kind.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Iteration { .. } => "iteration",
            EventKind::Compute { .. } => "compute",
            EventKind::Allreduce { .. } => "allreduce",
            EventKind::PsExchange { .. } => "ps_exchange",
            EventKind::PsService { .. } => "ps_service",
            EventKind::PsRespawn { .. } => "ps_respawn",
            EventKind::Straggler { .. } => "straggler",
            EventKind::Checkpoint { .. } => "checkpoint",
            EventKind::BatchDispatch { .. } => "batch_dispatch",
            EventKind::Overlap { .. } => "overlap",
            EventKind::Shed { .. } => "shed",
            EventKind::Retry { .. } => "retry",
            EventKind::WorkerRespawn { .. } => "worker_respawn",
            EventKind::SwapReject { .. } => "swap_reject",
            EventKind::Breaker { .. } => "breaker",
            EventKind::Route { .. } => "route",
            EventKind::ScaleUp { .. } => "scale_up",
            EventKind::ScaleDown { .. } => "scale_down",
            EventKind::Canary { .. } => "canary",
            EventKind::Health(_) => "nonfinite",
        }
    }

    /// Chrome trace-event `cat` (category) for this kind.
    pub fn category(&self) -> &'static str {
        match self {
            EventKind::Iteration { .. } | EventKind::Compute { .. } | EventKind::Straggler { .. } => {
                "engine"
            }
            EventKind::Allreduce { .. }
            | EventKind::Overlap { .. }
            | EventKind::PsExchange { .. }
            | EventKind::PsService { .. }
            | EventKind::PsRespawn { .. } => "comm",
            EventKind::Checkpoint { .. } => "io",
            EventKind::BatchDispatch { .. }
            | EventKind::Shed { .. }
            | EventKind::Retry { .. }
            | EventKind::WorkerRespawn { .. }
            | EventKind::SwapReject { .. }
            | EventKind::Breaker { .. }
            | EventKind::Route { .. }
            | EventKind::ScaleUp { .. }
            | EventKind::ScaleDown { .. }
            | EventKind::Canary { .. } => "serve",
            EventKind::Health(_) => "health",
        }
    }

    fn write_args(&self, out: &mut String) {
        match self {
            EventKind::Iteration { group, iter } | EventKind::Compute { group, iter } => {
                push_kv_u64(out, "group", *group, true);
                push_kv_u64(out, "iter", *iter, false);
            }
            EventKind::Allreduce { elems } => push_kv_u64(out, "elems", *elems, true),
            EventKind::PsExchange { group, staleness } => {
                push_kv_u64(out, "group", *group, true);
                push_kv_u64(out, "staleness", *staleness, false);
            }
            EventKind::PsService { shard, version } => {
                push_kv_u64(out, "shard", *shard, true);
                push_kv_u64(out, "version", *version, false);
            }
            EventKind::PsRespawn { shard } => push_kv_u64(out, "shard", *shard, true),
            EventKind::Straggler { group, factor } => {
                push_kv_u64(out, "group", *group, true);
                push_kv_f64(out, "factor", *factor, false);
            }
            EventKind::Checkpoint { iter, bytes } => {
                push_kv_u64(out, "iter", *iter, true);
                push_kv_u64(out, "bytes", *bytes, false);
            }
            EventKind::BatchDispatch { worker, batch, queue_s, compute_s } => {
                push_kv_u64(out, "worker", *worker, true);
                push_kv_u64(out, "batch", *batch, false);
                push_kv_f64(out, "queue_s", *queue_s, false);
                push_kv_f64(out, "compute_s", *compute_s, false);
            }
            EventKind::Overlap { buckets, hidden_s } => {
                push_kv_u64(out, "buckets", *buckets, true);
                push_kv_f64(out, "hidden_s", *hidden_s, false);
            }
            EventKind::Shed { worker, count, depth, reason } => {
                push_kv_u64(out, "worker", *worker, true);
                push_kv_u64(out, "count", *count, false);
                push_kv_u64(out, "depth", *depth, false);
                push_kv_str(out, "reason", reason, false);
            }
            EventKind::Retry { attempt, backoff_s } => {
                push_kv_u64(out, "attempt", *attempt, true);
                push_kv_f64(out, "backoff_s", *backoff_s, false);
            }
            EventKind::WorkerRespawn { worker, incarnation, backoff_s, requeued } => {
                push_kv_u64(out, "worker", *worker, true);
                push_kv_u64(out, "incarnation", *incarnation, false);
                push_kv_f64(out, "backoff_s", *backoff_s, false);
                push_kv_u64(out, "requeued", *requeued, false);
            }
            EventKind::SwapReject { reason, failures } => {
                push_kv_str(out, "reason", reason, true);
                push_kv_u64(out, "failures", *failures, false);
            }
            EventKind::Breaker { open, failures } => {
                out.push_str(if *open { "\"open\":true" } else { "\"open\":false" });
                push_kv_u64(out, "failures", *failures, false);
            }
            EventKind::Route { replica, depth, policy } => {
                push_kv_u64(out, "replica", *replica, true);
                push_kv_u64(out, "depth", *depth, false);
                push_kv_str(out, "policy", policy, false);
            }
            EventKind::ScaleUp { replicas, backlog } | EventKind::ScaleDown { replicas, backlog } => {
                push_kv_u64(out, "replicas", *replicas, true);
                push_kv_u64(out, "backlog", *backlog, false);
            }
            EventKind::Canary { action, replica, fraction } => {
                push_kv_str(out, "action", action, true);
                push_kv_u64(out, "replica", *replica, false);
                push_kv_f64(out, "fraction", *fraction, false);
            }
            EventKind::Health(alert) => {
                push_kv_str(out, "source", alert.source, true);
                if let Some(layer) = &alert.layer {
                    push_kv_str(out, "layer", layer, false);
                }
                push_kv_u64(out, "first_index", alert.first_index as u64, false);
                push_kv_u64(out, "count", alert.count, false);
                push_kv_f64(out, "value", alert.value as f64, false);
                if let Some(iter) = alert.iter {
                    push_kv_u64(out, "iter", iter, false);
                }
            }
        }
    }
}

/// One recorded span (`dur_s > 0`) or instant event (`dur_s == 0`).
///
/// Timestamps are seconds — real elapsed time since the sink's creation
/// for wall-clock producers, virtual simulation time for deterministic
/// producers. `run` separates sequential engine runs sharing one sink
/// (it becomes the Chrome `pid`); `track` is the lane within a run —
/// group, worker or shard id (the Chrome `tid`).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Run id from [`TraceSink::begin_run`] (Chrome `pid`).
    pub run: u32,
    /// Lane within the run: group / worker / shard id (Chrome `tid`).
    pub track: u64,
    /// Start time in seconds.
    pub ts_s: f64,
    /// Duration in seconds; `0.0` renders as an instant event.
    pub dur_s: f64,
    /// Typed payload.
    pub kind: EventKind,
}

/// A numeric-health alert raised by a non-finite sentinel.
///
/// `first_index` points at the first offending element in the scanned
/// slice; when the slice is a flat parameter/gradient vector, `layer`
/// attributes it to the owning parameter block.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthAlert {
    /// Which sentinel fired: `"gradient"`, `"loss"`, `"quantize_i8"`,
    /// `"clip_norm"`, …
    pub source: &'static str,
    /// Name of the parameter block owning the first offender, when the
    /// scanned slice had block structure (e.g. `"conv1.weight"`).
    pub layer: Option<String>,
    /// Index of the first non-finite element in the scanned slice.
    pub first_index: usize,
    /// Total number of non-finite elements found.
    pub count: u64,
    /// The first offending value (NaN or ±Inf).
    pub value: f32,
    /// Iteration the alert was raised in, when known.
    pub iter: Option<u64>,
}

/// One row of the per-iteration CSV: where each iteration's time went,
/// plus the staleness/loss it observed. Training rows have
/// `kind == "train"` (track = group); serving rows have
/// `kind == "serve"` (track = worker, `iter` = batch sequence number).
#[derive(Debug, Clone, PartialEq)]
pub struct IterRow {
    /// Run id from [`TraceSink::begin_run`].
    pub run: u32,
    /// `"train"` or `"serve"`.
    pub kind: &'static str,
    /// Group (train) or worker (serve) id.
    pub track: u64,
    /// Iteration (train) or batch sequence (serve) number.
    pub iter: u64,
    /// Start time in seconds (same clock as the run's events).
    pub start_s: f64,
    /// Gradient / inference compute time (s).
    pub compute_s: f64,
    /// Collective communication time: all-reduce + broadcast (s).
    pub comm_s: f64,
    /// Parameter-server exchange time (s); 0 for sync/serving.
    pub ps_s: f64,
    /// Queue wait (s); serving only, 0 for training.
    pub queue_s: f64,
    /// Gradient staleness observed (updates); 0 when synchronous.
    pub staleness: u64,
    /// Loss observed this iteration (NaN for serving rows).
    pub loss: f64,
    /// Batch size processed.
    pub batch: u64,
}

/// Column order of [`TraceSink::iteration_csv`].
pub const ITER_CSV_HEADER: &str =
    "run,kind,track,iter,start_s,compute_s,comm_s,ps_s,queue_s,staleness,loss,batch";

// ---------------------------------------------------------------------------
// Sink
// ---------------------------------------------------------------------------

struct SinkState {
    events: Vec<TraceEvent>,
    rows: Vec<IterRow>,
    alerts: Vec<HealthAlert>,
    run_labels: Vec<(u32, &'static str)>,
}

/// Collects typed trace events, per-iteration rows and health alerts,
/// and renders them as Chrome `trace_event` JSON / CSV.
pub struct TraceSink {
    epoch: Instant,
    state: Mutex<SinkState>,
    next_run: AtomicU32,
    current_run: AtomicU32,
    capacity: usize,
    dropped: AtomicU64,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// A sink with the default event capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A sink that buffers at most `capacity` events (further events are
    /// dropped and counted in [`TraceSink::dropped`]).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceSink {
            epoch: Instant::now(),
            state: Mutex::new(SinkState {
                events: Vec::new(),
                rows: Vec::new(),
                alerts: Vec::new(),
                run_labels: Vec::new(),
            }),
            next_run: AtomicU32::new(0),
            current_run: AtomicU32::new(0),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SinkState> {
        // The sink is telemetry: a panic while holding the lock must not
        // wedge the traced program, so poisoning is ignored.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Seconds of real time since this sink was created.
    pub fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Starts a new labelled run (e.g. one engine invocation) and
    /// returns its id. The id becomes the Chrome `pid`, so sequential
    /// runs sharing one sink stay visually separate; it is also what
    /// context-free producers (the comm layer) attach their events to,
    /// via [`TraceSink::current_run`].
    pub fn begin_run(&self, label: &'static str) -> u32 {
        let id = self.next_run.fetch_add(1, Ordering::Relaxed);
        self.current_run.store(id, Ordering::Relaxed);
        self.lock().run_labels.push((id, label));
        id
    }

    /// The most recently started run id (0 if none was started).
    pub fn current_run(&self) -> u32 {
        self.current_run.load(Ordering::Relaxed)
    }

    /// Records an event with an explicit timestamp and duration
    /// (seconds). This is the deterministic entry point: virtual-time
    /// producers pass simulation time.
    pub fn event_at(&self, run: u32, track: u64, ts_s: f64, dur_s: f64, kind: EventKind) {
        let mut st = self.lock();
        if st.events.len() >= self.capacity {
            drop(st);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        st.events.push(TraceEvent { run, track, ts_s, dur_s, kind });
    }

    /// Records a wall-clock span that started at `start_s` (a value
    /// previously obtained from [`TraceSink::now`]) and ends now.
    pub fn span_since(&self, run: u32, track: u64, start_s: f64, kind: EventKind) {
        let dur = (self.now() - start_s).max(0.0);
        self.event_at(run, track, start_s, dur, kind);
    }

    /// Records an instant event stamped with the current real time.
    pub fn instant(&self, run: u32, track: u64, kind: EventKind) {
        let t = self.now();
        self.event_at(run, track, t, 0.0, kind);
    }

    /// Appends one per-iteration CSV row.
    pub fn push_row(&self, row: IterRow) {
        let mut st = self.lock();
        if st.rows.len() >= self.capacity {
            drop(st);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        st.rows.push(row);
    }

    /// Records a health alert: stored for queries ([`TraceSink::health_alerts`])
    /// and mirrored into the event stream as an instant event at real
    /// time `now` on the current run.
    pub fn health(&self, alert: HealthAlert) {
        let run = self.current_run();
        let t = self.now();
        let mut st = self.lock();
        st.alerts.push(alert.clone());
        if st.events.len() < self.capacity {
            st.events.push(TraceEvent {
                run,
                track: 0,
                ts_s: t,
                dur_s: 0.0,
                kind: EventKind::Health(alert),
            });
        }
    }

    /// Snapshot of all recorded events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().events.clone()
    }

    /// Snapshot of all per-iteration rows.
    pub fn rows(&self) -> Vec<IterRow> {
        self.lock().rows.clone()
    }

    /// Snapshot of all health alerts.
    pub fn health_alerts(&self) -> Vec<HealthAlert> {
        self.lock().alerts.clone()
    }

    /// Number of events/rows dropped because the capacity cap was hit.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Renders all events as Chrome `trace_event` JSON. Events are
    /// sorted by `(run, ts, track)` before rendering, so a
    /// deterministic producer yields a bit-identical file. Load the
    /// output in `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn chrome_json(&self) -> String {
        let st = self.lock();
        let mut order: Vec<usize> = (0..st.events.len()).collect();
        order.sort_by(|&a, &b| {
            let ea = &st.events[a];
            let eb = &st.events[b];
            (ea.run, ea.ts_s, ea.track)
                .partial_cmp(&(eb.run, eb.ts_s, eb.track))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut out = String::with_capacity(st.events.len() * 128 + 256);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for (id, label) in &st.run_labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{id},\"tid\":0,\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            ));
        }
        for &i in &order {
            let e = &st.events[i];
            if !first {
                out.push(',');
            }
            first = false;
            let ph = if e.dur_s > 0.0 { "X" } else { "i" };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{:.3},",
                e.kind.name(),
                e.kind.category(),
                ph,
                e.ts_s * 1e6
            ));
            if e.dur_s > 0.0 {
                out.push_str(&format!("\"dur\":{:.3},", e.dur_s * 1e6));
            } else {
                out.push_str("\"s\":\"g\",");
            }
            out.push_str(&format!("\"pid\":{},\"tid\":{},\"args\":{{", e.run, e.track));
            e.kind.write_args(&mut out);
            out.push_str("}}");
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Renders the per-iteration rows as CSV (header
    /// [`ITER_CSV_HEADER`]), sorted by `(run, track, iter)`.
    pub fn iteration_csv(&self) -> String {
        let st = self.lock();
        let mut order: Vec<usize> = (0..st.rows.len()).collect();
        order.sort_by_key(|&i| (st.rows[i].run, st.rows[i].track, st.rows[i].iter));
        let mut out = String::with_capacity(st.rows.len() * 96 + 128);
        out.push_str(ITER_CSV_HEADER);
        out.push('\n');
        for &i in &order {
            let r = &st.rows[i];
            out.push_str(&format!(
                "{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{},{},{}\n",
                r.run,
                r.kind,
                r.track,
                r.iter,
                r.start_s,
                r.compute_s,
                r.comm_s,
                r.ps_s,
                r.queue_s,
                r.staleness,
                fmt_f64(r.loss),
                r.batch
            ));
        }
        out
    }

    /// Writes [`TraceSink::chrome_json`] to `path`.
    pub fn write_chrome_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_json())
    }

    /// Writes [`TraceSink::iteration_csv`] to `path`.
    pub fn write_iteration_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.iteration_csv())
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else if v.is_nan() {
        "NaN".into()
    } else if v > 0.0 {
        "Inf".into()
    } else {
        "-Inf".into()
    }
}

fn push_kv_u64(out: &mut String, k: &str, v: u64, first: bool) {
    if !first {
        out.push(',');
    }
    out.push_str(&format!("\"{k}\":{v}"));
}

fn push_kv_f64(out: &mut String, k: &str, v: f64, first: bool) {
    if !first {
        out.push(',');
    }
    // NaN/Inf are not valid JSON numbers; quote them.
    if v.is_finite() {
        out.push_str(&format!("\"{k}\":{v:.6}"));
    } else {
        out.push_str(&format!("\"{k}\":\"{}\"", fmt_f64(v)));
    }
}

fn push_kv_str(out: &mut String, k: &str, v: &str, first: bool) {
    if !first {
        out.push(',');
    }
    out.push('"');
    out.push_str(k);
    out.push_str("\":\"");
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Global install
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

fn global() -> &'static Mutex<Option<Arc<TraceSink>>> {
    static GLOBAL: OnceLock<Mutex<Option<Arc<TraceSink>>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(None))
}

/// Installs `sink` as the process-global trace sink. Subsequent engine
/// runs, comm calls and sentinels will record into it until
/// [`uninstall`] is called.
pub fn install(sink: Arc<TraceSink>) {
    let mut g = global().lock().unwrap_or_else(|e| e.into_inner());
    *g = Some(sink);
    ENABLED.store(true, Ordering::Release);
}

/// Removes and returns the global sink, disabling tracing.
pub fn uninstall() -> Option<Arc<TraceSink>> {
    let mut g = global().lock().unwrap_or_else(|e| e.into_inner());
    ENABLED.store(false, Ordering::Release);
    g.take()
}

/// Whether a sink is installed — a single relaxed atomic load, the
/// entire cost of tracing on every disabled hot path.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed sink, if any. Checks the atomic flag before touching
/// the lock, so the disabled path stays lock-free.
#[inline]
pub fn active() -> Option<Arc<TraceSink>> {
    if !is_enabled() {
        return None;
    }
    global().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

// ---------------------------------------------------------------------------
// Handle — one-liner call sites for producers
// ---------------------------------------------------------------------------

/// A producer-side handle binding the active sink to a run id. All
/// methods are no-ops (and `now()` returns 0) when tracing is off, so
/// instrumented code needs no `Option` plumbing.
#[derive(Clone)]
pub struct TraceHandle {
    inner: Option<(Arc<TraceSink>, u32)>,
}

impl TraceHandle {
    /// Begins a new labelled run on the active sink (no-op handle when
    /// tracing is off). One engine/server invocation = one run.
    pub fn begin(label: &'static str) -> Self {
        TraceHandle {
            inner: active().map(|s| {
                let run = s.begin_run(label);
                (s, run)
            }),
        }
    }

    /// Binds to the active sink's *current* run without starting a new
    /// one — for context-free producers (the comm layer) whose events
    /// belong to whichever run is in flight.
    pub fn current() -> Self {
        TraceHandle { inner: active().map(|s| { let run = s.current_run(); (s, run) }) }
    }

    /// A handle that records nothing.
    pub fn off() -> Self {
        TraceHandle { inner: None }
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Real seconds since sink creation (0.0 when off). Pair with
    /// [`TraceHandle::span`] to time a wall-clock region.
    pub fn now(&self) -> f64 {
        match &self.inner {
            Some((s, _)) => s.now(),
            None => 0.0,
        }
    }

    /// Records a wall-clock span from `start_s` (from
    /// [`TraceHandle::now`]) to now on lane `track`.
    pub fn span(&self, track: u64, start_s: f64, kind: EventKind) {
        if let Some((s, run)) = &self.inner {
            s.span_since(*run, track, start_s, kind);
        }
    }

    /// Records an event with explicit (e.g. virtual) timestamps.
    pub fn event_at(&self, track: u64, ts_s: f64, dur_s: f64, kind: EventKind) {
        if let Some((s, run)) = &self.inner {
            s.event_at(*run, track, ts_s, dur_s, kind);
        }
    }

    /// Records an instant event at the current real time.
    pub fn instant(&self, track: u64, kind: EventKind) {
        if let Some((s, run)) = &self.inner {
            s.instant(*run, track, kind);
        }
    }

    /// Appends a per-iteration CSV row (the handle fills in `run`).
    pub fn row(&self, mut row: IterRow) {
        if let Some((s, run)) = &self.inner {
            row.run = *run;
            s.push_row(row);
        }
    }

    /// Raises a health alert on the bound sink.
    pub fn health(&self, alert: HealthAlert) {
        if let Some((s, _)) = &self.inner {
            s.health(alert);
        }
    }
}

// ---------------------------------------------------------------------------
// Numeric-health sentinels
// ---------------------------------------------------------------------------

/// Scans `data` for non-finite values; returns `(first_index, count,
/// first_value)` when any exist.
pub fn scan_nonfinite(data: &[f32]) -> Option<(usize, u64, f32)> {
    let mut first = None;
    let mut count = 0u64;
    for (i, &x) in data.iter().enumerate() {
        if !x.is_finite() {
            count += 1;
            if first.is_none() {
                first = Some((i, x));
            }
        }
    }
    first.map(|(i, v)| (i, count, v))
}

/// Scans a flat vector laid out as consecutive named blocks (the
/// engines' flattened parameter/gradient layout) and attributes the
/// first non-finite element to its owning block. `sizes[i]` is the
/// element count of block `names[i]`.
pub fn scan_blocks(
    source: &'static str,
    flat: &[f32],
    sizes: &[usize],
    names: &[String],
    iter: Option<u64>,
) -> Option<HealthAlert> {
    let (first_index, count, value) = scan_nonfinite(flat)?;
    let mut layer = None;
    let mut offset = 0usize;
    for (sz, name) in sizes.iter().zip(names) {
        if first_index < offset + sz {
            layer = Some(name.clone());
            break;
        }
        offset += sz;
    }
    Some(HealthAlert { source, layer, first_index, count, value, iter })
}

/// Low-level sentinel hook for kernels (`quantize_i8`, `clip_norm`):
/// raises an unattributed alert on the active sink. Costs one relaxed
/// atomic load when tracing is off.
pub fn nonfinite_hook(source: &'static str, first_index: usize, count: u64, value: f32) {
    if !is_enabled() {
        return;
    }
    if let Some(s) = active() {
        s.health(HealthAlert { source, layer: None, first_index, count, value, iter: None });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-install tests share process state; serialize them.
    fn with_global_lock<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        f()
    }

    #[test]
    fn span_and_instant_record() {
        let sink = TraceSink::new();
        let run = sink.begin_run("test");
        let t0 = sink.now();
        sink.span_since(run, 3, t0, EventKind::Allreduce { elems: 128 });
        sink.instant(run, 3, EventKind::PsRespawn { shard: 1 });
        let ev = sink.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].kind, EventKind::Allreduce { elems: 128 });
        assert!(ev[0].dur_s >= 0.0);
        assert_eq!(ev[1].dur_s, 0.0);
        assert_eq!(ev[1].track, 3);
    }

    #[test]
    fn chrome_json_shape_and_determinism() {
        let sink = TraceSink::new();
        let run = sink.begin_run("sim");
        sink.event_at(run, 0, 0.5, 0.25, EventKind::Iteration { group: 0, iter: 1 });
        sink.event_at(run, 0, 0.5, 0.1, EventKind::Compute { group: 0, iter: 1 });
        sink.event_at(run, 1, 0.2, 0.0, EventKind::PsRespawn { shard: 7 });
        let j1 = sink.chrome_json();
        let j2 = sink.chrome_json();
        assert_eq!(j1, j2, "export must be deterministic");
        assert!(j1.starts_with("{\"traceEvents\":["));
        assert!(j1.ends_with("\"displayTimeUnit\":\"ms\"}"));
        assert!(j1.contains("\"name\":\"iteration\""));
        assert!(j1.contains("\"ph\":\"X\""));
        assert!(j1.contains("\"ph\":\"i\""));
        assert!(j1.contains("\"process_name\""));
        // sorted by ts: respawn (0.2s) precedes iteration (0.5s)
        assert!(j1.find("ps_respawn").unwrap() < j1.find("iteration").unwrap());
        // ts in microseconds
        assert!(j1.contains("\"ts\":500000.000"));
        assert_eq!(j1.matches('{').count(), j1.matches('}').count());
    }

    #[test]
    fn iteration_csv_rows_sorted_and_formatted() {
        let sink = TraceSink::new();
        let run = sink.begin_run("eng");
        for iter in [2u64, 0, 1] {
            sink.push_row(IterRow {
                run,
                kind: "train",
                track: 0,
                iter,
                start_s: iter as f64,
                compute_s: 0.5,
                comm_s: 0.1,
                ps_s: 0.05,
                queue_s: 0.0,
                staleness: iter,
                loss: 1.0 / (iter + 1) as f64,
                batch: 32,
            });
        }
        let csv = sink.iteration_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], ITER_CSV_HEADER);
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with(&format!("{run},train,0,0,")));
        assert!(lines[3].starts_with(&format!("{run},train,0,2,")));
        assert!(lines[1].split(',').count() == ITER_CSV_HEADER.split(',').count());
    }

    #[test]
    fn nan_loss_renders_as_text_not_json_breaking() {
        let sink = TraceSink::new();
        let run = sink.begin_run("x");
        sink.push_row(IterRow {
            run,
            kind: "train",
            track: 0,
            iter: 0,
            start_s: 0.0,
            compute_s: 0.0,
            comm_s: 0.0,
            ps_s: 0.0,
            queue_s: 0.0,
            staleness: 0,
            loss: f64::NAN,
            batch: 1,
        });
        assert!(sink.iteration_csv().contains(",NaN,"));
        sink.health(HealthAlert {
            source: "loss",
            layer: None,
            first_index: 0,
            count: 1,
            value: f32::NAN,
            iter: Some(0),
        });
        let j = sink.chrome_json();
        assert!(j.contains("\"value\":\"NaN\""), "non-finite args must be quoted: {j}");
    }

    #[test]
    fn serving_resilience_kinds_render_as_valid_trace_json() {
        let sink = TraceSink::new();
        let run = sink.begin_run("chaos");
        sink.event_at(run, 0, 0.1, 0.0, EventKind::Shed {
            worker: 0,
            count: 3,
            depth: 64,
            reason: "watermark",
        });
        sink.event_at(run, 0, 0.2, 0.0, EventKind::Retry { attempt: 2, backoff_s: 0.004 });
        sink.event_at(run, 1, 0.3, 0.0, EventKind::WorkerRespawn {
            worker: 1,
            incarnation: 1,
            backoff_s: 0.001,
            requeued: 4,
        });
        sink.event_at(run, 0, 0.4, 0.0, EventKind::SwapReject { reason: "roundtrip", failures: 2 });
        sink.event_at(run, 0, 0.5, 0.0, EventKind::Breaker { open: true, failures: 3 });
        let j = sink.chrome_json();
        for name in ["shed", "retry", "worker_respawn", "swap_reject", "breaker"] {
            assert!(j.contains(&format!("\"name\":\"{name}\"")), "{name} missing: {j}");
        }
        assert!(j.contains("\"reason\":\"watermark\""));
        assert!(j.contains("\"open\":true"));
        assert!(j.contains("\"requeued\":4"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn capacity_cap_drops_and_counts() {
        let sink = TraceSink::with_capacity(2);
        let run = sink.begin_run("cap");
        for i in 0..5 {
            sink.event_at(run, 0, i as f64, 0.0, EventKind::PsRespawn { shard: i });
        }
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.dropped(), 3);
    }

    #[test]
    fn scan_blocks_attributes_first_offender() {
        let mut flat = vec![0.0f32; 10];
        flat[4] = f32::NAN;
        flat[9] = f32::INFINITY;
        let sizes = vec![3, 4, 3];
        let names = vec!["conv1.weight".to_string(), "fc1.weight".to_string(), "fc1.bias".to_string()];
        let alert = scan_blocks("gradient", &flat, &sizes, &names, Some(7)).unwrap();
        assert_eq!(alert.layer.as_deref(), Some("fc1.weight"));
        assert_eq!(alert.first_index, 4);
        assert_eq!(alert.count, 2);
        assert!(alert.value.is_nan());
        assert_eq!(alert.iter, Some(7));
        assert!(scan_blocks("gradient", &[1.0, 2.0], &[2], &names, None).is_none());
    }

    #[test]
    fn global_install_round_trip() {
        with_global_lock(|| {
            assert!(!is_enabled());
            assert!(TraceHandle::begin("off").inner.is_none());
            let sink = Arc::new(TraceSink::new());
            install(sink.clone());
            assert!(is_enabled());
            let h = TraceHandle::begin("run");
            assert!(h.enabled());
            let t = h.now();
            h.span(0, t, EventKind::Allreduce { elems: 4 });
            nonfinite_hook("clip_norm", 2, 1, f32::INFINITY);
            let back = uninstall().expect("sink was installed");
            assert!(!is_enabled());
            assert!(Arc::ptr_eq(&back, &sink));
            assert_eq!(sink.events().len(), 2); // span + mirrored health
            let alerts = sink.health_alerts();
            assert_eq!(alerts.len(), 1);
            assert_eq!(alerts[0].source, "clip_norm");
            nonfinite_hook("clip_norm", 0, 1, f32::NAN); // disabled: no-op
            assert_eq!(sink.health_alerts().len(), 1);
        })
    }

    #[test]
    fn handle_off_is_inert() {
        let h = TraceHandle::off();
        assert!(!h.enabled());
        assert_eq!(h.now(), 0.0);
        h.span(0, 0.0, EventKind::Allreduce { elems: 1 });
        h.instant(0, EventKind::PsRespawn { shard: 0 });
        h.health(HealthAlert {
            source: "loss",
            layer: None,
            first_index: 0,
            count: 1,
            value: f32::NAN,
            iter: None,
        });
    }

    #[test]
    fn current_binds_to_latest_run() {
        with_global_lock(|| {
            let sink = Arc::new(TraceSink::new());
            install(sink.clone());
            let _r0 = TraceHandle::begin("first");
            let h1 = TraceHandle::begin("second");
            let c = TraceHandle::current();
            c.instant(0, EventKind::PsRespawn { shard: 0 });
            uninstall();
            let ev = sink.events();
            assert_eq!(ev.len(), 1);
            assert_eq!(ev[0].run, h1.inner.as_ref().unwrap().1);
        })
    }
}
